"""The pipeline event taxonomy (docs/OBSERVABILITY.md).

Every observable micro-architectural happening is one *event*: a plain
tuple ``(cycle, code, *args)`` whose argument layout is fixed per event
code.  Tuples (rather than objects or dicts) keep the enabled-tracer
emit path to a single allocation plus an append, which is what makes
ring-buffer tracing cheap enough to leave on during long runs; the
richer dict form is materialized only by sinks that serialize
(:class:`~repro.obs.sinks.JsonlSink`,
:class:`~repro.obs.sinks.ChromeTraceSink`) or by
:func:`event_to_dict`.

Event codes and their argument layouts:

=============== ==================================================
code            args (after ``cycle, code``)
=============== ==================================================
``fetch``       seq, pc
``steer``       seq, cluster, reason
``dispatch``    order, kind, seq, pc, cluster, op, fetch_cycle
``issue``       order, kind, cluster, reissue
``copy_send``   order, src_cluster, dest_cluster, arrival
``vcopy_verify`` order, cluster, hit
``bus``         dest_cluster, depart
``complete``    order, kind, cluster
``commit``      order, kind, seq, cluster
``squash``      order, kind, cluster, generation
=============== ==================================================

``kind`` is the uop kind code (0 inst / 1 copy / 2 vcopy, see
:mod:`repro.core.uop`); ``order`` is the global dispatch order that
keys the per-uop lifecycle; ``reason`` is the steering scheme's
decision class (see :attr:`repro.steering.base.Steerer.last_reason`).
A ``steer`` event is emitted once per dispatched instruction — decode
retries after structural stalls do not duplicate it.  ``fetch`` events
carry the cycle the instruction entered the fetch buffer (they are
emitted at decode, when the front-end annotation becomes visible, so a
trace is not globally cycle-sorted).
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["EV_FETCH", "EV_STEER", "EV_DISPATCH", "EV_ISSUE",
           "EV_COPY_SEND", "EV_VCOPY_VERIFY", "EV_BUS", "EV_COMPLETE",
           "EV_COMMIT", "EV_SQUASH", "EVENT_NAMES", "EVENT_FIELDS",
           "KIND_NAMES", "event_to_dict"]

EV_FETCH = 0
EV_STEER = 1
EV_DISPATCH = 2
EV_ISSUE = 3
EV_COPY_SEND = 4
EV_VCOPY_VERIFY = 5
EV_BUS = 6
EV_COMPLETE = 7
EV_COMMIT = 8
EV_SQUASH = 9

#: code -> human-readable event name (index == code).
EVENT_NAMES: Tuple[str, ...] = (
    "fetch", "steer", "dispatch", "issue", "copy_send", "vcopy_verify",
    "bus", "complete", "commit", "squash")

#: code -> argument names, in tuple order after ``(cycle, code, ...)``.
EVENT_FIELDS: Tuple[Tuple[str, ...], ...] = (
    ("seq", "pc"),
    ("seq", "cluster", "reason"),
    ("order", "kind", "seq", "pc", "cluster", "op", "fetch_cycle"),
    ("order", "kind", "cluster", "reissue"),
    ("order", "src_cluster", "dest_cluster", "arrival"),
    ("order", "cluster", "hit"),
    ("dest_cluster", "depart"),
    ("order", "kind", "cluster"),
    ("order", "kind", "seq", "cluster"),
    ("order", "kind", "cluster", "generation"),
)

#: Uop kind code -> name (mirrors repro.core.uop's KIND_* constants).
KIND_NAMES: Tuple[str, ...] = ("inst", "copy", "vcopy")


def event_to_dict(event: tuple) -> dict:
    """Expand one raw event tuple into its named-field dict form.

    ``kind`` arguments are translated to their names so serialized
    traces are self-describing.
    """
    cycle, code = event[0], event[1]
    record = {"cycle": cycle, "event": EVENT_NAMES[code]}
    for name, value in zip(EVENT_FIELDS[code], event[2:]):
        if name == "kind":
            value = KIND_NAMES[value]
        record[name] = value
    return record

"""Unified instrumentation: event tracing, interval metrics, profiling.

Three coordinated observers, all zero-overhead when disabled (the core
carries only ``is not None`` guards):

* :class:`EventTracer` + sinks — typed per-cycle pipeline events
  (fetch, steer, dispatch, issue, copy/vcopy, bus, complete, commit,
  squash) into a ring buffer, JSONL, or Chrome-trace/Perfetto output.
* :class:`IntervalMetrics` — counters/gauges/histograms sampled every
  N cycles into a time series (IPC, occupancy, NREADY, comms/inst...).
* :class:`PhaseProfiler` — host wall-clock attribution across the
  simulator loop stages.
* :class:`SweepMonitor` — sweep-level run telemetry (typed run events,
  live progress/ETA, JSONL event log) feeding the per-run provenance
  receipts of :mod:`repro.analysis.provenance`.

See docs/OBSERVABILITY.md for the event taxonomy, file formats and
measured overheads.
"""

from .events import (EV_BUS, EV_COMMIT, EV_COMPLETE, EV_COPY_SEND,
                     EV_DISPATCH, EV_FETCH, EV_ISSUE, EV_SQUASH, EV_STEER,
                     EV_VCOPY_VERIFY, EVENT_FIELDS, EVENT_NAMES, KIND_NAMES,
                     event_to_dict)
from .interval import Histogram, IntervalMetrics
from .profiler import PHASES, PhaseProfiler
from .schema import (RECEIPT_SCHEMA, TraceSchemaError,
                     validate_chrome_trace, validate_jsonl_trace,
                     validate_receipt, validate_telemetry_jsonl)
from .sinks import (JSONL_SCHEMA, ChromeTraceSink, JsonlSink, ListSink,
                    RingBufferSink, TeeSink)
from .telemetry import (TELEMETRY_EVENTS, TELEMETRY_SCHEMA, CellTelemetry,
                        SweepMonitor, SweepTelemetry, active_monitor,
                        eta_seconds, normalize_events, throughput,
                        use_monitor)
from .tracer import POSTMORTEM_WINDOW, EventTracer

__all__ = [
    "EV_FETCH", "EV_STEER", "EV_DISPATCH", "EV_ISSUE", "EV_COPY_SEND",
    "EV_VCOPY_VERIFY", "EV_BUS", "EV_COMPLETE", "EV_COMMIT", "EV_SQUASH",
    "EVENT_NAMES", "EVENT_FIELDS", "KIND_NAMES", "event_to_dict",
    "Histogram", "IntervalMetrics",
    "PHASES", "PhaseProfiler",
    "RECEIPT_SCHEMA", "TraceSchemaError", "validate_chrome_trace",
    "validate_jsonl_trace", "validate_receipt", "validate_telemetry_jsonl",
    "JSONL_SCHEMA", "ChromeTraceSink", "JsonlSink", "ListSink",
    "RingBufferSink", "TeeSink",
    "TELEMETRY_EVENTS", "TELEMETRY_SCHEMA", "CellTelemetry",
    "SweepMonitor", "SweepTelemetry", "active_monitor", "eta_seconds",
    "normalize_events", "throughput", "use_monitor",
    "POSTMORTEM_WINDOW", "EventTracer",
]

"""Interval metrics: a time-resolved view of one simulation.

End-of-run :class:`~repro.core.stats.SimStats` says *what* the machine
did; this registry says *when*.  Every ``interval`` cycles the
processor calls :meth:`IntervalMetrics.sample`, which records

* **counters** as deltas over the interval (committed instructions,
  communications, issued uops, invalidations, value-predictor
  activity, NREADY accumulation) — the deltas of any counter sum back
  exactly to its final cumulative value, which the test suite asserts;
* **gauges** as instantaneous values (ROB occupancy, per-cluster
  issue-queue depth);
* **histograms** over the sampled gauges (ROB occupancy and total IQ
  depth distributions across samples).

A final partial sample is taken when the run drains, so no tail cycles
are lost.  Sampling only ever *reads* simulator state: the committed
stream and statistics of a metered run are identical to an unmetered
one.

The sample rows are plain dicts; export them with
:func:`repro.analysis.export.interval_rows` +
``to_csv``/``to_json``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

__all__ = ["Histogram", "IntervalMetrics", "standard_counters",
           "standard_gauges"]


class Histogram:
    """Fixed-bucket histogram over sampled values.

    Buckets are ``<= edge`` counts plus a final overflow bucket.
    """

    def __init__(self, edges: Tuple[int, ...]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be non-empty and sorted")
        self.edges = tuple(edges)
        self.counts = [0] * (len(edges) + 1)
        self.total = 0

    def add(self, value: float) -> None:
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1

    def to_dict(self) -> dict:
        labels = [f"<={edge}" for edge in self.edges] + \
            [f">{self.edges[-1]}"]
        return {"buckets": dict(zip(labels, self.counts)),
                "total": self.total}


def standard_counters() -> Dict[str, Callable]:
    """name -> cumulative-value getter for the stock counter set."""
    return {
        "committed_insts": lambda p: p.stats.committed_insts,
        "committed_copies": lambda p: p.stats.committed_copies,
        "committed_vcopies": lambda p: p.stats.committed_vcopies,
        "communications": lambda p: p.stats.communications,
        "mismatch_forwards": lambda p: p.stats.mismatch_forwards,
        "issued_uops": lambda p: p.stats.issued_uops,
        "dispatched_insts": lambda p: p.stats.dispatched_insts,
        "invalidations": lambda p: p.stats.invalidations,
        "speculative_operands": lambda p: p.stats.speculative_operands,
        "mispredicted_operands": lambda p: p.stats.mispredicted_operands,
        "vp_lookups": lambda p: p.vp.stats.lookups,
        "vp_confident": lambda p: p.vp.stats.confident,
        "vp_confident_correct": lambda p: p.vp.stats.confident_correct,
        "nready_total": lambda p: p.nready.total,
    }


def standard_gauges() -> Dict[str, Callable]:
    """name -> instantaneous-value getter for the stock gauge set."""
    return {
        "rob_occupancy": lambda p: len(p.rob),
        "iq_depth": lambda p: [c.occupancy for c in p.clusters],
        "pending_store_addrs": lambda p: len(p._pending_store_addrs),
    }


class IntervalMetrics:
    """Counter/gauge/histogram registry sampled every *interval* cycles.

    Custom metrics can be registered before the run starts with
    :meth:`add_counter` / :meth:`add_gauge`; the constructor installs
    the standard processor set.
    """

    def __init__(self, interval: int, n_clusters: int = 0) -> None:
        if interval < 1:
            raise ValueError("metrics interval must be >= 1 cycle")
        self.interval = interval
        self.n_clusters = n_clusters
        self.samples: List[dict] = []
        self._counters: Dict[str, Callable] = standard_counters()
        self._gauges: Dict[str, Callable] = standard_gauges()
        self._previous: Dict[str, float] = {}
        self._last_cycle = 0
        self.histograms: Dict[str, Histogram] = {
            "rob_occupancy": Histogram((8, 16, 32, 64, 96, 128)),
            "iq_depth_total": Histogram((4, 8, 16, 32, 64, 128)),
        }

    # -- registry --------------------------------------------------------------

    def add_counter(self, name: str, getter: Callable) -> None:
        """Register a cumulative counter; samples record its delta."""
        if self.samples:
            raise ValueError("cannot register metrics mid-run")
        self._counters[name] = getter

    def add_gauge(self, name: str, getter: Callable) -> None:
        """Register an instantaneous gauge."""
        if self.samples:
            raise ValueError("cannot register metrics mid-run")
        self._gauges[name] = getter

    @property
    def counter_names(self) -> List[str]:
        return list(self._counters)

    # -- sampling --------------------------------------------------------------

    def sample(self, processor, cycle: int) -> None:
        """Record the interval ``[last_cycle, cycle)``.

        Called by the processor at interval boundaries and once more at
        the end of the run (the final, possibly partial, interval).
        Empty intervals (``cycle == last_cycle``) are skipped.
        """
        span = cycle - self._last_cycle
        if span <= 0:
            return
        row: dict = {"cycle_start": self._last_cycle, "cycle_end": cycle,
                     "cycles": span}
        for name, getter in self._counters.items():
            value = getter(processor)
            row[name] = value - self._previous.get(name, 0)
            self._previous[name] = value
        for name, getter in self._gauges.items():
            row[name] = getter(processor)
        row["ipc"] = row["committed_insts"] / span
        committed = row["committed_insts"]
        row["comm_per_inst"] = (row["communications"] / committed
                                if committed else 0.0)
        row["imbalance"] = row["nready_total"] / span
        self.histograms["rob_occupancy"].add(row["rob_occupancy"])
        self.histograms["iq_depth_total"].add(sum(row["iq_depth"]))
        self.samples.append(row)
        self._last_cycle = cycle

    def finish(self, processor, cycle: int) -> None:
        """Take the final partial sample when the run drains."""
        self.sample(processor, cycle)

    # -- export ----------------------------------------------------------------

    def rows(self) -> List[dict]:
        """Sample rows with list-valued gauges flattened per cluster."""
        flat: List[dict] = []
        for row in self.samples:
            out = {}
            for key, value in row.items():
                if isinstance(value, list):
                    for index, item in enumerate(value):
                        out[f"{key}_c{index}"] = item
                else:
                    out[key] = value
            flat.append(out)
        return flat

    def totals(self) -> Dict[str, float]:
        """Per-counter sums over all samples (equals final cumulatives)."""
        sums: Dict[str, float] = {name: 0 for name in self._counters}
        for row in self.samples:
            for name in sums:
                sums[name] += row[name]
        return sums

    def summary(self) -> str:
        """One line per sample: cycle span, IPC, comms/inst, occupancy."""
        lines = [f"{'cycles':>15} {'ipc':>6} {'comm/i':>7} {'rob':>4} "
                 f"iq-depth"]
        for row in self.samples:
            span = f"{row['cycle_start']}..{row['cycle_end']}"
            lines.append(f"{span:>15} {row['ipc']:6.2f} "
                         f"{row['comm_per_inst']:7.3f} "
                         f"{row['rob_occupancy']:>4} "
                         f"{row['iq_depth']}")
        return "\n".join(lines)

"""Sweep-level telemetry: typed run events, live progress, JSONL sink.

PR 3 instrumented the *microarchitecture* (per-cycle pipeline events);
this module instruments the *experiment layer*.  A
:class:`SweepMonitor` receives typed run events from the sweep runner
(``repro.analysis.parallel.run_cells``), the result cache, the fault
campaign and the benchmarks:

========================= ==============================================
event                     meaning
========================= ==============================================
``sweep_start``           a sweep of N cells began (label, jobs, chunk)
``cell_start``            one cell was dispatched for simulation
``cell_retry``            a cell attempt failed (attempt #, error type)
``cell_done``             a cell finished (ok / failed / cached flag)
``cache_hit``             a cell resolved from the result cache
``cache_miss``            a cell was looked up and not found
``cache_store``           a fresh result entered the cache
``worker_up``             worker processes came up for this sweep
``worker_down``           worker processes were released
``sweep_done``            the sweep finished (completed/failed counts)
========================= ==============================================

The monitor renders live progress lines (cells done, throughput, ETA)
to a stream — ``stderr`` by default, carriage-return style on a TTY —
and can mirror every event to a JSONL file whose schema is validated
by :func:`repro.obs.schema.validate_telemetry_jsonl`.  Every event is
also kept in memory, so a :class:`~repro.analysis.provenance.RunReceipt`
can be assembled from the monitor after (or during) a run.

Like the result cache and the worker pool, a monitor is installed
ambiently (``with use_monitor(SweepMonitor(...)):``) so every sweep in
the block reports to it without parameter threading; with no monitor
installed the runner's hooks are single ``is not None`` guards and the
sweep pays nothing.

Crash safety: the JSONL sink flushes after every event and ``close()``
is idempotent, so a sweep killed by KeyboardInterrupt (or a crash
inside a driver) leaves a readable partial event log behind — the same
try/finally flush contract the PR-4 CLI trace sinks honour.

Determinism: the event *set* of a sweep, order-normalized by
:func:`normalize_events`, is identical between serial and parallel
runs of the same cells (worker transport events and wall-clock fields
are stripped); the tier-1 suite asserts this.
"""

from __future__ import annotations

import json
import math
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Sequence

__all__ = ["TELEMETRY_SCHEMA", "TELEMETRY_EVENTS", "CellTelemetry",
           "SweepTelemetry", "SweepMonitor", "active_monitor",
           "eta_seconds", "normalize_events", "throughput",
           "use_monitor"]

#: Schema tag written as the first line of every telemetry JSONL file.
TELEMETRY_SCHEMA = "repro-telemetry-v1"

#: Every event name -> the payload fields it must carry (beyond the
#: envelope's ``event``/``seq``/``t``).  The JSONL validator enforces
#: this table.
TELEMETRY_EVENTS: Dict[str, tuple] = {
    "sweep_start": ("label", "cells", "jobs", "chunksize"),
    "cell_start": ("label", "key"),
    "cell_retry": ("label", "key", "attempt", "error"),
    "cell_done": ("label", "key", "ok", "cached"),
    "cache_hit": ("key",),
    "cache_miss": ("key",),
    "cache_store": ("key",),
    "worker_up": ("jobs",),
    "worker_down": (),
    "sweep_done": ("label", "completed", "failed", "cached"),
}

#: Envelope/payload fields that legitimately differ between serial and
#: parallel runs of the same sweep (ordering, wall-clock, worker
#: topology).  :func:`normalize_events` strips them.
VOLATILE_FIELDS = frozenset({"seq", "t", "seconds", "jobs", "chunksize",
                             "elapsed", "eta", "rate"})

#: Events that describe the execution transport, not the sweep's
#: outcome; they exist only on some paths (no workers come up for a
#: serial run) and are dropped by :func:`normalize_events`.
TRANSPORT_EVENTS = frozenset({"worker_up", "worker_down"})


def throughput(done: float, elapsed: float) -> Optional[float]:
    """Cells per second, or ``None`` when not yet measurable.

    Never raises and never divides by zero: degenerate inputs (nothing
    done yet, a clock that has not advanced, clock weirdness producing
    negative elapsed) all yield ``None`` rather than ``inf``/``nan``.
    """
    if done <= 0 or elapsed <= 0.0:
        return None
    rate = done / elapsed
    # Subnormal inputs can underflow the ratio to exactly 0.0 (or
    # overflow to inf); both are as unusable as a degenerate input.
    if rate <= 0.0 or not math.isfinite(rate):
        return None
    return rate


def eta_seconds(done: float, total: float,
                elapsed: float) -> Optional[float]:
    """Estimated seconds to completion, or ``None`` when unknowable.

    Defined only once at least one cell finished in measurable time;
    a finished (or over-complete) sweep reports 0.0.  Like
    :func:`throughput`, degenerate timings return ``None`` instead of
    raising.
    """
    if done >= total:
        return 0.0
    rate = throughput(done, elapsed)
    if rate is None or rate <= 0.0:
        return None
    return (total - done) / rate


def normalize_events(events: Sequence[dict]) -> List[dict]:
    """The order-normalized, wall-clock-free view of an event stream.

    Strips :data:`VOLATILE_FIELDS`, drops :data:`TRANSPORT_EVENTS`,
    and sorts the remainder canonically — two runs of the same sweep
    (serial vs parallel, hot vs cold host) normalize to the same list.
    """
    kept = []
    for event in events:
        if event.get("event") in TRANSPORT_EVENTS:
            continue
        kept.append({key: value for key, value in event.items()
                     if key not in VOLATILE_FIELDS})
    return sorted(kept, key=lambda ev: json.dumps(ev, sort_keys=True,
                                                  default=str))


def _cell_field(cell, name: str, default=None):
    """Read *name* from a cell description (object attr or dict key)."""
    if isinstance(cell, dict):
        return cell.get(name, default)
    return getattr(cell, name, default)


@dataclass
class CellTelemetry:
    """What the monitor learned about one cell of one sweep."""

    key: str
    workload: str = ""
    config: str = ""
    n_clusters: int = 0
    predictor: str = "none"
    steering: str = "baseline"
    length: int = 0
    seed: int = 0
    dataset: str = "test"
    overrides: tuple = ()
    sampling: Optional[dict] = None
    seconds: float = 0.0
    cached: bool = False
    stored: bool = False
    retries: int = 0
    ok: Optional[bool] = None

    @classmethod
    def from_cell(cls, cell) -> "CellTelemetry":
        """Describe a :class:`~repro.analysis.parallel.SweepCell` (or
        any duck-typed cell description) without importing it —
        telemetry stays below the analysis layer."""
        sampling = _cell_field(cell, "sampling")
        if sampling is not None and hasattr(sampling, "canonical_dict"):
            sampling = sampling.canonical_dict()
        return cls(
            key=str(_cell_field(cell, "key")),
            workload=str(_cell_field(cell, "workload", "")),
            config=str(_cell_field(cell, "config_label", "")),
            n_clusters=int(_cell_field(cell, "n_clusters", 0) or 0),
            predictor=str(_cell_field(cell, "predictor", "none")),
            steering=str(_cell_field(cell, "steering", "baseline")),
            length=int(_cell_field(cell, "length", 0) or 0),
            seed=int(_cell_field(cell, "seed", 0) or 0),
            dataset=str(_cell_field(cell, "dataset", "test")),
            overrides=tuple(_cell_field(cell, "overrides", ()) or ()),
            sampling=sampling)


@dataclass
class SweepTelemetry:
    """One sweep observed by a monitor (a monitor may observe many)."""

    label: str
    jobs: int
    chunksize: int
    cells: List[CellTelemetry] = field(default_factory=list)
    started_at: float = 0.0
    seconds: float = 0.0
    finished: bool = False

    @property
    def done(self) -> int:
        return sum(1 for cell in self.cells if cell.ok is not None)

    @property
    def completed(self) -> int:
        return sum(1 for cell in self.cells if cell.ok)

    @property
    def failed(self) -> int:
        return sum(1 for cell in self.cells if cell.ok is False)

    @property
    def cached(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def stored(self) -> int:
        return sum(1 for cell in self.cells if cell.stored)

    @property
    def simulated(self) -> int:
        """Cells that actually ran the simulator (not cache hits)."""
        return sum(1 for cell in self.cells
                   if cell.ok is not None and not cell.cached)


class _TelemetryWriter:
    """JSONL event sink with the crash-flush contract.

    Telemetry is low-rate (a handful of events per cell, not per
    cycle), so every event is written *and flushed* immediately — an
    interrupted sweep leaves every emitted event on disk.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self._handle.write(json.dumps({"schema": TELEMETRY_SCHEMA}) + "\n")
        self._handle.flush()
        self.written = 0

    def write(self, event: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(event, sort_keys=True, default=str)
                           + "\n")
        self._handle.flush()
        self.written += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class SweepMonitor:
    """Receives sweep run events; renders progress; remembers enough
    for a :class:`~repro.analysis.provenance.RunReceipt`.

    Args:
        progress: stream live progress lines (cells done, cells/s,
            ETA).  On a TTY the line is redrawn in place; otherwise one
            line per update.
        stream: where progress goes (default ``sys.stderr``).
        jsonl_path: mirror every event to this JSONL file (flushed per
            event; see :class:`_TelemetryWriter`).
        clock: injectable monotonic clock (tests freeze it).
    """

    def __init__(self, progress: bool = False,
                 stream: Optional[IO[str]] = None,
                 jsonl_path: Optional[str] = None,
                 clock=time.perf_counter) -> None:
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        self.events: List[dict] = []
        self.sweeps: List[SweepTelemetry] = []
        self._clock = clock
        self._origin = clock()
        self._writer = (_TelemetryWriter(jsonl_path)
                        if jsonl_path else None)
        self._seq = 0
        try:
            self._tty = bool(getattr(self.stream, "isatty",
                                     lambda: False)())
        except (OSError, ValueError):
            # A dead/closed stream: progress is best-effort, never fatal.
            self._tty = False
            self.progress = False
        self._line_len = 0

    # ------------------------------------------------------------ events --

    def emit(self, name: str, **payload) -> dict:
        """Record one typed event (envelope: ``event``/``seq``/``t``)."""
        self._seq += 1
        event = {"event": name, "seq": self._seq,
                 "t": round(self._clock() - self._origin, 6), **payload}
        self.events.append(event)
        if self._writer is not None:
            self._writer.write(event)
        return event

    @property
    def sweep(self) -> Optional[SweepTelemetry]:
        """The most recently started sweep, if any."""
        return self.sweeps[-1] if self.sweeps else None

    def sweep_start(self, label: str, cells: Sequence, jobs: int = 1,
                    chunksize: int = 1) -> SweepTelemetry:
        record = SweepTelemetry(
            label=label, jobs=jobs, chunksize=chunksize,
            cells=[CellTelemetry.from_cell(cell) for cell in cells],
            started_at=self._clock())
        self.sweeps.append(record)
        self.emit("sweep_start", label=label, cells=len(record.cells),
                  jobs=jobs, chunksize=chunksize)
        self._show_progress(record)
        return record

    def _cell(self, index: int) -> CellTelemetry:
        return self.sweeps[-1].cells[index]

    def cell_start(self, index: int) -> None:
        cell = self._cell(index)
        self.emit("cell_start", label=self.sweeps[-1].label, key=cell.key)

    def cell_retry(self, index: int, attempt: int, error: str) -> None:
        cell = self._cell(index)
        cell.retries += 1
        self.emit("cell_retry", label=self.sweeps[-1].label, key=cell.key,
                  attempt=attempt, error=error)

    def cell_done(self, index: int, seconds: float = 0.0, ok: bool = True,
                  cached: bool = False, stored: bool = False) -> None:
        record = self.sweeps[-1]
        cell = self._cell(index)
        cell.seconds = seconds
        cell.ok = bool(ok)
        cell.cached = cached
        if stored and not cell.stored:
            cell.stored = True
            self.emit("cache_store", key=cell.key)
        self.emit("cell_done", label=record.label, key=cell.key,
                  ok=bool(ok), cached=cached,
                  seconds=round(seconds, 6))
        self._show_progress(record)

    def cache_hit(self, key: str) -> None:
        self.emit("cache_hit", key=key)

    def cache_miss(self, key: str) -> None:
        self.emit("cache_miss", key=key)

    def cache_store(self, key: str) -> None:
        self.emit("cache_store", key=key)

    def worker_up(self, jobs: int) -> None:
        self.emit("worker_up", jobs=jobs)

    def worker_down(self) -> None:
        self.emit("worker_down")

    def sweep_done(self) -> Optional[SweepTelemetry]:
        """Close out the current sweep (idempotent; crash-safe).

        Called from the runner's ``finally`` block, so an interrupted
        sweep still gets its terminal event — with whatever counts the
        cells reached — and the JSONL sink is flushed.
        """
        record = self.sweep
        if record is None or record.finished:
            return record
        record.finished = True
        record.seconds = max(0.0, self._clock() - record.started_at)
        self.emit("sweep_done", label=record.label,
                  completed=record.completed, failed=record.failed,
                  cached=record.cached,
                  seconds=round(record.seconds, 6))
        self._finish_progress(record)
        self.flush()
        return record

    # ---------------------------------------------------------- progress --

    def _show_progress(self, record: SweepTelemetry) -> None:
        if not self.progress:
            return
        elapsed = max(0.0, self._clock() - record.started_at)
        total = len(record.cells)
        done = record.done
        parts = [f"[{record.label}] {done}/{total} cells"]
        if record.cached:
            parts.append(f"{record.cached} cached")
        rate = throughput(done, elapsed)
        if rate is not None:
            parts.append(f"{rate:.1f} cell/s")
        eta = eta_seconds(done, total, elapsed)
        if eta is not None:
            parts.append(f"eta {eta:.1f}s")
        self._write_line(" | ".join(parts), final=False)

    def _finish_progress(self, record: SweepTelemetry) -> None:
        if not self.progress:
            return
        line = (f"[{record.label}] done: {len(record.cells)} cells "
                f"({record.completed} ok, {record.failed} failed, "
                f"{record.cached} cached) in {record.seconds:.2f}s")
        self._write_line(line, final=True)

    def _write_line(self, line: str, final: bool) -> None:
        try:
            if self._tty:
                pad = " " * max(0, self._line_len - len(line))
                self.stream.write("\r" + line + pad)
                if final:
                    self.stream.write("\n")
                self._line_len = len(line)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            self.progress = False  # dead stream: stop trying

    # ----------------------------------------------------------- plumbing --

    def flush(self) -> None:
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        """Flush and release the JSONL sink (idempotent)."""
        if self._writer is not None:
            self._writer.close()

    def __enter__(self) -> "SweepMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ------------------------------------------------------- ambient wiring --

_ACTIVE: List[Optional[SweepMonitor]] = []


@contextmanager
def use_monitor(monitor: Optional[SweepMonitor]):
    """Make *monitor* the ambient sweep monitor inside the block.

    ``use_monitor(None)`` explicitly silences telemetry in the block
    (shadowing any outer monitor) — benchmarks use this around timed
    baseline runs.
    """
    _ACTIVE.append(monitor)
    try:
        yield monitor
    finally:
        _ACTIVE.pop()


def active_monitor() -> Optional[SweepMonitor]:
    """The innermost :func:`use_monitor` monitor, if any."""
    return _ACTIVE[-1] if _ACTIVE else None

"""The structured event tracer the timing core emits into.

A :class:`EventTracer` wraps one sink (see :mod:`repro.obs.sinks`) and
exposes one method per event type; the :class:`~repro.core.processor.
Processor` calls them from its pipeline hook points when (and only
when) a tracer is installed — with no tracer, every hook is a single
``is not None`` test, so the untraced simulation is unperturbed and
its committed stream and statistics are bit-identical to a build
without the hooks.

The tracer also guarantees a *post-mortem window*: :meth:`recent`
returns the trailing events for deadlock snapshots (see
``docs/ROBUSTNESS.md``).  Sinks that retain events in memory serve the
window directly; streaming sinks (JSONL, Chrome trace) get a small
internal ring so post-mortems work in every mode.
"""

from __future__ import annotations

from typing import List

from .events import (EV_BUS, EV_COMMIT, EV_COMPLETE, EV_COPY_SEND,
                     EV_DISPATCH, EV_FETCH, EV_ISSUE, EV_SQUASH, EV_STEER,
                     EV_VCOPY_VERIFY, event_to_dict)
from .sinks import RingBufferSink

__all__ = ["EventTracer", "POSTMORTEM_WINDOW"]

#: Trailing events kept for deadlock post-mortems when the sink itself
#: cannot serve a tail (streaming sinks).
POSTMORTEM_WINDOW = 64


class EventTracer:
    """Emit typed pipeline events into *sink*.

    Args:
        sink: any object with ``append(event_tuple)`` — usually one of
            :mod:`repro.obs.sinks`.  Defaults to a fresh
            :class:`~repro.obs.sinks.RingBufferSink`.
    """

    __slots__ = ("sink", "emit", "_tail", "counts")

    def __init__(self, sink=None) -> None:
        if sink is None:
            sink = RingBufferSink()
        self.sink = sink
        #: Events emitted per event code (cheap completeness ledger —
        #: bounded sinks drop old events, the counts never lie).
        self.counts = [0] * 10
        if hasattr(sink, "tail"):
            # In-memory sink: it serves the post-mortem window itself
            # and ``emit`` is the sink's own bound append — no
            # indirection at all on the hot path.
            self._tail = sink
            self.emit = sink.append
        else:
            # Streaming sink: tee into a small internal ring so
            # post-mortems work in every mode.  The closure costs one
            # extra call per event, acceptable next to serialization.
            ring = RingBufferSink(POSTMORTEM_WINDOW)
            self._tail = ring
            sink_append = sink.append
            ring_append = ring.append

            def tee(event: tuple) -> None:
                sink_append(event)
                ring_append(event)
            self.emit = tee

    # -- emission (one method per event type; see obs.events) -----------------
    # These typed methods are the readable API; the *timing core*
    # bypasses them and uses ``counts[...] += 1`` + ``emit(tuple)``
    # directly (a bound C append, ~10x cheaper than a Python method
    # call per event — tracing several events per instruction, the
    # difference is the whole overhead budget).  Both paths produce
    # identical event tuples; keep them in sync with
    # :data:`repro.obs.events.EVENT_FIELDS`.

    def fetch(self, cycle: int, seq: int, pc: int) -> None:
        self.counts[EV_FETCH] += 1
        self.emit((cycle, EV_FETCH, seq, pc))

    def steer(self, cycle: int, seq: int, cluster: int,
              reason: str) -> None:
        self.counts[EV_STEER] += 1
        self.emit((cycle, EV_STEER, seq, cluster, reason))

    def dispatch(self, cycle: int, order: int, kind: int, seq: int,
                 pc: int, cluster: int, op: str, fetch_cycle: int) -> None:
        self.counts[EV_DISPATCH] += 1
        self.emit((cycle, EV_DISPATCH, order, kind, seq, pc, cluster,
                   op, fetch_cycle))

    def issue(self, cycle: int, order: int, kind: int, cluster: int,
              reissue: int) -> None:
        self.counts[EV_ISSUE] += 1
        self.emit((cycle, EV_ISSUE, order, kind, cluster, reissue))

    def copy_send(self, cycle: int, order: int, src_cluster: int,
                  dest_cluster: int, arrival: int) -> None:
        self.counts[EV_COPY_SEND] += 1
        self.emit((cycle, EV_COPY_SEND, order, src_cluster,
                   dest_cluster, arrival))

    def vcopy_verify(self, cycle: int, order: int, cluster: int,
                     hit: bool) -> None:
        self.counts[EV_VCOPY_VERIFY] += 1
        self.emit((cycle, EV_VCOPY_VERIFY, order, cluster, hit))

    def bus(self, cycle: int, dest_cluster: int) -> None:
        self.counts[EV_BUS] += 1
        self.emit((cycle, EV_BUS, dest_cluster, cycle))

    def complete(self, cycle: int, order: int, kind: int,
                 cluster: int) -> None:
        self.counts[EV_COMPLETE] += 1
        self.emit((cycle, EV_COMPLETE, order, kind, cluster))

    def commit(self, cycle: int, order: int, kind: int, seq: int,
               cluster: int) -> None:
        self.counts[EV_COMMIT] += 1
        self.emit((cycle, EV_COMMIT, order, kind, seq, cluster))

    def squash(self, cycle: int, order: int, kind: int, cluster: int,
               generation: int) -> None:
        self.counts[EV_SQUASH] += 1
        self.emit((cycle, EV_SQUASH, order, kind, cluster, generation))

    # -- post-mortem / lifecycle ----------------------------------------------

    @property
    def total_events(self) -> int:
        return sum(self.counts)

    def recent(self, k: int = POSTMORTEM_WINDOW) -> List[dict]:
        """The trailing *k* events as dicts (deadlock snapshots)."""
        return [event_to_dict(event) for event in self._tail.tail(k)]

    def close(self) -> None:
        """Close the underlying sink (flushes file-backed output)."""
        self.sink.close()

    def __enter__(self) -> "EventTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Event sinks: where a tracer's event stream goes.

Four shapes, trading memory, fidelity and cost:

* :class:`ListSink` — unbounded in-memory list; full fidelity, used by
  the timeline view and by tests.
* :class:`RingBufferSink` — bounded deque keeping the trailing window;
  the cheapest enabled mode (one append per event, old events
  overwritten), suited for always-on post-mortem capture.
* :class:`JsonlSink` — one JSON object per line, streamed to a file;
  line 1 is a schema header.  Full fidelity on disk; the most
  expensive mode (a dict plus a serialization per event).
* :class:`ChromeTraceSink` — Chrome trace-event / Perfetto JSON.  Uop
  lifecycles (dispatch -> commit) become duration slices on one track
  per cluster; everything else becomes instant events.  Load the
  written file in https://ui.perfetto.dev or ``chrome://tracing``.

:class:`TeeSink` fans one stream out to several sinks.  All sinks
accept raw event tuples (see :mod:`repro.obs.events`) via ``append``
and must be ``close()``d to flush file-backed output (they are also
context managers).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional

from .events import (EV_COMMIT, EV_DISPATCH, EVENT_NAMES, KIND_NAMES,
                     event_to_dict)

__all__ = ["ListSink", "RingBufferSink", "JsonlSink", "ChromeTraceSink",
           "TeeSink", "JSONL_SCHEMA"]

#: Schema tag written as the first line of every JSONL trace.
JSONL_SCHEMA = "repro-trace-v1"


class _BaseSink:
    """Common context-manager plumbing."""

    def append(self, event: tuple) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ListSink(_BaseSink):
    """Keep every event in memory, in emission order."""

    def __init__(self) -> None:
        self.events: List[tuple] = []
        self.append = self.events.append  # hot path: direct bound method

    def tail(self, k: int) -> List[tuple]:
        """The trailing *k* events."""
        return self.events[-k:] if k else []

    def to_dicts(self) -> List[dict]:
        return [event_to_dict(event) for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


class RingBufferSink(_BaseSink):
    """Keep only the trailing *capacity* events (bounded memory)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.append = self.events.append
        #: Total events ever appended (survives overwrites).
        # deque drops silently, so completeness is tracked by the
        # tracer's own per-type counters, not here.

    def tail(self, k: int) -> List[tuple]:
        """The trailing *k* retained events."""
        if k <= 0:
            return []
        events = self.events
        if k >= len(events):
            return list(events)
        return list(events)[-k:]

    def to_dicts(self) -> List[dict]:
        return [event_to_dict(event) for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(_BaseSink):
    """Stream events to *path* as JSON Lines.

    The first line is a header record ``{"schema": "repro-trace-v1",
    "config": ...}``; every following line is one event dict.  Writes
    are buffered in blocks of *flush_every* events.
    """

    def __init__(self, path: str, config_label: str = "",
                 flush_every: int = 1024) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self._buffer: List[str] = []
        self._flush_every = max(1, flush_every)
        self.written = 0
        header = {"schema": JSONL_SCHEMA, "config": config_label}
        self._handle.write(json.dumps(header) + "\n")

    def append(self, event: tuple) -> None:
        self._buffer.append(json.dumps(event_to_dict(event)))
        if len(self._buffer) >= self._flush_every:
            self._drain()

    def _drain(self) -> None:
        if self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self.written += len(self._buffer)
            self._buffer.clear()

    def close(self) -> None:
        if self._handle is not None:
            self._drain()
            self._handle.close()
            self._handle = None


class ChromeTraceSink(_BaseSink):
    """Accumulate a Chrome trace-event JSON file (Perfetto-loadable).

    Mapping:

    * every committed uop becomes a complete ("X") slice named after
      its opcode (copies: ``[copy]`` / ``[vcopy]``), from dispatch to
      commit, on the track (``tid``) of its execution cluster;
    * every event — including each ``commit`` — additionally becomes an
      instant ("i") event, so counting ``{"name": "commit"}`` instants
      recovers the exact retirement count;
    * cluster tracks get ``thread_name`` metadata; front-end events
      (fetch/steer) live on the synthetic track
      :data:`FRONTEND_TID`.

    Timestamps are simulation cycles interpreted as microseconds.
    """

    FRONTEND_TID = 99

    def __init__(self, path: Optional[str] = None,
                 config_label: str = "") -> None:
        self.path = path
        self.config_label = config_label
        self.trace_events: List[dict] = []
        self._open_slices: Dict[int, tuple] = {}  # order -> (ts, name, tid)
        self._closed = False

    def append(self, event: tuple) -> None:
        cycle, code = event[0], event[1]
        args = event[2:]
        record = event_to_dict(event)
        name = EVENT_NAMES[code]
        tid = record.get("cluster", record.get("dest_cluster",
                                               self.FRONTEND_TID))
        if tid is None:
            tid = self.FRONTEND_TID
        self.trace_events.append({
            "name": name, "ph": "i", "ts": cycle, "pid": 0, "tid": tid,
            "s": "t", "args": record})
        if code == EV_DISPATCH:
            order, kind = args[0], args[1]
            label = args[5] if kind == 0 else f"[{KIND_NAMES[kind]}]"
            self._open_slices[order] = (cycle, label, args[4])
        elif code == EV_COMMIT:
            order = args[0]
            opened = self._open_slices.pop(order, None)
            if opened is not None:
                start, label, tid = opened
                self.trace_events.append({
                    "name": label, "ph": "X", "ts": start,
                    "dur": max(1, cycle - start), "pid": 0, "tid": tid,
                    "args": {"order": order, "commit_cycle": cycle}})

    def to_object(self) -> dict:
        """The complete trace as a JSON-serializable object."""
        tids = sorted({ev["tid"] for ev in self.trace_events})
        metadata = [{"name": "process_name", "ph": "M", "pid": 0,
                     "args": {"name": f"repro-sim {self.config_label}"
                              .strip()}}]
        for tid in tids:
            label = ("frontend" if tid == self.FRONTEND_TID
                     else f"cluster {tid}")
            metadata.append({"name": "thread_name", "ph": "M", "pid": 0,
                             "tid": tid, "args": {"name": label}})
        return {"traceEvents": metadata + self.trace_events,
                "displayTimeUnit": "ms",
                "otherData": {"schema": "repro-chrome-trace-v1",
                              "config": self.config_label}}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.path is not None:
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump(self.to_object(), handle)
                handle.write("\n")


class TeeSink(_BaseSink):
    """Replicate every event into each of *sinks*."""

    def __init__(self, *sinks) -> None:
        self.sinks = sinks
        appends = [sink.append for sink in sinks]

        def _append(event, _appends=tuple(appends)):
            for append in _appends:
                append(event)
        self.append = _append

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

"""Host-side phase profiler: where the *simulator's* wall-clock goes.

The simulated machine's bottlenecks live in :class:`SimStats`; this
profiler answers the other question — which stage of the Python timing
loop burns the host CPU — so perf work targets the real hot path
instead of folklore.  The processor's run loop, when a profiler is
installed, brackets each pipeline stage with ``perf_counter`` reads
and attributes the elapsed time to one of the phases:

``events``   writeback/verification event processing + store-data drain
``commit``   in-order retirement + watchdog accounting
``issue``    per-cluster wakeup/select and NREADY metering
``decode``   value prediction, steering, rename, dispatch
``fetch``    front-end buffer refill
``other``    per-cycle bookkeeping (FU pool reset, pruning, sampling)

With no profiler installed the run loop contains no timing calls at
all — the disabled path costs nothing.
"""

from __future__ import annotations

import time
from typing import Dict

__all__ = ["PhaseProfiler", "PHASES"]

PHASES = ("events", "commit", "issue", "decode", "fetch", "other")


class PhaseProfiler:
    """Accumulates wall-clock seconds per simulator loop phase."""

    __slots__ = ("seconds", "cycles", "total_seconds", "clock")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        self.cycles = 0
        self.total_seconds = 0.0
        self.clock = time.perf_counter

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] += seconds

    def note_cycle(self) -> None:
        self.cycles += 1

    @property
    def attributed_seconds(self) -> float:
        """Sum over phases (excludes loop overhead outside brackets)."""
        return sum(self.seconds.values())

    def to_dict(self) -> dict:
        """JSON-ready profile (phase seconds, shares, throughput)."""
        attributed = self.attributed_seconds
        return {
            "phases": {phase: round(value, 6)
                       for phase, value in self.seconds.items()},
            "shares": {phase: (round(value / attributed, 4)
                               if attributed else 0.0)
                       for phase, value in self.seconds.items()},
            "attributed_seconds": round(attributed, 6),
            "total_seconds": round(self.total_seconds, 6),
            "cycles": self.cycles,
            "cycles_per_second": (round(self.cycles / self.total_seconds, 1)
                                  if self.total_seconds else 0.0),
        }

    def report(self) -> str:
        """Human-readable phase table."""
        attributed = self.attributed_seconds or 1.0
        lines = [f"{'phase':<8} {'seconds':>9} {'share':>7}"]
        for phase in PHASES:
            value = self.seconds[phase]
            lines.append(f"{phase:<8} {value:9.4f} "
                         f"{value / attributed:6.1%}")
        lines.append(f"{'total':<8} {self.total_seconds:9.4f} "
                     f"({self.cycles} cycles)")
        return "\n".join(lines)

"""Trace/telemetry/receipt schema validation (``make obs-check``,
``make telemetry-check`` and tests).

Four on-disk formats exist: the per-cycle pipeline trace formats (see
:mod:`repro.obs.sinks`), the sweep telemetry JSONL stream (see
:mod:`repro.obs.telemetry`) and the per-run provenance receipt (see
:mod:`repro.analysis.provenance`).  Every validator parses the whole
artifact, checks structural invariants, and returns a count — raising
:class:`TraceSchemaError` with a precise complaint otherwise.
"""

from __future__ import annotations

import json
from typing import Set

from .events import EVENT_FIELDS, EVENT_NAMES
from .sinks import JSONL_SCHEMA
from .telemetry import TELEMETRY_EVENTS, TELEMETRY_SCHEMA

__all__ = ["RECEIPT_SCHEMA", "TraceSchemaError", "validate_jsonl_trace",
           "validate_chrome_trace", "validate_receipt",
           "validate_telemetry_jsonl"]

#: Schema tag carried by every run receipt
#: (:class:`repro.analysis.provenance.RunReceipt`).
RECEIPT_SCHEMA = "repro-receipt-v1"

_KNOWN_EVENTS: Set[str] = set(EVENT_NAMES)
_REQUIRED_FIELDS = {name: set(fields)
                    for name, fields in zip(EVENT_NAMES, EVENT_FIELDS)}


class TraceSchemaError(ValueError):
    """A trace file violates its declared schema."""


def validate_jsonl_trace(path: str) -> int:
    """Validate a JSONL trace; returns the number of event records."""
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not valid JSON: {error}") from None
            if lineno == 1:
                if record.get("schema") != JSONL_SCHEMA:
                    raise TraceSchemaError(
                        f"{path}:1: missing/unknown schema header, "
                        f"expected {JSONL_SCHEMA!r}, got {record!r}")
                continue
            name = record.get("event")
            if name not in _KNOWN_EVENTS:
                raise TraceSchemaError(
                    f"{path}:{lineno}: unknown event {name!r}")
            if not isinstance(record.get("cycle"), int):
                raise TraceSchemaError(
                    f"{path}:{lineno}: event missing integer 'cycle'")
            missing = _REQUIRED_FIELDS[name] - set(record)
            if missing:
                raise TraceSchemaError(
                    f"{path}:{lineno}: {name} event missing fields "
                    f"{sorted(missing)}")
            count += 1
    if count == 0:
        raise TraceSchemaError(f"{path}: no event records")
    return count


def validate_chrome_trace(path: str) -> int:
    """Validate a Chrome trace-event file; returns the event count.

    Accepts the object form (``{"traceEvents": [...]}``) the sink
    writes, or a bare event array — both load in Perfetto and
    ``chrome://tracing``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            obj = json.load(handle)
        except json.JSONDecodeError as error:
            raise TraceSchemaError(f"{path}: not valid JSON: "
                                   f"{error}") from None
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            raise TraceSchemaError(
                f"{path}: object form must carry a 'traceEvents' list")
    elif isinstance(obj, list):
        events = obj
    else:
        raise TraceSchemaError(f"{path}: top level must be an object or "
                               f"array, got {type(obj).__name__}")
    if not events:
        raise TraceSchemaError(f"{path}: empty trace")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceSchemaError(f"{path}: traceEvents[{index}] is not "
                                   f"an object")
        ph = event.get("ph")
        if not isinstance(event.get("name"), str) or ph is None:
            raise TraceSchemaError(
                f"{path}: traceEvents[{index}] missing 'name'/'ph'")
        if ph == "M":
            continue  # metadata events carry no timestamp
        if not isinstance(event.get("ts"), (int, float)):
            raise TraceSchemaError(
                f"{path}: traceEvents[{index}] ({event['name']!r}) "
                f"missing numeric 'ts'")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            raise TraceSchemaError(
                f"{path}: traceEvents[{index}] duration slice missing "
                f"'dur'")
    return len(events)


def validate_telemetry_jsonl(path: str) -> int:
    """Validate a sweep telemetry JSONL file; returns the event count.

    Line 1 must be the :data:`~repro.obs.telemetry.TELEMETRY_SCHEMA`
    header; every following line is one typed run event whose payload
    carries the fields :data:`~repro.obs.telemetry.TELEMETRY_EVENTS`
    declares, with a strictly increasing ``seq`` and a numeric ``t``.
    A partially written file (crash-flush) still validates — only the
    lines that made it to disk are checked.
    """
    count = 0
    last_seq = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not valid JSON: {error}") from None
            if lineno == 1:
                if record.get("schema") != TELEMETRY_SCHEMA:
                    raise TraceSchemaError(
                        f"{path}:1: missing/unknown schema header, "
                        f"expected {TELEMETRY_SCHEMA!r}, got {record!r}")
                continue
            name = record.get("event")
            if name not in TELEMETRY_EVENTS:
                raise TraceSchemaError(
                    f"{path}:{lineno}: unknown telemetry event {name!r}")
            seq = record.get("seq")
            if not isinstance(seq, int) or seq <= last_seq:
                raise TraceSchemaError(
                    f"{path}:{lineno}: 'seq' must be a strictly "
                    f"increasing integer, got {seq!r} after {last_seq}")
            last_seq = seq
            if not isinstance(record.get("t"), (int, float)):
                raise TraceSchemaError(
                    f"{path}:{lineno}: event missing numeric 't'")
            missing = set(TELEMETRY_EVENTS[name]) - set(record)
            if missing:
                raise TraceSchemaError(
                    f"{path}:{lineno}: {name} event missing fields "
                    f"{sorted(missing)}")
            count += 1
    if count == 0:
        raise TraceSchemaError(f"{path}: no telemetry events")
    return count


#: Required receipt sections -> the fields each must carry.
_RECEIPT_SECTIONS = {
    "host": ("platform", "python", "cpu_count"),
    "run": ("jobs", "chunksize", "total_seconds"),
    "cache": ("enabled", "hits", "misses", "stores"),
    "counts": ("cells", "completed", "failed", "simulated"),
}

_RECEIPT_CELL_FIELDS = ("key", "workload", "config", "config_sha256",
                        "seed", "length", "sampling", "seconds", "cached",
                        "ok")

#: A non-null cell ``sampling`` block must carry these fields
#: (:meth:`repro.analysis.sampling.SamplingConfig.canonical_dict`).
_SAMPLING_FIELDS = ("interval", "warmup", "samples", "targets",
                    "warm_predictors")


def _check_cell_sampling(source: str, index: int, sampling) -> None:
    """A cell's sampling block is null (exact run) or a coherent plan."""
    if sampling is None:
        return
    if not isinstance(sampling, dict):
        raise TraceSchemaError(
            f"{source}: cells[{index}].sampling must be null or an "
            f"object, got {type(sampling).__name__}")
    missing = set(_SAMPLING_FIELDS) - set(sampling)
    if missing:
        raise TraceSchemaError(
            f"{source}: cells[{index}].sampling missing fields "
            f"{sorted(missing)}")
    interval, warmup = sampling["interval"], sampling["warmup"]
    if not isinstance(interval, int) or not isinstance(warmup, int) \
            or not 0 <= warmup < interval:
        raise TraceSchemaError(
            f"{source}: cells[{index}].sampling needs integer "
            f"interval > warmup >= 0, got interval={interval!r} "
            f"warmup={warmup!r}")
    if (sampling["samples"] is None) == (sampling["targets"] is None):
        raise TraceSchemaError(
            f"{source}: cells[{index}].sampling must set exactly one "
            f"of samples/targets")


def validate_receipt(receipt) -> int:
    """Validate a run receipt (dict, or path to one); returns its cell
    count.

    Beyond shape, the internal accounting must be consistent:
    ``completed + failed == cells``, and — when the result cache was
    enabled — ``cache.hits + counts.simulated == counts.cells`` with
    ``cache.misses == counts.simulated``, i.e. the receipt's cache
    counters must match the number of simulate calls the sweep
    actually made.
    """
    source = "<receipt>"
    if not isinstance(receipt, dict):
        source = str(receipt)
        with open(receipt, "r", encoding="utf-8") as handle:
            try:
                receipt = json.load(handle)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(
                    f"{source}: not valid JSON: {error}") from None
    if receipt.get("schema") != RECEIPT_SCHEMA:
        raise TraceSchemaError(
            f"{source}: missing/unknown schema tag, expected "
            f"{RECEIPT_SCHEMA!r}, got {receipt.get('schema')!r}")
    for key in ("label", "created_utc", "code_version"):
        if not isinstance(receipt.get(key), str):
            raise TraceSchemaError(f"{source}: missing string {key!r}")
    if "commit" not in receipt:
        raise TraceSchemaError(f"{source}: missing 'commit' (may be null)")
    for section, fields in _RECEIPT_SECTIONS.items():
        block = receipt.get(section)
        if not isinstance(block, dict):
            raise TraceSchemaError(f"{source}: missing section "
                                   f"{section!r}")
        missing = set(fields) - set(block)
        if missing:
            raise TraceSchemaError(
                f"{source}: section {section!r} missing fields "
                f"{sorted(missing)}")
    cells = receipt.get("cells")
    if not isinstance(cells, list):
        raise TraceSchemaError(f"{source}: missing 'cells' list")
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            raise TraceSchemaError(f"{source}: cells[{index}] is not an "
                                   f"object")
        missing = set(_RECEIPT_CELL_FIELDS) - set(cell)
        if missing:
            raise TraceSchemaError(
                f"{source}: cells[{index}] missing fields "
                f"{sorted(missing)}")
        _check_cell_sampling(source, index, cell.get("sampling"))
    counts = receipt["counts"]
    cache = receipt["cache"]
    if counts["cells"] != len(cells):
        raise TraceSchemaError(
            f"{source}: counts.cells={counts['cells']} but "
            f"{len(cells)} cell records")
    if counts["completed"] + counts["failed"] != counts["cells"]:
        raise TraceSchemaError(
            f"{source}: completed+failed != cells "
            f"({counts['completed']}+{counts['failed']} != "
            f"{counts['cells']})")
    if cache["enabled"]:
        if cache["hits"] + counts["simulated"] != counts["cells"]:
            raise TraceSchemaError(
                f"{source}: cache.hits + simulated != cells "
                f"({cache['hits']}+{counts['simulated']} != "
                f"{counts['cells']})")
        if cache["misses"] != counts["simulated"]:
            raise TraceSchemaError(
                f"{source}: cache.misses={cache['misses']} but "
                f"{counts['simulated']} cells simulated")
    return len(cells)

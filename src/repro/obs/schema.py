"""Trace-file schema validation (used by ``make obs-check`` and tests).

Two on-disk formats exist (see :mod:`repro.obs.sinks`); both
validators parse the whole file, check structural invariants, and
return the event count — raising :class:`TraceSchemaError` with a
precise complaint otherwise.
"""

from __future__ import annotations

import json
from typing import Set

from .events import EVENT_FIELDS, EVENT_NAMES
from .sinks import JSONL_SCHEMA

__all__ = ["TraceSchemaError", "validate_jsonl_trace",
           "validate_chrome_trace"]

_KNOWN_EVENTS: Set[str] = set(EVENT_NAMES)
_REQUIRED_FIELDS = {name: set(fields)
                    for name, fields in zip(EVENT_NAMES, EVENT_FIELDS)}


class TraceSchemaError(ValueError):
    """A trace file violates its declared schema."""


def validate_jsonl_trace(path: str) -> int:
    """Validate a JSONL trace; returns the number of event records."""
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not valid JSON: {error}") from None
            if lineno == 1:
                if record.get("schema") != JSONL_SCHEMA:
                    raise TraceSchemaError(
                        f"{path}:1: missing/unknown schema header, "
                        f"expected {JSONL_SCHEMA!r}, got {record!r}")
                continue
            name = record.get("event")
            if name not in _KNOWN_EVENTS:
                raise TraceSchemaError(
                    f"{path}:{lineno}: unknown event {name!r}")
            if not isinstance(record.get("cycle"), int):
                raise TraceSchemaError(
                    f"{path}:{lineno}: event missing integer 'cycle'")
            missing = _REQUIRED_FIELDS[name] - set(record)
            if missing:
                raise TraceSchemaError(
                    f"{path}:{lineno}: {name} event missing fields "
                    f"{sorted(missing)}")
            count += 1
    if count == 0:
        raise TraceSchemaError(f"{path}: no event records")
    return count


def validate_chrome_trace(path: str) -> int:
    """Validate a Chrome trace-event file; returns the event count.

    Accepts the object form (``{"traceEvents": [...]}``) the sink
    writes, or a bare event array — both load in Perfetto and
    ``chrome://tracing``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            obj = json.load(handle)
        except json.JSONDecodeError as error:
            raise TraceSchemaError(f"{path}: not valid JSON: "
                                   f"{error}") from None
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            raise TraceSchemaError(
                f"{path}: object form must carry a 'traceEvents' list")
    elif isinstance(obj, list):
        events = obj
    else:
        raise TraceSchemaError(f"{path}: top level must be an object or "
                               f"array, got {type(obj).__name__}")
    if not events:
        raise TraceSchemaError(f"{path}: empty trace")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceSchemaError(f"{path}: traceEvents[{index}] is not "
                                   f"an object")
        ph = event.get("ph")
        if not isinstance(event.get("name"), str) or ph is None:
            raise TraceSchemaError(
                f"{path}: traceEvents[{index}] missing 'name'/'ph'")
        if ph == "M":
            continue  # metadata events carry no timestamp
        if not isinstance(event.get("ts"), (int, float)):
            raise TraceSchemaError(
                f"{path}: traceEvents[{index}] ({event['name']!r}) "
                f"missing numeric 'ts'")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            raise TraceSchemaError(
                f"{path}: traceEvents[{index}] duration slice missing "
                f"'dur'")
    return len(events)

"""A small text assembler for µRISC.

Accepts the obvious one-instruction-per-line syntax::

    .data  src   1 2 3 4 5 6 7 8
    .zeros dst   8

            la   r1, src
            li   r2, 0
    loop:   lw   r3, r1, 0
            addi r1, r1, 4
            addi r2, r2, 1
            blt  r2, r4, loop
            halt

Commas are optional, ``#`` starts a comment, labels end with ``:`` and may
share a line with an instruction.  Data directives must precede their use.
This exists for tests and for users who prefer files over the builder API;
the workload suite uses :class:`~repro.isa.program.ProgramBuilder` directly.
"""

from __future__ import annotations

from typing import List

from .opcodes import opinfo
from .program import Program, ProgramBuilder, ProgramError

__all__ = ["assemble", "AssemblerError"]


class AssemblerError(ProgramError):
    """Raised on malformed assembly text, with the line number."""


def _tokenize(line: str) -> List[str]:
    code = line.split("#", 1)[0]
    return code.replace(",", " ").split()


def _parse_number(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {lineno}: expected a number, "
                             f"got {token!r}") from None


def assemble(text: str) -> Program:
    """Assemble µRISC source text into a :class:`Program`."""
    builder = ProgramBuilder()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        tokens = _tokenize(raw)
        if not tokens:
            continue
        if tokens[0] == ".data":
            if len(tokens) < 3:
                raise AssemblerError(
                    f"line {lineno}: .data needs a name and values")
            builder.data(tokens[1],
                         [_parse_number(t, lineno) for t in tokens[2:]])
            continue
        if tokens[0] == ".zeros":
            if len(tokens) != 3:
                raise AssemblerError(
                    f"line {lineno}: .zeros needs a name and a count")
            builder.zeros(tokens[1], _parse_number(tokens[2], lineno))
            continue
        while tokens and tokens[0].endswith(":"):
            label = tokens.pop(0)[:-1]
            if not label:
                raise AssemblerError(f"line {lineno}: empty label")
            try:
                builder.label(label)
            except ProgramError as exc:
                raise AssemblerError(f"line {lineno}: {exc}") from None
        if not tokens:
            continue
        op_name, raw_operands = tokens[0], tokens[1:]
        try:
            op = opinfo(op_name)
        except KeyError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from None
        operands = []
        for kind, token in zip(op.signature, raw_operands):
            if kind == "I":
                operands.append(_parse_number(token, lineno))
            elif kind == "A" and (token.lstrip("-").isdigit()
                                  or token.startswith("0x")):
                operands.append(_parse_number(token, lineno))
            else:
                operands.append(token)
        try:
            builder.emit(op_name, *operands)
        except ProgramError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from None
    try:
        return builder.build()
    except ProgramError as exc:
        raise AssemblerError(str(exc)) from None

"""Program representation and the label-based program builder.

Workloads are authored through :class:`ProgramBuilder`::

    b = ProgramBuilder()
    src = b.data("src", range(64))
    b.emit("la", "r1", "src")
    b.emit("li", "r2", 0)
    b.label("loop")
    b.emit("lw", "r3", "r1", 0)
    b.emit("add", "r4", "r4", "r3")
    b.emit("addi", "r1", "r1", 4)
    b.emit("addi", "r2", "r2", 1)
    b.emit("blt", "r2", "r5", "loop")
    b.emit("halt")
    program = b.build()

``build()`` resolves code labels to PCs and data labels to addresses and
returns an immutable :class:`Program` ready for the functional executor.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .instruction import Instruction
from .memory_image import MemoryImage
from .opcodes import OpInfo, opinfo
from .registers import is_fp_reg, is_int_reg, reg_id

__all__ = ["Program", "ProgramBuilder", "ProgramError"]

#: Size of one encoded instruction, used for PC arithmetic and the I-cache.
INSTRUCTION_BYTES = 4

#: Base address of the code segment.
CODE_BASE = 0x1000


class ProgramError(ValueError):
    """Raised for malformed programs (bad operands, unresolved labels...)."""


# Register-bank expectations per opcode, for the register slots of the
# signature in order (dest first when present).  'i' = integer bank,
# 'f' = fp bank.  Opcodes absent from this table use the default derived
# from their operation class (fp classes -> all 'f', else all 'i').
_BANK_OVERRIDES: Dict[str, str] = {
    "flw": "fi",    # dest fp, base address integer
    "fsw": "fi",    # stored value fp, base address integer
    "feq": "iff",   # integer 0/1 result from fp compare
    "flt": "iff",
    "fle": "iff",
    "cvtif": "fi",  # int -> fp
    "cvtfi": "if",  # fp -> int
}


def _expected_banks(op: OpInfo) -> str:
    override = _BANK_OVERRIDES.get(op.name)
    if override is not None:
        return override
    n_regs = sum(1 for kind in op.signature if kind in ("R", "S"))
    from .opcodes import FP_CLASSES
    return ("f" if op.opclass in FP_CLASSES else "i") * n_regs


class Program:
    """An immutable assembled program.

    Attributes:
        instructions: static instructions in code order.
        memory: initialized functional data memory.
        labels: code label -> PC.
        data_labels: data label -> address.
        code_base: PC of the first instruction.
    """

    def __init__(self, instructions: List[Instruction], memory: MemoryImage,
                 labels: Dict[str, int], data_labels: Dict[str, int]) -> None:
        self.instructions = instructions
        self.memory = memory
        self.labels = dict(labels)
        self.data_labels = dict(data_labels)
        self.code_base = CODE_BASE
        self._by_pc = {inst.pc: inst for inst in instructions}

    def at(self, pc: int) -> Instruction:
        """Instruction at address *pc* (raises ``KeyError`` if none)."""
        return self._by_pc[pc]

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def static_size(self) -> int:
        """Number of static instructions."""
        return len(self.instructions)


class ProgramBuilder:
    """Incrementally builds a :class:`Program` (see module docstring)."""

    def __init__(self) -> None:
        self._lines: List[Tuple[str, tuple]] = []
        self._labels: Dict[str, int] = {}        # label -> instruction index
        self._memory = MemoryImage()
        self._data_labels: Dict[str, int] = {}

    # -- data segment ---------------------------------------------------------

    def data(self, name: str, values: Iterable, elem_size: int = 4) -> int:
        """Allocate an initialized array; returns (and records) its address."""
        if name in self._data_labels:
            raise ProgramError(f"duplicate data label {name!r}")
        addr = self._memory.alloc_words(values, elem_size=elem_size)
        self._data_labels[name] = addr
        return addr

    def zeros(self, name: str, count: int, elem_size: int = 4) -> int:
        """Allocate a zero-initialized array of *count* elements."""
        return self.data(name, [0] * count, elem_size=elem_size)

    def data_address(self, name: str) -> int:
        """Address of a previously allocated data label."""
        try:
            return self._data_labels[name]
        except KeyError:
            raise ProgramError(f"unknown data label {name!r}") from None

    # -- code segment -----------------------------------------------------------

    def label(self, name: str) -> None:
        """Attach a code label to the next emitted instruction."""
        if name in self._labels:
            raise ProgramError(f"duplicate code label {name!r}")
        self._labels[name] = len(self._lines)

    def emit(self, op_name: str, *operands) -> None:
        """Append one instruction; operands follow the opcode signature."""
        op = opinfo(op_name)
        if len(operands) != len(op.signature):
            raise ProgramError(
                f"{op_name}: expected {len(op.signature)} operands "
                f"{op.signature}, got {len(operands)}")
        self._lines.append((op_name, operands))

    def here(self) -> int:
        """Index of the next instruction (for computed-label tricks)."""
        return len(self._lines)

    # -- assembly -----------------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and produce the immutable :class:`Program`."""
        instructions: List[Instruction] = []
        label_pcs = {name: CODE_BASE + idx * INSTRUCTION_BYTES
                     for name, idx in self._labels.items()}
        for index, (op_name, operands) in enumerate(self._lines):
            op = opinfo(op_name)
            pc = CODE_BASE + index * INSTRUCTION_BYTES
            instructions.append(
                self._assemble(op, operands, pc, label_pcs))
        return Program(instructions, self._memory, label_pcs,
                       self._data_labels)

    def _assemble(self, op: OpInfo, operands: tuple, pc: int,
                  label_pcs: Dict[str, int]) -> Instruction:
        dest: Optional[int] = None
        srcs: List[int] = []
        imm: Optional[int] = None
        target: Optional[int] = None
        banks = _expected_banks(op)
        reg_slot = 0
        for kind, operand in zip(op.signature, operands):
            if kind in ("R", "S"):
                rid = operand if isinstance(operand, int) else reg_id(operand)
                want_fp = banks[reg_slot] == "f"
                if want_fp and not is_fp_reg(rid):
                    raise ProgramError(
                        f"{op.name} @ {pc:#x}: operand {operand!r} must be "
                        f"an fp register")
                if not want_fp and not is_int_reg(rid):
                    raise ProgramError(
                        f"{op.name} @ {pc:#x}: operand {operand!r} must be "
                        f"an integer register")
                reg_slot += 1
                if kind == "R":
                    dest = rid
                else:
                    srcs.append(rid)
            elif kind == "I":
                if not isinstance(operand, int):
                    raise ProgramError(
                        f"{op.name} @ {pc:#x}: immediate must be an int, "
                        f"got {operand!r}")
                imm = operand
            elif kind == "L":
                if operand not in self._labels:
                    raise ProgramError(
                        f"{op.name} @ {pc:#x}: unknown code label "
                        f"{operand!r}")
                target = label_pcs[operand]
            elif kind == "A":
                if isinstance(operand, int):
                    imm = operand
                elif operand in self._data_labels:
                    imm = self._data_labels[operand]
                else:
                    raise ProgramError(
                        f"{op.name} @ {pc:#x}: unknown data label "
                        f"{operand!r}")
            else:  # pragma: no cover - signature kinds are closed
                raise ProgramError(f"bad signature kind {kind!r}")
        return Instruction(op, dest, tuple(srcs), imm, target, pc)

"""Disassembler: turn an assembled Program back into assembly text.

The output round-trips: ``assemble(disassemble(program))`` produces a
program with the identical instruction stream (data segments are
re-emitted as ``.data`` directives from the functional memory image).
Useful for inspecting generated workloads and for golden tests.
"""

from __future__ import annotations

from typing import Dict, List

from .instruction import Instruction
from .program import INSTRUCTION_BYTES, Program
from .registers import reg_name

__all__ = ["disassemble", "disassemble_instruction"]


def disassemble_instruction(inst: Instruction,
                            labels: Dict[int, str]) -> str:
    """One instruction as assembly text (without its own label)."""
    op = inst.op
    operands: List[str] = []
    srcs = iter(inst.srcs)
    for kind in op.signature:
        if kind == "R":
            operands.append(reg_name(inst.dest))
        elif kind == "S":
            operands.append(reg_name(next(srcs)))
        elif kind == "I":
            operands.append(str(inst.imm))
        elif kind == "A":
            operands.append(str(inst.imm))  # raw address round-trips
        elif kind == "L":
            operands.append(labels[inst.target])
    if operands:
        return f"{op.name} " + ", ".join(operands)
    return op.name


def disassemble(program: Program) -> str:
    """The whole program as round-trippable assembly text."""
    lines: List[str] = []
    # Data segment: one .data directive per contiguous initialized run.
    memory = program.memory.snapshot()
    if memory:
        addresses = sorted(memory)
        run_start = prev = addresses[0]
        values = [memory[prev]]
        runs = []
        for addr in addresses[1:]:
            if addr == prev + 4 and isinstance(memory[addr], int) \
                    and isinstance(values[-1], int):
                values.append(memory[addr])
            else:
                runs.append((run_start, values))
                run_start = addr
                values = [memory[addr]]
            prev = addr
        runs.append((run_start, values))
        for index, (addr, run_values) in enumerate(runs):
            if all(isinstance(v, int) for v in run_values):
                lines.append(f"# data at {addr:#x}")
                lines.append(f".data d{index} "
                             + " ".join(str(v) for v in run_values))
    # Branch-target labels.
    labels: Dict[int, str] = {}
    for inst in program.instructions:
        if inst.target is not None and inst.target not in labels:
            index = (inst.target - program.code_base) // INSTRUCTION_BYTES
            labels[inst.target] = f"L{index}"
    for inst in program.instructions:
        if inst.pc in labels:
            lines.append(f"{labels[inst.pc]}:")
        lines.append("    " + disassemble_instruction(inst, labels))
    return "\n".join(lines) + "\n"

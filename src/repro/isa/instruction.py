"""Static and dynamic instruction records.

:class:`Instruction` is the *static* form produced by the program builder:
one entry per line of assembly, with register ids already resolved.

:class:`DynInst` is one element of the *dynamic* trace produced by the
functional executor — the unit the timing simulator consumes.  It carries
everything the timing model needs and nothing else: operand **values**
(for the value predictor), the memory address (for the cache model) and
the branch outcome (for the branch predictor).
"""

from __future__ import annotations

from typing import Optional, Tuple

from .opcodes import OpClass, OpInfo
from .registers import is_fp_reg, reg_name


class Instruction:
    """A static µRISC instruction.

    Attributes:
        op: opcode metadata.
        dest: destination register id, or ``None``.
        srcs: tuple of source register ids (0, 1 or 2 entries).
        imm: immediate value (already includes resolved data-label
            addresses for ``la``), or ``None``.
        target: resolved branch/jump target PC, or ``None``.
        pc: code address of this instruction (assigned by the builder).
    """

    __slots__ = ("op", "dest", "srcs", "imm", "target", "pc")

    def __init__(self, op: OpInfo, dest: Optional[int],
                 srcs: Tuple[int, ...], imm: Optional[int],
                 target: Optional[int], pc: int) -> None:
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.imm = imm
        self.target = target
        self.pc = pc

    def __repr__(self) -> str:
        parts = [self.op.name]
        if self.dest is not None:
            parts.append(reg_name(self.dest))
        parts.extend(reg_name(s) for s in self.srcs)
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target:#x}")
        return f"<{' '.join(parts)} pc={self.pc:#x}>"


class DynInst:
    """One committed dynamic instruction from the functional executor.

    The timing simulator replays a stream of these.  Operand values are
    the *architecturally correct* ones; the value predictor compares its
    decode-time prediction against them to classify each prediction.

    Attributes:
        seq: position in the dynamic stream (0-based).
        pc: instruction address.
        op: opcode metadata (shared :class:`OpInfo`).
        dest: destination register id or ``None``.
        srcs: source register ids.
        src_values: architecturally correct source operand values,
            aligned with ``srcs``.
        result: value written to ``dest`` (``None`` when no dest).
        mem_addr: byte address for loads/stores, else ``None``.
        taken: branch outcome (``None`` for non-branches).
        target: next PC when taken (``None`` for non-branches).

    The opcode views (``is_branch``, ``is_load``, ``opclass``, ...) are
    materialized once at construction: the timing core reads them every
    cycle an instruction sits in the window, so they are plain slot
    attributes rather than properties chasing ``self.op`` each access.
    """

    __slots__ = ("seq", "pc", "op", "dest", "srcs", "src_values",
                 "result", "mem_addr", "taken", "target",
                 "is_branch", "is_cond_branch", "is_load", "is_store",
                 "is_int", "opclass", "srcs_fp", "dest_fp")

    def __init__(self, seq: int, pc: int, op: OpInfo,
                 dest: Optional[int], srcs: Tuple[int, ...],
                 src_values: tuple, result,
                 mem_addr: Optional[int],
                 taken: Optional[bool], target: Optional[int]) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.src_values = src_values
        self.result = result
        self.mem_addr = mem_addr
        self.taken = taken
        self.target = target
        # -- precomputed opcode views (see class docstring) --------------
        self.is_branch = op.is_branch
        self.is_cond_branch = op.is_cond_branch
        self.is_load = op.is_load
        self.is_store = op.is_store
        self.is_int = op.is_int
        self.opclass = op.opclass
        self.srcs_fp = tuple(is_fp_reg(s) for s in srcs)
        self.dest_fp = dest is not None and is_fp_reg(dest)

    def src_is_fp(self, index: int) -> bool:
        """True when source operand *index* lives in the fp register bank.

        The paper's stride predictor does not predict fp values
        (§3.3: "Communications are not zero because of fp values, that
        are not considered by our predictor").
        """
        return self.srcs_fp[index]

    def __repr__(self) -> str:
        return (f"<DynInst #{self.seq} pc={self.pc:#x} {self.op.name} "
                f"dest={None if self.dest is None else reg_name(self.dest)}>")

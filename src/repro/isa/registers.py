"""Register file name space of the µRISC ISA.

The ISA exposes 32 integer registers (``r0`` .. ``r31``) and 32
floating-point registers (``f0`` .. ``f31``).  Internally every logical
register is a small integer: integer registers occupy ids 0..31 and
floating-point registers occupy ids 32..63.  ``r0`` is hard-wired to zero,
mirroring the MIPS/Alpha convention the paper's toolchain assumed.

The timing model only ever sees register *ids*; names exist for program
authors and for diagnostics.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Id of the hard-wired zero register.
ZERO_REG = 0

#: First id of the floating-point register bank.
FP_BASE = NUM_INT_REGS


class RegisterError(ValueError):
    """Raised when a register name or id is malformed."""


def reg_id(name: str) -> int:
    """Translate a register name (``"r7"``, ``"f3"``) to its internal id.

    >>> reg_id("r0")
    0
    >>> reg_id("f0")
    32
    """
    if not name or len(name) < 2:
        raise RegisterError(f"malformed register name: {name!r}")
    bank, digits = name[0], name[1:]
    if not digits.isdigit():
        raise RegisterError(f"malformed register name: {name!r}")
    index = int(digits)
    if bank == "r":
        if index >= NUM_INT_REGS:
            raise RegisterError(f"integer register out of range: {name!r}")
        return index
    if bank == "f":
        if index >= NUM_FP_REGS:
            raise RegisterError(f"fp register out of range: {name!r}")
        return FP_BASE + index
    raise RegisterError(f"unknown register bank in {name!r} (want r/f)")


def reg_name(rid: int) -> str:
    """Translate an internal register id back to its name.

    >>> reg_name(33)
    'f1'
    """
    if 0 <= rid < FP_BASE:
        return f"r{rid}"
    if FP_BASE <= rid < NUM_LOGICAL_REGS:
        return f"f{rid - FP_BASE}"
    raise RegisterError(f"register id out of range: {rid}")


def is_fp_reg(rid: int) -> bool:
    """Return True when *rid* names a floating-point register."""
    return rid >= FP_BASE


def is_int_reg(rid: int) -> bool:
    """Return True when *rid* names an integer register."""
    return 0 <= rid < FP_BASE

"""Functional executor: runs a µRISC program and emits the dynamic trace.

The executor is *architectural only* — no timing.  It produces the
committed instruction stream (:class:`~repro.isa.instruction.DynInst`)
that the cycle-level simulator in :mod:`repro.core` replays.  Because the
trace carries true operand values, the timing model can classify value
predictions at decode and apply their effects at the paper's verification
points.

Integer arithmetic wraps at 64 bits (two's complement), so value
sequences behave like the Alpha integers the paper's predictor saw.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from .instruction import DynInst, Instruction
from .program import INSTRUCTION_BYTES, Program
from .registers import FP_BASE, NUM_LOGICAL_REGS, ZERO_REG

__all__ = ["ExecutionError", "FunctionalExecutor", "execute",
           "recompute_result"]

_INT_MIN = -(1 << 63)
_WRAP = 1 << 64


def _wrap64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    return (value - _INT_MIN) % _WRAP + _INT_MIN


class ExecutionError(RuntimeError):
    """Raised when a program misbehaves (bad PC, runaway execution...)."""


def _int_binops() -> Dict[str, Callable[[int, int], int]]:
    return {
        "add": lambda a, b: _wrap64(a + b),
        "sub": lambda a, b: _wrap64(a - b),
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "sll": lambda a, b: _wrap64(a << (b & 63)),
        "srl": lambda a, b: (a % _WRAP) >> (b & 63),
        "sra": lambda a, b: a >> (b & 63),
        "slt": lambda a, b: int(a < b),
        "sltu": lambda a, b: int((a % _WRAP) < (b % _WRAP)),
        "min": lambda a, b: a if a < b else b,
        "max": lambda a, b: a if a > b else b,
        "mul": lambda a, b: _wrap64(a * b),
        "div": lambda a, b: _wrap64(int(a / b)) if b else 0,
        "rem": lambda a, b: _wrap64(a - int(a / b) * b) if b else 0,
    }


_IMM_ALIAS = {"addi": "add", "andi": "and", "ori": "or", "xori": "xor",
              "slli": "sll", "srli": "srl", "srai": "sra", "slti": "slt"}

_FP_BINOPS: Dict[str, Callable[[float, float], float]] = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: (a / b) if b else 0.0,
}

_FP_COMPARES: Dict[str, Callable[[float, float], int]] = {
    "feq": lambda a, b: int(a == b),
    "flt": lambda a, b: int(a < b),
    "fle": lambda a, b: int(a <= b),
}

_BRANCH_TESTS: Dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
}


#: Shared op tables for :func:`recompute_result` (built once).
_REEXEC_INT_OPS = _int_binops()


def recompute_result(name: str, src_values: tuple, imm: Optional[int]):
    """Re-execute one register-to-register operation's semantics.

    Returns ``(True, result)`` for operations whose result depends only
    on the source values and immediate (the re-executable set used by
    the golden-model co-simulator), and ``(False, None)`` for those
    that touch memory or control flow, whose results the trace must be
    trusted for.
    """
    if name in _REEXEC_INT_OPS:
        return True, _REEXEC_INT_OPS[name](src_values[0], src_values[1])
    if name in _IMM_ALIAS or name in ("li", "la"):
        # Immediate forms need the static immediate, which the dynamic
        # trace does not carry; callers without it pass imm=None.
        if imm is None:
            return False, None
        if name in ("li", "la"):
            return True, imm
        return True, _REEXEC_INT_OPS[_IMM_ALIAS[name]](src_values[0], imm)
    if name in ("mov", "fmov"):
        return True, src_values[0]
    if name in _FP_BINOPS:
        return True, _FP_BINOPS[name](src_values[0], src_values[1])
    if name in _FP_COMPARES:
        return True, _FP_COMPARES[name](src_values[0], src_values[1])
    if name == "fneg":
        return True, -src_values[0]
    if name == "cvtif":
        return True, float(src_values[0])
    if name == "cvtfi":
        return True, _wrap64(int(src_values[0]))
    return False, None


class FunctionalExecutor:
    """Executes a program, yielding the dynamic committed stream.

    Args:
        program: assembled program.
        max_instructions: hard cap on dynamic instructions; hitting it
            ends the trace cleanly (the synthetic workloads run far past
            any interesting warm-up, like the paper's run-to-completion
            Mediabench runs, just shorter).
    """

    def __init__(self, program: Program,
                 max_instructions: int = 1_000_000) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.int_regs: List[int] = [0] * FP_BASE
        self.fp_regs: List[float] = [0.0] * (NUM_LOGICAL_REGS - FP_BASE)
        self._int_ops = _int_binops()

    # -- register helpers ------------------------------------------------------

    def _read(self, rid: int):
        if rid < FP_BASE:
            return self.int_regs[rid]
        return self.fp_regs[rid - FP_BASE]

    def _write(self, rid: int, value) -> None:
        if rid < FP_BASE:
            if rid != ZERO_REG:
                self.int_regs[rid] = value
        else:
            self.fp_regs[rid - FP_BASE] = value

    # -- main loop ------------------------------------------------------------

    def run(self) -> Iterator[DynInst]:
        """Yield :class:`DynInst` records until ``halt`` or the cap."""
        program = self.program
        memory = program.memory
        int_ops = self._int_ops
        read = self._read
        write = self._write
        pc = program.code_base
        end_pc = program.code_base + len(program) * INSTRUCTION_BYTES
        seq = 0
        cap = self.max_instructions
        while seq < cap:
            if not (program.code_base <= pc < end_pc):
                raise ExecutionError(f"PC out of code segment: {pc:#x}")
            inst: Instruction = program.at(pc)
            op = inst.op
            name = op.name
            next_pc = pc + INSTRUCTION_BYTES
            dest = inst.dest
            srcs = inst.srcs
            src_values = tuple(read(s) for s in srcs)
            result = None
            mem_addr: Optional[int] = None
            taken: Optional[bool] = None
            target: Optional[int] = None

            if name in int_ops:
                result = int_ops[name](src_values[0], src_values[1])
            elif name in _IMM_ALIAS:
                result = int_ops[_IMM_ALIAS[name]](src_values[0], inst.imm)
            elif name in ("li", "la"):
                result = inst.imm
            elif name == "mov":
                result = src_values[0]
            elif name == "nop":
                pass
            elif name in ("lw", "lb", "flw"):
                mem_addr = _wrap64(src_values[0] + inst.imm)
                result = memory.load(mem_addr)
                if name == "lb":
                    result = int(result) & 0xFF
                elif name == "flw":
                    result = float(result)
                else:
                    result = _wrap64(int(result))
            elif name in ("sw", "sb", "fsw"):
                mem_addr = _wrap64(src_values[1] + inst.imm)
                value = src_values[0]
                if name == "sb":
                    value = int(value) & 0xFF
                memory.store(mem_addr, value)
            elif name in _BRANCH_TESTS:
                taken = _BRANCH_TESTS[name](src_values[0], src_values[1])
                target = inst.target
                if taken:
                    next_pc = inst.target
            elif name == "j":
                taken = True
                target = inst.target
                next_pc = inst.target
            elif name == "halt":
                return
            elif name in _FP_BINOPS:
                result = _FP_BINOPS[name](src_values[0], src_values[1])
            elif name in _FP_COMPARES:
                result = _FP_COMPARES[name](src_values[0], src_values[1])
            elif name == "fmov":
                result = src_values[0]
            elif name == "fneg":
                result = -src_values[0]
            elif name == "cvtif":
                result = float(src_values[0])
            elif name == "cvtfi":
                result = _wrap64(int(src_values[0]))
            else:  # pragma: no cover - opcode table is closed
                raise ExecutionError(f"unimplemented opcode {name!r}")

            if dest is not None:
                write(dest, result)
                if dest == ZERO_REG:
                    result = 0
            yield DynInst(seq, pc, op, dest, srcs, src_values, result,
                          mem_addr, taken, target)
            seq += 1
            pc = next_pc


def execute(program: Program, max_instructions: int = 1_000_000) -> List[DynInst]:
    """Run *program* to completion (or the cap) and return the full trace."""
    return list(FunctionalExecutor(program, max_instructions).run())

"""Functional executor: runs a µRISC program and emits the dynamic trace.

The executor is *architectural only* — no timing.  It produces the
committed instruction stream (:class:`~repro.isa.instruction.DynInst`)
that the cycle-level simulator in :mod:`repro.core` replays.  Because the
trace carries true operand values, the timing model can classify value
predictions at decode and apply their effects at the paper's verification
points.

Integer arithmetic wraps at 64 bits (two's complement), so value
sequences behave like the Alpha integers the paper's predictor saw.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, Iterator, List, Optional

from .instruction import DynInst, Instruction
from .program import INSTRUCTION_BYTES, Program
from .registers import FP_BASE, NUM_LOGICAL_REGS, ZERO_REG

__all__ = ["ExecutionError", "FunctionalExecutor", "execute",
           "recompute_result"]

_INT_MIN = -(1 << 63)
_WRAP = 1 << 64


def _wrap64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    return (value - _INT_MIN) % _WRAP + _INT_MIN


class ExecutionError(RuntimeError):
    """Raised when a program misbehaves (bad PC, runaway execution...)."""


def _int_binops() -> Dict[str, Callable[[int, int], int]]:
    return {
        "add": lambda a, b: _wrap64(a + b),
        "sub": lambda a, b: _wrap64(a - b),
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "sll": lambda a, b: _wrap64(a << (b & 63)),
        "srl": lambda a, b: (a % _WRAP) >> (b & 63),
        "sra": lambda a, b: a >> (b & 63),
        "slt": lambda a, b: int(a < b),
        "sltu": lambda a, b: int((a % _WRAP) < (b % _WRAP)),
        "min": lambda a, b: a if a < b else b,
        "max": lambda a, b: a if a > b else b,
        "mul": lambda a, b: _wrap64(a * b),
        "div": lambda a, b: _wrap64(int(a / b)) if b else 0,
        "rem": lambda a, b: _wrap64(a - int(a / b) * b) if b else 0,
    }


_IMM_ALIAS = {"addi": "add", "andi": "and", "ori": "or", "xori": "xor",
              "slli": "sll", "srli": "srl", "srai": "sra", "slti": "slt"}

_FP_BINOPS: Dict[str, Callable[[float, float], float]] = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: (a / b) if b else 0.0,
}

_FP_COMPARES: Dict[str, Callable[[float, float], int]] = {
    "feq": lambda a, b: int(a == b),
    "flt": lambda a, b: int(a < b),
    "fle": lambda a, b: int(a <= b),
}

_BRANCH_TESTS: Dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
}


#: Shared op tables for :func:`recompute_result` (built once).
_REEXEC_INT_OPS = _int_binops()


def recompute_result(name: str, src_values: tuple, imm: Optional[int]):
    """Re-execute one register-to-register operation's semantics.

    Returns ``(True, result)`` for operations whose result depends only
    on the source values and immediate (the re-executable set used by
    the golden-model co-simulator), and ``(False, None)`` for those
    that touch memory or control flow, whose results the trace must be
    trusted for.
    """
    if name in _REEXEC_INT_OPS:
        return True, _REEXEC_INT_OPS[name](src_values[0], src_values[1])
    if name in _IMM_ALIAS or name in ("li", "la"):
        # Immediate forms need the static immediate, which the dynamic
        # trace does not carry; callers without it pass imm=None.
        if imm is None:
            return False, None
        if name in ("li", "la"):
            return True, imm
        return True, _REEXEC_INT_OPS[_IMM_ALIAS[name]](src_values[0], imm)
    if name in ("mov", "fmov"):
        return True, src_values[0]
    if name in _FP_BINOPS:
        return True, _FP_BINOPS[name](src_values[0], src_values[1])
    if name in _FP_COMPARES:
        return True, _FP_COMPARES[name](src_values[0], src_values[1])
    if name == "fneg":
        return True, -src_values[0]
    if name == "cvtif":
        return True, float(src_values[0])
    if name == "cvtfi":
        return True, _wrap64(int(src_values[0]))
    return False, None


class FunctionalExecutor:
    """Executes a program, yielding the dynamic committed stream.

    Args:
        program: assembled program.
        max_instructions: hard cap on dynamic instructions; hitting it
            ends the trace cleanly (the synthetic workloads run far past
            any interesting warm-up, like the paper's run-to-completion
            Mediabench runs, just shorter).
    """

    def __init__(self, program: Program,
                 max_instructions: int = 1_000_000) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.int_regs: List[int] = [0] * FP_BASE
        self.fp_regs: List[float] = [0.0] * (NUM_LOGICAL_REGS - FP_BASE)
        # Execution cursor.  Kept on the instance (not as generator
        # locals) so the executor can be snapshotted mid-run and a new
        # ``run()`` generator resumes exactly where the old one stopped.
        self.pc: int = program.code_base
        self.seq: int = 0
        self.halted: bool = False
        self._int_ops = _int_binops()
        self._compiled: Optional[List[Callable[[], int]]] = None
        self._train_hooks: Optional[tuple] = None
        self._trained: Optional[List[Callable[[], int]]] = None

    # -- pickling -------------------------------------------------------------

    #: Derived attributes rebuilt on restore: the binop table holds
    #: lambdas, the compiled fast-forward tables close over the live
    #: register lists, and the training hooks reference external
    #: predictor objects — none pickle, all are rebuilt (or, for hooks,
    #: reinstalled by the caller) after restore.
    _UNPICKLED = ("_int_ops", "_compiled", "_train_hooks", "_trained")

    def __getstate__(self):
        state = dict(self.__dict__)
        for name in self._UNPICKLED:
            state.pop(name, None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._int_ops = _int_binops()
        self._compiled = None
        self._train_hooks = None
        self._trained = None

    # -- register helpers ------------------------------------------------------

    def _read(self, rid: int):
        if rid < FP_BASE:
            return self.int_regs[rid]
        return self.fp_regs[rid - FP_BASE]

    def _write(self, rid: int, value) -> None:
        if rid < FP_BASE:
            if rid != ZERO_REG:
                self.int_regs[rid] = value
        else:
            self.fp_regs[rid - FP_BASE] = value

    # -- main loop ------------------------------------------------------------

    def run(self) -> Iterator[DynInst]:
        """Yield :class:`DynInst` records until ``halt`` or the cap.

        Resumes from the instance cursor (``pc``/``seq``), so a partial
        consumption — or a :meth:`skip` fast-forward — followed by a new
        ``run()`` call continues the same dynamic stream.  The cursor is
        committed *before* each yield: a snapshot taken while a consumer
        holds the yielded instruction counts it as already delivered.
        """
        if self.halted:
            return
        program = self.program
        memory = program.memory
        int_ops = self._int_ops
        read = self._read
        write = self._write
        pc = self.pc
        end_pc = program.code_base + len(program) * INSTRUCTION_BYTES
        seq = self.seq
        cap = self.max_instructions
        while seq < cap:
            if not (program.code_base <= pc < end_pc):
                raise ExecutionError(f"PC out of code segment: {pc:#x}")
            inst: Instruction = program.at(pc)
            op = inst.op
            name = op.name
            next_pc = pc + INSTRUCTION_BYTES
            dest = inst.dest
            srcs = inst.srcs
            src_values = tuple(read(s) for s in srcs)
            result = None
            mem_addr: Optional[int] = None
            taken: Optional[bool] = None
            target: Optional[int] = None

            if name in int_ops:
                result = int_ops[name](src_values[0], src_values[1])
            elif name in _IMM_ALIAS:
                result = int_ops[_IMM_ALIAS[name]](src_values[0], inst.imm)
            elif name in ("li", "la"):
                result = inst.imm
            elif name == "mov":
                result = src_values[0]
            elif name == "nop":
                pass
            elif name in ("lw", "lb", "flw"):
                mem_addr = _wrap64(src_values[0] + inst.imm)
                result = memory.load(mem_addr)
                if name == "lb":
                    result = int(result) & 0xFF
                elif name == "flw":
                    result = float(result)
                else:
                    result = _wrap64(int(result))
            elif name in ("sw", "sb", "fsw"):
                mem_addr = _wrap64(src_values[1] + inst.imm)
                value = src_values[0]
                if name == "sb":
                    value = int(value) & 0xFF
                memory.store(mem_addr, value)
            elif name in _BRANCH_TESTS:
                taken = _BRANCH_TESTS[name](src_values[0], src_values[1])
                target = inst.target
                if taken:
                    next_pc = inst.target
            elif name == "j":
                taken = True
                target = inst.target
                next_pc = inst.target
            elif name == "halt":
                self.halted = True
                return
            elif name in _FP_BINOPS:
                result = _FP_BINOPS[name](src_values[0], src_values[1])
            elif name in _FP_COMPARES:
                result = _FP_COMPARES[name](src_values[0], src_values[1])
            elif name == "fmov":
                result = src_values[0]
            elif name == "fneg":
                result = -src_values[0]
            elif name == "cvtif":
                result = float(src_values[0])
            elif name == "cvtfi":
                result = _wrap64(int(src_values[0]))
            else:  # pragma: no cover - opcode table is closed
                raise ExecutionError(f"unimplemented opcode {name!r}")

            if dest is not None:
                write(dest, result)
                if dest == ZERO_REG:
                    result = 0
            self.seq = seq + 1
            self.pc = next_pc
            yield DynInst(seq, pc, op, dest, srcs, src_values, result,
                          mem_addr, taken, target)
            seq += 1
            pc = next_pc


    # -- fast-forward ---------------------------------------------------------

    def skip(self, count: int) -> int:
        """Fast-forward up to *count* instructions; returns how many ran.

        Architectural effects (registers, memory, ``pc``/``seq``) are
        bit-identical to consuming the same instructions from
        :meth:`run`; no :class:`DynInst` records are built, which is
        what makes this the ≥10×-detailed fast-forward engine behind
        sampled simulation.  Stops early at ``halt`` or the
        ``max_instructions`` cap, exactly like :meth:`run`.
        """
        if self.halted or count <= 0:
            return 0
        n = min(count, self.max_instructions - self.seq)
        if n <= 0:
            return 0
        if self._train_hooks is not None:
            table = self._trained
            if table is None:
                table = self._trained = self._compile_train()
        else:
            table = self._compiled
            if table is None:
                table = self._compiled = self._compile()
        base = self.program.code_base
        idx = (self.pc - base) // INSTRUCTION_BYTES
        if not 0 <= idx < len(table):
            raise ExecutionError(f"PC out of code segment: {self.pc:#x}")
        done = 0
        while done < n:
            nxt = table[idx]()
            if nxt < 0:  # halt: pc stays on the halt instruction
                idx = -nxt - 1
                self.halted = True
                break
            idx = nxt
            done += 1
        self.pc = base + idx * INSTRUCTION_BYTES
        self.seq += done
        return done

    # -- functional warming ---------------------------------------------------

    def set_train_hooks(self, value=None, branch=None, target=None,
                        mem=None, code=None, value_factory=None,
                        branch_factory=None) -> None:
        """Install functional-warming callbacks applied during :meth:`skip`.

        With hooks installed, fast-forward additionally *observes* each
        instruction the way the timing model's front end and decode
        stage would, so microarchitectural predictor state can be
        trained continuously at compiled speed (SMARTS-style functional
        warming).  Architectural effects are unchanged — the hooks only
        read state.

        Args:
            value: ``(pc, slot, actual)`` per integer source operand,
                in slot order, skipping ``r0`` and fp-bank sources —
                exactly the operands decode trains the value predictor
                on.
            branch: ``(pc, taken)`` per conditional branch, the
                direction predictor's training event.
            target: ``(pc, target)`` per taken control transfer
                (conditional or not), the BTB's training event.
            mem: ``(addr, is_write)`` per load/store, the D-cache
                touch.
            code: ``(pc)`` on each fetch-line change (the same
                ``pc >> 5`` granularity the fetch engine tracks), the
                I-cache touch.
            value_factory: optional ``factory(pc, slot) -> train(actual)``
                pre-binding the value hook per static operand (e.g.
                :meth:`repro.predictor.StridePredictor.trainer`); used
                instead of *value* when given, resolving table indices
                once at compile time instead of per call.
            branch_factory: optional ``factory(pc) -> train(taken)``
                pre-binding the branch hook per static branch
                (:meth:`repro.frontend.CombinedPredictor.trainer`).

        Passing all ``None`` uninstalls.  Hooks do not survive
        pickling: a restored executor fast-forwards plain until hooks
        are installed again.
        """
        if value is None and branch is None and target is None \
                and mem is None and code is None:
            self._train_hooks = None
        else:
            self._train_hooks = (value, branch, target, mem, code,
                                 value_factory, branch_factory)
        self._trained = None

    def _compile_train(self) -> List[Callable[[], int]]:
        """Wrap the compiled table with the installed training hooks.

        Instructions that train nothing (``nop``, fp-only arithmetic)
        keep their plain closure, so the overhead is paid only where a
        hook actually fires.  Branches re-evaluate their condition via
        the shared :data:`_BRANCH_TESTS` table (the same functions
        :meth:`run` uses), so the trained and plain paths cannot drift.
        """
        (value, branch, target, mem, code,
         value_factory, branch_factory) = self._train_hooks
        plain = self._compiled
        if plain is None:
            plain = self._compiled = self._compile()
        program = self.program
        ir = self.int_regs
        base = program.code_base
        size = len(program)
        imin, wrap = _INT_MIN, _WRAP
        table: List[Callable[[], int]] = []
        # Fetch-line tracker shared by every closure, mirroring the
        # fetch engine's ``_last_line``: the I-cache is touched once
        # per line *transition*, not per instruction.  Every control
        # transfer in the ISA carries a static target, so the set of
        # instructions where a transition can *happen* is statically
        # known — only those pay the runtime line check: an
        # instruction whose sequential predecessor sits on a different
        # line, or the target of a cross-line branch/jump.
        line_cell = [None]
        needs_line_check = [False] * size
        prev_line = None
        for i in range(size):
            inst = program.at(base + i * INSTRUCTION_BYTES)
            pc = base + i * INSTRUCTION_BYTES
            if prev_line is None or pc >> 5 != prev_line:
                needs_line_check[i] = True
            prev_line = pc >> 5
            if inst.target is not None and inst.target >> 5 != pc >> 5:
                t_idx = (inst.target - base) // INSTRUCTION_BYTES
                if 0 <= t_idx < size:
                    needs_line_check[t_idx] = True

        # Per-site trainers: a factory resolves table indices once per
        # static operand/branch at compile time; without one, the
        # generic hook is pre-bound with functools.partial so every
        # closure variant below deals in uniform ``train(actual)`` /
        # ``train(taken)`` callables.
        if value_factory is not None:
            make_value = value_factory
        elif value is not None:
            def make_value(pc, slot, value=value):
                return partial(value, pc, slot)
        else:
            make_value = None
        if branch_factory is not None:
            make_branch = branch_factory
        elif branch is not None:
            def make_branch(pc, branch=branch):
                return partial(branch, pc)
        else:
            make_branch = None

        for i in range(size):
            inst: Instruction = program.at(base + i * INSTRUCTION_BYTES)
            name = inst.op.name
            step = plain[i]
            pc = base + i * INSTRUCTION_BYTES
            imm = inst.imm
            # Integer source operands in slot order, as decode sees
            # them: fp-bank registers and r0 never train the value
            # predictor.
            vp_trainers = tuple(
                (make_value(pc, slot), rid)
                for slot, rid in enumerate(inst.srcs)
                if rid != ZERO_REG and rid < FP_BASE
            ) if make_value is not None else ()

            if name in _BRANCH_TESTS:
                cond = _BRANCH_TESTS[name]
                tgt = (inst.target - base) // INSTRUCTION_BYTES
                if not 0 <= tgt < size:
                    tgt = size
                a, b = inst.srcs
                btrain = make_branch(pc) if make_branch is not None \
                    else None

                def tstep(cond=cond, a=a, b=b, pc=pc, tgt=tgt, nxt=i + 1,
                          tpc=inst.target, vtr=vp_trainers, btrain=btrain,
                          target=target):
                    for train, rid in vtr:
                        train(ir[rid])
                    taken = cond(ir[a], ir[b])
                    if btrain is not None:
                        btrain(taken)
                    if taken:
                        if target is not None:
                            target(pc, tpc)
                        return tgt
                    return nxt
            elif name == "j" and target is not None:
                def tstep(step=step, pc=pc, tpc=inst.target,
                          target=target):
                    target(pc, tpc)
                    return step()
            elif mem is not None and name in ("lw", "lb", "flw",
                                              "sw", "sb", "fsw"):
                wr = name in ("sw", "sb", "fsw")
                a = inst.srcs[1] if wr else inst.srcs[0]

                def tstep(step=step, a=a, imm=imm, wr=wr,
                          vtr=vp_trainers, mem=mem):
                    for train, rid in vtr:
                        train(ir[rid])
                    mem((ir[a] + imm - imin) % wrap + imin, wr)
                    return step()
            elif len(vp_trainers) == 1:
                (t0, r0), = vp_trainers

                def tstep(step=step, t0=t0, r0=r0):
                    t0(ir[r0])
                    return step()
            elif len(vp_trainers) == 2:
                (t0, r0), (t1, r1) = vp_trainers

                def tstep(step=step, t0=t0, r0=r0, t1=t1, r1=r1):
                    t0(ir[r0])
                    t1(ir[r1])
                    return step()
            else:
                tstep = step  # trains nothing: halt, nop, fp-only ops
            if code is not None and needs_line_check[i]:
                inner = tstep

                def tstep(inner=inner, line=pc >> 5, pc=pc,
                          cell=line_cell, code=code):
                    if line != cell[0]:
                        cell[0] = line
                        code(pc)
                    return inner()
            table.append(tstep)

        table.append(plain[size])  # shared off-segment sentinel
        return table

    def _compile(self) -> List[Callable[[], int]]:
        """Build the per-static-instruction closure table for ``skip``.

        Each closure applies one instruction's architectural effects and
        returns the next static index (``-1 - own_index`` for ``halt``).
        Closures capture the live register lists and the sparse memory
        dict directly, so there is no per-instruction dispatch beyond
        one call — this is what lifts fast-forward into the millions of
        instructions per second.  Index ``len(program)`` holds a
        sentinel that raises the same :class:`ExecutionError` as
        :meth:`run` does when execution falls off the code segment.
        """
        program = self.program
        ir = self.int_regs
        fr = self.fp_regs
        mem = program.memory._mem
        base = program.code_base
        size = len(program)
        imin, wrap = _INT_MIN, _WRAP
        int_ops = self._int_ops
        table: List[Callable[[], int]] = []

        for i in range(size):
            inst: Instruction = program.at(base + i * INSTRUCTION_BYTES)
            name = inst.op.name
            d = inst.dest
            s = inst.srcs
            imm = inst.imm
            nxt = i + 1
            dead = d == ZERO_REG  # writes to r0 are dropped

            if name in ("beq", "bne", "blt", "bge", "j"):
                tgt = (inst.target - base) // INSTRUCTION_BYTES
                if not 0 <= tgt < size:
                    tgt = size  # sentinel raises, like run() would
                a, b = (s[0], s[1]) if name != "j" else (0, 0)
                if name == "j":
                    step = lambda tgt=tgt: tgt
                elif name == "beq":
                    def step(a=a, b=b, tgt=tgt, nxt=nxt):
                        return tgt if ir[a] == ir[b] else nxt
                elif name == "bne":
                    def step(a=a, b=b, tgt=tgt, nxt=nxt):
                        return tgt if ir[a] != ir[b] else nxt
                elif name == "blt":
                    def step(a=a, b=b, tgt=tgt, nxt=nxt):
                        return tgt if ir[a] < ir[b] else nxt
                else:  # bge
                    def step(a=a, b=b, tgt=tgt, nxt=nxt):
                        return tgt if ir[a] >= ir[b] else nxt
            elif name == "halt":
                step = lambda stop=-1 - i: stop
            elif name == "nop" or (dead and name not in ("sw", "sb", "fsw")):
                # Pure ops targeting r0 are architectural no-ops: the
                # result write is dropped and nothing here can fault
                # (div-by-zero yields 0, loads read the sparse image).
                step = lambda nxt=nxt: nxt
            elif name in ("lw", "lb", "flw"):
                a = s[0]
                if name == "lw":
                    def step(a=a, d=d, imm=imm, nxt=nxt):
                        v = mem.get((ir[a] + imm - imin) % wrap + imin, 0)
                        ir[d] = (int(v) - imin) % wrap + imin
                        return nxt
                elif name == "lb":
                    def step(a=a, d=d, imm=imm, nxt=nxt):
                        v = mem.get((ir[a] + imm - imin) % wrap + imin, 0)
                        ir[d] = int(v) & 0xFF
                        return nxt
                else:  # flw
                    df = d - FP_BASE
                    def step(a=a, df=df, imm=imm, nxt=nxt):
                        v = mem.get((ir[a] + imm - imin) % wrap + imin, 0)
                        fr[df] = float(v)
                        return nxt
            elif name in ("sw", "sb", "fsw"):
                v, a = s[0], s[1]
                if name == "sw":
                    def step(v=v, a=a, imm=imm, nxt=nxt):
                        mem[(ir[a] + imm - imin) % wrap + imin] = ir[v]
                        return nxt
                elif name == "sb":
                    def step(v=v, a=a, imm=imm, nxt=nxt):
                        mem[(ir[a] + imm - imin) % wrap + imin] = \
                            int(ir[v]) & 0xFF
                        return nxt
                else:  # fsw
                    vf = v - FP_BASE
                    def step(vf=vf, a=a, imm=imm, nxt=nxt):
                        mem[(ir[a] + imm - imin) % wrap + imin] = fr[vf]
                        return nxt
            elif name == "add":
                a, b = s
                def step(a=a, b=b, d=d, nxt=nxt):
                    ir[d] = (ir[a] + ir[b] - imin) % wrap + imin
                    return nxt
            elif name == "sub":
                a, b = s
                def step(a=a, b=b, d=d, nxt=nxt):
                    ir[d] = (ir[a] - ir[b] - imin) % wrap + imin
                    return nxt
            elif name == "mul":
                a, b = s
                def step(a=a, b=b, d=d, nxt=nxt):
                    ir[d] = (ir[a] * ir[b] - imin) % wrap + imin
                    return nxt
            elif name == "addi":
                a = s[0]
                def step(a=a, d=d, imm=imm, nxt=nxt):
                    ir[d] = (ir[a] + imm - imin) % wrap + imin
                    return nxt
            elif name in ("li", "la"):
                step = lambda d=d, imm=imm, nxt=nxt: \
                    (ir.__setitem__(d, imm), nxt)[1]
            elif name == "mov":
                a = s[0]
                step = lambda a=a, d=d, nxt=nxt: \
                    (ir.__setitem__(d, ir[a]), nxt)[1]
            elif name in int_ops or name in _IMM_ALIAS:
                # Remaining integer forms share run()'s lambda table so
                # the two paths can never drift apart semantically.
                if name in _IMM_ALIAS:
                    fn = int_ops[_IMM_ALIAS[name]]
                    a = s[0]
                    def step(fn=fn, a=a, d=d, imm=imm, nxt=nxt):
                        ir[d] = fn(ir[a], imm)
                        return nxt
                else:
                    fn = int_ops[name]
                    a, b = s
                    def step(fn=fn, a=a, b=b, d=d, nxt=nxt):
                        ir[d] = fn(ir[a], ir[b])
                        return nxt
            elif name in _FP_BINOPS:
                fn = _FP_BINOPS[name]
                af, bf = s[0] - FP_BASE, s[1] - FP_BASE
                df = d - FP_BASE
                if name == "fadd":
                    def step(af=af, bf=bf, df=df, nxt=nxt):
                        fr[df] = fr[af] + fr[bf]
                        return nxt
                elif name == "fmul":
                    def step(af=af, bf=bf, df=df, nxt=nxt):
                        fr[df] = fr[af] * fr[bf]
                        return nxt
                else:
                    def step(fn=fn, af=af, bf=bf, df=df, nxt=nxt):
                        fr[df] = fn(fr[af], fr[bf])
                        return nxt
            elif name in _FP_COMPARES:
                fn = _FP_COMPARES[name]
                af, bf = s[0] - FP_BASE, s[1] - FP_BASE
                def step(fn=fn, af=af, bf=bf, d=d, nxt=nxt):
                    ir[d] = fn(fr[af], fr[bf])
                    return nxt
            elif name == "fmov":
                af, df = s[0] - FP_BASE, d - FP_BASE
                def step(af=af, df=df, nxt=nxt):
                    fr[df] = fr[af]
                    return nxt
            elif name == "fneg":
                af, df = s[0] - FP_BASE, d - FP_BASE
                def step(af=af, df=df, nxt=nxt):
                    fr[df] = -fr[af]
                    return nxt
            elif name == "cvtif":
                a, df = s[0], d - FP_BASE
                def step(a=a, df=df, nxt=nxt):
                    fr[df] = float(ir[a])
                    return nxt
            elif name == "cvtfi":
                af = s[0] - FP_BASE
                def step(af=af, d=d, nxt=nxt):
                    ir[d] = (int(fr[af]) - imin) % wrap + imin
                    return nxt
            else:  # pragma: no cover - opcode table is closed
                raise ExecutionError(f"unimplemented opcode {name!r}")
            table.append(step)

        end_pc = base + size * INSTRUCTION_BYTES

        def off_segment() -> int:  # pragma: no cover - malformed programs
            raise ExecutionError(f"PC out of code segment: {end_pc:#x}")

        table.append(off_segment)
        return table


def execute(program: Program, max_instructions: int = 1_000_000) -> List[DynInst]:
    """Run *program* to completion (or the cap) and return the full trace."""
    return list(FunctionalExecutor(program, max_instructions).run())

"""µRISC: the small RISC ISA underlying the reproduction.

The paper ran Alpha AXP binaries on a SimpleScalar-derived simulator.
Neither is available here, so this package provides the substitute ISA:
32 integer + 32 fp logical registers, RISC-style arithmetic, loads/stores
and branches, a program builder, a text assembler, and a functional
executor that turns programs into dynamic traces for the timing model.
"""

from .assembler import AssemblerError, assemble
from .disassembler import disassemble, disassemble_instruction
from .executor import ExecutionError, FunctionalExecutor, execute
from .instruction import DynInst, Instruction
from .memory_image import MemoryImage
from .opcodes import OPCODES, OpClass, OpInfo, opinfo
from .program import (CODE_BASE, INSTRUCTION_BYTES, Program, ProgramBuilder,
                      ProgramError)
from .registers import (FP_BASE, NUM_INT_REGS, NUM_LOGICAL_REGS, ZERO_REG,
                        RegisterError, is_fp_reg, is_int_reg, reg_id,
                        reg_name)

__all__ = [
    "AssemblerError", "assemble",
    "disassemble", "disassemble_instruction",
    "ExecutionError", "FunctionalExecutor", "execute",
    "DynInst", "Instruction",
    "MemoryImage",
    "OPCODES", "OpClass", "OpInfo", "opinfo",
    "CODE_BASE", "INSTRUCTION_BYTES", "Program", "ProgramBuilder",
    "ProgramError",
    "FP_BASE", "NUM_INT_REGS", "NUM_LOGICAL_REGS", "ZERO_REG",
    "RegisterError", "is_fp_reg", "is_int_reg", "reg_id", "reg_name",
]

"""Functional data memory for the µRISC executor.

A sparse, idealized memory: each address maps to the last value stored at
it.  The functional executor manipulates values at the granularity the
program chose (``lw``/``sw`` move 4-byte words, ``lb``/``sb`` bytes,
``flw``/``fsw`` 8-byte fp values).  Sub-word aliasing between differently
sized accesses at overlapping addresses is not modelled — the synthetic
workloads never rely on it, and the timing model only needs *addresses*,
which are exact.
"""

from __future__ import annotations

from typing import Dict, Iterable


class MemoryImage:
    """Sparse functional memory with a simple bump allocator.

    The allocator hands out disjoint, aligned regions for the workload
    data segments.  Reads of never-written locations return 0 (integer)
    so that programs are deterministic without full initialization.
    """

    #: Default base address of the data segment; code lives below it.
    DATA_BASE = 0x10_0000

    def __init__(self, data_base: int = DATA_BASE) -> None:
        self._mem: Dict[int, object] = {}
        self._next_free = data_base

    # -- allocation ----------------------------------------------------------

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve *nbytes* of address space and return its base address."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        base = (self._next_free + align - 1) // align * align
        self._next_free = base + nbytes
        return base

    def alloc_words(self, values: Iterable, elem_size: int = 4) -> int:
        """Allocate and initialize an array; returns its base address."""
        values = list(values)
        base = self.alloc(len(values) * elem_size, align=max(elem_size, 1))
        for i, value in enumerate(values):
            self._mem[base + i * elem_size] = value
        return base

    # -- access --------------------------------------------------------------

    def load(self, addr: int):
        """Read the value most recently stored at *addr* (0 if none)."""
        return self._mem.get(addr, 0)

    def store(self, addr: int, value) -> None:
        """Store *value* at *addr*."""
        self._mem[addr] = value

    def __len__(self) -> int:
        return len(self._mem)

    def snapshot(self) -> Dict[int, object]:
        """Copy of the current contents (for tests)."""
        return dict(self._mem)

"""Opcode metadata for the µRISC ISA.

Each opcode carries the static information every other layer needs:

* the **operand signature** used by the program builder and the assembler,
* the **operation class** (:class:`OpClass`) that the timing model maps to
  a functional-unit pool and an execution latency,
* behavioural flags (branch / load / store / fp).

Execution *semantics* live in :mod:`repro.isa.executor`; this module is
pure metadata so that the timing model never imports interpreter code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["OpClass", "OpInfo", "OPCODES", "opinfo"]


class OpClass(enum.Enum):
    """Functional classes an instruction can belong to.

    The class determines which functional-unit pool executes the
    instruction and (together with the processor configuration) its
    execution latency.
    """

    IALU = "ialu"      # integer add/logic/shift/compare and branches
    IMUL = "imul"      # integer multiply (pipelined)
    IDIV = "idiv"      # integer divide/remainder (non-pipelined)
    FALU = "falu"      # fp add/sub/compare/convert/move
    FMUL = "fmul"      # fp multiply (pipelined)
    FDIV = "fdiv"      # fp divide (non-pipelined)
    LOAD = "load"      # memory read (address generation + cache access)
    STORE = "store"    # memory write (address generation; cache at commit)


#: Classes that execute on the integer side of a cluster (consume integer
#: issue slots and integer functional units).
INT_CLASSES = frozenset(
    {OpClass.IALU, OpClass.IMUL, OpClass.IDIV, OpClass.LOAD, OpClass.STORE}
)

#: Classes that execute on the floating-point side of a cluster.
FP_CLASSES = frozenset({OpClass.FALU, OpClass.FMUL, OpClass.FDIV})


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode.

    Attributes:
        name: mnemonic, lower case.
        opclass: functional class, drives FU selection and latency.
        signature: operand kinds in assembly order.  Kinds:
            ``"R"`` destination register, ``"S"`` source register,
            ``"I"`` immediate, ``"L"`` code label (branch/jump target),
            ``"A"`` data label (its address becomes an immediate).
        is_branch: transfers control (conditional or not).
        is_cond_branch: conditional control transfer (direction predicted).
        is_load / is_store: accesses data memory.
        mem_size: access width in bytes for memory ops, else 0.
    """

    name: str
    opclass: OpClass
    signature: Tuple[str, ...]
    is_branch: bool = False
    is_cond_branch: bool = False
    is_load: bool = False
    is_store: bool = False
    mem_size: int = 0

    @property
    def has_dest(self) -> bool:
        """True when the opcode writes a destination register."""
        return "R" in self.signature

    @property
    def num_srcs(self) -> int:
        """Number of register source operands."""
        return sum(1 for kind in self.signature if kind == "S")

    @property
    def is_int(self) -> bool:
        """True when the opcode executes on the integer side."""
        return self.opclass in INT_CLASSES


def _op(name: str, opclass: OpClass, signature: str, **flags) -> OpInfo:
    return OpInfo(name=name, opclass=opclass, signature=tuple(signature), **flags)


#: The full opcode registry, keyed by mnemonic.
OPCODES: Dict[str, OpInfo] = {}


def _register(info: OpInfo) -> None:
    OPCODES[info.name] = info


# --- integer ALU -----------------------------------------------------------
for _name in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
              "slt", "sltu", "min", "max"):
    _register(_op(_name, OpClass.IALU, "RSS"))
for _name in ("addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti"):
    _register(_op(_name, OpClass.IALU, "RSI"))
_register(_op("li", OpClass.IALU, "RI"))
_register(_op("la", OpClass.IALU, "RA"))
_register(_op("mov", OpClass.IALU, "RS"))
_register(_op("nop", OpClass.IALU, ""))

# --- integer multiply / divide --------------------------------------------
_register(_op("mul", OpClass.IMUL, "RSS"))
_register(_op("div", OpClass.IDIV, "RSS"))
_register(_op("rem", OpClass.IDIV, "RSS"))

# --- control flow ----------------------------------------------------------
for _name in ("beq", "bne", "blt", "bge"):
    _register(_op(_name, OpClass.IALU, "SSL",
                  is_branch=True, is_cond_branch=True))
_register(_op("j", OpClass.IALU, "L", is_branch=True))
_register(_op("halt", OpClass.IALU, ""))

# --- memory ----------------------------------------------------------------
_register(_op("lw", OpClass.LOAD, "RSI", is_load=True, mem_size=4))
_register(_op("lb", OpClass.LOAD, "RSI", is_load=True, mem_size=1))
_register(_op("sw", OpClass.STORE, "SSI", is_store=True, mem_size=4))
_register(_op("sb", OpClass.STORE, "SSI", is_store=True, mem_size=1))
_register(_op("flw", OpClass.LOAD, "RSI", is_load=True, mem_size=8))
_register(_op("fsw", OpClass.STORE, "SSI", is_store=True, mem_size=8))

# --- floating point ---------------------------------------------------------
for _name in ("fadd", "fsub"):
    _register(_op(_name, OpClass.FALU, "RSS"))
_register(_op("fmul", OpClass.FMUL, "RSS"))
_register(_op("fdiv", OpClass.FDIV, "RSS"))
_register(_op("fmov", OpClass.FALU, "RS"))
_register(_op("fneg", OpClass.FALU, "RS"))
# fp compares produce an integer 0/1 so that branching stays integer-side.
for _name in ("feq", "flt", "fle"):
    _register(_op(_name, OpClass.FALU, "RSS"))
# conversions
_register(_op("cvtif", OpClass.FALU, "RS"))   # int reg -> fp reg
_register(_op("cvtfi", OpClass.FALU, "RS"))   # fp reg -> int reg


def opinfo(name: str) -> OpInfo:
    """Look up opcode metadata; raises ``KeyError`` with a helpful message."""
    try:
        return OPCODES[name]
    except KeyError:
        raise KeyError(f"unknown opcode {name!r}") from None

"""Per-cluster physical-register free lists (§2.1).

"Each cluster has a free pool of physical registers from where they are
allocated when needed."
"""

from __future__ import annotations

from collections import deque
from typing import Optional

__all__ = ["FreeList"]


class FreeList:
    """FIFO free pool over physical register ids ``0 .. capacity-1``."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("free list capacity must be positive")
        self.capacity = capacity
        self._free = deque(range(capacity))
        self._allocated = [False] * capacity

    def __len__(self) -> int:
        return len(self._free)

    @property
    def available(self) -> int:
        """Number of currently free registers."""
        return len(self._free)

    def alloc(self) -> Optional[int]:
        """Pop a free register id, or ``None`` when the pool is empty."""
        if not self._free:
            return None
        preg = self._free.popleft()
        self._allocated[preg] = True
        return preg

    def free(self, preg: int) -> None:
        """Return *preg* to the pool (double-free is an error)."""
        if not self._allocated[preg]:
            raise ValueError(f"double free of physical register {preg}")
        self._allocated[preg] = False
        self._free.append(preg)

    def is_allocated(self, preg: int) -> bool:
        """True while *preg* is checked out."""
        return self._allocated[preg]

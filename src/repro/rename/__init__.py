"""Register renaming substrate: map table, free lists, rename unit."""

from .free_list import FreeList
from .map_table import MapTable
from .renamer import RenameUnit

__all__ = ["FreeList", "MapTable", "RenameUnit"]

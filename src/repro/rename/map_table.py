"""The N-field register map table of §2.1 / Figure 1.

One entry per logical register with one field per cluster; a valid field
points at the physical register holding (or about to hold) that logical
register's value in that cluster.  Writing a new destination validates
exactly the producing cluster's field and invalidates the rest; replicas
created by copy instructions validate additional fields; the full
previous mapping set (original + replicas) is freed when the *next*
writer of the logical register commits.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

__all__ = ["MapTable"]


class MapTable:
    """Rename map with ``n_clusters`` fields per logical register."""

    def __init__(self, n_logical: int, n_clusters: int) -> None:
        if n_logical <= 0 or n_clusters <= 0:
            raise ValueError("map table dimensions must be positive")
        self.n_logical = n_logical
        self.n_clusters = n_clusters
        self._map: List[List[Optional[int]]] = [
            [None] * n_clusters for _ in range(n_logical)]
        # Steering reads the mapped-cluster view of every source operand
        # of every decoded instruction; the views change only on
        # define/add_replica, so they are cached per logical register.
        self._mapped_cache: List[Optional[List[int]]] = [None] * n_logical
        self._mapped_sets: List[Optional[FrozenSet[int]]] = (
            [None] * n_logical)

    # -- queries --------------------------------------------------------------

    def get(self, logical: int, cluster: int) -> Optional[int]:
        """Physical register of *logical* in *cluster*, or ``None``."""
        return self._map[logical][cluster]

    def is_mapped(self, logical: int, cluster: int) -> bool:
        """True when the (logical, cluster) field is valid."""
        return self._map[logical][cluster] is not None

    def mapped_clusters(self, logical: int) -> List[int]:
        """Clusters where *logical* currently has a valid mapping.

        The returned list is a shared cache entry — treat it as
        read-only.
        """
        cached = self._mapped_cache[logical]
        if cached is None:
            row = self._map[logical]
            cached = [c for c in range(self.n_clusters)
                      if row[c] is not None]
            self._mapped_cache[logical] = cached
        return cached

    def mapped_set(self, logical: int) -> FrozenSet[int]:
        """:meth:`mapped_clusters` as a cached frozenset (steering views)."""
        cached = self._mapped_sets[logical]
        if cached is None:
            cached = frozenset(self.mapped_clusters(logical))
            self._mapped_sets[logical] = cached
        return cached

    def mappings(self, logical: int) -> List[Tuple[int, int]]:
        """All valid (cluster, preg) pairs of *logical*."""
        row = self._map[logical]
        return [(c, row[c]) for c in range(self.n_clusters)
                if row[c] is not None]

    # -- updates --------------------------------------------------------------

    def define(self, logical: int, cluster: int,
               preg: int) -> List[Tuple[int, int]]:
        """Install a new destination mapping.

        Validates field *cluster* with *preg*, invalidates every other
        field, and returns the complete previous mapping set — the
        physical registers the renamer must free when this writer
        commits (Figure 1(c) semantics).
        """
        previous = self.mappings(logical)
        row = self._map[logical]
        for c in range(self.n_clusters):
            row[c] = None
        row[cluster] = preg
        self._mapped_cache[logical] = None
        self._mapped_sets[logical] = None
        return previous

    def add_replica(self, logical: int, cluster: int, preg: int) -> None:
        """Validate an additional field for a copy-created replica."""
        if self._map[logical][cluster] is not None:
            raise ValueError(
                f"logical r{logical} already mapped in cluster {cluster}")
        self._map[logical][cluster] = preg
        self._mapped_cache[logical] = None
        self._mapped_sets[logical] = None

    def live_pregs(self, cluster: int) -> List[int]:
        """Physical registers of *cluster* referenced by valid fields."""
        return [row[cluster] for row in self._map
                if row[cluster] is not None]

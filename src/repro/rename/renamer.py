"""Rename unit: map table + free lists + Figure 1 lifecycle.

The cycle-level core drives this unit at decode: it pre-checks that
every allocation an instruction needs (destination register plus one
replica per remote source that requires a copy) can be satisfied, then
performs them.  Physical registers are freed when the next writer of
the same logical register commits, releasing the whole previous mapping
set (the original plus any replicas), exactly as §2.1 describes.

Like the paper's SimpleScalar substrate (and the Alpha it modelled),
physical registers come in separate **integer and floating-point banks**
of ``pregs_per_bank`` registers each per cluster (Table 1's "register
file sizes 128/80/56").  Bank is determined by the logical register:
ids below ``FP_BASE`` are integer.  Physical ids are bank-offset:
integer registers occupy ``[0, pregs_per_bank)`` and fp registers
``[pregs_per_bank, 2*pregs_per_bank)``, so one scoreboard per cluster
covers both banks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.registers import is_fp_reg
from .free_list import FreeList
from .map_table import MapTable

__all__ = ["RenameUnit"]

INT_BANK = 0
FP_BANK = 1


class RenameUnit:
    """Owns the map table and the per-cluster, per-bank free pools.

    At reset every logical register receives one valid mapping; the
    mappings are spread round-robin over the clusters so no single free
    pool starts depleted.
    """

    def __init__(self, n_logical: int, n_clusters: int,
                 pregs_per_bank: int) -> None:
        self.n_logical = n_logical
        self.n_clusters = n_clusters
        self.pregs_per_bank = pregs_per_bank
        self.map_table = MapTable(n_logical, n_clusters)
        self._free: List[List[FreeList]] = [
            [FreeList(pregs_per_bank), FreeList(pregs_per_bank)]
            for _ in range(n_clusters)]
        self._initial: List[Tuple[int, int, int]] = []
        for logical in range(n_logical):
            cluster = logical % n_clusters
            preg = self._alloc(logical, cluster)
            if preg is None:  # pragma: no cover - config validation prevents
                raise ValueError("register file too small for the initial "
                                 "architectural mapping")
            self.map_table.define(logical, cluster, preg)
            self._initial.append((logical, cluster, preg))

    # -- bank plumbing -----------------------------------------------------------

    @staticmethod
    def bank_of(logical: int) -> int:
        """INT_BANK or FP_BANK for a logical register id."""
        return FP_BANK if is_fp_reg(logical) else INT_BANK

    def _alloc(self, logical: int, cluster: int) -> Optional[int]:
        bank = self.bank_of(logical)
        preg = self._free[cluster][bank].alloc()
        if preg is None:
            return None
        return preg + bank * self.pregs_per_bank

    def _release_one(self, cluster: int, preg: int) -> None:
        bank, index = divmod(preg, self.pregs_per_bank)
        self._free[cluster][bank].free(index)

    # -- queries used by steering and decode ------------------------------------

    def initial_mappings(self) -> List[Tuple[int, int, int]]:
        """The reset-time (logical, cluster, preg) triples."""
        return list(self._initial)

    def free_count(self, cluster: int, bank: int) -> int:
        """Free physical registers remaining in one bank of *cluster*."""
        return self._free[cluster][bank].available

    def mapped_clusters(self, logical: int) -> List[int]:
        """Where *logical* currently has valid mappings (shared cache —
        read-only)."""
        return self.map_table.mapped_clusters(logical)

    def mapped_set(self, logical: int):
        """Cached frozenset view of :meth:`mapped_clusters`."""
        return self.map_table.mapped_set(logical)

    def mapping(self, logical: int, cluster: int) -> Optional[int]:
        """Physical register of *logical* in *cluster* (or ``None``)."""
        return self.map_table.get(logical, cluster)

    # -- allocations -------------------------------------------------------------

    def alloc_replica(self, logical: int, cluster: int) -> int:
        """Allocate the destination of a copy and validate its field.

        Callers must have verified :meth:`free_count`; an empty pool
        here is a core sequencing bug, not a simulated stall.
        """
        preg = self._alloc(logical, cluster)
        if preg is None:
            raise RuntimeError(
                f"alloc_replica on empty free list of cluster {cluster}; "
                f"the decode stage must pre-check free_count()")
        self.map_table.add_replica(logical, cluster, preg)
        return preg

    def define_dest(self, logical: int, cluster: int
                    ) -> Tuple[int, List[Tuple[int, int]]]:
        """Allocate a destination register and install its mapping.

        Returns ``(preg, previous_mappings)``; the previous mappings
        must be freed when this instruction commits.
        """
        preg = self._alloc(logical, cluster)
        if preg is None:
            raise RuntimeError(
                f"define_dest on empty free list of cluster {cluster}; "
                f"the decode stage must pre-check free_count()")
        previous = self.map_table.define(logical, cluster, preg)
        return preg, previous

    # -- commit-time release -------------------------------------------------------

    def release(self, mappings: List[Tuple[int, int]]) -> None:
        """Free a previous mapping set at the writer's commit."""
        for cluster, preg in mappings:
            self._release_one(cluster, preg)

    # -- audits (tests) -------------------------------------------------------------

    def allocated_counts(self) -> Dict[Tuple[int, int], int]:
        """Allocated register counts per (cluster, bank) for invariants."""
        return {(c, bank): self.pregs_per_bank - self._free[c][bank].available
                for c in range(self.n_clusters) for bank in (0, 1)}

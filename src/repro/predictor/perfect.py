"""Perfect value predictor — the upper bound of Figure 3.

Always predicts the architecturally correct value with full confidence.
The core still restricts prediction to integer operands, which is why
the paper's perfect-prediction communication rate is not zero
("Communications are not zero because of fp values", §3.3).
"""

from __future__ import annotations

from .base import Prediction, ValuePredictor

__all__ = ["PerfectPredictor"]


class PerfectPredictor(ValuePredictor):
    """Oracle predictor: value = actual, always confident."""

    def predict(self, pc: int, slot: int, actual: int) -> Prediction:
        return self._record(Prediction(actual, True), actual)

    def update(self, pc: int, slot: int, actual: int) -> None:
        pass

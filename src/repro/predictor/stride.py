"""The paper's stride value predictor (§2.2).

An untagged, direct-mapped table indexed by the PC and the operand slot
(left/right).  "Each entry contains the last value, the last observed
stride and a 2-bit counter that assigns confidence to the prediction."
The predicted value is ``last_value + stride``; the prediction is used
when the counter is greater than 1.

Two update disciplines are provided:

* **two-delta** (default): the predicting stride is only replaced after
  the same new stride has been observed twice in a row (Sazeides &
  Smith — the paper's own reference [19]); a replaced stride restarts
  the confidence counter.  This keeps one-off stride breaks (loop
  restarts, pointer rewinds) from poisoning the predicting stride, and
  was the standard stride predictor design by 2000.
* **naive** (``two_delta=False``): the stride is replaced on every
  mismatch, the literal reading of the paper's 3-field entry.  Exposed
  for the predictor ablation benchmark.

Because the table is untagged, small tables alias different static
operands onto the same entry — this is what degrades the 1K-entry
configurations of Figure 5.
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import Prediction, ValuePredictor

__all__ = ["StridePredictor"]

_WRAP = 1 << 64
_INT_MIN = -(1 << 63)


def _wrap64(value: int) -> int:
    return (value - _INT_MIN) % _WRAP + _INT_MIN


class StridePredictor(ValuePredictor):
    """Stride predictor with 2-bit confidence counters.

    Args:
        entries: table size (power of two); the paper sweeps 1K..128K.
        confidence_threshold: counter value above which a prediction is
            confident (paper: "greater than 1").
        two_delta: use the two-delta stride update (see module docs).
    """

    def __init__(self, entries: int = 128 * 1024,
                 confidence_threshold: int = 1,
                 two_delta: bool = True) -> None:
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(
                f"entries must be a power of two, got {entries}")
        self.entries = entries
        self.confidence_threshold = confidence_threshold
        self.two_delta = two_delta
        self._mask = entries - 1
        self._last = [0] * entries
        self._stride = [0] * entries
        self._prev_stride = [0] * entries
        self._counter = [0] * entries

    def _index(self, pc: int, slot: int) -> int:
        return (((pc >> 2) << 1) | (slot & 1)) & self._mask

    def predict(self, pc: int, slot: int, actual: int) -> Prediction:
        index = self._index(pc, slot)
        predicted = _wrap64(self._last[index] + self._stride[index])
        confident = self._counter[index] > self.confidence_threshold
        return self._record(Prediction(predicted, confident), actual)

    def update(self, pc: int, slot: int, actual: int) -> None:
        index = self._index(pc, slot)
        new_stride = _wrap64(actual - self._last[index])
        if new_stride == self._stride[index]:
            if self._counter[index] < 3:
                self._counter[index] += 1
        elif self.two_delta:
            if new_stride == self._prev_stride[index]:
                # Seen twice in a row: adopt it, confidence restarts.
                self._stride[index] = new_stride
                self._counter[index] = 1
            elif self._counter[index] > 0:
                self._counter[index] -= 1
        else:
            self._stride[index] = new_stride
            if self._counter[index] > 0:
                self._counter[index] -= 1
        self._prev_stride[index] = new_stride
        self._last[index] = actual

    def predict_update(self, pc: int, slot: int, actual: int) -> Prediction:
        """Fused lookup + two-delta training in a single table walk.

        Exactly ``predict`` followed by ``update`` (the two read the
        same entry), folded together for the decode hot path.
        """
        index = (((pc >> 2) << 1) | (slot & 1)) & self._mask
        last = self._last[index]
        stride = self._stride[index]
        counter = self._counter[index]
        predicted = (last + stride - _INT_MIN) % _WRAP + _INT_MIN
        confident = counter > self.confidence_threshold
        stats = self.stats
        stats.lookups += 1
        if confident:
            stats.confident += 1
            if predicted == actual:
                stats.confident_correct += 1
        new_stride = (actual - last - _INT_MIN) % _WRAP + _INT_MIN
        if new_stride == stride:
            if counter < 3:
                self._counter[index] = counter + 1
        elif self.two_delta:
            if new_stride == self._prev_stride[index]:
                # Seen twice in a row: adopt it, confidence restarts.
                self._stride[index] = new_stride
                self._counter[index] = 1
            elif counter > 0:
                self._counter[index] = counter - 1
        else:
            self._stride[index] = new_stride
            if counter > 0:
                self._counter[index] = counter - 1
        self._prev_stride[index] = new_stride
        self._last[index] = actual
        return Prediction(predicted, confident)

    def trainer(self, pc: int, slot: int):
        """A pre-bound ``train(actual)`` closure for one static operand.

        State evolution is exactly :meth:`update` for this ``(pc,
        slot)``; the table index and list handles are resolved once at
        bind time, so the functional-warming fast path pays no index
        arithmetic or attribute lookups per call.  Stats are *not*
        recorded — training observes the committed stream, it does not
        predict.
        """
        index = self._index(pc, slot)
        last, stride = self._last, self._stride
        prev, counter = self._prev_stride, self._counter
        if self.two_delta:
            def train(actual, index=index, last=last, stride=stride,
                      prev=prev, counter=counter):
                new_stride = (actual - last[index] - _INT_MIN) % _WRAP \
                    + _INT_MIN
                if new_stride == stride[index]:
                    c = counter[index]
                    if c < 3:
                        counter[index] = c + 1
                elif new_stride == prev[index]:
                    stride[index] = new_stride
                    counter[index] = 1
                else:
                    c = counter[index]
                    if c > 0:
                        counter[index] = c - 1
                prev[index] = new_stride
                last[index] = actual
        else:
            def train(actual, index=index, last=last, stride=stride,
                      prev=prev, counter=counter):
                new_stride = (actual - last[index] - _INT_MIN) % _WRAP \
                    + _INT_MIN
                if new_stride == stride[index]:
                    c = counter[index]
                    if c < 3:
                        counter[index] = c + 1
                else:
                    stride[index] = new_stride
                    c = counter[index]
                    if c > 0:
                        counter[index] = c - 1
                prev[index] = new_stride
                last[index] = actual
        return train

    def entry(self, pc: int, slot: int) -> tuple:
        """(last, stride, counter) for tests and introspection."""
        index = self._index(pc, slot)
        return (self._last[index], self._stride[index], self._counter[index])

"""Context-based (FCM) and hybrid value predictors.

The paper closes §3.3 noting that "the performance of the VPB scheme may
significantly be improved by a more effective predictor" and §6 repeats
that its stride predictor is deliberately simple.  These predictors are
the natural next step the authors point at (Sazeides & Smith's
finite-context-method family — their own reference [19]):

* :class:`ContextPredictor` — a two-level FCM: a first-level table maps
  (PC, slot) to a hash of the last *order* values; a second-level table
  maps that history to the predicted next value with a 2-bit counter.
  Catches repeating non-arithmetic sequences (table walks, cyclic
  coefficients) that stride prediction cannot.
* :class:`HybridPredictor` — stride + context with a per-entry 2-bit
  chooser trained toward whichever component was right, the classic
  tournament arrangement.
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import Prediction, ValuePredictor
from .stride import StridePredictor

__all__ = ["ContextPredictor", "HybridPredictor"]

_MASK64 = (1 << 64) - 1


def _mix(history: int, value: int) -> int:
    """Fold a value into a history hash (xor-rotate, cheap in hardware)."""
    folded = (value ^ (value >> 16) ^ (value >> 32)) & 0xFFFF
    return ((history << 5) ^ folded) & _MASK64


class ContextPredictor(ValuePredictor):
    """Two-level finite-context-method predictor.

    Args:
        l1_entries: first-level (history) table size, power of two.
        l2_entries: second-level (value) table size, power of two.
        order: values of history folded into the hash.
        confidence_threshold: counter value above which predictions are
            used (2-bit counter, like the paper's stride predictor).
    """

    def __init__(self, l1_entries: int = 16 * 1024,
                 l2_entries: int = 64 * 1024, order: int = 2,
                 confidence_threshold: int = 1) -> None:
        super().__init__()
        for name, entries in (("l1_entries", l1_entries),
                              ("l2_entries", l2_entries)):
            if entries <= 0 or entries & (entries - 1):
                raise ConfigError(f"{name} must be a power of two")
        if order < 1:
            raise ConfigError("order must be >= 1")
        self.order = order
        self.confidence_threshold = confidence_threshold
        self._l1_mask = l1_entries - 1
        self._l2_mask = l2_entries - 1
        self._history = [0] * l1_entries
        self._value = [0] * l2_entries
        self._counter = [0] * l2_entries

    def _l1_index(self, pc: int, slot: int) -> int:
        return (((pc >> 2) << 1) | (slot & 1)) & self._l1_mask

    def _l2_index(self, history: int) -> int:
        return history & self._l2_mask

    def predict(self, pc: int, slot: int, actual: int) -> Prediction:
        history = self._history[self._l1_index(pc, slot)]
        index = self._l2_index(history)
        prediction = Prediction(self._value[index],
                                self._counter[index]
                                > self.confidence_threshold)
        return self._record(prediction, actual)

    def update(self, pc: int, slot: int, actual: int) -> None:
        l1 = self._l1_index(pc, slot)
        history = self._history[l1]
        index = self._l2_index(history)
        if self._value[index] == actual:
            if self._counter[index] < 3:
                self._counter[index] += 1
        else:
            if self._counter[index] > 0:
                self._counter[index] -= 1
            else:
                self._value[index] = actual
        self._history[l1] = _mix(history, actual)


class HybridPredictor(ValuePredictor):
    """Stride/context tournament predictor with a per-entry chooser.

    The chooser (2-bit counter per (PC, slot)) trains toward the
    component that predicted correctly when the two disagree; the
    offered prediction is the chosen component's, confident only when
    that component is confident.
    """

    def __init__(self, stride_entries: int = 64 * 1024,
                 context_l1: int = 16 * 1024,
                 context_l2: int = 64 * 1024,
                 chooser_entries: int = 16 * 1024) -> None:
        super().__init__()
        if chooser_entries <= 0 or chooser_entries & (chooser_entries - 1):
            raise ConfigError("chooser_entries must be a power of two")
        self.stride = StridePredictor(stride_entries)
        self.context = ContextPredictor(context_l1, context_l2)
        self._chooser_mask = chooser_entries - 1
        # 0..3; >= 2 prefers the context component.
        self._chooser = [1] * chooser_entries

    def _chooser_index(self, pc: int, slot: int) -> int:
        return (((pc >> 2) << 1) | (slot & 1)) & self._chooser_mask

    def predict(self, pc: int, slot: int, actual: int) -> Prediction:
        stride_pred = self.stride.predict(pc, slot, actual)
        context_pred = self.context.predict(pc, slot, actual)
        use_context = self._chooser[self._chooser_index(pc, slot)] >= 2
        chosen = context_pred if use_context else stride_pred
        return self._record(Prediction(chosen.value, chosen.confident),
                            actual)

    def update(self, pc: int, slot: int, actual: int) -> None:
        index = self._chooser_index(pc, slot)
        stride_right = (self.stride.predict(pc, slot, actual).value
                        == actual)
        context_right = (self.context.predict(pc, slot, actual).value
                         == actual)
        if stride_right != context_right:
            counter = self._chooser[index]
            if context_right and counter < 3:
                self._chooser[index] = counter + 1
            elif stride_right and counter > 0:
                self._chooser[index] = counter - 1
        self.stride.update(pc, slot, actual)
        self.context.update(pc, slot, actual)

"""Value predictors: the paper's stride predictor plus oracle/null bounds."""

from .base import NullPredictor, Prediction, ValuePredictor, ValuePredictorStats
from .context import ContextPredictor, HybridPredictor
from .perfect import PerfectPredictor
from .stride import StridePredictor

__all__ = ["NullPredictor", "Prediction", "ValuePredictor",
           "ValuePredictorStats", "ContextPredictor", "HybridPredictor",
           "PerfectPredictor", "StridePredictor"]

"""Value-predictor interface and statistics.

The paper (§2.2) predicts the **source operands** of instructions: the
prediction table is "indexed by the PC and the operand order
(left/right)".  Lookups and updates both happen at decode, and a
prediction is *confident* — and therefore actually used for speculative
dispatch — when its 2-bit counter is greater than 1.

Only integer operands are predicted ("fp values ... are not considered
by our predictor", §3.3); the core enforces this, so implementations may
assume integer values.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Prediction", "ValuePredictor", "NullPredictor",
           "ValuePredictorStats"]


class Prediction(NamedTuple):
    """Outcome of a decode-time lookup.

    Attributes:
        value: the predicted operand value.
        confident: True when the confidence counter clears the paper's
            threshold (counter > 1) and the prediction may be used.
    """

    value: int
    confident: bool


class ValuePredictorStats:
    """Aggregate accuracy counters, matching Figure 5(b)'s metrics.

    *confident* / *lookups* is the fraction of values for which a
    prediction was offered; ``1 -`` that fraction is the paper's
    "predicted value was not used because it was not confident".
    *confident_correct* / *confident* is the paper's **hit ratio**
    ("correctly predicted values over predicted values").
    """

    __slots__ = ("lookups", "confident", "confident_correct")

    def __init__(self) -> None:
        self.lookups = 0
        self.confident = 0
        self.confident_correct = 0

    def record(self, confident: bool, correct: bool) -> None:
        self.lookups += 1
        if confident:
            self.confident += 1
            if correct:
                self.confident_correct += 1

    @property
    def confident_fraction(self) -> float:
        """Fraction of lookups that produced a usable prediction."""
        return self.confident / self.lookups if self.lookups else 0.0

    @property
    def hit_ratio(self) -> float:
        """Correct confident predictions over confident predictions."""
        return (self.confident_correct / self.confident
                if self.confident else 0.0)


class ValuePredictor:
    """Interface all value predictors implement.

    ``predict`` receives the architecturally correct value so that (a)
    the perfect predictor can be expressed and (b) accuracy statistics
    are collected in one place.  Real predictors must not peek at it
    when forming the prediction.
    """

    def __init__(self) -> None:
        self.stats = ValuePredictorStats()

    def predict(self, pc: int, slot: int, actual: int) -> Prediction:
        """Decode-time lookup for operand *slot* of the instruction at *pc*."""
        raise NotImplementedError

    def update(self, pc: int, slot: int, actual: int) -> None:
        """Decode-time training with the correct operand value."""
        raise NotImplementedError

    def predict_update(self, pc: int, slot: int, actual: int) -> Prediction:
        """Fused lookup + training — the decode stage's hot-path entry.

        Semantically identical to ``predict`` followed by ``update``;
        implementations may override it to do both in one table walk.
        """
        prediction = self.predict(pc, slot, actual)
        self.update(pc, slot, actual)
        return prediction

    def _record(self, prediction: Prediction, actual: int) -> Prediction:
        self.stats.record(prediction.confident, prediction.value == actual)
        return prediction


class NullPredictor(ValuePredictor):
    """Never offers a prediction — the paper's "no predict" configurations."""

    def predict(self, pc: int, slot: int, actual: int) -> Prediction:
        return self._record(Prediction(0, False), actual)

    def update(self, pc: int, slot: int, actual: int) -> None:
        pass

"""Processor front end: branch prediction and the fetch engine."""

from .btb import BranchTargetBuffer
from .branch_predictor import (BimodalPredictor, BranchPredictorStats,
                               CombinedPredictor, GsharePredictor,
                               TakenPredictor)
from .fetch import FetchEngine, FetchedInst

__all__ = ["BranchTargetBuffer", "BimodalPredictor", "BranchPredictorStats", "CombinedPredictor",
           "GsharePredictor", "TakenPredictor", "FetchEngine", "FetchedInst"]

"""Branch target buffer.

The paper's parameters (Table 1) specify only the direction predictor,
so the fetch engine defaults to perfect targets (DESIGN.md §3 lists the
idealization).  This optional BTB removes it: taken control transfers
whose target is not cached stall fetch until the branch resolves, the
same penalty as a direction misprediction.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["BranchTargetBuffer"]


class BranchTargetBuffer:
    """Direct-mapped, tagged target cache."""

    def __init__(self, entries: int = 2048) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self.entries = entries
        self._mask = entries - 1
        self._tags: List[Optional[int]] = [None] * entries
        self._targets: List[int] = [0] * entries
        self.lookups = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def lookup(self, pc: int) -> Optional[int]:
        """Cached target of the branch at *pc*, or ``None`` on a miss."""
        self.lookups += 1
        index = self._index(pc)
        if self._tags[index] == pc:
            return self._targets[index]
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of a taken control transfer."""
        index = self._index(pc)
        self._tags[index] = pc
        self._targets[index] = target

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0

"""Branch direction predictors.

Table 1 of the paper: "Combined predictor of 1K entries with a Gshare
with 64K 2-bit counters, 16 bit global history, and a bimodal predictor
of 2K entries with 2-bit counters."

All predictors share the classic 2-bit saturating-counter discipline
(predict taken when the counter is >= 2).  Branch *targets* are assumed
perfect (no BTB); only conditional-branch direction is predicted — the
standard simplification for trace-driven simulation, applied uniformly
to every configuration (see DESIGN.md §3).
"""

from __future__ import annotations

from typing import List

__all__ = ["BimodalPredictor", "GsharePredictor", "CombinedPredictor",
           "BranchPredictorStats", "TakenPredictor"]


def _check_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")


class BranchPredictorStats:
    """Direction-prediction counters."""

    __slots__ = ("lookups", "mispredictions")

    def __init__(self) -> None:
        self.lookups = 0
        self.mispredictions = 0

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups


class _CounterTable:
    """A table of 2-bit saturating counters, initialized weakly taken."""

    __slots__ = ("counters", "mask")

    def __init__(self, entries: int) -> None:
        _check_power_of_two(entries, "predictor entries")
        self.counters: List[int] = [2] * entries
        self.mask = entries - 1

    def predict(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self.mask
        counter = self.counters[index]
        if taken:
            if counter < 3:
                self.counters[index] = counter + 1
        elif counter > 0:
            self.counters[index] = counter - 1


class BimodalPredictor:
    """PC-indexed table of 2-bit counters (paper: 2K entries)."""

    def __init__(self, entries: int = 2048) -> None:
        self._table = _CounterTable(entries)
        self.stats = BranchPredictorStats()

    def _index(self, pc: int) -> int:
        return pc >> 2

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc*."""
        return self._table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved direction."""
        self.stats.lookups += 1
        if self._table.predict(self._index(pc)) != taken:
            self.stats.mispredictions += 1
        self._table.update(self._index(pc), taken)


class GsharePredictor:
    """Gshare: PC xor global-history indexed counters (paper: 64K, 16-bit)."""

    def __init__(self, entries: int = 64 * 1024,
                 history_bits: int = 16) -> None:
        self._table = _CounterTable(entries)
        self._history_mask = (1 << history_bits) - 1
        self.history = 0
        self.stats = BranchPredictorStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) ^ self.history

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        self.stats.lookups += 1
        if self._table.predict(index) != taken:
            self.stats.mispredictions += 1
        self._table.update(index, taken)
        self.history = ((self.history << 1) | int(taken)) & self._history_mask


class CombinedPredictor:
    """McFarling-style combined predictor (the paper's configuration).

    A 1K-entry chooser of 2-bit counters selects between gshare and
    bimodal per branch; the chooser trains toward whichever component
    was right when they disagree.
    """

    def __init__(self, chooser_entries: int = 1024,
                 gshare_entries: int = 64 * 1024, history_bits: int = 16,
                 bimodal_entries: int = 2048) -> None:
        self.gshare = GsharePredictor(gshare_entries, history_bits)
        self.bimodal = BimodalPredictor(bimodal_entries)
        self._chooser = _CounterTable(chooser_entries)
        self.stats = BranchPredictorStats()

    def predict(self, pc: int) -> bool:
        if self._chooser.predict(pc >> 2):
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        gshare_pred = self.gshare.predict(pc)
        bimodal_pred = self.bimodal.predict(pc)
        chose_gshare = self._chooser.predict(pc >> 2)
        prediction = gshare_pred if chose_gshare else bimodal_pred
        self.stats.lookups += 1
        if prediction != taken:
            self.stats.mispredictions += 1
        if gshare_pred != bimodal_pred:
            self._chooser.update(pc >> 2, gshare_pred == taken)
        self.gshare.update(pc, taken)
        self.bimodal.update(pc, taken)

    def trainer(self, pc: int):
        """A pre-bound ``train(taken)`` closure for one static branch.

        Evolves chooser/gshare/bimodal counters and the global history
        exactly as :meth:`update` does for this ``pc``; the three table
        indices (bar gshare's history xor) are resolved at bind time.
        Stats are *not* recorded — training observes the committed
        stream, it does not predict.
        """
        gshare = self.gshare
        gshare_counters = gshare._table.counters
        gshare_mask = gshare._table.mask
        history_mask = gshare._history_mask
        bimodal_counters = self.bimodal._table.counters
        bimodal_index = (pc >> 2) & self.bimodal._table.mask
        chooser_counters = self._chooser.counters
        chooser_index = (pc >> 2) & self._chooser.mask
        gshare_pc = pc >> 2

        def train(taken, gshare=gshare, gt=gshare_counters,
                  gmask=gshare_mask, hmask=history_mask,
                  bt=bimodal_counters, bi=bimodal_index,
                  ct=chooser_counters, ci=chooser_index, gpc=gshare_pc):
            history = gshare.history
            gi = (gpc ^ history) & gmask
            gshare_pred = gt[gi] >= 2
            bimodal_pred = bt[bi] >= 2
            if gshare_pred != bimodal_pred:
                c = ct[ci]
                if gshare_pred == taken:
                    if c < 3:
                        ct[ci] = c + 1
                elif c > 0:
                    ct[ci] = c - 1
            c = gt[gi]
            if taken:
                if c < 3:
                    gt[gi] = c + 1
            elif c > 0:
                gt[gi] = c - 1
            gshare.history = ((history << 1) | taken) & hmask
            c = bt[bi]
            if taken:
                if c < 3:
                    bt[bi] = c + 1
            elif c > 0:
                bt[bi] = c - 1
        return train


class TakenPredictor:
    """Always predicts taken — a degenerate baseline for tests/ablations."""

    def __init__(self) -> None:
        self.stats = BranchPredictorStats()

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        self.stats.lookups += 1
        if not taken:
            self.stats.mispredictions += 1

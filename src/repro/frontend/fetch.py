"""Fetch engine: turns the dynamic trace into per-cycle fetch groups.

Models the paper's centralized, aggressive front end: up to ``width``
instructions per cycle, I-cache stalls on line misses, and — this being
a trace-driven simulator — a fetch *stall* from a mispredicted
conditional branch until the core reports the branch resolved (plus one
redirect cycle).  Fetch may continue past taken branches in the same
cycle ("aggressive instruction fetch mechanism", §2).

Fetched instructions enter an internal fetch buffer; the decode stage
drains instructions one cycle after they were fetched ("value
predictions are available 1 cycle after the fetch, i.e. at the decode
stage" relies on this spacing).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, List, Optional

from ..isa.instruction import DynInst

__all__ = ["FetchEngine", "FetchedInst"]


class FetchedInst:
    """A trace instruction annotated with front-end outcomes."""

    __slots__ = ("dyn", "fetch_cycle", "mispredicted")

    def __init__(self, dyn: DynInst, fetch_cycle: int,
                 mispredicted: bool) -> None:
        self.dyn = dyn
        self.fetch_cycle = fetch_cycle
        self.mispredicted = mispredicted


class FetchEngine:
    """Per-cycle instruction supply for the decode stage.

    Args:
        trace: iterator of :class:`DynInst` in commit order.
        icache_access: callable ``pc -> latency`` (the L1I access).
        branch_predictor: object with ``predict(pc)`` / ``update(pc, taken)``.
        width: fetch width (instructions per cycle).
        buffer_capacity: fetch-buffer depth decoupling fetch from decode.
        icache_hit_time: latency treated as "no stall".
    """

    def __init__(self, trace: Iterator[DynInst],
                 icache_access: Callable[[int], int],
                 branch_predictor, width: int = 8,
                 buffer_capacity: int = 16,
                 icache_hit_time: int = 1,
                 btb=None) -> None:
        self._trace = iter(trace)
        self._icache_access = icache_access
        self._bpred = branch_predictor
        #: Optional BranchTargetBuffer; None models perfect targets.
        self._btb = btb
        self.width = width
        self.buffer_capacity = buffer_capacity
        self._hit_time = icache_hit_time
        self._buffer: deque = deque()
        self._lookahead: Optional[DynInst] = self._advance()
        self._stalled_until = 0
        self._waiting_branch: Optional[int] = None  # seq of unresolved branch
        self._last_line: Optional[int] = None
        self.fetched_count = 0
        self.branch_stall_cycles = 0
        self.icache_stall_cycles = 0

    # -- trace plumbing -------------------------------------------------------

    def _advance(self) -> Optional[DynInst]:
        try:
            return next(self._trace)
        except StopIteration:
            return None

    @property
    def trace_exhausted(self) -> bool:
        """True once every trace instruction has been fetched."""
        return self._lookahead is None

    @property
    def done(self) -> bool:
        """True when nothing remains to fetch or decode."""
        return self._lookahead is None and not self._buffer

    # -- per-cycle operation ---------------------------------------------------

    def tick(self, cycle: int) -> int:
        """Fetch this cycle's group into the buffer; returns the count."""
        if self._waiting_branch is not None:
            self.branch_stall_cycles += 1
            return 0
        if cycle < self._stalled_until:
            self.icache_stall_cycles += 1
            return 0
        fetched = 0
        while (fetched < self.width and self._lookahead is not None
               and len(self._buffer) < self.buffer_capacity):
            dyn = self._lookahead
            line = dyn.pc >> 5  # any fixed granularity works; L1I decides
            if line != self._last_line:
                latency = self._icache_access(dyn.pc)
                self._last_line = line
                if latency > self._hit_time:
                    # Miss: this group ends here; fetch resumes after the
                    # line arrives.  The missing instruction stays in the
                    # lookahead and is fetched first after the stall.
                    self._stalled_until = cycle + latency
                    break
            mispredicted = False
            if dyn.is_cond_branch:
                prediction = self._bpred.predict(dyn.pc)
                self._bpred.update(dyn.pc, dyn.taken)
                mispredicted = prediction != dyn.taken
                if (not mispredicted and prediction
                        and self._needs_btb(dyn)):
                    mispredicted = True   # taken but target unknown
            elif dyn.is_branch and self._needs_btb(dyn):
                mispredicted = True       # unconditional, target unknown
            self._buffer.append(FetchedInst(dyn, cycle, mispredicted))
            self._lookahead = self._advance()
            fetched += 1
            self.fetched_count += 1
            if mispredicted:
                self._waiting_branch = dyn.seq
                break
        return fetched

    def take_decodable(self, cycle: int, max_count: int) -> List[FetchedInst]:
        """Pop up to *max_count* instructions fetched before *cycle*."""
        group: List[FetchedInst] = []
        while (self._buffer and len(group) < max_count
               and self._buffer[0].fetch_cycle < cycle):
            group.append(self._buffer.popleft())
        return group

    def peek_decodable(self, cycle: int) -> Optional[FetchedInst]:
        """Front of the buffer if decodable this cycle, else ``None``."""
        if self._buffer and self._buffer[0].fetch_cycle < cycle:
            return self._buffer[0]
        return None

    def pop_one(self) -> FetchedInst:
        """Pop the front instruction (pair with :meth:`peek_decodable`)."""
        return self._buffer.popleft()

    def _needs_btb(self, dyn: DynInst) -> bool:
        """True when a taken transfer's target is not in the BTB.

        With no BTB configured, targets are perfect (the paper's
        unstated assumption).  The BTB trains at fetch with the actual
        target, mirroring the speculative direction-predictor update.
        """
        if self._btb is None:
            return False
        cached = self._btb.lookup(dyn.pc)
        if dyn.taken:
            self._btb.update(dyn.pc, dyn.target)
        return cached != dyn.target

    def branch_resolved(self, seq: int, cycle: int) -> None:
        """Core notification: the mispredicted branch *seq* resolved.

        Fetch resumes the cycle after resolution (one redirect cycle).
        """
        if self._waiting_branch == seq:
            self._waiting_branch = None
            self._stalled_until = max(self._stalled_until, cycle + 1)
            self._last_line = None  # redirect refetches the target line

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-workloads`` — the Table 2 stand-in suite.
* ``simulate`` — one (workload, configuration) run with a summary.
* ``figure2`` / ``figure3`` / ``figure4a`` / ``figure4b`` / ``figure5``
  — regenerate one paper figure as an ASCII report.
* ``headline`` — the §6 paper-vs-measured summary table.
* ``ablations`` — the §3.2/§3.3 side experiments plus this repo's own
  predictor and free-copy ablations.

Every figure command honours ``--workloads`` and ``--length`` (and the
``REPRO_WORKLOADS`` / ``REPRO_TRACE_LEN`` environment variables).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import analysis
from .core import make_config, simulate
from .workloads import SUITE, workload_names, workload_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Reducing Wire Delay Penalty "
                    "through Value Prediction' (MICRO-33, 2000).")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="show the Table 2 suite")

    sim = sub.add_parser("simulate", help="run one configuration")
    sim.add_argument("workload", choices=workload_names())
    sim.add_argument("--clusters", type=int, default=4, choices=(1, 2, 4))
    sim.add_argument("--predictor", default="none",
                     choices=("none", "stride", "context", "hybrid",
                              "perfect"))
    sim.add_argument("--steering", default="baseline",
                     choices=("baseline", "modified", "vpb", "round-robin",
                              "balance-only", "dependence-only"))
    sim.add_argument("--length", type=int, default=12_000,
                     help="dynamic instructions to simulate")
    sim.add_argument("--comm-latency", type=int, default=1)
    sim.add_argument("--paths", type=int, default=None,
                     help="interconnect paths per cluster (default: "
                          "unbounded)")

    for name, help_text in (
            ("figure2", "IPC of 1/2/4 clusters, +/- value prediction"),
            ("figure3", "Baseline/VPB x prediction comparison"),
            ("figure4a", "IPC vs communication latency"),
            ("figure4b", "IPC vs communication bandwidth"),
            ("figure5", "IPC/accuracy vs predictor table size"),
            ("headline", "paper-vs-measured summary"),
            ("ablations", "Modified scheme, 2-cycle rename, predictor "
                          "and free-copy ablations")):
        fig = sub.add_parser(name, help=help_text)
        fig.add_argument("--workloads", default=None,
                         help="comma-separated suite subset")
        fig.add_argument("--length", type=int, default=None,
                         help="dynamic instructions per benchmark")
    return parser


def _subset(args) -> Optional[List[str]]:
    if args.workloads is None:
        return None
    names = [n.strip() for n in args.workloads.split(",") if n.strip()]
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        raise SystemExit(f"unknown workloads: {unknown}; "
                         f"choose from {workload_names()}")
    return names


def _cmd_list_workloads() -> None:
    rows = [[spec.name, spec.category, f"{spec.paper_minsts:.1f}"]
            for spec in SUITE.values()]
    print(analysis.table(["name", "category", "paper Minst"], rows,
                         "Table 2 — Mediabench stand-in suite"))


def _cmd_simulate(args) -> None:
    trace = workload_trace(args.workload, args.length)
    config = make_config(args.clusters, predictor=args.predictor,
                         steering=args.steering,
                         comm_latency=args.comm_latency,
                         comm_paths_per_cluster=args.paths)
    result = simulate(list(trace), config)
    print(result.summary())


def _cmd_figure(args) -> None:
    subset, length = _subset(args), args.length
    if args.command == "figure2":
        print(analysis.format_figure2(
            analysis.run_figure2(subset, length)))
    elif args.command == "figure3":
        print(analysis.format_figure3(
            analysis.run_figure3(subset, length)))
    elif args.command == "figure4a":
        print(analysis.format_figure4(
            analysis.run_figure4_latency(subset, length), "a"))
    elif args.command == "figure4b":
        print(analysis.format_figure4(
            analysis.run_figure4_bandwidth(subset, length), "b"))
    elif args.command == "figure5":
        print(analysis.format_figure5(
            analysis.run_figure5(subset, length)))
    elif args.command == "headline":
        print(analysis.format_headline(
            analysis.run_headline(subset, length)))
    else:  # ablations
        print(analysis.format_ablation(
            analysis.run_ablation_modified(subset, length),
            "Section 3.2 — ungated Modified scheme (4 clusters)"))
        print()
        print(analysis.format_ablation(
            analysis.run_ablation_rename2(subset, length),
            "Section 3.3 — 2-cycle rename/steer (4 clusters, VPB)"))
        print()
        print(analysis.format_ablation(
            analysis.run_ablation_predictor(subset, length),
            "Stride update discipline (4 clusters, VPB)"))
        print()
        print(analysis.format_ablation(
            analysis.run_ablation_free_copies(subset, length),
            "Section 2.1 extension — free copy issue (4 clusters)"))
        print()
        print(analysis.format_ablation(
            analysis.run_ablation_static(subset, length),
            "Static vs dynamic partitioning (4 clusters)"))
        print()
        print(analysis.format_ablation(
            analysis.run_predictor_comparison(subset, length),
            "Value predictor families (4 clusters, VPB)"))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list-workloads":
        _cmd_list_workloads()
    elif args.command == "simulate":
        _cmd_simulate(args)
    else:
        _cmd_figure(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

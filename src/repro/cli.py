"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-workloads`` — the Table 2 stand-in suite.
* ``simulate`` — one (workload, configuration) run with a summary;
  ``--trace-out`` / ``--metrics-out`` / ``--metrics-interval`` /
  ``--profile`` attach the observability layer
  (docs/OBSERVABILITY.md).
  ``--sample-interval`` switches to checkpointed, sampled simulation
  (docs/SAMPLING.md) for million-instruction runs.
* ``checkpoint`` — save / inspect / resume machine snapshots
  (docs/SAMPLING.md).
* ``trace`` — ASCII pipeline diagram of a window of the dynamic
  stream, optionally also writing a Perfetto-loadable trace file.
* ``figure2`` / ``figure3`` / ``figure4a`` / ``figure4b`` / ``figure5``
  — regenerate one paper figure as an ASCII report.
* ``headline`` — the §6 paper-vs-measured summary table.
* ``ablations`` — the §3.2/§3.3 side experiments plus this repo's own
  predictor and free-copy ablations.
* ``campaign`` — the fault-injection robustness campaign
  (docs/ROBUSTNESS.md), written to ``results/robustness_campaign.txt``.
* ``cache`` — stats/clear maintenance of the opt-in content-addressed
  sweep result cache (docs/PERFORMANCE.md).
* ``report`` — markdown perf-regression dashboard rendered from the
  ``BENCH_sweep.json`` trajectory plus optional run receipts
  (docs/PERFORMANCE.md).

Every figure command honours ``--workloads``, ``--length``, ``--jobs``
and ``--cache-dir`` (and the ``REPRO_WORKLOADS`` / ``REPRO_TRACE_LEN``
/ ``REPRO_JOBS`` / ``REPRO_CHUNKSIZE`` / ``REPRO_CACHE`` environment
variables).  A figure command holds one shared worker pool for its
whole run, so multi-sweep commands (``ablations``) pay worker startup
once.  ``--progress`` streams live sweep progress to stderr,
``--telemetry-out`` mirrors the typed run events to a JSONL file
(flushed per event, so an interrupted run keeps its partial log), and
``--receipt-out`` writes a provenance receipt
(docs/OBSERVABILITY.md).

Exit codes: 0 on success, 1 when the simulation itself failed
(divergence, deadlock, ...), 2 on a usage error (bad flag values,
unknown workload).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import analysis
from .core import make_config, simulate
from .errors import ConfigError, SimulationError, WorkloadError
from .validation import FaultPlan, format_campaign, run_fault_campaign
from .workloads import SUITE, workload_names, workload_trace

__all__ = ["main", "build_parser"]

#: ``main``'s exit codes (also asserted by the test suite).
EXIT_OK = 0
EXIT_SIMULATION_ERROR = 1
EXIT_USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Reducing Wire Delay Penalty "
                    "through Value Prediction' (MICRO-33, 2000).")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="show the Table 2 suite")

    sim = sub.add_parser("simulate", help="run one configuration")
    _add_config_flags(sim)
    sim.add_argument("--check", action="store_true",
                     help="co-simulate against the golden model and fail "
                          "on any divergence")
    sim.add_argument("--inject", default=None, metavar="SPEC",
                     help="fault-injection spec, e.g. 'value:0.02' or "
                          "'value:0.05,steer:0.01@seed=7'")
    sim.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write the structured event trace: *.jsonl for "
                          "JSON Lines, anything else for Chrome "
                          "trace-event JSON (load in ui.perfetto.dev)")
    sim.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write interval metric samples: *.csv or "
                          "*.json (implies --metrics-interval 1000 "
                          "unless given)")
    sim.add_argument("--metrics-interval", type=int, default=None,
                     metavar="N", help="sample interval metrics every N "
                     "cycles and print a time-resolved summary")
    sim.add_argument("--profile", action="store_true",
                     help="attribute host wall-clock time across "
                          "simulator loop stages")
    sim.add_argument("--sample-interval", type=int, default=None,
                     metavar="N",
                     help="switch to sampled simulation: measure N "
                          "detailed instructions per window and "
                          "fast-forward between windows "
                          "(docs/SAMPLING.md)")
    sim.add_argument("--sample-warmup", type=int, default=200,
                     metavar="N",
                     help="detailed instructions simulated and "
                          "discarded before each measured window "
                          "(default 200; needs --sample-interval)")
    sim.add_argument("--samples", type=int, default=16, metavar="K",
                     help="number of sample windows, one per equal "
                          "stratum of the run (default 16; needs "
                          "--sample-interval)")
    sim.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="share fast-forward checkpoints for sampled "
                          "runs under this directory (created if "
                          "missing; needs --sample-interval)")

    trc = sub.add_parser(
        "trace",
        help="pipeline diagram of a window of the dynamic stream")
    _add_config_flags(trc)
    trc.add_argument("--first-seq", type=int, default=0,
                     help="first dynamic instruction of the window")
    trc.add_argument("--count", type=int, default=24,
                     help="window length in dynamic instructions")
    trc.add_argument("--out", default=None, metavar="PATH",
                     help="also write the full run's Chrome trace-event "
                          "JSON (load in ui.perfetto.dev)")

    camp = sub.add_parser(
        "campaign",
        help="fault-injection robustness campaign (seeds x fault kinds)")
    camp.add_argument("--workloads", default=None,
                      help="comma-separated suite subset")
    camp.add_argument("--length", type=int, default=None,
                      help="dynamic instructions per benchmark")
    camp.add_argument("--seeds", type=int, default=3,
                      help="seeds per (workload, fault-kind) cell")
    camp.add_argument("--rate", type=float, default=0.05,
                      help="injection rate per opportunity")
    camp.add_argument("--output", default=None,
                      help="report path (default: "
                           "results/robustness_campaign.txt)")
    camp.add_argument("--jobs", type=int, default=None,
                      help="fan per-workload blocks across this many "
                           "worker processes (0 = all cores)")
    camp.add_argument("--progress", action="store_true",
                      help="stream live sweep progress to stderr")
    camp.add_argument("--telemetry-out", default=None, metavar="PATH",
                      help="mirror the run's telemetry events to this "
                           "JSONL file (flushed per event)")

    cache = sub.add_parser(
        "cache",
        help="sweep result cache maintenance (docs/PERFORMANCE.md)")
    cache.add_argument("action", choices=("stats", "clear"),
                       help="show entry count/size, or delete entries")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: REPRO_CACHE or "
                            ".repro_cache)")

    rep = sub.add_parser(
        "report",
        help="perf-regression dashboard from BENCH_sweep.json and "
             "run receipts (docs/PERFORMANCE.md)")
    rep.add_argument("--bench", default=None, metavar="PATH",
                     help="benchmark history file (default: the repo's "
                          "BENCH_sweep.json)")
    rep.add_argument("--receipt", action="append", default=[],
                     metavar="PATH",
                     help="run receipt to summarize (repeatable)")
    rep.add_argument("--out", default=None, metavar="PATH",
                     help="write the markdown dashboard here instead of "
                          "stdout")
    rep.add_argument("--threshold", type=float, default=0.20,
                     help="fractional throughput drop vs the best "
                          "same-shape entry that counts as a regression "
                          "(default 0.20)")
    rep.add_argument("--fail-on-regression", action="store_true",
                     help="exit 1 when any regression is flagged")

    ckpt = sub.add_parser(
        "checkpoint",
        help="save/inspect/resume machine snapshots (docs/SAMPLING.md)")
    ckpt_sub = ckpt.add_subparsers(dest="ckpt_action", required=True)
    ck_save = ckpt_sub.add_parser(
        "save", help="fast-forward a workload and snapshot the "
                     "architectural state")
    ck_save.add_argument("workload", choices=workload_names())
    ck_save.add_argument("--at", type=int, required=True, metavar="N",
                         help="instruction position to snapshot at")
    ck_save.add_argument("--out", required=True, metavar="PATH",
                         help="snapshot file to write")
    ck_save.add_argument("--max-insts", type=int, default=1_000_000,
                         metavar="M",
                         help="run cap recorded in the snapshot "
                              "(default 1000000)")
    ck_info = ckpt_sub.add_parser(
        "info", help="print a snapshot's header without unpickling it")
    ck_info.add_argument("path", metavar="PATH")
    ck_resume = ckpt_sub.add_parser(
        "resume", help="restore an executor snapshot and run a detailed "
                       "window from it")
    ck_resume.add_argument("path", metavar="PATH")
    ck_resume.add_argument("--run", type=int, default=10_000, metavar="N",
                           help="detailed instructions to simulate from "
                                "the snapshot (default 10000)")
    ck_resume.add_argument("--clusters", type=int, default=4,
                           choices=(1, 2, 4))
    ck_resume.add_argument("--predictor", default="none",
                           choices=("none", "stride", "context",
                                    "hybrid", "perfect"))
    ck_resume.add_argument("--steering", default="baseline",
                           choices=("baseline", "modified", "vpb",
                                    "round-robin", "balance-only",
                                    "dependence-only"))
    ck_resume.add_argument("--comm-latency", type=int, default=1)
    ck_resume.add_argument("--paths", type=int, default=None)

    for name, help_text in (
            ("figure2", "IPC of 1/2/4 clusters, +/- value prediction"),
            ("figure3", "Baseline/VPB x prediction comparison"),
            ("figure4a", "IPC vs communication latency"),
            ("figure4b", "IPC vs communication bandwidth"),
            ("figure5", "IPC/accuracy vs predictor table size"),
            ("headline", "paper-vs-measured summary"),
            ("ablations", "Modified scheme, 2-cycle rename, predictor "
                          "and free-copy ablations")):
        fig = sub.add_parser(name, help=help_text)
        fig.add_argument("--workloads", default=None,
                         help="comma-separated suite subset")
        fig.add_argument("--length", type=int, default=None,
                         help="dynamic instructions per benchmark")
        fig.add_argument("--jobs", type=int, default=None,
                         help="sweep worker processes (0 = all cores; "
                              "default: REPRO_JOBS or serial)")
        fig.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="content-addressed result cache directory "
                              "(default: REPRO_CACHE, or no caching)")
        fig.add_argument("--progress", action="store_true",
                         help="stream live sweep progress to stderr")
        fig.add_argument("--telemetry-out", default=None, metavar="PATH",
                         help="mirror the run's telemetry events to this "
                              "JSONL file (flushed per event)")
        fig.add_argument("--receipt-out", default=None, metavar="PATH",
                         help="write a provenance run receipt "
                              "(docs/OBSERVABILITY.md) covering the "
                              "command's sweeps")
    return parser


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    """Workload + processor-configuration flags shared by run commands."""
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument("--clusters", type=int, default=4,
                        choices=(1, 2, 4))
    parser.add_argument("--predictor", default="none",
                        choices=("none", "stride", "context", "hybrid",
                                 "perfect"))
    parser.add_argument("--steering", default="baseline",
                        choices=("baseline", "modified", "vpb",
                                 "round-robin", "balance-only",
                                 "dependence-only"))
    parser.add_argument("--length", type=int, default=12_000,
                        help="dynamic instructions to simulate")
    parser.add_argument("--comm-latency", type=int, default=1)
    parser.add_argument("--paths", type=int, default=None,
                        help="interconnect paths per cluster (default: "
                             "unbounded)")


def _subset(args) -> Optional[List[str]]:
    if args.workloads is None:
        return None
    names = [n.strip() for n in args.workloads.split(",") if n.strip()]
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        raise SystemExit(f"unknown workloads: {unknown}; "
                         f"choose from {workload_names()}")
    return names


def _cmd_list_workloads() -> None:
    rows = [[spec.name, spec.category, f"{spec.paper_minsts:.1f}"]
            for spec in SUITE.values()]
    print(analysis.table(["name", "category", "paper Minst"], rows,
                         "Table 2 — Mediabench stand-in suite"))


def _validate_simulate_args(args) -> None:
    """Bounds-check numeric flags with actionable messages."""
    if args.length < 1:
        raise ConfigError(
            f"--length must be a positive instruction count, "
            f"got {args.length}")
    if args.comm_latency < 1:
        raise ConfigError(
            f"--comm-latency must be >= 1 cycle, got {args.comm_latency} "
            f"(the paper sweeps 1-4)")
    if args.paths is not None and args.paths < 1:
        raise ConfigError(
            f"--paths must be >= 1, got {args.paths} "
            f"(omit the flag for an unbounded interconnect)")
    interval = getattr(args, "metrics_interval", None)
    if interval is not None and interval < 1:
        raise ConfigError(
            f"--metrics-interval must be >= 1 cycle, got {interval}")
    _validate_sampling_args(args)


def _validate_sampling_args(args) -> None:
    """Bounds-check the sampled-simulation flags (simulate only)."""
    sample_interval = getattr(args, "sample_interval", None)
    if sample_interval is None:
        if getattr(args, "checkpoint_dir", None):
            raise ConfigError(
                "--checkpoint-dir only applies to sampled runs; add "
                "--sample-interval")
        return
    if sample_interval < 1:
        raise ConfigError(
            f"--sample-interval must be >= 1 instruction, "
            f"got {sample_interval}")
    if args.sample_warmup < 0:
        raise ConfigError(
            f"--sample-warmup must be >= 0, got {args.sample_warmup}")
    if sample_interval <= args.sample_warmup:
        raise ConfigError(
            f"--sample-interval ({sample_interval}) must exceed "
            f"--sample-warmup ({args.sample_warmup}); the measured "
            f"region would otherwise be empty or biased")
    if args.samples < 1:
        raise ConfigError(f"--samples must be >= 1, got {args.samples}")
    for flag in ("trace_out", "metrics_out", "inject"):
        if getattr(args, flag, None):
            raise ConfigError(
                f"--{flag.replace('_', '-')} is not supported with "
                f"sampled runs: only the sample windows run in detail, "
                f"so the artifact would cover a fraction of the stream")
    if getattr(args, "profile", False):
        raise ConfigError("--profile is not supported with sampled runs")
    ckpt_dir = getattr(args, "checkpoint_dir", None)
    if ckpt_dir:
        try:
            os.makedirs(ckpt_dir, exist_ok=True)
            probe = os.path.join(ckpt_dir, ".write-probe")
            with open(probe, "w", encoding="utf-8"):
                pass
            os.unlink(probe)
        except OSError as error:
            raise ConfigError(
                f"--checkpoint-dir {ckpt_dir!r} is not writable: "
                f"{error}") from None


def _make_cli_config(args):
    return make_config(args.clusters, predictor=args.predictor,
                       steering=args.steering,
                       comm_latency=args.comm_latency,
                       comm_paths_per_cluster=args.paths)


def _open_trace_sink(path: str, config_label: str):
    """Pick a sink by file extension: .jsonl streams lines, anything
    else accumulates a Chrome trace-event object."""
    from .obs import ChromeTraceSink, JsonlSink
    if path.endswith(".jsonl"):
        return JsonlSink(path, config_label)
    return ChromeTraceSink(path, config_label)


def _cmd_simulate(args) -> None:
    _validate_simulate_args(args)
    if args.sample_interval is not None:
        _run_sampled_simulate(args)
        return
    fault_plan = FaultPlan.parse(args.inject) if args.inject else None
    trace = workload_trace(args.workload, args.length)
    config = _make_cli_config(args)
    tracer = None
    sink = None
    if args.trace_out:
        from .obs import EventTracer
        sink = _open_trace_sink(args.trace_out, config.describe())
        tracer = EventTracer(sink)
    metrics_interval = args.metrics_interval
    if metrics_interval is None and args.metrics_out:
        metrics_interval = 1000
    try:
        result = simulate(list(trace), config, check=args.check,
                          fault_plan=fault_plan, tracer=tracer,
                          metrics_interval=metrics_interval,
                          profile=args.profile)
    finally:
        # Flush buffered trace events even when the simulation raises:
        # the crash trace (deadlock snapshot, divergence) is exactly the
        # flight-recorder case the trace file exists for.
        if sink is not None:
            sink.close()
    print(result.summary())
    if tracer is not None:
        print(f"trace               : {tracer.total_events} events "
              f"-> {args.trace_out}")
    if result.metrics is not None:
        print()
        print(result.metrics.summary())
        if args.metrics_out:
            rows = analysis.interval_rows(result.metrics)
            if args.metrics_out.endswith(".csv"):
                analysis.to_csv(rows, args.metrics_out)
            else:
                analysis.to_json(rows, args.metrics_out)
            print(f"metrics             : {len(rows)} samples "
                  f"-> {args.metrics_out}")
    if result.profile is not None:
        print()
        print(result.profile.report())
    if args.check:
        print(f"golden check        : OK "
              f"({result.validation.get('golden_commits', 0)} commits, "
              f"{result.validation.get('golden_batches', 0)} batches)")
    report = result.validation.get("fault_report")
    if report is not None:
        print(f"faults injected     : {report.total_injected} "
              f"({result.validation.get('fault_plan', '')})")
        print(f"value detection     : {report.detected_values}/"
              f"{report.injected_values} "
              f"({report.detection_rate:.0%})")


def _run_sampled_simulate(args) -> None:
    """The --sample-interval branch of ``repro simulate``."""
    from .analysis.sampling import SamplingConfig
    from .workloads import build_workload
    sampling = SamplingConfig(interval=args.sample_interval,
                              warmup=args.sample_warmup,
                              samples=args.samples)
    program = build_workload(args.workload)
    config = _make_cli_config(args)
    result = simulate(program, config, max_instructions=args.length,
                      check=args.check, sampling=sampling,
                      checkpoints=args.checkpoint_dir,
                      workload_name=args.workload)
    print(result.summary())
    if args.check:
        print("golden check        : OK (every sample window "
              "co-simulated)")


def _cmd_checkpoint(args) -> None:
    from .core import (read_snapshot_meta, restore_executor,
                       save_executor)
    if args.ckpt_action == "info":
        meta = read_snapshot_meta(args.path)
        print(f"schema   : {meta.schema} v{meta.version}")
        print(f"kind     : {meta.kind}")
        print(f"seq      : {meta.seq}")
        if meta.kind == "machine":
            print(f"cycle    : {meta.cycle}")
            print(f"committed: {meta.committed_insts}")
            print(f"config   : {meta.config_sha256}")
        print(f"sha256   : {meta.sha256}")
        for key, value in sorted(meta.extra.items()):
            print(f"extra.{key}: {value}")
        return
    if args.ckpt_action == "save":
        from .isa.executor import FunctionalExecutor
        from .workloads import build_workload
        if args.at < 0:
            raise ConfigError(f"--at must be >= 0, got {args.at}")
        if args.at >= args.max_insts:
            raise ConfigError(
                f"--at ({args.at}) must lie before the run cap "
                f"--max-insts ({args.max_insts})")
        executor = FunctionalExecutor(build_workload(args.workload),
                                      args.max_insts)
        done = executor.skip(args.at)
        if done < args.at:
            raise ConfigError(
                f"{args.workload} halts after {done} instructions, "
                f"before the requested position {args.at}")
        meta = save_executor(args.out, executor,
                             extra={"workload": args.workload,
                                    "position": executor.seq})
        print(f"checkpoint: {args.workload} @ {meta.seq} -> {args.out} "
              f"(sha256 {meta.sha256[:12]}…)")
        return
    # resume
    if args.run < 1:
        raise ConfigError(f"--run must be >= 1, got {args.run}")
    meta = read_snapshot_meta(args.path)
    if meta.kind != "executor":
        raise ConfigError(
            f"{args.path} holds a {meta.kind!r} snapshot; 'checkpoint "
            f"resume' replays executor checkpoints (use the Python API "
            f"restore_processor for machine snapshots)")
    executor = restore_executor(args.path)
    config = _make_cli_config(args)
    executor.max_instructions = executor.seq + args.run
    result = simulate(executor.run(), config,
                      max_instructions=args.run)
    print(f"resumed {meta.extra.get('workload', '?')} @ {meta.seq} "
          f"for {args.run} detailed instructions")
    print(result.summary())


def _cmd_trace(args) -> None:
    _validate_simulate_args(args)
    if args.count < 1:
        raise ConfigError(f"--count must be >= 1, got {args.count}")
    from .obs import EventTracer, ListSink
    config = _make_cli_config(args)
    trace = list(workload_trace(args.workload, args.length))
    sink = ListSink()
    simulate(trace, config, tracer=EventTracer(sink))
    timeline = analysis.timeline_from_events(sink.events)
    print(analysis.render_timeline(timeline, args.first_seq, args.count))
    if args.out:
        with _open_trace_sink(args.out, config.describe()) as chrome:
            for event in sink.events:
                chrome.append(event)
        print(f"\nfull trace ({len(sink.events)} events) "
              f"written to {args.out}")


def _make_monitor(args):
    """A SweepMonitor when any telemetry flag asks for one, else None."""
    from .obs import SweepMonitor
    progress = getattr(args, "progress", False)
    telemetry_out = getattr(args, "telemetry_out", None)
    receipt_out = getattr(args, "receipt_out", None)
    if not (progress or telemetry_out or receipt_out):
        return None
    return SweepMonitor(progress=progress, jsonl_path=telemetry_out)


def _finish_monitor(args, monitor, cache=None, label=None) -> None:
    """Close the sinks; write the receipt when ``--receipt-out`` asked.

    Runs in the command's ``finally`` block, so an interrupted run
    still flushes its partial telemetry log (the receipt, by contrast,
    only makes sense for a run that finished its sweeps).
    """
    if monitor is None:
        return
    monitor.close()
    telemetry_out = getattr(args, "telemetry_out", None)
    if telemetry_out:
        print(f"telemetry: {len(monitor.events)} events "
              f"-> {telemetry_out}")
    receipt_out = getattr(args, "receipt_out", None)
    if receipt_out and monitor.sweeps:
        from .analysis.provenance import RunReceipt
        receipt = RunReceipt.from_monitor(
            monitor, label=label, cache_enabled=cache is not None)
        receipt.write(receipt_out)
        print(f"receipt: {receipt.counts['cells']} cells "
              f"({receipt.counts['simulated']} simulated) "
              f"-> {receipt_out}")


def _cmd_campaign(args) -> None:
    from .obs import use_monitor
    if args.seeds < 1:
        raise ConfigError(f"--seeds must be >= 1, got {args.seeds}")
    if not 0.0 < args.rate <= 1.0:
        raise ConfigError(
            f"--rate must be in (0, 1], got {args.rate}")
    monitor = _make_monitor(args)
    try:
        with use_monitor(monitor):
            result = run_fault_campaign(workloads=_subset(args),
                                        seeds=tuple(range(args.seeds)),
                                        length=args.length, rate=args.rate,
                                        jobs=args.jobs)
    finally:
        _finish_monitor(args, monitor)
    report = format_campaign(result)
    print(report)
    path = args.output or os.path.join("results",
                                       "robustness_campaign.txt")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report + "\n")
    print(f"\nreport written to {path}")
    if result.failures or result.detection_rate < 1.0:
        raise SimulationError(
            f"campaign found problems: {len(result.failures)} failed "
            f"cell(s), detection rate {result.detection_rate:.0%}")


def _cmd_cache(args) -> None:
    from .analysis.cache import DEFAULT_CACHE_DIR, ResultCache, resolve_cache
    cache = resolve_cache(args.cache_dir)
    if cache is None:
        cache = ResultCache(DEFAULT_CACHE_DIR)
    if args.action == "stats":
        print(cache.describe())
    else:
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")


def _cmd_figure(args) -> None:
    from .analysis.cache import resolve_cache, use_cache
    from .analysis.parallel import WorkerPool
    from .obs import use_monitor
    # resolve_cache already folds in the REPRO_CACHE opt-in, so pinning
    # its result via use_cache only makes the command's cache explicit
    # (and gives one object whose hit/miss counters we can report).
    cache = resolve_cache(args.cache_dir)
    monitor = _make_monitor(args)
    # One pool for the whole command: multi-sweep commands (ablations,
    # run_robustness) reuse warm workers instead of paying interpreter
    # startup per driver; one monitor for the whole command, so the
    # receipt aggregates every sweep the command ran.
    try:
        with WorkerPool(args.jobs), use_cache(cache), \
                use_monitor(monitor):
            _run_figure_command(args)
    finally:
        _finish_monitor(args, monitor, cache=cache, label=args.command)
    if cache is not None:
        print(f"cache: {cache.stats.render()} in {cache.root}")


def _cmd_report(args) -> None:
    import pathlib

    from .analysis import perf_report
    from .analysis.provenance import RunReceipt
    from .obs.schema import validate_receipt
    if not 0.0 < args.threshold < 1.0:
        raise ConfigError(
            f"--threshold must be a fraction in (0, 1), "
            f"got {args.threshold}")
    bench = args.bench
    if bench is None:
        bench = (pathlib.Path(__file__).resolve().parents[2]
                 / "BENCH_sweep.json")
    history = perf_report.load_history(bench)
    receipts = []
    for path in args.receipt:
        try:
            receipt = RunReceipt.read(path)
            validate_receipt(receipt)
        except (OSError, ValueError) as error:
            raise ConfigError(f"bad receipt {path}: {error}") from None
        receipts.append(receipt)
    markdown = perf_report.render_dashboard(history, receipts,
                                            threshold=args.threshold)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"dashboard ({len(history)} entries, {len(receipts)} "
              f"receipts) -> {args.out}")
    else:
        print(markdown, end="")
    regressions = perf_report.find_regressions(history,
                                               threshold=args.threshold)
    if regressions:
        summary = "; ".join(
            f"{flag['benchmark']} at {flag.get('commit') or 'unknown'} "
            f"down {flag['drop']:.1%}" for flag in regressions)
        print(f"regressions: {summary}", file=sys.stderr)
        if args.fail_on_regression:
            raise SimulationError(
                f"{len(regressions)} throughput regression(s) exceed "
                f"the {args.threshold:.0%} threshold")


def _run_figure_command(args) -> None:
    subset, length, jobs = _subset(args), args.length, args.jobs
    if args.command == "figure2":
        print(analysis.format_figure2(
            analysis.run_figure2(subset, length, jobs=jobs)))
    elif args.command == "figure3":
        print(analysis.format_figure3(
            analysis.run_figure3(subset, length, jobs=jobs)))
    elif args.command == "figure4a":
        print(analysis.format_figure4(
            analysis.run_figure4_latency(subset, length, jobs=jobs), "a"))
    elif args.command == "figure4b":
        print(analysis.format_figure4(
            analysis.run_figure4_bandwidth(subset, length, jobs=jobs), "b"))
    elif args.command == "figure5":
        print(analysis.format_figure5(
            analysis.run_figure5(subset, length, jobs=jobs)))
    elif args.command == "headline":
        print(analysis.format_headline(
            analysis.run_headline(subset, length, jobs=jobs)))
    else:  # ablations
        print(analysis.format_ablation(
            analysis.run_ablation_modified(subset, length, jobs=jobs),
            "Section 3.2 — ungated Modified scheme (4 clusters)"))
        print()
        print(analysis.format_ablation(
            analysis.run_ablation_rename2(subset, length, jobs=jobs),
            "Section 3.3 — 2-cycle rename/steer (4 clusters, VPB)"))
        print()
        print(analysis.format_ablation(
            analysis.run_ablation_predictor(subset, length, jobs=jobs),
            "Stride update discipline (4 clusters, VPB)"))
        print()
        print(analysis.format_ablation(
            analysis.run_ablation_free_copies(subset, length, jobs=jobs),
            "Section 2.1 extension — free copy issue (4 clusters)"))
        print()
        print(analysis.format_ablation(
            analysis.run_ablation_static(subset, length, jobs=jobs),
            "Static vs dynamic partitioning (4 clusters)"))
        print()
        print(analysis.format_ablation(
            analysis.run_predictor_comparison(subset, length, jobs=jobs),
            "Value predictor families (4 clusters, VPB)"))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    0 — success; 1 — the simulation failed (divergence, deadlock,
    campaign regression); 2 — usage error (bad flag bounds, unknown
    workload, malformed fault spec).
    """
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list-workloads":
            _cmd_list_workloads()
        elif args.command == "simulate":
            _cmd_simulate(args)
        elif args.command == "trace":
            _cmd_trace(args)
        elif args.command == "campaign":
            _cmd_campaign(args)
        elif args.command == "cache":
            _cmd_cache(args)
        elif args.command == "checkpoint":
            _cmd_checkpoint(args)
        elif args.command == "report":
            _cmd_report(args)
        else:
            _cmd_figure(args)
    except (ConfigError, WorkloadError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE_ERROR
    except SimulationError as error:
        print(f"simulation error: {error}", file=sys.stderr)
        return EXIT_SIMULATION_ERROR
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Processor configurations (Table 1 of the paper).

:func:`make_config` builds the paper's three machines:

============================  =========  =========  =========
parameter                     1 cluster  2 clusters 4 clusters
============================  =========  =========  =========
fetch/decode/retire width     8          8          8
ROB                           128        128        128
IQ entries (per cluster)      64         32         16
physical regs (per cluster)   128        80         56
int units (mul/div capable)   8 (4)      4 (2)      2 (1)
fp units (mul/div capable)    4 (2)      2 (1)      1 (1)
issue width (per cluster)     8 int/4 fp 4 int/2 fp 2 int/1 fp
============================  =========  =========  =========

plus the shared front end (combined branch predictor), memory hierarchy,
1-cycle fully pipelined inter-cluster paths (latency and bandwidth are
the Figure 4 sweep knobs) and the 128K-entry stride value predictor
(the Figure 5 sweep knob).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from ..errors import ConfigError
from ..isa.opcodes import OpClass
from ..isa.registers import NUM_LOGICAL_REGS

__all__ = ["ProcessorConfig", "make_config", "derive_preset",
           "CLUSTER_PRESETS"]


#: Per-cluster structure sizes for the paper's three configurations,
#: keyed by cluster count: (iq_size, pregs, int_units, int_muldiv,
#: fp_units, fp_muldiv, int_width, fp_width).
CLUSTER_PRESETS = {
    1: (64, 128, 8, 4, 4, 2, 8, 4),
    2: (32, 80, 4, 2, 2, 1, 4, 2),
    4: (16, 56, 2, 1, 1, 1, 2, 1),
}


@dataclass
class ProcessorConfig:
    """Complete parameterization of the simulated processor.

    The defaults reproduce the paper's 4-cluster machine with the
    Baseline steering scheme and no value prediction; use
    :func:`make_config` for the standard presets.
    """

    n_clusters: int = 4
    fetch_width: int = 8
    decode_width: int = 8
    retire_width: int = 8
    rob_size: int = 128
    iq_size: int = 16
    pregs_per_cluster: int = 56
    int_units: int = 2
    int_muldiv: int = 1
    fp_units: int = 1
    fp_muldiv: int = 1
    int_issue_width: int = 2
    fp_issue_width: int = 1

    # Inter-cluster communication (§4 sweeps).
    comm_latency: int = 1
    comm_paths_per_cluster: Optional[int] = None  # None = unbounded

    # Value prediction: "none" | "stride" | "context" | "hybrid" |
    # "perfect".
    predictor: str = "none"
    vp_entries: int = 128 * 1024
    vp_confidence_threshold: int = 1
    # Stride-update discipline: True = 2-delta (default, see
    # repro.predictor.stride), False = the paper's literal
    # replace-on-mismatch entry.
    vp_two_delta: bool = True

    # Steering: "baseline" | "modified" | "vpb" | "round-robin" |
    # "balance-only" | "dependence-only" | "static".
    steering: str = "baseline"
    balance_threshold: Optional[int] = None
    vpb_threshold: Optional[int] = None
    # PC -> cluster map for steering="static" (see
    # repro.steering.static.profile_static_assignment).
    static_assignment: Optional[Dict[int, int]] = None

    # Front end.  btb_entries=None models perfect branch targets (the
    # paper's unstated assumption); a power-of-two size enables a real
    # direct-mapped BTB whose misses stall fetch like mispredictions.
    btb_entries: Optional[int] = None
    fetch_buffer: int = 16
    extra_rename_cycles: int = 0  # §3.3's 2-cycle rename/steer ablation

    # §2.1's suggested (and deliberately unmodelled-by-the-paper)
    # optimization: dedicated copy-out hardware, so copies and
    # verification-copies no longer consume issue width.  Off by
    # default; the ablation benchmark quantifies what the paper left
    # on the table.
    free_copy_issue: bool = False

    # D-cache ports shared by issuing loads and committing stores.
    dcache_ports: int = 3

    # Functional-unit latency overrides (OpClass -> cycles).
    latencies: Dict[OpClass, int] = field(default_factory=dict)

    # Watchdog: abort (DeadlockError + pipeline snapshot) if nothing
    # commits for this many cycles.
    deadlock_cycles: int = 200_000

    # Golden-model co-simulation: committed instructions are replayed
    # against the functional trace in batches of this size when the
    # co-simulator is enabled (see ``repro.validation.golden``).
    golden_interval: int = 256

    # Interval metrics (docs/OBSERVABILITY.md): when set, the processor
    # samples its counter/gauge registry every this-many cycles into a
    # time series (``result.metrics``).  ``None`` disables sampling
    # entirely (no per-cycle cost beyond a None check).
    metrics_interval: Optional[int] = None

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent parameters."""
        if self.n_clusters < 1:
            raise ConfigError("n_clusters must be >= 1")
        # Each bank must hold its share of the initial architectural
        # mapping (half the logical registers, spread over clusters)
        # with headroom for in-flight values.
        per_bank_logical = NUM_LOGICAL_REGS // 2
        min_pregs = (per_bank_logical + self.n_clusters - 1) // self.n_clusters
        if self.pregs_per_cluster <= min_pregs:
            raise ConfigError(
                f"pregs_per_cluster={self.pregs_per_cluster} per bank cannot "
                f"hold the initial mapping of {per_bank_logical} logical "
                f"registers over {self.n_clusters} clusters plus in-flight "
                f"values")
        if self.predictor not in ("none", "stride", "context", "hybrid",
                                  "perfect"):
            raise ConfigError(f"unknown predictor {self.predictor!r}")
        if self.steering not in ("baseline", "modified", "vpb", "round-robin",
                                 "balance-only", "dependence-only",
                                 "static"):
            raise ConfigError(f"unknown steering {self.steering!r}")
        if self.comm_latency < 1:
            raise ConfigError("comm_latency must be >= 1")
        if self.golden_interval < 1:
            raise ConfigError("golden_interval must be >= 1")
        if self.metrics_interval is not None and self.metrics_interval < 1:
            raise ConfigError("metrics_interval must be >= 1 cycle "
                              "(or None to disable sampling)")
        if self.deadlock_cycles < 1:
            raise ConfigError("deadlock_cycles must be >= 1")

    def with_overrides(self, **overrides) -> "ProcessorConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """One-line summary used in reports."""
        vp = self.predictor if self.predictor != "none" else "no-predict"
        return (f"{self.n_clusters}c/{self.steering}/{vp}"
                f"/L{self.comm_latency}"
                f"/B{self.comm_paths_per_cluster or 'inf'}")

    def canonical_dict(self) -> dict:
        """A stable, JSON-serializable view of every field.

        Two configs compare equal iff their canonical dicts are equal:
        enum-keyed latency overrides are flattened to sorted
        ``(name, cycles)`` pairs and the static-assignment map to sorted
        ``(pc, cluster)`` pairs, so the representation is independent of
        dict insertion order.  This is the hashing substrate of the
        content-addressed result cache (``repro.analysis.cache``).
        """
        out = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "latencies":
                value = sorted((getattr(op, "name", str(op)), cycles)
                               for op, cycles in value.items())
            elif spec.name == "static_assignment" and value is not None:
                value = sorted(value.items())
            out[spec.name] = value
        return out

    def canonical_json(self) -> str:
        """The canonical dict as deterministic compact JSON."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"), default=str)


def derive_preset(n_clusters: int) -> tuple:
    """Extend Table 1's scaling rule to any power-of-two cluster count.

    The paper's three presets follow exact formulas — structure sizes
    scale down with the degree of clustering while the totals stay
    constant: IQ = 64/n, physical registers = 32 + 96/n per bank (the
    architectural share plus a scaled in-flight pool), 8/n integer and
    4/n fp units (half mul/div-capable, minimum one), issue width 8/n
    int and 4/n fp.  This lets the "arbitrary number of homogeneous
    clusters" design the paper describes (§5) be simulated beyond the
    three counts it evaluated.
    """
    if n_clusters < 1 or n_clusters > 8 or (n_clusters & (n_clusters - 1)):
        raise ConfigError(
            f"cluster count must be a power of two in 1..8, "
            f"got {n_clusters}")
    iq = max(8, 64 // n_clusters)
    pregs = 32 + 96 // n_clusters
    int_units = max(1, 8 // n_clusters)
    int_muldiv = max(1, int_units // 2)
    fp_units = max(1, 4 // n_clusters)
    fp_muldiv = max(1, fp_units // 2)
    int_width = max(1, 8 // n_clusters)
    fp_width = max(1, 4 // n_clusters)
    return (iq, pregs, int_units, int_muldiv, fp_units, fp_muldiv,
            int_width, fp_width)


def make_config(n_clusters: int, predictor: str = "none",
                steering: str = "baseline", **overrides) -> ProcessorConfig:
    """Build one of the paper's standard (or derived) configurations.

    Args:
        n_clusters: 1, 2 or 4 use the exact Table 1 presets; other
            power-of-two counts up to 8 use :func:`derive_preset`'s
            extension of the same scaling rule.
        predictor: "none", "stride", "context", "hybrid" or "perfect".
        steering: any supported scheme name.
        **overrides: any :class:`ProcessorConfig` field.
    """
    preset = CLUSTER_PRESETS.get(n_clusters)
    if preset is None:
        preset = derive_preset(n_clusters)
    (iq, pregs, iu, imd, fu, fmd, iw, fw) = preset
    config = ProcessorConfig(
        n_clusters=n_clusters, iq_size=iq, pregs_per_cluster=pregs,
        int_units=iu, int_muldiv=imd, fp_units=fu, fp_muldiv=fmd,
        int_issue_width=iw, fp_issue_width=fw,
        predictor=predictor, steering=steering)
    config = config.with_overrides(**overrides)
    config.validate()
    return config

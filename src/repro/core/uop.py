"""In-flight micro-operation state for the timing core.

Three kinds of uop flow through the back end:

* ``INST`` — a program instruction from the trace.
* ``COPY`` — a rename-generated register copy (§2.1): reads a physical
  register in the producer cluster and delivers it to a replica register
  in the consumer cluster over an inter-cluster path.
* ``VCOPY`` — a verification-copy (§2.2): issued in the producer cluster
  when a *predicted* remote operand's value is ready, compares it with
  the prediction locally, and forwards the value (invalidating the
  consumer) only on mismatch.

Operands carry their own speculation state so the issue logic can treat
"really ready" and "speculatively ready" uniformly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.instruction import DynInst
from ..isa.opcodes import OpClass

__all__ = ["Operand", "Uop",
           "KIND_INST", "KIND_COPY", "KIND_VCOPY",
           "MODE_ZERO", "MODE_LOCAL", "MODE_PRED", "MODE_FWD",
           "STATE_WAITING", "STATE_ISSUED", "STATE_DONE", "STATE_COMMITTED"]

KIND_INST = 0
KIND_COPY = 1
KIND_VCOPY = 2

#: Operand modes.
MODE_ZERO = 0    # hard-wired zero register / no value needed
MODE_LOCAL = 1   # read a local physical register when it is ready
MODE_PRED = 2    # speculatively use a predicted value (always "ready")
MODE_FWD = 3     # await a mismatch forward from a verification-copy

STATE_WAITING = 0
STATE_ISSUED = 1
STATE_DONE = 2
STATE_COMMITTED = 3


class Operand:
    """One source operand of an in-flight uop."""

    __slots__ = ("mode", "preg", "ready_override", "correct", "verified",
                 "slot", "injected")

    def __init__(self, mode: int, preg: Optional[int] = None,
                 correct: bool = True, slot: int = 0,
                 injected: bool = False) -> None:
        self.mode = mode
        #: Local physical register (modes LOCAL and PRED-with-mapping).
        self.preg = preg
        #: Arrival cycle of a mismatch forward (mode FWD).
        self.ready_override = 0
        #: For PRED: whether the predicted value equals the true value.
        self.correct = correct
        #: Set once the producer-side verification has cleared this operand.
        self.verified = False
        #: Operand position (left/right) — predictor index and diagnostics.
        self.slot = slot
        #: This prediction was corrupted by the fault-injection harness;
        #: its detection is reported back to the injector.
        self.injected = injected


class Uop:
    """An in-flight micro-operation.

    Attributes:
        kind: ``KIND_INST`` / ``KIND_COPY`` / ``KIND_VCOPY``.
        dyn: trace record for INSTs; for copies, the producer's record
            (diagnostics only).
        order: global dispatch order — the age used by the issue queues.
        cluster: cluster whose resources execute this uop.
        int_side: consumes integer issue width/queue (else fp).
        opclass: functional class for INSTs, ``None`` for copies.
        operands: source operands.
        dest_preg: destination register in ``dest_cluster``.
        dest_cluster: equals ``cluster`` for INSTs; the consumer cluster
            for COPYs; ``None`` for VCOPYs.
        unverified: number of this uop's own speculative operands whose
            predictions are still unverified (gates commit).
        readers: issued uops that consumed this uop's result while it
            could still be squashed (the selective-reissue walk).
        verify_list: (consumer_uop, operand) pairs whose predictions
            this producer must verify at writeback (§2.2).
        free_on_commit: previous-mapping (cluster, preg) pairs to
            release at commit.
        consumer / consumer_operand: VCOPY back-references.
        mispredicted_branch: direction predictor missed this branch.
        generation: bumped on invalidation so queued events become stale.
        wake_cycle: lower bound on the next cycle an issue attempt could
            succeed; the issue scan skips the uop until then.  Wakes
            (``RegisterFile.set_ready`` on an awaited register) only
            ever lower it, so a parked uop never oversleeps.
        iq: the :class:`~repro.cluster.issue_queue.IssueQueue` this uop
            was dispatched into (set by the queue).  Register-file wakes
            use it to lower the queue's ``next_try`` bound so a sleeping
            queue is rescanned exactly when one of its uops could issue.
        is_load / is_store: memory classification, materialized at
            construction (the commit and issue loops read them every
            cycle; only INST uops can be memory operations).
    """

    __slots__ = ("kind", "dyn", "order", "cluster", "int_side", "opclass",
                 "operands", "dest_preg", "dest_cluster", "state",
                 "generation", "issue_cycle", "complete_cycle",
                 "min_issue_cycle", "unverified", "readers", "verify_list",
                 "free_on_commit", "consumer", "consumer_operand",
                 "mispredicted_branch", "reissue_count", "wake_cycle",
                 "iq", "is_load", "is_store")

    def __init__(self, kind: int, dyn: Optional[DynInst], order: int,
                 cluster: int, int_side: bool,
                 opclass: Optional[OpClass]) -> None:
        self.kind = kind
        self.dyn = dyn
        self.order = order
        self.cluster = cluster
        self.int_side = int_side
        self.opclass = opclass
        if kind == KIND_INST and dyn is not None:
            self.is_load = dyn.is_load
            self.is_store = dyn.is_store
        else:
            self.is_load = False
            self.is_store = False
        self.iq = None
        self.operands: List[Operand] = []
        self.dest_preg: Optional[int] = None
        self.dest_cluster: Optional[int] = None
        self.state = STATE_WAITING
        self.generation = 0
        self.issue_cycle: Optional[int] = None
        self.complete_cycle: Optional[int] = None
        self.min_issue_cycle = 0
        self.unverified = 0
        self.readers: List["Uop"] = []
        self.verify_list: List[Tuple["Uop", Operand]] = []
        self.free_on_commit: List[Tuple[int, int]] = []
        self.consumer: Optional["Uop"] = None
        self.consumer_operand: Optional[Operand] = None
        self.mispredicted_branch = False
        self.reissue_count = 0
        self.wake_cycle = 0

    # -- classification helpers ------------------------------------------------

    @property
    def is_inst(self) -> bool:
        return self.kind == KIND_INST

    @property
    def is_copy(self) -> bool:
        return self.kind == KIND_COPY

    @property
    def is_vcopy(self) -> bool:
        return self.kind == KIND_VCOPY

    def kind_name(self) -> str:
        return ("inst", "copy", "vcopy")[self.kind]

    def __repr__(self) -> str:
        what = self.dyn.op.name if self.dyn is not None else "?"
        return (f"<Uop {self.kind_name()} order={self.order} {what} "
                f"cl={self.cluster} state={self.state}>")

"""The clustered out-of-order timing core and its public API."""

from .config import (CLUSTER_PRESETS, ProcessorConfig, derive_preset,
                     make_config)
from .processor import Processor
from .simulator import run_trace, simulate
from .snapshot import (SNAPSHOT_VERSION, CheckpointStore, SnapshotError,
                       SnapshotMeta, read_snapshot_meta, restore_executor,
                       restore_processor, save_executor, save_processor)
from .stats import SimResult, SimStats

__all__ = ["CLUSTER_PRESETS", "ProcessorConfig", "derive_preset",
           "make_config", "Processor",
           "run_trace", "simulate", "SimResult", "SimStats",
           "SNAPSHOT_VERSION", "CheckpointStore", "SnapshotError",
           "SnapshotMeta", "read_snapshot_meta", "restore_executor",
           "restore_processor", "save_executor", "save_processor"]

"""The cycle-level clustered out-of-order processor (§2 of the paper).

Six stages — fetch, decode/rename/steer, issue, execute, writeback,
commit — over N homogeneous clusters.  Per cycle, in order:

1. **writeback events**: scheduled completions, producer-side value
   verification, verification-copy mismatch deliveries;
2. **commit**: in-order retirement (stores take a D-cache port; the
   previous mapping set of each destination register is released);
3. **issue**: per cluster and per side (int/fp), oldest-first among
   ready uops within the issue widths, functional units, D-cache ports
   and interconnect paths; the NREADY imbalance figure is measured here;
4. **decode/rename/steer**: value-predictor lookup+update, steering,
   map-table rename with demand-generated copies and verification-
   copies, dispatch into the issue queues and the ROB;
5. **fetch**: the front end refills the fetch buffer.

Speculation follows §2.2: confident predicted operands dispatch
speculatively; the producer verifies local predictions one cycle after
its writeback; verification-copies verify remote predictions in the
producer's cluster and forward the value only on mismatch; failures
selectively invalidate and reissue the consumer and, transitively,
everything that used its result, through the normal issue mechanism.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import Cluster, FUPool, NEVER
from ..errors import ConfigError, SimulationError
from ..frontend import (BranchTargetBuffer, CombinedPredictor,
                        FetchEngine, FetchedInst)
from ..interconnect import Interconnect
from ..isa.instruction import DynInst
from ..isa.registers import NUM_LOGICAL_REGS, ZERO_REG, is_fp_reg
from ..memory import MemoryHierarchy
from ..obs.events import (EV_COMMIT, EV_COMPLETE, EV_COPY_SEND,
                          EV_DISPATCH, EV_FETCH, EV_ISSUE, EV_SQUASH,
                          EV_STEER, EV_VCOPY_VERIFY)
from ..obs.interval import IntervalMetrics
from ..obs.tracer import POSTMORTEM_WINDOW
from ..predictor import (ContextPredictor, HybridPredictor, NullPredictor,
                         PerfectPredictor, StridePredictor, ValuePredictor)
from ..rename import RenameUnit
from ..steering import (BalanceOnlySteerer, BaselineSteerer, DCountTracker,
                        DependenceOnlySteerer, ModifiedSteerer, NReadyMeter,
                        RoundRobinSteerer, SourceView, StaticSteerer,
                        VPBSteerer)
from ..validation.watchdog import (ClusterSnapshot, PipelineSnapshot,
                                   PipelineWatchdog)
from .config import ProcessorConfig
from .stats import SimResult, SimStats
from .uop import (KIND_COPY, KIND_INST, KIND_VCOPY, MODE_FWD, MODE_LOCAL,
                  MODE_PRED, MODE_ZERO, Operand, STATE_COMMITTED, STATE_DONE,
                  STATE_ISSUED, STATE_WAITING, Uop)

__all__ = ["Processor"]

_EV_COMPLETE = 0
_EV_VERIFY = 1
_EV_VDELIVER = 2


def _build_steerer(config: ProcessorConfig):
    name = config.steering
    n = config.n_clusters
    if name == "baseline":
        return BaselineSteerer(n, config.balance_threshold)
    if name == "modified":
        return ModifiedSteerer(n, config.balance_threshold)
    if name == "vpb":
        return VPBSteerer(n, config.balance_threshold, config.vpb_threshold)
    if name == "round-robin":
        return RoundRobinSteerer(n)
    if name == "balance-only":
        return BalanceOnlySteerer(n)
    if name == "dependence-only":
        return DependenceOnlySteerer(n)
    if name == "static":
        return StaticSteerer(n, config.static_assignment)
    raise ValueError(f"unknown steering scheme {name!r}")


def _build_predictor(config: ProcessorConfig) -> ValuePredictor:
    if config.predictor == "none":
        return NullPredictor()
    if config.predictor == "stride":
        return StridePredictor(config.vp_entries,
                               config.vp_confidence_threshold,
                               two_delta=config.vp_two_delta)
    if config.predictor == "context":
        return ContextPredictor(
            l2_entries=config.vp_entries,
            confidence_threshold=config.vp_confidence_threshold)
    if config.predictor == "hybrid":
        return HybridPredictor(stride_entries=config.vp_entries)
    if config.predictor == "perfect":
        return PerfectPredictor()
    raise ValueError(f"unknown predictor {config.predictor!r}")


class Processor:
    """One simulation instance: a config plus a dynamic trace to replay.

    Args:
        config: processor parameterization.
        trace: iterable of :class:`DynInst` to replay.
        golden: optional :class:`~repro.validation.golden.GoldenModel`
            co-simulator; every committed program instruction is
            replayed against it (in batches of
            ``config.golden_interval``).
        injector: optional
            :class:`~repro.validation.faults.FaultInjector`; perturbs
            predictions, steering and the interconnect, and is notified
            when an injected corruption is caught by verification.
        tracer: optional :class:`~repro.obs.EventTracer`; the pipeline
            stages emit typed events into it (docs/OBSERVABILITY.md).
        profiler: optional :class:`~repro.obs.PhaseProfiler`; the run
            loop attributes host wall-clock to its pipeline stages.

    All three observers are strictly read-only: with any combination
    installed, the committed instruction stream and every ``SimStats``
    field are identical to an uninstrumented run.
    """

    def __init__(self, config: ProcessorConfig, trace, *,
                 golden=None, injector=None, tracer=None,
                 profiler=None) -> None:
        config.validate()
        if injector is not None and config.predictor == "perfect":
            raise ConfigError(
                "fault injection is incompatible with the perfect "
                "predictor: its oracle mode skips the verification "
                "machinery that detects injected corruptions")
        self.config = config
        self._golden = golden
        self._injector = injector
        self._tracer = tracer
        self.profiler = profiler
        self.metrics = (IntervalMetrics(config.metrics_interval,
                                        config.n_clusters)
                        if config.metrics_interval else None)
        self.stats = SimStats()
        self.stats.dispatch_per_cluster = [0] * config.n_clusters
        self.stats.issued_per_cluster = [0] * config.n_clusters
        self.stats.iq_occupancy_sum = [0] * config.n_clusters
        self.memory = MemoryHierarchy(dcache_ports=config.dcache_ports)
        self.bpred = CombinedPredictor()
        self.btb = (BranchTargetBuffer(config.btb_entries)
                    if config.btb_entries else None)
        self.fetch = FetchEngine(trace, self.memory.fetch_latency,
                                 self.bpred, width=config.fetch_width,
                                 buffer_capacity=config.fetch_buffer,
                                 btb=self.btb)
        self.clusters: List[Cluster] = [
            Cluster(c, config.iq_size, 2 * config.pregs_per_cluster,
                    FUPool(config.int_units, config.int_muldiv,
                           config.fp_units, config.fp_muldiv,
                           config.int_issue_width, config.fp_issue_width,
                           config.latencies))
            for c in range(config.n_clusters)]
        self.renamer = RenameUnit(NUM_LOGICAL_REGS, config.n_clusters,
                                  config.pregs_per_cluster)
        for _, cluster, preg in self.renamer.initial_mappings():
            self.clusters[cluster].regfile.set_ready(preg, 0)
        self.interconnect = Interconnect(config.n_clusters,
                                         config.comm_latency,
                                         config.comm_paths_per_cluster,
                                         fault_injector=injector)
        self.interconnect.tracer = tracer
        self.vp = _build_predictor(config)
        self._vp_enabled = config.predictor != "none"
        # The perfect predictor is the paper's idealized upper bound
        # (§3.3): predictions are free and always right, so no
        # verification-copies are dispatched and no verification latency
        # is charged — the study isolates what communication removal
        # alone could buy.
        self._oracle = config.predictor == "perfect"
        self.steerer = _build_steerer(config)
        self.dcount = DCountTracker(config.n_clusters)
        self.nready = NReadyMeter(config.n_clusters)
        self.rob: deque = deque()
        self._events: Dict[int, List[tuple]] = {}
        self._next_order = 0
        self._vp_cache: Dict[int, list] = {}
        # Memory disambiguation: decoded stores whose address generation
        # has not issued yet, and issued-but-uncommitted stores by address.
        self._pending_store_addrs: set = set()
        self._inflight_stores: Dict[int, List[Uop]] = {}
        # Stores that have generated their address but still await their
        # data value (the store-queue data side).
        self._stores_awaiting_data: List[Uop] = []
        self._dports_used = 0
        self.cycle = 0
        self.watchdog = PipelineWatchdog(config.deadlock_cycles,
                                         self.pipeline_snapshot)

    # ------------------------------------------------------------------ run --

    def run(self, max_cycles: Optional[int] = None) -> SimResult:
        """Simulate until the trace drains; returns the result bundle."""
        if self.profiler is not None:
            self._run_profiled(max_cycles)
        else:
            self._run_plain(max_cycles)
        return self._finalize()

    def _run_plain(self, max_cycles: Optional[int]) -> None:
        """The uninstrumented (and profiler-free) timing loop."""
        watchdog = self.watchdog
        metrics = self.metrics
        interval = metrics.interval if metrics is not None else 0
        while not (self.fetch.done and not self.rob):
            cycle = self.cycle
            if max_cycles is not None and cycle >= max_cycles:
                break
            if metrics is not None and cycle and cycle % interval == 0:
                metrics.sample(self, cycle)
            self._dports_used = 0
            for cluster in self.clusters:
                cluster.fupool.begin_cycle(cycle)
            self._process_events(cycle)
            self._drain_store_data(cycle)
            if self._commit(cycle):
                watchdog.note_commit(cycle)
            else:
                watchdog.check(cycle)
            self._issue(cycle)
            self._decode(cycle)
            self.fetch.tick(cycle)
            if cycle and cycle % 8192 == 0:
                self.interconnect.prune(cycle)
            self.cycle += 1

    def _run_profiled(self, max_cycles: Optional[int]) -> None:
        """The same loop with host wall-clock attribution per stage.

        Stage order and semantics are identical to :meth:`_run_plain`;
        the only additions are ``perf_counter`` brackets, so the
        simulated outcome is unchanged.  Kept separate so the common
        case carries no timing calls at all.
        """
        watchdog = self.watchdog
        metrics = self.metrics
        interval = metrics.interval if metrics is not None else 0
        profiler = self.profiler
        seconds = profiler.seconds
        clock = profiler.clock
        run_start = clock()
        while not (self.fetch.done and not self.rob):
            cycle = self.cycle
            if max_cycles is not None and cycle >= max_cycles:
                break
            t0 = clock()
            if metrics is not None and cycle and cycle % interval == 0:
                metrics.sample(self, cycle)
            self._dports_used = 0
            for cluster in self.clusters:
                cluster.fupool.begin_cycle(cycle)
            t1 = clock()
            seconds["other"] += t1 - t0
            self._process_events(cycle)
            self._drain_store_data(cycle)
            t2 = clock()
            seconds["events"] += t2 - t1
            if self._commit(cycle):
                watchdog.note_commit(cycle)
            else:
                watchdog.check(cycle)
            t3 = clock()
            seconds["commit"] += t3 - t2
            self._issue(cycle)
            t4 = clock()
            seconds["issue"] += t4 - t3
            self._decode(cycle)
            t5 = clock()
            seconds["decode"] += t5 - t4
            self.fetch.tick(cycle)
            t6 = clock()
            seconds["fetch"] += t6 - t5
            if cycle and cycle % 8192 == 0:
                self.interconnect.prune(cycle)
                seconds["other"] += clock() - t6
            profiler.note_cycle()
            self.cycle += 1
        profiler.total_seconds += clock() - run_start

    def _finalize(self) -> SimResult:
        """Assemble the result bundle after the loop drains or stops."""
        if self.metrics is not None:
            self.metrics.finish(self, self.cycle)
        self.stats.cycles = self.cycle
        self.stats.avg_imbalance = self.nready.average
        self.stats.cond_branches = self.bpred.stats.lookups
        self.stats.branch_mispredictions = self.bpred.stats.mispredictions
        vp_stats = {
            "lookups": self.vp.stats.lookups,
            "confident": self.vp.stats.confident,
            "confident_fraction": self.vp.stats.confident_fraction,
            "hit_ratio": self.vp.stats.hit_ratio,
        }
        bp_stats = {
            "lookups": self.bpred.stats.lookups,
            "mispredictions": self.bpred.stats.mispredictions,
            "accuracy": self.bpred.stats.accuracy,
        }
        if self.btb is not None:
            bp_stats["btb_miss_rate"] = self.btb.miss_rate
        validation = {}
        if self._golden is not None:
            validation["golden_commits"] = self._golden.finish(self.cycle)
            validation["golden_batches"] = self._golden.batches
        if self._injector is not None:
            report = self._injector.report
            validation["fault_plan"] = self._injector.plan.describe()
            validation["fault_report"] = report
            self.stats.injected_faults = report.total_injected
            self.stats.detected_faults = report.detected_values
        return SimResult(self.stats, self.config, self.memory.stats(),
                         vp_stats, bp_stats, validation,
                         metrics=self.metrics, profile=self.profiler)

    def describe_state(self) -> str:
        """One-line-per-structure snapshot for debugging stuck runs."""
        lines = [f"cycle {self.cycle}: ROB {len(self.rob)}"
                 f"/{self.config.rob_size}, "
                 f"fetch {'done' if self.fetch.done else 'active'}"]
        for cluster in self.clusters:
            lines.append(
                f"  cluster {cluster.cluster_id}: "
                f"iq_int {len(cluster.iq_int)}/{cluster.iq_int.capacity} "
                f"iq_fp {len(cluster.iq_fp)}/{cluster.iq_fp.capacity} "
                f"dcount {self.dcount.counters[cluster.cluster_id]}")
        if self.rob:
            head = self.rob[0]
            lines.append(f"  ROB head: {head!r} unverified={head.unverified}"
                         f" min_issue={head.min_issue_cycle}")
        lines.append(f"  pending store addrs: "
                     f"{len(self._pending_store_addrs)}, "
                     f"stores awaiting data: "
                     f"{len(self._stores_awaiting_data)}")
        return "\n".join(lines)

    def pipeline_snapshot(self, cycle: int, last_commit_cycle: int,
                          budget: int) -> PipelineSnapshot:
        """Structured stall post-mortem (the watchdog's failure payload)."""
        head = self.rob[0] if self.rob else None
        clusters = []
        for cluster in self.clusters:
            cid = cluster.cluster_id
            clusters.append(ClusterSnapshot(
                cluster_id=cid,
                iq_int_occupancy=len(cluster.iq_int),
                iq_int_capacity=cluster.iq_int.capacity,
                iq_fp_occupancy=len(cluster.iq_fp),
                iq_fp_capacity=cluster.iq_fp.capacity,
                free_pregs=[self.renamer.free_count(cid, bank)
                            for bank in (0, 1)]))
        return PipelineSnapshot(
            cycle=cycle,
            last_commit_cycle=last_commit_cycle,
            budget=budget,
            rob_occupancy=len(self.rob),
            rob_size=self.config.rob_size,
            rob_head=repr(head) if head is not None else None,
            rob_head_unverified=head.unverified if head else None,
            rob_head_min_issue=head.min_issue_cycle if head else None,
            fetch_done=self.fetch.done,
            clusters=clusters,
            inflight_bus_messages=self.interconnect.inflight(cycle),
            pending_store_addrs=len(self._pending_store_addrs),
            stores_awaiting_data=len(self._stores_awaiting_data),
            decode_stalls=dict(self.stats.decode_stalls),
            dispatched_per_cluster=list(self.stats.dispatch_per_cluster),
            issued_per_cluster=list(self.stats.issued_per_cluster),
            recent_events=(self._tracer.recent(POSTMORTEM_WINDOW)
                           if self._tracer is not None else []))

    # ----------------------------------------------------------- writeback --

    def _schedule(self, cycle: int, event: tuple) -> None:
        self._events.setdefault(cycle, []).append(event)

    def _process_events(self, cycle: int) -> None:
        events = self._events.pop(cycle, None)
        if not events:
            return
        for event in events:
            kind, uop, generation = event
            if uop.generation != generation:
                continue  # stale: the uop was invalidated and will redo
            if kind == _EV_COMPLETE:
                self._complete(uop, cycle)
            elif kind == _EV_VERIFY:
                self._run_verifications(uop, cycle)
            else:  # _EV_VDELIVER
                self._deliver_mismatch(uop, cycle)

    def _complete(self, uop: Uop, cycle: int) -> None:
        if uop.state != STATE_ISSUED:
            return
        uop.state = STATE_DONE
        uop.complete_cycle = cycle
        tracer = self._tracer
        if tracer is not None:
            # Inline emission (here and at every hook below): a bound
            # C append is ~10x cheaper than a tracer method call, and
            # writeback/issue/commit each fire once per uop.
            tracer.counts[EV_COMPLETE] += 1
            tracer.emit((cycle, EV_COMPLETE, uop.order, uop.kind,
                         uop.cluster))
        if uop.kind == KIND_VCOPY:
            operand = uop.consumer_operand
            if operand.correct and not operand.verified:
                operand.verified = True
                uop.consumer.unverified -= 1
            return
        if uop.verify_list:
            self._schedule(cycle + 1, (_EV_VERIFY, uop, uop.generation))
        if (uop.kind == KIND_INST and uop.mispredicted_branch):
            self.fetch.branch_resolved(uop.dyn.seq, cycle)

    def _run_verifications(self, producer: Uop, cycle: int) -> None:
        """Producer-side verification, one cycle after writeback (§2.2)."""
        pending = producer.verify_list
        producer.verify_list = []
        for consumer, operand in pending:
            if operand.verified:
                continue
            operand.verified = True
            consumer.unverified -= 1
            if operand.correct:
                continue
            self._note_fault_detected(operand)
            # Misprediction: the correct value sits in the local physical
            # register (ready at the producer's completion); the consumer
            # reverts to a normal register read and reissues.
            operand.mode = MODE_LOCAL
            if consumer.state != STATE_WAITING:
                self._invalidate(consumer, cycle)

    def _deliver_mismatch(self, vcopy: Uop, cycle: int) -> None:
        """A verification-copy's mismatch forward arrives at the consumer.

        If the operand is already verified, a previous generation of
        this vcopy (invalidated and replayed after its source producer
        reissued) has already delivered the same final value — the
        replayed forward changes nothing and the consumer may even have
        committed meanwhile.
        """
        consumer = vcopy.consumer
        operand = vcopy.consumer_operand
        if operand.verified:
            return
        operand.mode = MODE_FWD
        operand.ready_override = cycle
        operand.verified = True
        consumer.unverified -= 1
        self._note_fault_detected(operand)
        if consumer.state != STATE_WAITING:
            self._invalidate(consumer, cycle)

    def _note_fault_detected(self, operand: Operand) -> None:
        """Report a caught injected corruption back to the harness."""
        if operand.injected and self._injector is not None:
            self._injector.note_value_detected()

    # --------------------------------------------------------- invalidation --

    def _invalidate(self, start: Uop, cycle: int) -> None:
        """Selective invalidation + reissue of a dependence cone (§2.2)."""
        stack = [start]
        while stack:
            uop = stack.pop()
            if uop.state == STATE_WAITING:
                continue
            if uop.state == STATE_COMMITTED:
                raise SimulationError(
                    f"attempted to invalidate committed uop {uop!r}")
            uop.generation += 1
            uop.state = STATE_WAITING
            uop.complete_cycle = None
            uop.issue_cycle = None
            if cycle > uop.min_issue_cycle:
                uop.min_issue_cycle = cycle
            uop.reissue_count += 1
            self.stats.invalidations += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.counts[EV_SQUASH] += 1
                tracer.emit((cycle, EV_SQUASH, uop.order, uop.kind,
                             uop.cluster, uop.generation))
            if uop.dest_preg is not None:
                regfile = self.clusters[uop.dest_cluster].regfile
                regfile.set_pending(uop.dest_preg, uop)
            if uop.is_store:
                self._pending_store_addrs.add(uop.dyn.seq)
                stores = self._inflight_stores.get(uop.dyn.mem_addr)
                if stores and uop in stores:
                    stores.remove(uop)
            self.clusters[uop.cluster].iq_for(uop.int_side).reinsert(uop)
            readers = uop.readers
            uop.readers = []
            stack.extend(readers)

    # ---------------------------------------------------------------- commit --

    def _commit(self, cycle: int) -> int:
        rob = self.rob
        retired = 0
        budget = self.config.retire_width
        tracer = self._tracer
        while rob and retired < budget:
            uop = rob[0]
            if (uop.state != STATE_DONE or uop.unverified > 0
                    or uop.complete_cycle >= cycle):
                break
            if uop.is_store:
                if self._dports_used >= self.config.dcache_ports:
                    break
                self._dports_used += 1
                self.memory.data_latency(uop.dyn.mem_addr, is_write=True)
                stores = self._inflight_stores.get(uop.dyn.mem_addr)
                if stores and uop in stores:
                    stores.remove(uop)
            rob.popleft()
            uop.state = STATE_COMMITTED
            retired += 1
            if uop.free_on_commit:
                self.renamer.release(uop.free_on_commit)
                for fcluster, fpreg in uop.free_on_commit:
                    self.clusters[fcluster].regfile.clear(fpreg)
            if uop.dest_preg is not None:
                self.clusters[uop.dest_cluster].regfile.producer[
                    uop.dest_preg] = None
            uop.readers = []
            if tracer is not None:
                tracer.counts[EV_COMMIT] += 1
                tracer.emit((
                    cycle, EV_COMMIT, uop.order, uop.kind,
                    uop.dyn.seq if uop.dyn is not None else -1,
                    uop.cluster))
            if uop.kind == KIND_INST:
                self.stats.committed_insts += 1
                if self._golden is not None:
                    self._golden.on_commit(uop.dyn, cycle, uop.cluster)
            elif uop.kind == KIND_COPY:
                self.stats.committed_copies += 1
            else:
                self.stats.committed_vcopies += 1
        return retired

    # ----------------------------------------------------------------- issue --

    def _operand_ready(self, uop: Uop, operand: Operand, cycle: int) -> bool:
        mode = operand.mode
        if mode == MODE_LOCAL:
            regfile = self.clusters[uop.cluster].regfile
            return regfile.ready[operand.preg] <= cycle
        if mode == MODE_PRED:
            return True
        if mode == MODE_FWD:
            return operand.ready_override <= cycle
        return True  # MODE_ZERO

    def _load_disambiguated(self, uop: Uop) -> bool:
        """Loads wait until every prior store's address is known (Table 1)."""
        pending = self._pending_store_addrs
        if not pending:
            return True
        seq = uop.dyn.seq
        return min(pending) > seq

    def _forwarding_store(self, uop: Uop) -> Optional[Uop]:
        """Latest earlier in-flight store to the load's address, if any.

        The returned store may still be awaiting its data (not DONE);
        the load must then wait — a read cannot bypass a same-address
        write whose value does not exist yet.
        """
        stores = self._inflight_stores.get(uop.dyn.mem_addr)
        if not stores:
            return None
        seq = uop.dyn.seq
        best = None
        for store in stores:
            if store.dyn.seq < seq and (
                    best is None or store.dyn.seq > best.dyn.seq):
                best = store
        return best

    def _drain_store_data(self, cycle: int) -> None:
        """Complete address-generated stores whose data value arrived."""
        if not self._stores_awaiting_data:
            return
        still_waiting: List[Uop] = []
        for store in self._stores_awaiting_data:
            if store.state != STATE_ISSUED:
                continue  # invalidated; it will re-issue and re-enqueue
            if self._operand_ready(store, store.operands[0], cycle):
                self._complete(store, cycle)
            else:
                still_waiting.append(store)
        self._stores_awaiting_data = still_waiting

    def _issue(self, cycle: int) -> None:
        leftover_int = [0] * self.config.n_clusters
        leftover_fp = [0] * self.config.n_clusters
        occupancy = self.stats.iq_occupancy_sum
        for cluster in self.clusters:
            cid = cluster.cluster_id
            occupancy[cid] += cluster.occupancy
            for int_side in (True, False):
                queue = cluster.iq_for(int_side)
                if not len(queue):
                    continue
                issued: List[Uop] = []
                for uop in queue:
                    if uop.state != STATE_WAITING:
                        continue
                    if uop.min_issue_cycle > cycle or uop.wake_cycle > cycle:
                        continue
                    blocked = self._try_issue_uop(uop, cluster, cycle)
                    if blocked is None:
                        issued.append(uop)
                    elif blocked == "capacity" and uop.kind == KIND_INST:
                        if int_side:
                            leftover_int[cid] += 1
                        else:
                            leftover_fp[cid] += 1
                queue.remove_many(issued)
        idle_int = [c.fupool.idle_capacity(True) for c in self.clusters]
        idle_fp = [c.fupool.idle_capacity(False) for c in self.clusters]
        self.nready.record(leftover_int, idle_int, leftover_fp, idle_fp)

    def _park(self, uop: Uop, blocking: Sequence[Operand],
              cycle: int) -> None:
        """Sleep an operand-blocked uop until an operand could be ready.

        The wake cycle is a *lower bound* on the first cycle any of the
        blocking operands could become usable: a finite scheduled ready
        cycle bounds directly; an unscheduled register (ready ``NEVER``)
        parks the uop on the register file's waiter list, and
        ``set_ready`` lowers the wake cycle when the producer finally
        schedules a value.  Because wakes only ever lower
        ``wake_cycle``, a parked uop can never sleep through a cycle at
        which it could have issued — the issue order, and therefore the
        committed stream, is identical to the full per-cycle rescan.
        """
        regfile = self.clusters[uop.cluster].regfile
        bound = cycle + 1
        for operand in blocking:
            if operand.mode == MODE_LOCAL:
                ready = regfile.ready[operand.preg]
                regfile.add_waiter(operand.preg, uop)
                if ready > bound:
                    bound = ready
            elif operand.mode == MODE_FWD:
                if operand.ready_override > bound:
                    bound = operand.ready_override
        uop.wake_cycle = bound

    def _try_issue_uop(self, uop: Uop, cluster: Cluster,
                       cycle: int) -> Optional[str]:
        """Attempt issue; returns None on success or the blocking reason.

        Reasons: "operands" (not ready), "capacity" (issue width or FU —
        the NREADY-relevant case), "port"/"path" (global resources).
        An operand-blocked uop consumes no shared resource, so parking
        it (see :meth:`_park`) cannot perturb any other uop's issue.
        """
        if uop.is_store:
            # Address generation needs only the base operand (srcs are
            # (value, base)); the data value is collected in the store
            # queue afterwards (§2.4: "loads may execute when prior
            # store addresses are known").
            operand = uop.operands[1]
            if not self._operand_ready(uop, operand, cycle):
                self._park(uop, (operand,), cycle)
                return "operands"
        else:
            blocking: Optional[List[Operand]] = None
            for operand in uop.operands:
                if not self._operand_ready(uop, operand, cycle):
                    if blocking is None:
                        blocking = []
                    blocking.append(operand)
            if blocking:
                self._park(uop, blocking, cycle)
                return "operands"
        fupool = cluster.fupool
        if uop.kind == KIND_INST:
            if uop.is_load:
                if not self._load_disambiguated(uop):
                    return "operands"
                forward = self._forwarding_store(uop)
                if forward is not None and forward.state != STATE_DONE:
                    return "operands"  # same-address store data not ready
                if self._dports_used >= self.config.dcache_ports:
                    return "port"
            if not fupool.try_issue(uop.opclass):
                return "capacity"
            self._issue_inst(uop, cycle)
            return None
        free_copies = self.config.free_copy_issue
        if uop.kind == KIND_COPY:
            if not free_copies:
                width_left = (fupool.int_width_left() if uop.int_side
                              else fupool.fp_width_left())
                if width_left <= 0:
                    return "capacity"
            if not self.interconnect.try_reserve(uop.dest_cluster,
                                                 cycle + 1):
                return "path"
            if not free_copies:
                fupool.try_issue_copy(not uop.int_side)
            self._issue_copy(uop, cycle)
            return None
        # KIND_VCOPY
        if not free_copies and fupool.int_width_left() <= 0:
            return "capacity"
        mismatch = not uop.consumer_operand.correct
        if mismatch and not self.interconnect.try_reserve(
                uop.consumer.cluster, cycle + 1):
            return "path"
        if not free_copies:
            fupool.try_issue_copy(False)
        self._issue_vcopy(uop, cycle, mismatch)
        return None

    def _register_readers(self, uop: Uop) -> None:
        regfile = self.clusters[uop.cluster].regfile
        for operand in uop.operands:
            if operand.mode == MODE_LOCAL:
                producer = regfile.producer[operand.preg]
                if (producer is not None and producer is not uop
                        and producer.state != STATE_COMMITTED):
                    producer.readers.append(uop)

    def _mark_issued(self, uop: Uop, cycle: int) -> None:
        uop.state = STATE_ISSUED
        uop.issue_cycle = cycle
        self.stats.issued_uops += 1
        self.stats.issued_per_cluster[uop.cluster] += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.counts[EV_ISSUE] += 1
            tracer.emit((cycle, EV_ISSUE, uop.order, uop.kind,
                         uop.cluster, uop.reissue_count))
        self._register_readers(uop)

    def _issue_inst(self, uop: Uop, cycle: int) -> None:
        dyn = uop.dyn
        fupool = self.clusters[uop.cluster].fupool
        latency = fupool.latency(uop.opclass)
        if uop.is_load:
            self._dports_used += 1
            forward = self._forwarding_store(uop)
            if forward is not None:
                latency += 1  # store buffer forward
                forward.readers.append(uop)
            else:
                latency += self.memory.data_latency(dyn.mem_addr)
        self._mark_issued(uop, cycle)
        if uop.is_store:
            self._pending_store_addrs.discard(dyn.seq)
            self._inflight_stores.setdefault(dyn.mem_addr, []).append(uop)
            if self._operand_ready(uop, uop.operands[0], cycle):
                self._schedule(cycle + latency,
                               (_EV_COMPLETE, uop, uop.generation))
            else:
                # Address generated; park in the store queue until the
                # data value arrives (drained once per cycle).
                self._stores_awaiting_data.append(uop)
            return
        if uop.dest_preg is not None:
            regfile = self.clusters[uop.cluster].regfile
            regfile.set_ready(uop.dest_preg, cycle + latency)
            regfile.producer[uop.dest_preg] = uop
        self._schedule(cycle + latency,
                       (_EV_COMPLETE, uop, uop.generation))

    def _issue_copy(self, uop: Uop, cycle: int) -> None:
        """A copy drives the interconnect the cycle after it issues."""
        self._mark_issued(uop, cycle)
        self.stats.communications += 1
        arrival = self.interconnect.arrival_cycle(cycle + 1)
        tracer = self._tracer
        if tracer is not None:
            tracer.counts[EV_COPY_SEND] += 1
            tracer.emit((cycle, EV_COPY_SEND, uop.order, uop.cluster,
                         uop.dest_cluster, arrival))
        remote = self.clusters[uop.dest_cluster].regfile
        remote.set_ready(uop.dest_preg, arrival)
        remote.producer[uop.dest_preg] = uop
        self._schedule(arrival, (_EV_COMPLETE, uop, uop.generation))

    def _issue_vcopy(self, uop: Uop, cycle: int, mismatch: bool) -> None:
        """Local compare; forward (and reissue the consumer) on mismatch."""
        self._mark_issued(uop, cycle)
        tracer = self._tracer
        if tracer is not None:
            tracer.counts[EV_VCOPY_VERIFY] += 1
            tracer.emit((cycle, EV_VCOPY_VERIFY, uop.order, uop.cluster,
                         not mismatch))
        if mismatch:
            self.stats.communications += 1
            self.stats.mismatch_forwards += 1
            arrival = self.interconnect.arrival_cycle(cycle + 1)
            self._schedule(arrival, (_EV_VDELIVER, uop, uop.generation))
        self._schedule(cycle + 1, (_EV_COMPLETE, uop, uop.generation))

    # ---------------------------------------------------------------- decode --

    def _predictions(self, dyn: DynInst) -> list:
        """Per-slot value predictions, computed exactly once per DynInst.

        Entries are ``None`` (no confident prediction) or
        ``(value, correct, injected)`` triples; *injected* marks a
        prediction corrupted by the fault harness, whose detection must
        be reported back.
        """
        cached = self._vp_cache.get(dyn.seq)
        if cached is not None:
            return cached
        entries: list = []
        if not self._vp_enabled:
            entries = [None] * len(dyn.srcs)
        else:
            injector = self._injector
            for slot, logical in enumerate(dyn.srcs):
                if logical == ZERO_REG or is_fp_reg(logical):
                    entries.append(None)
                    continue
                actual = dyn.src_values[slot]
                prediction = self.vp.predict(dyn.pc, slot, actual)
                self.vp.update(dyn.pc, slot, actual)
                if not prediction.confident:
                    entries.append(None)
                    continue
                value, injected = prediction.value, False
                if injector is not None:
                    corrupted = injector.corrupt_prediction(dyn.pc, slot,
                                                            actual)
                    if corrupted is not None:
                        value, injected = corrupted, True
                entries.append((value, value == actual, injected))
        self._vp_cache[dyn.seq] = entries
        return entries

    def _source_view(self, logical: int, predicted: bool,
                     cycle: int) -> Tuple[SourceView, Optional[int]]:
        """Build the steering view of one operand.

        Returns the view and the physical-register-bearing "soonest"
        cluster (also used by rename to pick copy sources).
        """
        mapped = self.renamer.mapped_clusters(logical)
        best_cluster = None
        best_ready = NEVER + 1
        for cluster_id in mapped:
            preg = self.renamer.mapping(logical, cluster_id)
            ready = self.clusters[cluster_id].regfile.ready[preg]
            if ready < best_ready:
                best_ready = ready
                best_cluster = cluster_id
            elif ready == best_ready and ready >= NEVER:
                # Tie between unscheduled producers: prefer the defining
                # instruction's cluster over an unissued copy's target.
                producer = self.clusters[cluster_id].regfile.producer[preg]
                if producer is not None and producer.kind == KIND_INST:
                    best_cluster = cluster_id
        available = best_ready <= cycle
        view = SourceView(logical, is_fp_reg(logical), available,
                          self.renamer.mapped_set(logical), best_cluster,
                          predicted)
        return view, best_cluster

    def _decode(self, cycle: int) -> None:
        budget = self.config.decode_width
        decoded = 0
        while decoded < budget:
            fetched = self.fetch.peek_decodable(cycle)
            if fetched is None:
                break
            if not self._decode_one(fetched, cycle):
                break
            self.fetch.pop_one()
            decoded += 1

    def _decode_one(self, fetched: FetchedInst, cycle: int) -> bool:
        """Steer+rename+dispatch one instruction; False on a stall."""
        dyn = fetched.dyn
        predictions = self._predictions(dyn)
        views: List[SourceView] = []
        soonest: List[Optional[int]] = []
        for slot, logical in enumerate(dyn.srcs):
            if logical == ZERO_REG:
                views.append(SourceView(logical, False, True, frozenset(),
                                        None, False))
                soonest.append(None)
                continue
            view, best = self._source_view(
                logical, predictions[slot] is not None, cycle)
            views.append(view)
            soonest.append(best)
        cluster_id = self.steerer.choose(views, self.dcount, pc=dyn.pc)
        if self._injector is not None:
            cluster_id = self._injector.flip_steering(
                cluster_id, self.config.n_clusters, dyn.pc)
        plan = self._plan_operands(dyn, cluster_id, views, soonest,
                                   predictions, cycle)
        stall = self._check_resources(dyn, cluster_id, plan)
        if stall is not None:
            self.stats.decode_stalls[stall] = (
                self.stats.decode_stalls.get(stall, 0) + 1)
            return False
        self._dispatch(fetched, cluster_id, plan, cycle)
        return True

    def _plan_operands(self, dyn: DynInst, cluster_id: int,
                       views: Sequence[SourceView],
                       soonest: Sequence[Optional[int]],
                       predictions: Sequence,
                       cycle: int) -> List[tuple]:
        """Decide the handling of each source operand (see §2.1/§2.2).

        Plan entries:
          ("zero",)
          ("local", preg)                      value ready or will be, here
          ("pred_local", preg, correct, injected)  speculate; producer
                                                   verifies
          ("copy", logical, src_cluster)       demand-generated copy
          ("vcopy", logical, src_cluster, correct, injected)
                                               predicted remote operand
        """
        plan: List[tuple] = []
        regfile = self.clusters[cluster_id].regfile
        copy_planned: Dict[int, int] = {}   # logical -> slot of first copy
        for slot, logical in enumerate(dyn.srcs):
            if logical == ZERO_REG:
                plan.append(("zero",))
                continue
            if logical in copy_planned:
                # Same logical register twice: one copy serves both reads.
                plan.append(("copy_dup", logical, copy_planned[logical]))
                continue
            view = views[slot]
            prediction = predictions[slot]
            if cluster_id in view.mapped:
                preg = self.renamer.mapping(logical, cluster_id)
                if (prediction is not None
                        and regfile.ready[preg] > cycle):
                    # §2.2: source not yet available and confident ->
                    # dispatch speculatively; the producer verifies.
                    plan.append(("pred_local", preg, prediction[1],
                                 prediction[2]))
                else:
                    plan.append(("local", preg))
            elif prediction is not None:
                # §2.2 extension: operand not mapped here -> predict it
                # regardless of availability, verify with a vcopy.
                plan.append(("vcopy", logical, soonest[slot],
                             prediction[1], prediction[2]))
            else:
                plan.append(("copy", logical, soonest[slot]))
                copy_planned[logical] = slot
        return plan

    def _check_resources(self, dyn: DynInst, cluster_id: int,
                         plan: Sequence[tuple]) -> Optional[str]:
        copies = [entry for entry in plan if entry[0] == "copy"]
        vcopies = [entry for entry in plan if entry[0] == "vcopy"]
        rob_needed = 1 + len(copies) + len(vcopies)
        if len(self.rob) + rob_needed > self.config.rob_size:
            return "rob"
        # Free physical registers, per bank, in the consumer cluster
        # (copy replicas land there too).
        pregs_needed = [0, 0]
        for entry in copies:
            pregs_needed[RenameUnit.bank_of(entry[1])] += 1
        if dyn.dest is not None and dyn.dest != ZERO_REG:
            pregs_needed[RenameUnit.bank_of(dyn.dest)] += 1
        for bank in (0, 1):
            if (pregs_needed[bank]
                    and self.renamer.free_count(cluster_id, bank)
                    < pregs_needed[bank]):
                return "pregs"
        # Issue-queue space: the instruction in its cluster/side, each
        # (v)copy in its source cluster on the value's side.
        iq_needed: Dict[Tuple[int, bool], int] = {}
        own = (cluster_id, dyn.op.is_int)
        iq_needed[own] = 1
        for entry in copies:
            key = (entry[2], not is_fp_reg(entry[1]))
            iq_needed[key] = iq_needed.get(key, 0) + 1
        for entry in vcopies:
            key = (entry[2], True)
            iq_needed[key] = iq_needed.get(key, 0) + 1
        for (cid, int_side), count in iq_needed.items():
            if self.clusters[cid].iq_for(int_side).space_left() < count:
                return "iq"
        return None

    def _dispatch(self, fetched: FetchedInst, cluster_id: int,
                  plan: Sequence[tuple], cycle: int) -> None:
        dyn = fetched.dyn
        config = self.config
        min_issue = cycle + 1 + config.extra_rename_cycles
        uop = Uop(KIND_INST, dyn, 0, cluster_id, dyn.op.is_int, dyn.opclass)
        uop.min_issue_cycle = min_issue
        uop.mispredicted_branch = fetched.mispredicted
        helpers: List[Uop] = []
        for slot, entry in enumerate(plan):
            kind = entry[0]
            if kind == "zero":
                uop.operands.append(Operand(MODE_ZERO, slot=slot))
            elif kind == "local":
                uop.operands.append(Operand(MODE_LOCAL, entry[1], slot=slot))
            elif kind == "pred_local":
                _, preg, correct, injected = entry
                operand = Operand(MODE_PRED, preg, correct, slot=slot,
                                  injected=injected)
                uop.operands.append(operand)
                if injected:
                    self._injector.note_value_injected(dyn.pc, slot)
                self._count_speculation(correct)
                if self._oracle:
                    operand.verified = True
                else:
                    uop.unverified += 1
                    self._register_verification(cluster_id, preg, uop,
                                                operand, cycle)
            elif kind == "copy":
                _, logical, src_cluster = entry
                helpers.append(self._make_copy(logical, src_cluster,
                                               cluster_id, uop, slot,
                                               min_issue))
            elif kind == "copy_dup":
                # Second read of a logical register already being copied
                # by this instruction: share the replica.
                _, logical, first_slot = entry
                uop.operands.append(Operand(
                    MODE_LOCAL, uop.operands[first_slot].preg, slot=slot))
            else:  # vcopy
                _, logical, src_cluster, correct, injected = entry
                operand = Operand(MODE_PRED, None, correct, slot=slot,
                                  injected=injected)
                uop.operands.append(operand)
                if injected:
                    self._injector.note_value_injected(dyn.pc, slot)
                self._count_speculation(correct)
                if self._oracle:
                    operand.verified = True
                else:
                    uop.unverified += 1
                    helpers.append(self._make_vcopy(logical, src_cluster,
                                                    uop, operand, min_issue))
        # Destination rename (Figure 1).
        if dyn.dest is not None and dyn.dest != ZERO_REG:
            preg, previous = self.renamer.define_dest(dyn.dest, cluster_id)
            uop.dest_preg = preg
            uop.dest_cluster = cluster_id
            uop.free_on_commit = previous
            self.clusters[cluster_id].regfile.set_pending(preg, uop)
        # Helpers precede the instruction in dispatch (and ROB) order.
        tracer = self._tracer
        for helper in helpers:
            helper.order = self._next_order
            self._next_order += 1
            self.rob.append(helper)
            self.clusters[helper.cluster].iq_for(helper.int_side).dispatch(
                helper)
            if tracer is not None:
                tracer.counts[EV_DISPATCH] += 1
                tracer.emit((cycle, EV_DISPATCH, helper.order, helper.kind,
                             dyn.seq, dyn.pc, helper.cluster, dyn.op.name,
                             fetched.fetch_cycle))
        uop.order = self._next_order
        self._next_order += 1
        self.rob.append(uop)
        self.clusters[cluster_id].iq_for(uop.int_side).dispatch(uop)
        if tracer is not None:
            counts = tracer.counts
            emit = tracer.emit
            counts[EV_FETCH] += 1
            emit((fetched.fetch_cycle, EV_FETCH, dyn.seq, dyn.pc))
            counts[EV_STEER] += 1
            emit((cycle, EV_STEER, dyn.seq, cluster_id,
                  self.steerer.last_reason))
            counts[EV_DISPATCH] += 1
            emit((cycle, EV_DISPATCH, uop.order, KIND_INST, dyn.seq,
                  dyn.pc, cluster_id, dyn.op.name, fetched.fetch_cycle))
        if dyn.is_store:
            self._pending_store_addrs.add(dyn.seq)
        self.dcount.dispatch(cluster_id)
        self.steerer.notify_dispatch(cluster_id)
        self.stats.dispatched_insts += 1
        self.stats.dispatch_per_cluster[cluster_id] += 1
        self._vp_cache.pop(dyn.seq, None)

    def _count_speculation(self, correct: bool) -> None:
        self.stats.speculative_operands += 1
        if not correct:
            self.stats.mispredicted_operands += 1

    def _register_verification(self, cluster_id: int, preg: int,
                               consumer: Uop, operand: Operand,
                               cycle: int) -> None:
        """Attach a local prediction to its producer for writeback checks."""
        producer = self.clusters[cluster_id].regfile.producer[preg]
        if producer is None or producer.state == STATE_COMMITTED:
            # The value became architectural between the view and now;
            # the speculation trivially verifies against a final value.
            operand.verified = True
            consumer.unverified -= 1
            if not operand.correct:
                self._note_fault_detected(operand)
                operand.mode = MODE_LOCAL
            return
        producer.verify_list.append((consumer, operand))
        if producer.state == STATE_DONE:
            # Completed this very cycle before we registered: schedule
            # the verification ourselves.
            self._schedule(max(cycle + 1, producer.complete_cycle + 1),
                           (_EV_VERIFY, producer, producer.generation))

    def _make_copy(self, logical: int, src_cluster: int, dst_cluster: int,
                   consumer: Uop, slot: int, min_issue: int) -> Uop:
        src_preg = self.renamer.mapping(logical, src_cluster)
        replica = self.renamer.alloc_replica(logical, dst_cluster)
        int_side = not is_fp_reg(logical)
        copy = Uop(KIND_COPY, consumer.dyn, 0, src_cluster, int_side, None)
        copy.min_issue_cycle = min_issue
        copy.operands.append(Operand(MODE_LOCAL, src_preg, slot=slot))
        copy.dest_preg = replica
        copy.dest_cluster = dst_cluster
        self.clusters[dst_cluster].regfile.set_pending(replica, copy)
        consumer.operands.append(Operand(MODE_LOCAL, replica, slot=slot))
        self.stats.dispatched_copies += 1
        return copy

    def _make_vcopy(self, logical: int, src_cluster: int, consumer: Uop,
                    operand: Operand, min_issue: int) -> Uop:
        src_preg = self.renamer.mapping(logical, src_cluster)
        vcopy = Uop(KIND_VCOPY, consumer.dyn, 0, src_cluster, True, None)
        vcopy.min_issue_cycle = min_issue
        vcopy.operands.append(Operand(MODE_LOCAL, src_preg,
                                      slot=operand.slot))
        vcopy.consumer = consumer
        vcopy.consumer_operand = operand
        self.stats.dispatched_vcopies += 1
        return vcopy

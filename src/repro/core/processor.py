"""The cycle-level clustered out-of-order processor (§2 of the paper).

Six stages — fetch, decode/rename/steer, issue, execute, writeback,
commit — over N homogeneous clusters.  Per cycle, in order:

1. **writeback events**: scheduled completions, producer-side value
   verification, verification-copy mismatch deliveries;
2. **commit**: in-order retirement (stores take a D-cache port; the
   previous mapping set of each destination register is released);
3. **issue**: per cluster and per side (int/fp), oldest-first among
   ready uops within the issue widths, functional units, D-cache ports
   and interconnect paths; the NREADY imbalance figure is measured here;
4. **decode/rename/steer**: value-predictor lookup+update, steering,
   map-table rename with demand-generated copies and verification-
   copies, dispatch into the issue queues and the ROB;
5. **fetch**: the front end refills the fetch buffer.

Speculation follows §2.2: confident predicted operands dispatch
speculatively; the producer verifies local predictions one cycle after
its writeback; verification-copies verify remote predictions in the
producer's cluster and forward the value only on mismatch; failures
selectively invalidate and reissue the consumer and, transitively,
everything that used its result, through the normal issue mechanism.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import Cluster, FUPool, NEVER, NEXT_TRY_IDLE
from ..errors import ConfigError, SimulationError
from ..frontend import (BranchTargetBuffer, CombinedPredictor,
                        FetchEngine, FetchedInst)
from ..interconnect import Interconnect
from ..isa.instruction import DynInst
from ..isa.registers import NUM_LOGICAL_REGS, ZERO_REG, is_fp_reg
from ..memory import MemoryHierarchy
from ..obs.events import (EV_COMMIT, EV_COMPLETE, EV_COPY_SEND,
                          EV_DISPATCH, EV_FETCH, EV_ISSUE, EV_SQUASH,
                          EV_STEER, EV_VCOPY_VERIFY)
from ..obs.interval import IntervalMetrics
from ..obs.tracer import POSTMORTEM_WINDOW
from ..predictor import (ContextPredictor, HybridPredictor, NullPredictor,
                         PerfectPredictor, StridePredictor, ValuePredictor)
from ..rename import RenameUnit
from ..rename.renamer import FP_BANK, INT_BANK
from ..steering import (BalanceOnlySteerer, BaselineSteerer, DCountTracker,
                        DependenceOnlySteerer, ModifiedSteerer, NReadyMeter,
                        RoundRobinSteerer, SourceView, StaticSteerer,
                        VPBSteerer)
from ..validation.watchdog import (ClusterSnapshot, PipelineSnapshot,
                                   PipelineWatchdog)
from .config import ProcessorConfig
from .stats import SimResult, SimStats
from .uop import (KIND_COPY, KIND_INST, KIND_VCOPY, MODE_FWD, MODE_LOCAL,
                  MODE_PRED, MODE_ZERO, Operand, STATE_COMMITTED, STATE_DONE,
                  STATE_ISSUED, STATE_WAITING, Uop)

__all__ = ["Processor"]

_EV_COMPLETE = 0
_EV_VERIFY = 1
_EV_VDELIVER = 2


def _build_steerer(config: ProcessorConfig):
    name = config.steering
    n = config.n_clusters
    if name == "baseline":
        return BaselineSteerer(n, config.balance_threshold)
    if name == "modified":
        return ModifiedSteerer(n, config.balance_threshold)
    if name == "vpb":
        return VPBSteerer(n, config.balance_threshold, config.vpb_threshold)
    if name == "round-robin":
        return RoundRobinSteerer(n)
    if name == "balance-only":
        return BalanceOnlySteerer(n)
    if name == "dependence-only":
        return DependenceOnlySteerer(n)
    if name == "static":
        return StaticSteerer(n, config.static_assignment)
    raise ValueError(f"unknown steering scheme {name!r}")


def _build_predictor(config: ProcessorConfig) -> ValuePredictor:
    if config.predictor == "none":
        return NullPredictor()
    if config.predictor == "stride":
        return StridePredictor(config.vp_entries,
                               config.vp_confidence_threshold,
                               two_delta=config.vp_two_delta)
    if config.predictor == "context":
        return ContextPredictor(
            l2_entries=config.vp_entries,
            confidence_threshold=config.vp_confidence_threshold)
    if config.predictor == "hybrid":
        return HybridPredictor(stride_entries=config.vp_entries)
    if config.predictor == "perfect":
        return PerfectPredictor()
    raise ValueError(f"unknown predictor {config.predictor!r}")


class Processor:
    """One simulation instance: a config plus a dynamic trace to replay.

    Args:
        config: processor parameterization.
        trace: iterable of :class:`DynInst` to replay.
        golden: optional :class:`~repro.validation.golden.GoldenModel`
            co-simulator; every committed program instruction is
            replayed against it (in batches of
            ``config.golden_interval``).
        injector: optional
            :class:`~repro.validation.faults.FaultInjector`; perturbs
            predictions, steering and the interconnect, and is notified
            when an injected corruption is caught by verification.
        tracer: optional :class:`~repro.obs.EventTracer`; the pipeline
            stages emit typed events into it (docs/OBSERVABILITY.md).
        profiler: optional :class:`~repro.obs.PhaseProfiler`; the run
            loop attributes host wall-clock to its pipeline stages.

    All three observers are strictly read-only: with any combination
    installed, the committed instruction stream and every ``SimStats``
    field are identical to an uninstrumented run.
    """

    def __init__(self, config: ProcessorConfig, trace, *,
                 golden=None, injector=None, tracer=None,
                 profiler=None) -> None:
        config.validate()
        if injector is not None and config.predictor == "perfect":
            raise ConfigError(
                "fault injection is incompatible with the perfect "
                "predictor: its oracle mode skips the verification "
                "machinery that detects injected corruptions")
        self.config = config
        self._golden = golden
        self._injector = injector
        self._tracer = tracer
        self.profiler = profiler
        self.metrics = (IntervalMetrics(config.metrics_interval,
                                        config.n_clusters)
                        if config.metrics_interval else None)
        self.stats = SimStats()
        self.stats.dispatch_per_cluster = [0] * config.n_clusters
        self.stats.issued_per_cluster = [0] * config.n_clusters
        self.stats.iq_occupancy_sum = [0] * config.n_clusters
        self.memory = MemoryHierarchy(dcache_ports=config.dcache_ports)
        self.bpred = CombinedPredictor()
        self.btb = (BranchTargetBuffer(config.btb_entries)
                    if config.btb_entries else None)
        self.fetch = FetchEngine(trace, self.memory.fetch_latency,
                                 self.bpred, width=config.fetch_width,
                                 buffer_capacity=config.fetch_buffer,
                                 btb=self.btb)
        self.clusters: List[Cluster] = [
            Cluster(c, config.iq_size, 2 * config.pregs_per_cluster,
                    FUPool(config.int_units, config.int_muldiv,
                           config.fp_units, config.fp_muldiv,
                           config.int_issue_width, config.fp_issue_width,
                           config.latencies))
            for c in range(config.n_clusters)]
        self.renamer = RenameUnit(NUM_LOGICAL_REGS, config.n_clusters,
                                  config.pregs_per_cluster)
        for _, cluster, preg in self.renamer.initial_mappings():
            self.clusters[cluster].regfile.set_ready(preg, 0)
        self.interconnect = Interconnect(config.n_clusters,
                                         config.comm_latency,
                                         config.comm_paths_per_cluster,
                                         fault_injector=injector)
        self.interconnect.tracer = tracer
        self.vp = _build_predictor(config)
        self._vp_enabled = config.predictor != "none"
        # The perfect predictor is the paper's idealized upper bound
        # (§3.3): predictions are free and always right, so no
        # verification-copies are dispatched and no verification latency
        # is charged — the study isolates what communication removal
        # alone could buy.
        self._oracle = config.predictor == "perfect"
        self.steerer = _build_steerer(config)
        self.dcount = DCountTracker(config.n_clusters)
        self.nready = NReadyMeter(config.n_clusters)
        self.rob: deque = deque()
        self._events: Dict[int, List[tuple]] = {}
        self._next_order = 0
        self._vp_cache: Dict[int, list] = {}
        # Memory disambiguation: decoded stores whose address generation
        # has not issued yet, and issued-but-uncommitted stores by address.
        self._pending_store_addrs: set = set()
        self._inflight_stores: Dict[int, List[Uop]] = {}
        # Stores that have generated their address but still await their
        # data value (the store-queue data side).
        self._stores_awaiting_data: List[Uop] = []
        self._dports_used = 0
        # Hot-path views, hoisted once: the decode loop reads the map
        # table and the ready scoreboards for every source operand of
        # every instruction, so it indexes these directly instead of
        # chasing renamer -> map_table -> _map (and cluster -> regfile
        # -> ready) method chains per operand.
        self._map_rows = self.renamer.map_table._map
        self._ready_arrays = [cl.regfile.ready for cl in self.clusters]
        # The zero register's steering view never changes; share one.
        self._zero_view = SourceView(ZERO_REG, False, True, frozenset(),
                                     None, False)
        self.cycle = 0
        self.watchdog = PipelineWatchdog(config.deadlock_cycles,
                                         self.pipeline_snapshot)

    # ------------------------------------------------------------------ run --

    def run(self, max_cycles: Optional[int] = None,
            max_insts: Optional[int] = None) -> SimResult:
        """Simulate until the trace drains; returns the result bundle."""
        self.run_until(max_cycles, max_insts)
        return self._finalize()

    def run_until(self, max_cycles: Optional[int] = None,
                  max_insts: Optional[int] = None):
        """Advance the timing loop without finalizing; returns stats.

        Stops at the cycle/instruction bound (checked at cycle
        boundaries, so ``max_insts`` stops at the first cycle where the
        committed count reaches it), or when the trace drains.  The loop
        can be re-entered — sampling and snapshotting both rely on a
        stopped machine resuming bit-identically — and the caller
        finalizes exactly once via :meth:`run`'s tail or
        :meth:`finalize`.
        """
        if self.profiler is not None:
            self._run_profiled(max_cycles, max_insts)
        else:
            self._run_plain(max_cycles, max_insts)
        return self.stats

    def finalize(self) -> SimResult:
        """Assemble the result bundle for a :meth:`run_until` caller."""
        return self._finalize()

    def _run_plain(self, max_cycles: Optional[int],
                   max_insts: Optional[int] = None) -> None:
        """The uninstrumented (and profiler-free) timing loop.

        Per-cycle work is kept to the stage calls themselves; everything
        skippable inside the stages is gated by the event-driven wake
        machinery (``_events``, the queues' ``next_try`` bounds), so an
        idle stage costs one comparison, not a scan.
        """
        watchdog = self.watchdog
        metrics = self.metrics
        interval = metrics.interval if metrics is not None else 0
        fetch = self.fetch
        stats = self.stats
        while not (fetch.done and not self.rob):
            cycle = self.cycle
            if max_cycles is not None and cycle >= max_cycles:
                break
            if max_insts is not None and stats.committed_insts >= max_insts:
                break
            if metrics is not None and cycle and cycle % interval == 0:
                metrics.sample(self, cycle)
            self._dports_used = 0
            self._process_events(cycle)
            self._drain_store_data(cycle)
            if self._commit(cycle):
                watchdog.note_commit(cycle)
            else:
                watchdog.check(cycle)
            self._issue(cycle)
            self._decode(cycle)
            fetch.tick(cycle)
            if cycle and cycle % 8192 == 0:
                self.interconnect.prune(cycle)
            self.cycle = cycle + 1

    def _run_profiled(self, max_cycles: Optional[int],
                      max_insts: Optional[int] = None) -> None:
        """The same loop with host wall-clock attribution per stage.

        Stage order and semantics are identical to :meth:`_run_plain`;
        the only additions are ``perf_counter`` brackets, so the
        simulated outcome is unchanged.  Kept separate so the common
        case carries no timing calls at all.
        """
        watchdog = self.watchdog
        metrics = self.metrics
        interval = metrics.interval if metrics is not None else 0
        profiler = self.profiler
        seconds = profiler.seconds
        clock = profiler.clock
        run_start = clock()
        while not (self.fetch.done and not self.rob):
            cycle = self.cycle
            if max_cycles is not None and cycle >= max_cycles:
                break
            if (max_insts is not None
                    and self.stats.committed_insts >= max_insts):
                break
            t0 = clock()
            if metrics is not None and cycle and cycle % interval == 0:
                metrics.sample(self, cycle)
            self._dports_used = 0
            t1 = clock()
            seconds["other"] += t1 - t0
            self._process_events(cycle)
            self._drain_store_data(cycle)
            t2 = clock()
            seconds["events"] += t2 - t1
            if self._commit(cycle):
                watchdog.note_commit(cycle)
            else:
                watchdog.check(cycle)
            t3 = clock()
            seconds["commit"] += t3 - t2
            self._issue(cycle)
            t4 = clock()
            seconds["issue"] += t4 - t3
            self._decode(cycle)
            t5 = clock()
            seconds["decode"] += t5 - t4
            self.fetch.tick(cycle)
            t6 = clock()
            seconds["fetch"] += t6 - t5
            if cycle and cycle % 8192 == 0:
                self.interconnect.prune(cycle)
                seconds["other"] += clock() - t6
            profiler.note_cycle()
            self.cycle += 1
        profiler.total_seconds += clock() - run_start

    def _finalize(self) -> SimResult:
        """Assemble the result bundle after the loop drains or stops."""
        if self.metrics is not None:
            self.metrics.finish(self, self.cycle)
        self.stats.cycles = self.cycle
        self.stats.avg_imbalance = self.nready.average
        self.stats.cond_branches = self.bpred.stats.lookups
        self.stats.branch_mispredictions = self.bpred.stats.mispredictions
        vp_stats = {
            "lookups": self.vp.stats.lookups,
            "confident": self.vp.stats.confident,
            "confident_fraction": self.vp.stats.confident_fraction,
            "hit_ratio": self.vp.stats.hit_ratio,
        }
        bp_stats = {
            "lookups": self.bpred.stats.lookups,
            "mispredictions": self.bpred.stats.mispredictions,
            "accuracy": self.bpred.stats.accuracy,
        }
        if self.btb is not None:
            bp_stats["btb_miss_rate"] = self.btb.miss_rate
        validation = {}
        if self._golden is not None:
            validation["golden_commits"] = self._golden.finish(self.cycle)
            validation["golden_batches"] = self._golden.batches
        if self._injector is not None:
            report = self._injector.report
            validation["fault_plan"] = self._injector.plan.describe()
            validation["fault_report"] = report
            self.stats.injected_faults = report.total_injected
            self.stats.detected_faults = report.detected_values
        return SimResult(self.stats, self.config, self.memory.stats(),
                         vp_stats, bp_stats, validation,
                         metrics=self.metrics, profile=self.profiler)

    def describe_state(self) -> str:
        """One-line-per-structure snapshot for debugging stuck runs."""
        lines = [f"cycle {self.cycle}: ROB {len(self.rob)}"
                 f"/{self.config.rob_size}, "
                 f"fetch {'done' if self.fetch.done else 'active'}"]
        for cluster in self.clusters:
            lines.append(
                f"  cluster {cluster.cluster_id}: "
                f"iq_int {len(cluster.iq_int)}/{cluster.iq_int.capacity} "
                f"iq_fp {len(cluster.iq_fp)}/{cluster.iq_fp.capacity} "
                f"dcount {self.dcount.counters[cluster.cluster_id]}")
        if self.rob:
            head = self.rob[0]
            lines.append(f"  ROB head: {head!r} unverified={head.unverified}"
                         f" min_issue={head.min_issue_cycle}")
        lines.append(f"  pending store addrs: "
                     f"{len(self._pending_store_addrs)}, "
                     f"stores awaiting data: "
                     f"{len(self._stores_awaiting_data)}")
        return "\n".join(lines)

    def pipeline_snapshot(self, cycle: int, last_commit_cycle: int,
                          budget: int) -> PipelineSnapshot:
        """Structured stall post-mortem (the watchdog's failure payload)."""
        head = self.rob[0] if self.rob else None
        clusters = []
        for cluster in self.clusters:
            cid = cluster.cluster_id
            clusters.append(ClusterSnapshot(
                cluster_id=cid,
                iq_int_occupancy=len(cluster.iq_int),
                iq_int_capacity=cluster.iq_int.capacity,
                iq_fp_occupancy=len(cluster.iq_fp),
                iq_fp_capacity=cluster.iq_fp.capacity,
                free_pregs=[self.renamer.free_count(cid, bank)
                            for bank in (0, 1)]))
        return PipelineSnapshot(
            cycle=cycle,
            last_commit_cycle=last_commit_cycle,
            budget=budget,
            rob_occupancy=len(self.rob),
            rob_size=self.config.rob_size,
            rob_head=repr(head) if head is not None else None,
            rob_head_unverified=head.unverified if head else None,
            rob_head_min_issue=head.min_issue_cycle if head else None,
            fetch_done=self.fetch.done,
            clusters=clusters,
            inflight_bus_messages=self.interconnect.inflight(cycle),
            pending_store_addrs=len(self._pending_store_addrs),
            stores_awaiting_data=len(self._stores_awaiting_data),
            decode_stalls=dict(self.stats.decode_stalls),
            dispatched_per_cluster=list(self.stats.dispatch_per_cluster),
            issued_per_cluster=list(self.stats.issued_per_cluster),
            recent_events=(self._tracer.recent(POSTMORTEM_WINDOW)
                           if self._tracer is not None else []))

    # ----------------------------------------------------------- writeback --

    def _schedule(self, cycle: int, event: tuple) -> None:
        events = self._events
        queued = events.get(cycle)
        if queued is None:
            events[cycle] = [event]
        else:
            queued.append(event)

    def _process_events(self, cycle: int) -> None:
        events = self._events.pop(cycle, None)
        if not events:
            return
        for event in events:
            kind, uop, generation = event
            if uop.generation != generation:
                continue  # stale: the uop was invalidated and will redo
            if kind == _EV_COMPLETE:
                self._complete(uop, cycle)
            elif kind == _EV_VERIFY:
                self._run_verifications(uop, cycle)
            else:  # _EV_VDELIVER
                self._deliver_mismatch(uop, cycle)

    def _complete(self, uop: Uop, cycle: int) -> None:
        if uop.state != STATE_ISSUED:
            return
        uop.state = STATE_DONE
        uop.complete_cycle = cycle
        tracer = self._tracer
        if tracer is not None:
            # Inline emission (here and at every hook below): a bound
            # C append is ~10x cheaper than a tracer method call, and
            # writeback/issue/commit each fire once per uop.
            tracer.counts[EV_COMPLETE] += 1
            tracer.emit((cycle, EV_COMPLETE, uop.order, uop.kind,
                         uop.cluster))
        if uop.kind == KIND_VCOPY:
            operand = uop.consumer_operand
            if operand.correct and not operand.verified:
                operand.verified = True
                uop.consumer.unverified -= 1
            return
        if uop.verify_list:
            self._schedule(cycle + 1, (_EV_VERIFY, uop, uop.generation))
        if (uop.kind == KIND_INST and uop.mispredicted_branch):
            self.fetch.branch_resolved(uop.dyn.seq, cycle)

    def _run_verifications(self, producer: Uop, cycle: int) -> None:
        """Producer-side verification, one cycle after writeback (§2.2)."""
        pending = producer.verify_list
        producer.verify_list = []
        for consumer, operand in pending:
            if operand.verified:
                continue
            operand.verified = True
            consumer.unverified -= 1
            if operand.correct:
                continue
            self._note_fault_detected(operand)
            # Misprediction: the correct value sits in the local physical
            # register (ready at the producer's completion); the consumer
            # reverts to a normal register read and reissues.
            operand.mode = MODE_LOCAL
            if consumer.state != STATE_WAITING:
                self._invalidate(consumer, cycle)

    def _deliver_mismatch(self, vcopy: Uop, cycle: int) -> None:
        """A verification-copy's mismatch forward arrives at the consumer.

        If the operand is already verified, a previous generation of
        this vcopy (invalidated and replayed after its source producer
        reissued) has already delivered the same final value — the
        replayed forward changes nothing and the consumer may even have
        committed meanwhile.
        """
        consumer = vcopy.consumer
        operand = vcopy.consumer_operand
        if operand.verified:
            return
        operand.mode = MODE_FWD
        operand.ready_override = cycle
        operand.verified = True
        consumer.unverified -= 1
        self._note_fault_detected(operand)
        if consumer.state != STATE_WAITING:
            self._invalidate(consumer, cycle)

    def _note_fault_detected(self, operand: Operand) -> None:
        """Report a caught injected corruption back to the harness."""
        if operand.injected and self._injector is not None:
            self._injector.note_value_detected()

    # --------------------------------------------------------- invalidation --

    def _invalidate(self, start: Uop, cycle: int) -> None:
        """Selective invalidation + reissue of a dependence cone (§2.2)."""
        stack = [start]
        while stack:
            uop = stack.pop()
            if uop.state == STATE_WAITING:
                continue
            if uop.state == STATE_COMMITTED:
                raise SimulationError(
                    f"attempted to invalidate committed uop {uop!r}")
            uop.generation += 1
            uop.state = STATE_WAITING
            uop.complete_cycle = None
            uop.issue_cycle = None
            if cycle > uop.min_issue_cycle:
                uop.min_issue_cycle = cycle
            uop.reissue_count += 1
            self.stats.invalidations += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.counts[EV_SQUASH] += 1
                tracer.emit((cycle, EV_SQUASH, uop.order, uop.kind,
                             uop.cluster, uop.generation))
            if uop.dest_preg is not None:
                regfile = self.clusters[uop.dest_cluster].regfile
                regfile.set_pending(uop.dest_preg, uop)
            if uop.is_store:
                self._pending_store_addrs.add(uop.dyn.seq)
                stores = self._inflight_stores.get(uop.dyn.mem_addr)
                if stores and uop in stores:
                    stores.remove(uop)
            self.clusters[uop.cluster].iq_for(uop.int_side).reinsert(uop)
            readers = uop.readers
            uop.readers = []
            stack.extend(readers)

    # ---------------------------------------------------------------- commit --

    def _commit(self, cycle: int) -> int:
        rob = self.rob
        retired = 0
        budget = self.config.retire_width
        tracer = self._tracer
        while rob and retired < budget:
            uop = rob[0]
            if (uop.state != STATE_DONE or uop.unverified > 0
                    or uop.complete_cycle >= cycle):
                break
            if uop.is_store:
                if self._dports_used >= self.config.dcache_ports:
                    break
                self._dports_used += 1
                self.memory.data_latency(uop.dyn.mem_addr, is_write=True)
                stores = self._inflight_stores.get(uop.dyn.mem_addr)
                if stores and uop in stores:
                    stores.remove(uop)
            rob.popleft()
            uop.state = STATE_COMMITTED
            retired += 1
            if uop.free_on_commit:
                self.renamer.release(uop.free_on_commit)
                for fcluster, fpreg in uop.free_on_commit:
                    self.clusters[fcluster].regfile.clear(fpreg)
            if uop.dest_preg is not None:
                self.clusters[uop.dest_cluster].regfile.producer[
                    uop.dest_preg] = None
            uop.readers = []
            if tracer is not None:
                tracer.counts[EV_COMMIT] += 1
                tracer.emit((
                    cycle, EV_COMMIT, uop.order, uop.kind,
                    uop.dyn.seq if uop.dyn is not None else -1,
                    uop.cluster))
            if uop.kind == KIND_INST:
                self.stats.committed_insts += 1
                if self._golden is not None:
                    self._golden.on_commit(uop.dyn, cycle, uop.cluster)
            elif uop.kind == KIND_COPY:
                self.stats.committed_copies += 1
            else:
                self.stats.committed_vcopies += 1
        return retired

    # ----------------------------------------------------------------- issue --

    def _load_disambiguated(self, uop: Uop) -> bool:
        """Loads wait until every prior store's address is known (Table 1)."""
        pending = self._pending_store_addrs
        if not pending:
            return True
        seq = uop.dyn.seq
        return min(pending) > seq

    def _forwarding_store(self, uop: Uop) -> Optional[Uop]:
        """Latest earlier in-flight store to the load's address, if any.

        The returned store may still be awaiting its data (not DONE);
        the load must then wait — a read cannot bypass a same-address
        write whose value does not exist yet.
        """
        stores = self._inflight_stores.get(uop.dyn.mem_addr)
        if not stores:
            return None
        seq = uop.dyn.seq
        best = None
        for store in stores:
            if store.dyn.seq < seq and (
                    best is None or store.dyn.seq > best.dyn.seq):
                best = store
        return best

    def _drain_store_data(self, cycle: int) -> None:
        """Complete address-generated stores whose data value arrived."""
        if not self._stores_awaiting_data:
            return
        still_waiting: List[Uop] = []
        for store in self._stores_awaiting_data:
            if store.state != STATE_ISSUED:
                continue  # invalidated; it will re-issue and re-enqueue
            operand = store.operands[0]
            mode = operand.mode
            if mode == MODE_LOCAL:
                ok = (self.clusters[store.cluster].regfile.ready[operand.preg]
                      <= cycle)
            elif mode == MODE_FWD:
                ok = operand.ready_override <= cycle
            else:
                ok = True  # MODE_PRED / MODE_ZERO
            if ok:
                self._complete(store, cycle)
            else:
                still_waiting.append(store)
        self._stores_awaiting_data = still_waiting

    def _issue(self, cycle: int) -> None:
        """Oldest-first issue over the per-cluster/per-side queues.

        Queues are scanned *batched*: each :class:`IssueQueue` carries a
        ``next_try`` lower bound on the earliest cycle any of its
        entries could issue, so a queue whose uops are all sleeping (or
        which is empty) costs one comparison per cycle instead of a
        linear rescan.  Within a scanned queue the entry walk, the issue
        attempts and their order are exactly the linear scan's, so the
        committed stream is bit-identical (golden co-sim verified; see
        tests/core/test_wake_invariant.py for the property test).

        The per-uop issue attempt (operand readiness, parking on the
        register-file waiter lists, per-kind resource checks) is inlined
        here: it runs several times per simulated instruction and the
        call overhead dominated the host profile.  An operand-blocked
        uop is parked with ``wake_cycle`` = a lower bound on its next
        possible issue cycle (finite scheduled ready cycles bound
        directly; unscheduled registers park it on the waiter list and
        ``set_ready`` lowers the bound later); a resource-blocked uop
        (width/FU capacity, D-cache port, interconnect path, load
        disambiguation) retries next cycle.  Parking consumes no shared
        resource, so it cannot perturb any other uop's issue.

        Functional-unit pools are reset lazily (first use per cycle):
        an idle cluster's pool costs nothing.
        """
        leftover_int: Optional[List[int]] = None
        leftover_fp: Optional[List[int]] = None
        stats = self.stats
        occupancy = stats.iq_occupancy_sum
        issued_per_cluster = stats.issued_per_cluster
        tracer = self._tracer
        events = self._events
        data_latency = self.memory.data_latency
        config = self.config
        free_copies = config.free_copy_issue
        dcache_ports = config.dcache_ports
        interconnect = self.interconnect
        cycle1 = cycle + 1
        for cluster in self.clusters:
            cid = cluster.cluster_id
            occupancy[cid] += cluster.occupancy
            regfile = cluster.regfile
            ready = regfile.ready
            waiters = regfile.waiters
            producers = regfile.producer
            fupool = cluster.fupool
            for int_side in (True, False):
                queue = cluster.iq_int if int_side else cluster.iq_fp
                entries = queue._entries
                if not entries or queue.next_try > cycle:
                    continue
                if fupool._cycle != cycle:
                    fupool.begin_cycle(cycle)
                # Reset the bound before scanning: a uop issuing during
                # this scan can wake an already-visited entry of this
                # same queue (``set_ready`` lowers ``queue.next_try``
                # through the ``Uop.iq`` backref), so the bound we
                # recompute below must min-merge with whatever the wake
                # hooks left here, never overwrite it.
                queue.next_try = NEXT_TRY_IDLE
                bound = NEXT_TRY_IDLE
                # `kept` forks lazily off `entries` at the first issued
                # (dropped) uop; scans that issue nothing leave the
                # entry list untouched.
                kept: Optional[List[Uop]] = None
                for i, uop in enumerate(entries):
                    if uop.state != STATE_WAITING:
                        # Defensive (queues only hold WAITING uops in
                        # steady state): retry next cycle.
                        if kept is not None:
                            kept.append(uop)
                        if cycle1 < bound:
                            bound = cycle1
                        continue
                    mi = uop.min_issue_cycle
                    wc = uop.wake_cycle
                    if mi > cycle or wc > cycle:
                        if kept is not None:
                            kept.append(uop)
                        b = mi if mi > wc else wc
                        if b < bound:
                            bound = b
                        continue
                    # ---- operand readiness (park when blocked) ----
                    if uop.is_store:
                        # Address generation needs only the base operand
                        # (srcs are (value, base)); the data value is
                        # collected in the store queue afterwards (§2.4:
                        # "loads may execute when prior store addresses
                        # are known").
                        operand = uop.operands[1]
                        mode = operand.mode
                        blocking = None
                        if mode == MODE_LOCAL:
                            if ready[operand.preg] > cycle:
                                blocking = (operand,)
                        elif mode == MODE_FWD:
                            if operand.ready_override > cycle:
                                blocking = (operand,)
                    else:
                        blocking = None
                        for operand in uop.operands:
                            mode = operand.mode
                            if mode == MODE_LOCAL:
                                if ready[operand.preg] > cycle:
                                    if blocking is None:
                                        blocking = [operand]
                                    else:
                                        blocking.append(operand)
                            elif mode == MODE_FWD:
                                if operand.ready_override > cycle:
                                    if blocking is None:
                                        blocking = [operand]
                                    else:
                                        blocking.append(operand)
                    if blocking is not None:
                        b = cycle1
                        for operand in blocking:
                            if operand.mode == MODE_LOCAL:
                                preg = operand.preg
                                r = ready[preg]
                                w = waiters.get(preg)
                                if w is None:
                                    waiters[preg] = [uop]
                                elif w[-1] is not uop:
                                    w.append(uop)
                                if r > b:
                                    b = r
                            elif operand.ready_override > b:
                                b = operand.ready_override
                        uop.wake_cycle = b
                        if kept is not None:
                            kept.append(uop)
                        if b < bound:
                            bound = b
                        continue
                    # ---- per-kind resource checks + issue ----
                    kind = uop.kind
                    if kind == KIND_INST:
                        is_load = uop.is_load
                        if is_load:
                            if (not self._load_disambiguated(uop)
                                    or ((forward := self._forwarding_store(
                                        uop)) is not None
                                        and forward.state != STATE_DONE)
                                    or self._dports_used >= dcache_ports):
                                # Disambiguation / same-address store
                                # data / D-cache port: retry next cycle.
                                if kept is not None:
                                    kept.append(uop)
                                if cycle1 < bound:
                                    bound = cycle1
                                continue
                        opclass = uop.opclass
                        if not fupool.try_issue(opclass):
                            if kept is not None:
                                kept.append(uop)
                            if cycle1 < bound:
                                bound = cycle1
                            if int_side:
                                if leftover_int is None:
                                    leftover_int = [0] * config.n_clusters
                                leftover_int[cid] += 1
                            else:
                                if leftover_fp is None:
                                    leftover_fp = [0] * config.n_clusters
                                leftover_fp[cid] += 1
                            continue
                        # -- _issue_inst, inlined against the scan locals
                        # (regfile/ready/producers ARE this uop's cluster
                        # state; `forward` reuses the guard's lookup, which
                        # is pure).  Side-effect order matches the original
                        # helper: latency, mark-issued, store/dest wiring.
                        dyn = uop.dyn
                        latency = fupool.latencies[opclass]
                        if is_load:
                            self._dports_used += 1
                            if forward is not None:
                                latency += 1  # store buffer forward
                                forward.readers.append(uop)
                            else:
                                latency += data_latency(dyn.mem_addr)
                        uop.state = STATE_ISSUED
                        uop.issue_cycle = cycle
                        stats.issued_uops += 1
                        issued_per_cluster[cid] += 1
                        if tracer is not None:
                            tracer.counts[EV_ISSUE] += 1
                            tracer.emit((cycle, EV_ISSUE, uop.order,
                                         KIND_INST, cid, uop.reissue_count))
                        # Register with local producers for the
                        # selective-reissue walk.
                        for operand in uop.operands:
                            if operand.mode == MODE_LOCAL:
                                producer = producers[operand.preg]
                                if (producer is not None
                                        and producer is not uop
                                        and producer.state
                                        != STATE_COMMITTED):
                                    producer.readers.append(uop)
                        event = (_EV_COMPLETE, uop, uop.generation)
                        if uop.is_store:
                            self._pending_store_addrs.discard(dyn.seq)
                            inflight = self._inflight_stores
                            addr_stores = inflight.get(dyn.mem_addr)
                            if addr_stores is None:
                                inflight[dyn.mem_addr] = [uop]
                            else:
                                addr_stores.append(uop)
                            operand = uop.operands[0]
                            mode = operand.mode
                            if mode == MODE_LOCAL:
                                data_ready = ready[operand.preg] <= cycle
                            elif mode == MODE_FWD:
                                data_ready = operand.ready_override <= cycle
                            else:
                                data_ready = True  # MODE_PRED / MODE_ZERO
                            if not data_ready:
                                # Address generated; park until the data
                                # value arrives (drained once per cycle).
                                self._stores_awaiting_data.append(uop)
                            else:
                                when = cycle + latency
                                queued = events.get(when)
                                if queued is None:
                                    events[when] = [event]
                                else:
                                    queued.append(event)
                        else:
                            dest = uop.dest_preg
                            if dest is not None:
                                regfile.set_ready(dest, cycle + latency)
                                producers[dest] = uop
                            when = cycle + latency
                            queued = events.get(when)
                            if queued is None:
                                events[when] = [event]
                            else:
                                queued.append(event)
                    elif kind == KIND_COPY:
                        if ((not free_copies
                             and (fupool.int_width_left() if int_side
                                  else fupool.fp_width_left()) <= 0)
                                or not interconnect.try_reserve(
                                    uop.dest_cluster, cycle1)):
                            if kept is not None:
                                kept.append(uop)
                            if cycle1 < bound:
                                bound = cycle1
                            continue
                        if not free_copies:
                            fupool.try_issue_copy(not int_side)
                        self._issue_copy(uop, cycle)
                    else:  # KIND_VCOPY
                        if not free_copies and fupool.int_width_left() <= 0:
                            if kept is not None:
                                kept.append(uop)
                            if cycle1 < bound:
                                bound = cycle1
                            continue
                        mismatch = not uop.consumer_operand.correct
                        if mismatch and not interconnect.try_reserve(
                                uop.consumer.cluster, cycle1):
                            if kept is not None:
                                kept.append(uop)
                            if cycle1 < bound:
                                bound = cycle1
                            continue
                        if not free_copies:
                            fupool.try_issue_copy(False)
                        self._issue_vcopy(uop, cycle, mismatch)
                    # Issued: drop from the queue.
                    if kept is None:
                        kept = entries[:i]
                if kept is not None:
                    queue._entries = kept
                if bound < queue.next_try:
                    queue.next_try = bound
        if leftover_int is None and leftover_fp is None:
            # Nothing capacity-stuck anywhere: NREADY contributes zero
            # regardless of idle capacities, so skip computing them.
            self.nready.record_idle()
            return
        if leftover_int is None:
            leftover_int = [0] * config.n_clusters
        if leftover_fp is None:
            leftover_fp = [0] * config.n_clusters
        idle_int = []
        idle_fp = []
        for c in self.clusters:
            fupool = c.fupool
            if fupool._cycle != cycle:
                fupool.begin_cycle(cycle)
            idle_int.append(fupool.idle_capacity(True))
            idle_fp.append(fupool.idle_capacity(False))
        self.nready.record(leftover_int, idle_int, leftover_fp, idle_fp)

    def _mark_issued(self, uop: Uop, cycle: int) -> None:
        uop.state = STATE_ISSUED
        uop.issue_cycle = cycle
        self.stats.issued_uops += 1
        self.stats.issued_per_cluster[uop.cluster] += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.counts[EV_ISSUE] += 1
            tracer.emit((cycle, EV_ISSUE, uop.order, uop.kind,
                         uop.cluster, uop.reissue_count))
        # Register this uop with the producers of its local operands so
        # the selective-reissue walk can find it while it can still be
        # squashed.
        producers = self.clusters[uop.cluster].regfile.producer
        for operand in uop.operands:
            if operand.mode == MODE_LOCAL:
                producer = producers[operand.preg]
                if (producer is not None and producer is not uop
                        and producer.state != STATE_COMMITTED):
                    producer.readers.append(uop)

    def _issue_copy(self, uop: Uop, cycle: int) -> None:
        """A copy drives the interconnect the cycle after it issues."""
        self._mark_issued(uop, cycle)
        self.stats.communications += 1
        arrival = self.interconnect.arrival_cycle(cycle + 1)
        tracer = self._tracer
        if tracer is not None:
            tracer.counts[EV_COPY_SEND] += 1
            tracer.emit((cycle, EV_COPY_SEND, uop.order, uop.cluster,
                         uop.dest_cluster, arrival))
        remote = self.clusters[uop.dest_cluster].regfile
        remote.set_ready(uop.dest_preg, arrival)
        remote.producer[uop.dest_preg] = uop
        self._schedule(arrival, (_EV_COMPLETE, uop, uop.generation))

    def _issue_vcopy(self, uop: Uop, cycle: int, mismatch: bool) -> None:
        """Local compare; forward (and reissue the consumer) on mismatch."""
        self._mark_issued(uop, cycle)
        tracer = self._tracer
        if tracer is not None:
            tracer.counts[EV_VCOPY_VERIFY] += 1
            tracer.emit((cycle, EV_VCOPY_VERIFY, uop.order, uop.cluster,
                         not mismatch))
        if mismatch:
            self.stats.communications += 1
            self.stats.mismatch_forwards += 1
            arrival = self.interconnect.arrival_cycle(cycle + 1)
            self._schedule(arrival, (_EV_VDELIVER, uop, uop.generation))
        self._schedule(cycle + 1, (_EV_COMPLETE, uop, uop.generation))

    # ---------------------------------------------------------------- decode --

    def _decode(self, cycle: int) -> None:
        budget = self.config.decode_width
        decoded = 0
        while decoded < budget:
            fetched = self.fetch.peek_decodable(cycle)
            if fetched is None:
                break
            if not self._decode_one(fetched, cycle):
                break
            self.fetch.pop_one()
            decoded += 1

    def _decode_one(self, fetched: FetchedInst, cycle: int) -> bool:
        """Steer+rename+dispatch one instruction; False on a stall.

        The per-slot work — value prediction, steering view, operand
        plan, resource check — is fused into straight-line passes here:
        decode dominates host time, and the per-slot helper calls this
        replaced used to cost more than the work they did.

        Plan entries (consumed by ``_check_resources``/``_dispatch``):
          ("zero",)
          ("local", preg)                      value ready or will be, here
          ("pred_local", preg, correct, injected)  speculate; producer
                                                   verifies
          ("copy", logical, src_cluster)       demand-generated copy
          ("copy_dup", logical, first_slot)    second read of a copied reg
          ("vcopy", logical, src_cluster, correct, injected)
                                               predicted remote operand
        """
        dyn = fetched.dyn
        if len(self.rob) >= self.config.rob_size:
            # Any dispatch needs at least one ROB slot, whatever cluster
            # steering would pick: stall before paying for prediction
            # and steering work that cannot be used this cycle.  (The
            # prediction cache keeps predictor state per-instruction
            # exact across the deferral.)
            stats = self.stats
            stats.decode_stalls["rob"] = stats.decode_stalls.get("rob", 0) + 1
            return False
        srcs = dyn.srcs
        # Value predictions: computed exactly once per DynInst (stall
        # retries reuse the cached entries so predictor state and the
        # accuracy stats advance once per instruction).  Entries are
        # None or (value, correct, injected) triples; *injected* marks
        # a prediction corrupted by the fault harness.
        predictions = self._vp_cache.get(dyn.seq)
        if predictions is None:
            predictions = []
            if not self._vp_enabled:
                for _ in srcs:
                    predictions.append(None)
            else:
                injector = self._injector
                srcs_fp = dyn.srcs_fp
                src_values = dyn.src_values
                predict_update = self.vp.predict_update
                pc = dyn.pc
                for slot, logical in enumerate(srcs):
                    if logical == ZERO_REG or srcs_fp[slot]:
                        predictions.append(None)
                        continue
                    actual = src_values[slot]
                    value, confident = predict_update(pc, slot, actual)
                    if not confident:
                        predictions.append(None)
                        continue
                    injected = False
                    if injector is not None:
                        corrupted = injector.corrupt_prediction(pc, slot,
                                                                actual)
                        if corrupted is not None:
                            value, injected = corrupted, True
                    predictions.append((value, value == actual, injected))
            self._vp_cache[dyn.seq] = predictions
        # Steering views: one pass over the slots.  A single-mapped
        # operand (the overwhelmingly common case) needs no tournament.
        map_table = self.renamer.map_table
        mapped_clusters = map_table.mapped_clusters
        mapped_set = map_table.mapped_set
        map_rows = self._map_rows
        ready_arrays = self._ready_arrays
        srcs_fp = dyn.srcs_fp
        views: List[SourceView] = []
        soonest: List[Optional[int]] = []
        for slot, logical in enumerate(srcs):
            if logical == ZERO_REG:
                views.append(self._zero_view)
                soonest.append(None)
                continue
            mapped = mapped_clusters(logical)
            row = map_rows[logical]
            if len(mapped) == 1:
                best = mapped[0]
                best_ready = ready_arrays[best][row[best]]
            else:
                best = None
                best_ready = NEVER + 1
                for cluster_id in mapped:
                    preg = row[cluster_id]
                    ready = ready_arrays[cluster_id][preg]
                    if ready < best_ready:
                        best_ready = ready
                        best = cluster_id
                    elif ready == best_ready and ready >= NEVER:
                        # Tie between unscheduled producers: prefer the
                        # defining instruction's cluster over an
                        # unissued copy's target.
                        producer = (
                            self.clusters[cluster_id].regfile.producer[preg])
                        if producer is not None and producer.kind == KIND_INST:
                            best = cluster_id
            views.append(SourceView(logical, srcs_fp[slot],
                                    best_ready <= cycle, mapped_set(logical),
                                    best, predictions[slot] is not None))
            soonest.append(best)
        cluster_id = self.steerer.choose(views, self.dcount, pc=dyn.pc)
        if self._injector is not None:
            cluster_id = self._injector.flip_steering(
                cluster_id, self.config.n_clusters, dyn.pc)
        # Operand plan (see §2.1/§2.2), fused with the slot loop above
        # gone: decide the handling of each source operand.
        ready = ready_arrays[cluster_id]
        plan: List[tuple] = []
        copy_planned = None                 # logical -> slot of first copy
        helpers_needed = False
        for slot, logical in enumerate(srcs):
            if logical == ZERO_REG:
                plan.append(("zero",))
                continue
            if copy_planned is not None and logical in copy_planned:
                # Same logical register twice: one copy serves both reads.
                plan.append(("copy_dup", logical, copy_planned[logical]))
                continue
            prediction = predictions[slot]
            if cluster_id in views[slot].mapped:
                preg = map_rows[logical][cluster_id]
                if prediction is not None and ready[preg] > cycle:
                    # §2.2: source not yet available and confident ->
                    # dispatch speculatively; the producer verifies.
                    plan.append(("pred_local", preg, prediction[1],
                                 prediction[2]))
                else:
                    plan.append(("local", preg))
            elif prediction is not None:
                # §2.2 extension: operand not mapped here -> predict it
                # regardless of availability, verify with a vcopy.
                plan.append(("vcopy", logical, soonest[slot],
                             prediction[1], prediction[2]))
                helpers_needed = True
            else:
                plan.append(("copy", logical, soonest[slot]))
                helpers_needed = True
                if copy_planned is None:
                    copy_planned = {}
                copy_planned[logical] = slot
        # Resource check: inline fast path when only the instruction
        # itself needs resources; the general accounting lives in
        # _check_resources.
        stats = self.stats
        if helpers_needed:
            stall = self._check_resources(dyn, cluster_id, plan)
        else:
            stall = None
            if len(self.rob) >= self.config.rob_size:
                stall = "rob"
            else:
                dest = dyn.dest
                if (dest is not None and dest != ZERO_REG
                        and not self.renamer.free_count(
                            cluster_id,
                            FP_BANK if dyn.dest_fp else INT_BANK)):
                    stall = "pregs"
                else:
                    cluster = self.clusters[cluster_id]
                    queue = cluster.iq_int if dyn.is_int else cluster.iq_fp
                    if len(queue._entries) >= queue.capacity:
                        stall = "iq"
        if stall is not None:
            stats.decode_stalls[stall] = (
                stats.decode_stalls.get(stall, 0) + 1)
            return False
        self._dispatch(fetched, cluster_id, plan, cycle)
        return True

    def _check_resources(self, dyn: DynInst, cluster_id: int,
                         plan: Sequence[tuple]) -> Optional[str]:
        copies = [entry for entry in plan if entry[0] == "copy"]
        vcopies = [entry for entry in plan if entry[0] == "vcopy"]
        if not copies and not vcopies:
            # Fast path: only the instruction itself needs resources —
            # the overwhelmingly common case once operands are local or
            # predicted.
            if len(self.rob) >= self.config.rob_size:
                return "rob"
            dest = dyn.dest
            if dest is not None and dest != ZERO_REG:
                bank = FP_BANK if dyn.dest_fp else INT_BANK
                if not self.renamer.free_count(cluster_id, bank):
                    return "pregs"
            cluster = self.clusters[cluster_id]
            queue = cluster.iq_int if dyn.is_int else cluster.iq_fp
            if len(queue._entries) >= queue.capacity:
                return "iq"
            return None
        rob_needed = 1 + len(copies) + len(vcopies)
        if len(self.rob) + rob_needed > self.config.rob_size:
            return "rob"
        # Free physical registers, per bank, in the consumer cluster
        # (copy replicas land there too).
        pregs_needed = [0, 0]
        for entry in copies:
            pregs_needed[RenameUnit.bank_of(entry[1])] += 1
        if dyn.dest is not None and dyn.dest != ZERO_REG:
            pregs_needed[RenameUnit.bank_of(dyn.dest)] += 1
        for bank in (0, 1):
            if (pregs_needed[bank]
                    and self.renamer.free_count(cluster_id, bank)
                    < pregs_needed[bank]):
                return "pregs"
        # Issue-queue space: the instruction in its cluster/side, each
        # (v)copy in its source cluster on the value's side.
        iq_needed: Dict[Tuple[int, bool], int] = {}
        own = (cluster_id, dyn.is_int)
        iq_needed[own] = 1
        for entry in copies:
            key = (entry[2], not is_fp_reg(entry[1]))
            iq_needed[key] = iq_needed.get(key, 0) + 1
        for entry in vcopies:
            key = (entry[2], True)
            iq_needed[key] = iq_needed.get(key, 0) + 1
        for (cid, int_side), count in iq_needed.items():
            if self.clusters[cid].iq_for(int_side).space_left() < count:
                return "iq"
        return None

    def _dispatch(self, fetched: FetchedInst, cluster_id: int,
                  plan: Sequence[tuple], cycle: int) -> None:
        dyn = fetched.dyn
        min_issue = cycle + 1 + self.config.extra_rename_cycles
        uop = Uop(KIND_INST, dyn, 0, cluster_id, dyn.is_int, dyn.opclass)
        uop.min_issue_cycle = min_issue
        uop.mispredicted_branch = fetched.mispredicted
        operands = uop.operands
        stats = self.stats
        helpers = None
        for slot, entry in enumerate(plan):
            kind = entry[0]
            if kind == "local":
                operands.append(Operand(MODE_LOCAL, entry[1], slot=slot))
            elif kind == "zero":
                operands.append(Operand(MODE_ZERO, slot=slot))
            elif kind == "pred_local":
                _, preg, correct, injected = entry
                operand = Operand(MODE_PRED, preg, correct, slot=slot,
                                  injected=injected)
                operands.append(operand)
                if injected:
                    self._injector.note_value_injected(dyn.pc, slot)
                stats.speculative_operands += 1
                if not correct:
                    stats.mispredicted_operands += 1
                if self._oracle:
                    operand.verified = True
                else:
                    uop.unverified += 1
                    self._register_verification(cluster_id, preg, uop,
                                                operand, cycle)
            elif kind == "copy":
                _, logical, src_cluster = entry
                if helpers is None:
                    helpers = []
                helpers.append(self._make_copy(logical, src_cluster,
                                               cluster_id, uop, slot,
                                               min_issue))
            elif kind == "copy_dup":
                # Second read of a logical register already being copied
                # by this instruction: share the replica.
                _, logical, first_slot = entry
                operands.append(Operand(
                    MODE_LOCAL, operands[first_slot].preg, slot=slot))
            else:  # vcopy
                _, logical, src_cluster, correct, injected = entry
                operand = Operand(MODE_PRED, None, correct, slot=slot,
                                  injected=injected)
                operands.append(operand)
                if injected:
                    self._injector.note_value_injected(dyn.pc, slot)
                stats.speculative_operands += 1
                if not correct:
                    stats.mispredicted_operands += 1
                if self._oracle:
                    operand.verified = True
                else:
                    uop.unverified += 1
                    if helpers is None:
                        helpers = []
                    helpers.append(self._make_vcopy(logical, src_cluster,
                                                    uop, operand, min_issue))
        clusters = self.clusters
        # Destination rename (Figure 1).
        if dyn.dest is not None and dyn.dest != ZERO_REG:
            preg, previous = self.renamer.define_dest(dyn.dest, cluster_id)
            uop.dest_preg = preg
            uop.dest_cluster = cluster_id
            uop.free_on_commit = previous
            clusters[cluster_id].regfile.set_pending(preg, uop)
        # Helpers precede the instruction in dispatch (and ROB) order.
        # Issue-queue insertion is IssueQueue.dispatch() inlined: append
        # plus a next_try lower-bound update.
        tracer = self._tracer
        next_order = self._next_order
        rob_append = self.rob.append
        if helpers is not None:
            for helper in helpers:
                helper.order = next_order
                next_order += 1
                rob_append(helper)
                hcluster = clusters[helper.cluster]
                queue = hcluster.iq_int if helper.int_side else hcluster.iq_fp
                helper.iq = queue
                queue._entries.append(helper)
                if helper.min_issue_cycle < queue.next_try:
                    queue.next_try = helper.min_issue_cycle
                if tracer is not None:
                    tracer.counts[EV_DISPATCH] += 1
                    tracer.emit((cycle, EV_DISPATCH, helper.order,
                                 helper.kind, dyn.seq, dyn.pc, helper.cluster,
                                 dyn.op.name, fetched.fetch_cycle))
        uop.order = next_order
        self._next_order = next_order + 1
        rob_append(uop)
        cluster = clusters[cluster_id]
        queue = cluster.iq_int if uop.int_side else cluster.iq_fp
        uop.iq = queue
        queue._entries.append(uop)
        if min_issue < queue.next_try:
            queue.next_try = min_issue
        if tracer is not None:
            counts = tracer.counts
            emit = tracer.emit
            counts[EV_FETCH] += 1
            emit((fetched.fetch_cycle, EV_FETCH, dyn.seq, dyn.pc))
            counts[EV_STEER] += 1
            emit((cycle, EV_STEER, dyn.seq, cluster_id,
                  self.steerer.last_reason))
            counts[EV_DISPATCH] += 1
            emit((cycle, EV_DISPATCH, uop.order, KIND_INST, dyn.seq,
                  dyn.pc, cluster_id, dyn.op.name, fetched.fetch_cycle))
        if dyn.is_store:
            self._pending_store_addrs.add(dyn.seq)
        self.dcount.dispatch(cluster_id)
        self.steerer.notify_dispatch(cluster_id)
        stats.dispatched_insts += 1
        stats.dispatch_per_cluster[cluster_id] += 1
        self._vp_cache.pop(dyn.seq, None)

    def _register_verification(self, cluster_id: int, preg: int,
                               consumer: Uop, operand: Operand,
                               cycle: int) -> None:
        """Attach a local prediction to its producer for writeback checks."""
        producer = self.clusters[cluster_id].regfile.producer[preg]
        if producer is None or producer.state == STATE_COMMITTED:
            # The value became architectural between the view and now;
            # the speculation trivially verifies against a final value.
            operand.verified = True
            consumer.unverified -= 1
            if not operand.correct:
                self._note_fault_detected(operand)
                operand.mode = MODE_LOCAL
            return
        producer.verify_list.append((consumer, operand))
        if producer.state == STATE_DONE:
            # Completed this very cycle before we registered: schedule
            # the verification ourselves.
            self._schedule(max(cycle + 1, producer.complete_cycle + 1),
                           (_EV_VERIFY, producer, producer.generation))

    def _make_copy(self, logical: int, src_cluster: int, dst_cluster: int,
                   consumer: Uop, slot: int, min_issue: int) -> Uop:
        src_preg = self.renamer.mapping(logical, src_cluster)
        replica = self.renamer.alloc_replica(logical, dst_cluster)
        int_side = not is_fp_reg(logical)
        copy = Uop(KIND_COPY, consumer.dyn, 0, src_cluster, int_side, None)
        copy.min_issue_cycle = min_issue
        copy.operands.append(Operand(MODE_LOCAL, src_preg, slot=slot))
        copy.dest_preg = replica
        copy.dest_cluster = dst_cluster
        self.clusters[dst_cluster].regfile.set_pending(replica, copy)
        consumer.operands.append(Operand(MODE_LOCAL, replica, slot=slot))
        self.stats.dispatched_copies += 1
        return copy

    def _make_vcopy(self, logical: int, src_cluster: int, consumer: Uop,
                    operand: Operand, min_issue: int) -> Uop:
        src_preg = self.renamer.mapping(logical, src_cluster)
        vcopy = Uop(KIND_VCOPY, consumer.dyn, 0, src_cluster, True, None)
        vcopy.min_issue_cycle = min_issue
        vcopy.operands.append(Operand(MODE_LOCAL, src_preg,
                                      slot=operand.slot))
        vcopy.consumer = consumer
        vcopy.consumer_operand = operand
        self.stats.dispatched_vcopies += 1
        return vcopy

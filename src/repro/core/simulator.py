"""Top-level simulation entry points.

:func:`simulate` is the one-call API: give it a program (or a
pre-executed trace) and a configuration, get a :class:`SimResult`.

Typical use::

    from repro import make_config, simulate
    from repro.workloads import build_workload

    program = build_workload("cjpeg")
    result = simulate(program, make_config(4, predictor="stride",
                                           steering="vpb"))
    print(result.summary())

With ``check=True`` the run is co-simulated against a golden model
that replays the committed stream (docs/ROBUSTNESS.md); ``fault_plan``
enables the seeded fault-injection harness.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Union

from ..isa.executor import FunctionalExecutor
from ..isa.instruction import DynInst
from ..isa.program import Program
from .config import ProcessorConfig
from .processor import Processor
from .stats import SimResult

__all__ = ["simulate", "run_trace"]

Traceable = Union[Program, Iterable[DynInst], List[DynInst]]


def simulate(workload: Traceable, config: ProcessorConfig,
             max_instructions: int = 1_000_000,
             max_cycles: Optional[int] = None,
             check: bool = False,
             fault_plan=None,
             tracer=None,
             metrics_interval: Optional[int] = None,
             profile: bool = False,
             sampling=None,
             checkpoints=None,
             workload_name: Optional[str] = None):
    """Simulate *workload* on the processor described by *config*.

    Args:
        workload: a :class:`Program` (executed functionally on the fly)
            or an iterable of :class:`DynInst` (e.g. a cached trace,
            reused across configurations to keep comparisons aligned).
        config: processor configuration (see
            :func:`repro.core.config.make_config`).
        max_instructions: functional execution cap for programs.
        max_cycles: optional hard stop for the timing loop.
        check: co-simulate against the golden model; any divergence of
            the committed stream from the functional trace raises
            :class:`~repro.errors.DivergenceError`.
        fault_plan: a :class:`~repro.validation.faults.FaultPlan` to
            inject seeded faults; the resulting
            :class:`~repro.validation.faults.FaultReport` is attached
            to ``result.validation["fault_report"]``.
        tracer: a :class:`~repro.obs.EventTracer` receiving structured
            pipeline events (docs/OBSERVABILITY.md); None disables
            tracing entirely.
        metrics_interval: overrides ``config.metrics_interval`` when
            given; enables interval metric sampling every N cycles,
            attached as ``result.metrics``.
        profile: attribute host wall-clock time across simulator loop
            stages, attached as ``result.profile``.

        sampling: a :class:`~repro.analysis.sampling.SamplingConfig`;
            routes the run through interval sampling (functional
            fast-forward + detailed sample windows) and returns a
            :class:`~repro.analysis.sampling.SampledResult` instead of
            a :class:`SimResult`.
        checkpoints: optional
            :class:`~repro.core.snapshot.CheckpointStore` (or a
            directory path) sharing fast-forward checkpoints across
            sampled runs; only meaningful with *sampling*.
        workload_name: label recorded in sampled results and used in
            checkpoint keys; only meaningful with *sampling*.

    Every observer is strictly read-only: the committed stream and all
    ``SimStats`` fields are bit-identical with and without them.
    """
    if sampling is not None:
        # Lazy import: the sampling layer sits above the core.
        from ..analysis.sampling import simulate_sampled
        return simulate_sampled(workload, config, sampling,
                                max_instructions=max_instructions,
                                checkpoints=checkpoints, check=check,
                                workload_name=workload_name)
    golden = None
    injector = None
    if check or fault_plan is not None:
        # Lazy import: repro.validation.campaign imports back into
        # repro.core, so the validation layer must not be a module-level
        # dependency of the core.
        from ..validation.faults import FaultInjector
        from ..validation.golden import GoldenModel
        if check:
            golden = GoldenModel(interval=config.golden_interval)
        if fault_plan is not None:
            fault_plan.validate()
            injector = FaultInjector(fault_plan)
    if metrics_interval is not None:
        config = dataclasses.replace(config,
                                     metrics_interval=metrics_interval)
        config.validate()
    profiler = None
    if profile:
        from ..obs.profiler import PhaseProfiler
        profiler = PhaseProfiler()
    executor = None
    if isinstance(workload, Program):
        executor = FunctionalExecutor(workload, max_instructions)
        trace = executor.run()
    else:
        trace = iter(workload)
    processor = Processor(config, trace, golden=golden, injector=injector,
                          tracer=tracer, profiler=profiler)
    # Kept reachable so repro.core.snapshot can capture the functional
    # stream's cursor alongside the machine state.
    processor.trace_executor = executor
    return processor.run(max_cycles=max_cycles)


def run_trace(trace: Iterable[DynInst], config: ProcessorConfig,
              max_cycles: Optional[int] = None,
              check: bool = False, fault_plan=None,
              tracer=None, metrics_interval: Optional[int] = None,
              profile: bool = False) -> SimResult:
    """Alias of :func:`simulate` for explicit trace input."""
    return simulate(trace, config, max_cycles=max_cycles, check=check,
                    fault_plan=fault_plan, tracer=tracer,
                    metrics_interval=metrics_interval, profile=profile)

"""Simulation statistics and the result object returned by the simulator.

Metric definitions match the paper's:

* **IPC** counts committed *program* instructions per cycle — copies and
  verification-copies are plumbing, not work.
* **Communications per instruction** counts actual inter-cluster value
  transfers (copies sent plus verification-copy mismatch forwards)
  divided by committed program instructions; a verification-copy whose
  prediction was correct communicates nothing, which is the entire point
  of the technique.
* **Workload imbalance** is the average per-cycle NREADY figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SimStats", "SimResult"]


@dataclass
class SimStats:
    """Raw counters accumulated by one simulation run."""

    cycles: int = 0
    committed_insts: int = 0
    committed_copies: int = 0
    committed_vcopies: int = 0

    dispatched_insts: int = 0
    dispatched_copies: int = 0
    dispatched_vcopies: int = 0

    #: Inter-cluster value transfers (copy sends + mismatch forwards).
    communications: int = 0
    #: Mismatch forwards alone (subset of communications).
    mismatch_forwards: int = 0

    #: Speculative operand uses (operands dispatched in PRED mode).
    speculative_operands: int = 0
    #: Speculative operands whose prediction was wrong.
    mispredicted_operands: int = 0
    #: Uop invalidations performed by selective reissue.
    invalidations: int = 0

    cond_branches: int = 0
    branch_mispredictions: int = 0

    #: Faults injected by the validation harness (0 without injection).
    injected_faults: int = 0
    #: Injected value corruptions caught by verification copies.
    detected_faults: int = 0

    issued_uops: int = 0

    #: Per-cluster program-instruction dispatch counts.
    dispatch_per_cluster: List[int] = field(default_factory=list)

    #: Average per-cycle NREADY (the paper's workload-imbalance figure).
    avg_imbalance: float = 0.0

    #: Decode stall cycles by cause (diagnostics).
    decode_stalls: Dict[str, int] = field(default_factory=dict)

    #: Per-cluster issue counts (uops issued from each cluster).
    issued_per_cluster: List[int] = field(default_factory=list)
    #: Sum over cycles of each cluster's queued uops (for occupancy).
    iq_occupancy_sum: List[int] = field(default_factory=list)

    # -- derived metrics ---------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed program instructions per cycle."""
        return self.committed_insts / self.cycles if self.cycles else 0.0

    @property
    def comm_per_inst(self) -> float:
        """Inter-cluster transfers per committed program instruction."""
        if not self.committed_insts:
            return 0.0
        return self.communications / self.committed_insts

    @property
    def copies_per_inst(self) -> float:
        """Copy uops dispatched per committed program instruction."""
        if not self.committed_insts:
            return 0.0
        return self.dispatched_copies / self.committed_insts

    @property
    def branch_misprediction_rate(self) -> float:
        if not self.cond_branches:
            return 0.0
        return self.branch_mispredictions / self.cond_branches

    def avg_iq_occupancy(self) -> List[float]:
        """Average queued uops per cluster per cycle."""
        if not self.cycles:
            return [0.0] * len(self.iq_occupancy_sum)
        return [total / self.cycles for total in self.iq_occupancy_sum]

    def issue_utilization(self, issue_width_per_cluster: int) -> List[float]:
        """Fraction of each cluster's issue slots used, per cycle."""
        if not self.cycles or not issue_width_per_cluster:
            return [0.0] * len(self.issued_per_cluster)
        budget = self.cycles * issue_width_per_cluster
        return [count / budget for count in self.issued_per_cluster]

    @property
    def value_misprediction_rate(self) -> float:
        """Wrong speculative operand uses over all speculative uses."""
        if not self.speculative_operands:
            return 0.0
        return self.mispredicted_operands / self.speculative_operands


class SimResult:
    """Everything one run produced: stats, config echo, component stats."""

    def __init__(self, stats: SimStats, config, cache_stats: dict,
                 vp_stats: Optional[dict] = None,
                 bp_stats: Optional[dict] = None,
                 validation: Optional[dict] = None,
                 metrics=None, profile=None) -> None:
        self.stats = stats
        self.config = config
        self.cache_stats = cache_stats
        self.vp_stats = vp_stats or {}
        self.bp_stats = bp_stats or {}
        #: Validation-layer outcome when the run used ``check=True`` or
        #: fault injection: golden-commit count, fault report, ...
        self.validation = validation or {}
        #: Optional repro.obs.IntervalMetrics (None unless sampling was
        #: enabled).  Deliberately NOT part of to_dict(): exports of the
        #: run's metrics must be byte-identical whether or not the run
        #: was observed.
        self.metrics = metrics
        #: Optional repro.obs.PhaseProfiler with host wall-clock
        #: attribution; same exclusion from to_dict() applies.
        self.profile = profile

    @property
    def ipc(self) -> float:
        """Shortcut to ``stats.ipc``."""
        return self.stats.ipc

    @property
    def comm_per_inst(self) -> float:
        """Shortcut to ``stats.comm_per_inst``."""
        return self.stats.comm_per_inst

    @property
    def imbalance(self) -> float:
        """Shortcut to ``stats.avg_imbalance``."""
        return self.stats.avg_imbalance

    def to_dict(self) -> dict:
        """Machine-readable export of every metric of this run."""
        s = self.stats
        return {
            "config": self.config.describe(),
            "cycles": s.cycles,
            "committed_insts": s.committed_insts,
            "ipc": s.ipc,
            "comm_per_inst": s.comm_per_inst,
            "copies_per_inst": s.copies_per_inst,
            "imbalance": s.avg_imbalance,
            "communications": s.communications,
            "mismatch_forwards": s.mismatch_forwards,
            "copies": s.dispatched_copies,
            "vcopies": s.dispatched_vcopies,
            "speculative_operands": s.speculative_operands,
            "mispredicted_operands": s.mispredicted_operands,
            "invalidations": s.invalidations,
            "branch_misprediction_rate": s.branch_misprediction_rate,
            "dispatch_per_cluster": list(s.dispatch_per_cluster),
            "issued_per_cluster": list(s.issued_per_cluster),
            "avg_iq_occupancy": s.avg_iq_occupancy(),
            "decode_stalls": dict(s.decode_stalls),
            "cache": self.cache_stats,
            "branch_predictor": self.bp_stats,
            "value_predictor": self.vp_stats,
            "injected_faults": s.injected_faults,
            "detected_faults": s.detected_faults,
            "validation": {key: value for key, value
                           in self.validation.items()
                           if isinstance(value, (int, float, str, bool))},
        }

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        s = self.stats
        lines = [
            f"config              : {self.config.describe()}",
            f"cycles              : {s.cycles}",
            f"committed insts     : {s.committed_insts}",
            f"IPC                 : {s.ipc:.3f}",
            f"communications/inst : {s.comm_per_inst:.4f}",
            f"workload imbalance  : {s.avg_imbalance:.3f}",
            f"branch mispred rate : {s.branch_misprediction_rate:.4f}",
        ]
        if self.vp_stats:
            lines.append(
                f"VP confident frac   : "
                f"{self.vp_stats.get('confident_fraction', 0.0):.3f}")
            lines.append(
                f"VP hit ratio        : "
                f"{self.vp_stats.get('hit_ratio', 0.0):.3f}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<SimResult {self.config.describe()} ipc={self.ipc:.3f} "
                f"comm={self.comm_per_inst:.3f}>")

"""Full machine snapshot/restore with a versioned on-disk format.

A snapshot captures *everything* the timing model needs to resume a
run bit-identically: rename maps, value-predictor and steering tables,
cache and interconnect state, the in-flight window (ROB, issue queues,
fetch buffer, event wheel), RNG state inside the fault injector, the
golden co-simulator, and the functional executor's architectural state
(registers, sparse memory, ``pc``/``seq`` cursor).  The guarantee —
``save → restore → resume ≡ uninterrupted`` — is enforced by the
hypothesis suite in ``tests/core/test_snapshot_roundtrip.py`` and by
the ``make sample-check`` gate.

Two snapshot kinds share one container format:

* ``machine`` — a mid-run :class:`~repro.core.processor.Processor`
  plus its trace executor; restoring yields a processor that resumes
  the timing loop exactly where it stopped.
* ``executor`` — just a :class:`~repro.isa.executor.FunctionalExecutor`
  (architectural registers + memory + cursor).  These are the cheap
  fast-forward checkpoints the sampling layer shares across sweep
  configurations, keyed like cache results (workload identity ×
  position, see :class:`CheckpointStore`).

On-disk container: one JSON header line (schema tag, format version,
kind, SHA-256 of the compressed payload, resume metadata readable
without unpickling) followed by a zlib-compressed pickle payload.  The
header makes ``repro checkpoint info`` cheap and lets version/integrity
checks refuse a bad file *before* any unpickling happens.

What is deliberately **not** pickled: observers (tracer, profiler) —
they are host-side instrumentation reattached by the caller on restore
— and the two derived executor tables (lambda table, compiled
fast-forward code), rebuilt on ``__setstate__``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from ..errors import ConfigError
from ..isa.executor import FunctionalExecutor
from .processor import Processor

__all__ = ["SNAPSHOT_SCHEMA", "SNAPSHOT_VERSION", "SnapshotError",
           "SnapshotMeta", "CheckpointStore", "read_snapshot_meta",
           "save_processor", "restore_processor",
           "save_executor", "restore_executor"]

#: Schema tag + format version written into every snapshot header.
#: The version bumps whenever the payload layout changes shape; a
#: mismatch is refused with :class:`SnapshotError` (never a partial or
#: silently-wrong restore).
SNAPSHOT_SCHEMA = "repro-snapshot-v1"
SNAPSHOT_VERSION = 1

#: First bytes of every snapshot file, before the JSON header.
_MAGIC = "repro-snapshot"


class SnapshotError(ConfigError):
    """A snapshot file is missing, corrupt, or from an incompatible
    format version.

    Subclasses :class:`~repro.errors.ConfigError` so the CLI's usage
    exit code (2) and existing ``except ValueError`` call sites apply.
    """


@dataclass
class SnapshotMeta:
    """The JSON header of a snapshot file — readable without unpickling.

    ``sha256`` fingerprints the compressed payload; ``extra`` carries
    caller metadata (workload identity, sampling position, ...) that
    tools like ``repro checkpoint info`` surface verbatim.
    """

    kind: str                      # "machine" | "executor"
    sha256: str
    cycle: int = 0
    committed_insts: int = 0
    seq: int = 0                   # functional cursor (insts drawn)
    config_sha256: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    schema: str = SNAPSHOT_SCHEMA
    version: int = SNAPSHOT_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _config_sha(config) -> Optional[str]:
    try:
        blob = json.dumps(config.canonical_json(), sort_keys=True,
                          separators=(",", ":"))
    except Exception:
        return None
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------- capture --

def _strip_processor(processor: Processor) -> Dict[str, Any]:
    """Detach the unpicklable/host-side attachments; returns them."""
    saved = {
        "trace": processor.fetch._trace,
        "tracer": processor._tracer,
        "interconnect_tracer": processor.interconnect.tracer,
        "profiler": processor.profiler,
    }
    processor.fetch._trace = None
    processor._tracer = None
    processor.interconnect.tracer = None
    processor.profiler = None
    return saved


def _reattach_processor(processor: Processor, saved: Dict[str, Any]) -> None:
    processor.fetch._trace = saved["trace"]
    processor._tracer = saved["tracer"]
    processor.interconnect.tracer = saved["interconnect_tracer"]
    processor.profiler = saved["profiler"]


def _machine_payload(processor: Processor,
                     executor: Optional[FunctionalExecutor]) -> bytes:
    """Pickle a live (possibly mid-run) processor without disturbing it.

    The strip/reattach dance runs under ``finally`` so the live run
    continues bit-identically whether or not a snapshot was taken —
    the roundtrip suite asserts this.
    """
    if executor is None:
        executor = getattr(processor, "trace_executor", None)
    saved = _strip_processor(processor)
    try:
        return pickle.dumps({"processor": processor, "executor": executor},
                            protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        _reattach_processor(processor, saved)


def _trace_drawn(processor: Processor) -> int:
    """How many trace instructions the front end has consumed."""
    fetch = processor.fetch
    return fetch.fetched_count + (1 if fetch._lookahead is not None else 0)


# --------------------------------------------------------------- container --

def _write_container(path, kind: str, payload: bytes,
                     meta_fields: Dict[str, Any]) -> SnapshotMeta:
    packed = zlib.compress(payload, 1)
    meta = SnapshotMeta(kind=kind,
                        sha256=hashlib.sha256(packed).hexdigest(),
                        **meta_fields)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = json.dumps({"magic": _MAGIC, **meta.to_dict()},
                        sort_keys=True, separators=(",", ":"))
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header.encode("utf-8") + b"\n")
            handle.write(packed)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return meta


def read_snapshot_meta(path) -> SnapshotMeta:
    """Parse and validate a snapshot header without touching the payload."""
    path = pathlib.Path(path)
    try:
        with open(path, "rb") as handle:
            line = handle.readline(1 << 16)
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from None
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise SnapshotError(
            f"{path} is not a repro snapshot (bad header)") from None
    if header.get("magic") != _MAGIC or "schema" not in header:
        raise SnapshotError(f"{path} is not a repro snapshot (bad magic)")
    if header.get("schema") != SNAPSHOT_SCHEMA \
            or header.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: incompatible snapshot format "
            f"{header.get('schema')!r} v{header.get('version')!r}; this "
            f"build reads {SNAPSHOT_SCHEMA!r} v{SNAPSHOT_VERSION} — "
            f"re-create the snapshot with the current code")
    header.pop("magic")
    return SnapshotMeta(**header)


def _read_container(path, expect_kind: str) -> Tuple[SnapshotMeta, Any]:
    meta = read_snapshot_meta(path)
    if meta.kind != expect_kind:
        raise SnapshotError(f"{path}: snapshot kind {meta.kind!r}, "
                            f"expected {expect_kind!r}")
    with open(path, "rb") as handle:
        handle.readline(1 << 16)
        packed = handle.read()
    digest = hashlib.sha256(packed).hexdigest()
    if digest != meta.sha256:
        raise SnapshotError(
            f"{path}: payload hash mismatch ({digest[:12]}… != "
            f"{meta.sha256[:12]}…) — truncated or corrupt snapshot")
    try:
        state = pickle.loads(zlib.decompress(packed))
    except Exception as error:
        raise SnapshotError(
            f"{path}: cannot unpickle payload: {error}") from None
    return meta, state


# ------------------------------------------------------- machine snapshots --

def save_processor(path, processor: Processor,
                   executor: Optional[FunctionalExecutor] = None,
                   extra: Optional[Dict[str, Any]] = None) -> SnapshotMeta:
    """Snapshot a (possibly mid-run) processor to *path*.

    *executor* is the trace-producing functional executor; when omitted
    the ``trace_executor`` attribute :func:`repro.core.simulate`
    attaches is used.  A processor fed a materialized trace list
    snapshots too — the header's ``seq`` then records how many trace
    entries were consumed, and :func:`restore_processor` needs the same
    trace passed back in.
    """
    executor = executor or getattr(processor, "trace_executor", None)
    drawn = _trace_drawn(processor)
    if executor is not None and executor.seq != drawn:
        raise SnapshotError(
            f"executor cursor ({executor.seq}) disagrees with the fetch "
            f"engine ({drawn} insts drawn); pass the executor that feeds "
            f"this processor")
    payload = _machine_payload(processor, executor)
    return _write_container(path, "machine", payload, {
        "cycle": processor.cycle,
        "committed_insts": processor.stats.committed_insts,
        "seq": drawn,
        "config_sha256": _config_sha(processor.config),
        "extra": dict(extra or {}),
    })


def restore_processor(path, trace: Optional[Iterable] = None,
                      tracer=None, profiler=None,
                      ) -> Tuple[Processor, Optional[FunctionalExecutor]]:
    """Load a machine snapshot; returns ``(processor, executor)``.

    The processor resumes via ``run()``/``run_until()`` exactly where
    it stopped.  Executor-fed snapshots reattach the resumed functional
    stream automatically; trace-list snapshots need the original
    *trace* back (the consumed prefix is skipped by the recorded
    cursor).  Observers are host-side and never stored: pass *tracer*
    / *profiler* to re-instrument the restored run.
    """
    meta, state = _read_container(path, "machine")
    processor: Processor = state["processor"]
    executor: Optional[FunctionalExecutor] = state.get("executor")
    if executor is not None:
        processor.fetch._trace = executor.run()
        processor.trace_executor = executor
    elif trace is not None:
        import itertools
        processor.fetch._trace = itertools.islice(iter(trace), meta.seq,
                                                  None)
    else:
        raise SnapshotError(
            f"{path} was taken from a trace-list run; pass the original "
            f"trace to restore_processor(..., trace=...)")
    processor._tracer = tracer
    processor.interconnect.tracer = tracer
    processor.profiler = profiler
    return processor, executor


# ------------------------------------------------------ executor snapshots --

def save_executor(path, executor: FunctionalExecutor,
                  extra: Optional[Dict[str, Any]] = None) -> SnapshotMeta:
    """Snapshot just the functional executor (a fast-forward checkpoint)."""
    payload = pickle.dumps(executor, protocol=pickle.HIGHEST_PROTOCOL)
    return _write_container(path, "executor", payload, {
        "seq": executor.seq,
        "extra": dict(extra or {}),
    })


def restore_executor(path) -> FunctionalExecutor:
    """Load an executor checkpoint saved by :func:`save_executor`."""
    _, executor = _read_container(path, "executor")
    return executor


# ---------------------------------------------------------- shared FF pool --

class CheckpointStore:
    """Content-addressed executor checkpoints under one directory.

    Keys are built like result-cache keys — a SHA-256 over the
    canonical workload identity (name, dataset, seed, cap), the
    fast-forward position, the snapshot schema, and the source
    fingerprint — so every sweep cell over the same workload resolves
    the *same* checkpoint files regardless of processor configuration,
    and stale checkpoints die with the code that wrote them.
    """

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @staticmethod
    def key_for(workload: str, position: int, *, dataset: str = "test",
                seed: int = 0, max_instructions: int = 0) -> str:
        from ..analysis.cache import code_version
        payload = {
            "schema": SNAPSHOT_SCHEMA,
            "code": code_version(),
            "workload": workload,
            "dataset": dataset,
            "seed": seed,
            "max_instructions": max_instructions,
            "position": position,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.ckpt"

    def load(self, key: str) -> Optional[FunctionalExecutor]:
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        executor = restore_executor(path)
        self.hits += 1
        return executor

    def store(self, key: str, executor: FunctionalExecutor,
              extra: Optional[Dict[str, Any]] = None) -> pathlib.Path:
        path = self.path_for(key)
        if not path.exists():
            save_executor(path, executor, extra=extra)
            self.stores += 1
        return path

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

"""Golden-model co-simulator: the committed stream, re-checked.

The timing simulator replays a functional trace, so "the program ran
correctly" is an *assumption*, not a checked property — a commit-order
bug, a double commit, or an unrecovered value-speculation fault would
silently produce wrong statistics.  The co-simulator turns that
assumption into an invariant:

* every committed program instruction must be the *next* record of the
  functional trace (no skips, duplicates, or reordering);
* its source operand values must equal the golden architectural
  register state built by replaying the previous commits;
* for register-to-register operations the result is **re-executed**
  from the golden sources and compared against the trace.

Commits are buffered and replayed in batches of ``interval`` (the
configurable "every N commits"), so the hot commit path only appends to
a list.  Any mismatch raises :class:`~repro.errors.DivergenceError`
carrying the cycle, PC, sequence number, executing cluster and a
register-level diff.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import DivergenceError
from ..isa.executor import recompute_result
from ..isa.instruction import DynInst
from ..isa.registers import FP_BASE, NUM_LOGICAL_REGS, ZERO_REG, reg_name

__all__ = ["GoldenModel"]


class GoldenModel:
    """Replays the committed instruction stream against golden state.

    Args:
        interval: commits buffered between replay batches.  Smaller
            catches divergence sooner (tighter blast radius in the
            error report); larger amortizes the replay loop better.
    """

    def __init__(self, interval: int = 256) -> None:
        if interval < 1:
            raise ValueError("golden interval must be >= 1")
        self.interval = interval
        self.int_regs: List[int] = [0] * FP_BASE
        self.fp_regs: List[float] = [0.0] * (NUM_LOGICAL_REGS - FP_BASE)
        self._expected_seq = 0
        self._batch: List[Tuple[DynInst, int, int]] = []
        #: Total commits replayed and verified so far.
        self.checked = 0
        #: Replay batches run (diagnostics).
        self.batches = 0

    # -- architectural state ------------------------------------------------

    def _read(self, rid: int):
        if rid < FP_BASE:
            return self.int_regs[rid]
        return self.fp_regs[rid - FP_BASE]

    def _write(self, rid: int, value) -> None:
        if rid < FP_BASE:
            if rid != ZERO_REG:
                self.int_regs[rid] = value
        else:
            self.fp_regs[rid - FP_BASE] = value

    def register_state(self) -> Dict[str, object]:
        """The golden architectural register file, by register name."""
        state: Dict[str, object] = {}
        for rid in range(NUM_LOGICAL_REGS):
            state[reg_name(rid)] = self._read(rid)
        return state

    # -- co-simulation ------------------------------------------------------

    def on_commit(self, dyn: DynInst, cycle: int, cluster: int) -> None:
        """Record one committed program instruction; replay every N."""
        self._batch.append((dyn, cycle, cluster))
        if len(self._batch) >= self.interval:
            self._replay()

    def finish(self, cycle: Optional[int] = None) -> int:
        """Flush and verify the remaining buffered commits.

        Returns the total number of commits verified.  Call once the
        timing loop drains (or stops at its cycle cap).
        """
        del cycle  # uniform signature with on_commit; unused
        if self._batch:
            self._replay()
        return self.checked

    def _replay(self) -> None:
        batch, self._batch = self._batch, []
        self.batches += 1
        for dyn, cycle, cluster in batch:
            self._check_one(dyn, cycle, cluster)
            self.checked += 1

    def _check_one(self, dyn: DynInst, cycle: int, cluster: int) -> None:
        if dyn.seq != self._expected_seq:
            raise DivergenceError(
                f"commit stream diverged from the functional trace: "
                f"expected seq {self._expected_seq}, committed seq "
                f"{dyn.seq} (pc={dyn.pc:#x}, {dyn.op.name}) at cycle "
                f"{cycle} on cluster {cluster}",
                cycle=cycle, pc=dyn.pc, seq=dyn.seq, cluster=cluster)
        self._expected_seq += 1
        # Source operands must match the golden architectural state.
        diff: Dict[str, Tuple[object, object]] = {}
        for slot, rid in enumerate(dyn.srcs):
            if rid == ZERO_REG:
                continue
            golden = self._read(rid)
            traced = dyn.src_values[slot]
            if golden != traced:
                diff[reg_name(rid)] = (golden, traced)
        if diff:
            raise DivergenceError(
                f"architectural state diverged at seq {dyn.seq} "
                f"(pc={dyn.pc:#x}, {dyn.op.name}, cycle {cycle}, cluster "
                f"{cluster}): register diff (golden, trace) = {diff}",
                cycle=cycle, pc=dyn.pc, seq=dyn.seq, cluster=cluster,
                register_diff={name: {"golden": g, "trace": t}
                               for name, (g, t) in diff.items()})
        # Re-execute pure operations and compare results.
        if dyn.dest is not None:
            known, recomputed = recompute_result(dyn.op.name,
                                                 dyn.src_values, None)
            if known and recomputed != dyn.result:
                raise DivergenceError(
                    f"re-executed result diverged at seq {dyn.seq} "
                    f"(pc={dyn.pc:#x}, {dyn.op.name}, cycle {cycle}, "
                    f"cluster {cluster}): golden {recomputed!r} != trace "
                    f"{dyn.result!r}",
                    cycle=cycle, pc=dyn.pc, seq=dyn.seq, cluster=cluster,
                    register_diff={reg_name(dyn.dest): {
                        "golden": recomputed, "trace": dyn.result}})
            self._write(dyn.dest, dyn.result)

    # -- end-of-run comparison ----------------------------------------------

    def diff_against(self, other_state: Dict[str, object]
                     ) -> Dict[str, Tuple[object, object]]:
        """Register-level diff of golden state against *other_state*."""
        mine = self.register_state()
        return {name: (mine.get(name), value)
                for name, value in other_state.items()
                if mine.get(name) != value}

    def matches_executor(self, executor_state: Dict[str, object]) -> bool:
        """True when golden state equals a functional executor's state."""
        return not self.diff_against(executor_state)

"""Deterministic fault injection for the clustered timing model.

The paper's correctness story rests on one property: a mispredicted
value that crossed a cluster boundary is *always* caught by the local
verification copy and repaired through selective reissue.  The fault
harness exists to prove that property experimentally, plus two weaker
ones (bus perturbations and steering flips must never corrupt
architectural state).

Fault kinds (:data:`FAULT_KINDS`):

* ``value`` — corrupt a confident value prediction at decode so the
  speculatively dispatched operand is guaranteed wrong.  Every injected
  corruption must be detected by the verification machinery (producer
  check or verification-copy mismatch forward) and recovered.
* ``bus-delay`` — stretch an inter-cluster transfer's latency by a
  random number of extra cycles.
* ``bus-drop`` — reject a path reservation (a transient NACK); the
  sender retries the next cycle.
* ``steer`` — override a steering decision with a random other cluster.

All randomness flows from one seeded :class:`random.Random`, so a
(seed, plan, trace, config) tuple replays the identical fault sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigError

__all__ = ["FAULT_VALUE", "FAULT_BUS_DELAY", "FAULT_BUS_DROP",
           "FAULT_STEER", "FAULT_KINDS", "FaultPlan", "FaultRecord",
           "FaultReport", "FaultInjector"]

FAULT_VALUE = "value"
FAULT_BUS_DELAY = "bus-delay"
FAULT_BUS_DROP = "bus-drop"
FAULT_STEER = "steer"
FAULT_KINDS = (FAULT_VALUE, FAULT_BUS_DELAY, FAULT_BUS_DROP, FAULT_STEER)

#: Records kept verbatim before falling back to counting only.
_MAX_RECORDS = 10_000


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, and from which seed.

    Rates are per *opportunity*: per confident prediction for ``value``,
    per bus transfer for the bus kinds, per steered instruction for
    ``steer``.  ``max_faults`` caps total injections across all kinds.
    """

    seed: int = 0
    value_rate: float = 0.0
    bus_delay_rate: float = 0.0
    bus_drop_rate: float = 0.0
    steer_rate: float = 0.0
    max_delay: int = 8
    max_faults: Optional[int] = None

    _RATE_FIELDS = {FAULT_VALUE: "value_rate",
                    FAULT_BUS_DELAY: "bus_delay_rate",
                    FAULT_BUS_DROP: "bus_drop_rate",
                    FAULT_STEER: "steer_rate"}

    def validate(self) -> None:
        for kind, attr in self._RATE_FIELDS.items():
            rate = getattr(self, attr)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"fault rate for {kind!r} must be in [0, 1], "
                    f"got {rate}")
        if self.max_delay < 1:
            raise ConfigError("max_delay must be >= 1 cycle")
        if self.max_faults is not None and self.max_faults < 1:
            raise ConfigError("max_faults must be >= 1 or None")

    @property
    def active(self) -> bool:
        return any(getattr(self, attr) > 0.0
                   for attr in self._RATE_FIELDS.values())

    def kinds(self) -> List[str]:
        return [kind for kind, attr in self._RATE_FIELDS.items()
                if getattr(self, attr) > 0.0]

    @classmethod
    def single(cls, kind: str, rate: float = 0.02, seed: int = 0,
               **extra) -> "FaultPlan":
        """A plan injecting one fault kind at *rate*."""
        if kind not in cls._RATE_FIELDS:
            raise ConfigError(f"unknown fault kind {kind!r}; choose from "
                              f"{list(FAULT_KINDS)}")
        plan = cls(seed=seed, **{cls._RATE_FIELDS[kind]: rate}, **extra)
        plan.validate()
        return plan

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI spec: ``kind[:rate][,kind[:rate]...][@seed=N]``.

        Examples: ``value``, ``value:0.05``, ``value:0.02,steer:0.01``,
        ``value@seed=7``.
        """
        spec = spec.strip()
        if "@" in spec:
            spec, _, tail = spec.partition("@")
            key, _, val = tail.partition("=")
            if key.strip() != "seed":
                raise ConfigError(
                    f"unknown fault-plan option {key.strip()!r} "
                    f"(only 'seed' is supported)")
            try:
                seed = int(val)
            except ValueError:
                raise ConfigError(f"bad fault seed {val!r}") from None
        fields: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            kind, _, rate_text = part.partition(":")
            kind = kind.strip()
            if kind not in cls._RATE_FIELDS:
                raise ConfigError(
                    f"unknown fault kind {kind!r}; choose from "
                    f"{list(FAULT_KINDS)}")
            try:
                rate = float(rate_text) if rate_text else 0.02
            except ValueError:
                raise ConfigError(
                    f"bad fault rate {rate_text!r} for {kind!r}") from None
            fields[cls._RATE_FIELDS[kind]] = rate
        if not fields:
            raise ConfigError(f"empty fault spec {spec!r}")
        plan = cls(seed=seed, **fields)
        plan.validate()
        return plan

    def describe(self) -> str:
        parts = [f"{kind}:{getattr(self, attr)}"
                 for kind, attr in self._RATE_FIELDS.items()
                 if getattr(self, attr) > 0.0]
        return f"{','.join(parts) or 'none'}@seed={self.seed}"


@dataclass
class FaultRecord:
    """One injected fault, for post-mortem and campaign ledgers."""

    kind: str
    #: PC for value/steer faults, depart cycle for bus faults.
    site: int
    detail: str = ""


@dataclass
class FaultReport:
    """Injection and detection totals for one simulation run."""

    injected: Dict[str, int] = field(default_factory=dict)
    detected_values: int = 0
    records: List[FaultRecord] = field(default_factory=list)

    @property
    def injected_values(self) -> int:
        return self.injected.get(FAULT_VALUE, 0)

    @property
    def undetected_values(self) -> int:
        return self.injected_values - self.detected_values

    @property
    def detection_rate(self) -> float:
        if not self.injected_values:
            return 1.0
        return self.detected_values / self.injected_values

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def to_dict(self) -> dict:
        return {"injected": dict(self.injected),
                "detected_values": self.detected_values,
                "undetected_values": self.undetected_values,
                "detection_rate": self.detection_rate}


class FaultInjector:
    """Seeded, deterministic fault source wired into the processor.

    The processor consults the injector at three points: decode-time
    value prediction (:meth:`corrupt_prediction`), steering
    (:meth:`flip_steering`), and the interconnect
    (:meth:`bus_extra_delay` / :meth:`bus_drop`).  When a corrupted
    operand is later cleared by the verification machinery the
    processor calls :meth:`note_value_detected`, closing the loop that
    the campaign's detection-rate report is built on.
    """

    def __init__(self, plan: FaultPlan) -> None:
        plan.validate()
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.report = FaultReport()

    # -- bookkeeping ---------------------------------------------------------

    def _budget_left(self) -> bool:
        cap = self.plan.max_faults
        return cap is None or self.report.total_injected < cap

    def _record(self, kind: str, site: int, detail: str = "") -> None:
        report = self.report
        report.injected[kind] = report.injected.get(kind, 0) + 1
        if len(report.records) < _MAX_RECORDS:
            report.records.append(FaultRecord(kind, site, detail))

    # -- injection points ----------------------------------------------------

    def corrupt_prediction(self, pc: int, slot: int,
                           actual: int) -> Optional[int]:
        """Maybe corrupt a confident prediction; returns the bad value.

        The corrupted value is guaranteed to differ from the
        architecturally correct one, so a hit becomes a misprediction
        the verification layer *must* catch.  Nothing is recorded here:
        the operand planner may discard the prediction (e.g. the value
        turns out to be locally ready), so the processor reports back
        with :meth:`note_value_injected` only when a corrupted operand
        actually enters the pipeline.  This keeps the detection-rate
        denominator honest.
        """
        if (self.plan.value_rate <= 0.0 or not self._budget_left()
                or self.rng.random() >= self.plan.value_rate):
            return None
        return actual ^ (1 + self.rng.getrandbits(16))

    def flip_steering(self, chosen: int, n_clusters: int, pc: int) -> int:
        """Maybe override a steering decision with another cluster."""
        if (n_clusters < 2 or self.plan.steer_rate <= 0.0
                or not self._budget_left()
                or self.rng.random() >= self.plan.steer_rate):
            return chosen
        flipped = self.rng.randrange(n_clusters - 1)
        if flipped >= chosen:
            flipped += 1
        self._record(FAULT_STEER, pc, f"{chosen}->{flipped}")
        return flipped

    def bus_extra_delay(self, depart_cycle: int) -> int:
        """Extra latency cycles for one transfer (usually 0)."""
        if (self.plan.bus_delay_rate <= 0.0 or not self._budget_left()
                or self.rng.random() >= self.plan.bus_delay_rate):
            return 0
        extra = self.rng.randint(1, self.plan.max_delay)
        self._record(FAULT_BUS_DELAY, depart_cycle, f"+{extra} cycles")
        return extra

    def bus_drop(self, dest_cluster: int, depart_cycle: int) -> bool:
        """True to reject this path reservation (sender retries)."""
        if (self.plan.bus_drop_rate <= 0.0 or not self._budget_left()
                or self.rng.random() >= self.plan.bus_drop_rate):
            return False
        self._record(FAULT_BUS_DROP, depart_cycle, f"dest {dest_cluster}")
        return True

    # -- detection loop ------------------------------------------------------

    def note_value_injected(self, pc: int, slot: int) -> None:
        """A corrupted prediction was dispatched as a live operand."""
        self._record(FAULT_VALUE, pc, f"slot {slot}")

    def note_value_detected(self) -> None:
        """An injected value corruption was caught by verification."""
        self.report.detected_values += 1

"""Validation layer: golden-model co-simulation, watchdog, fault injection.

This package hardens the timing model against *silent* wrongness:

* :mod:`~repro.validation.golden` — replays the committed instruction
  stream against the functional trace and raises
  :class:`~repro.errors.DivergenceError` on any mismatch.
* :mod:`~repro.validation.watchdog` — detects no-forward-progress
  within a cycle budget and raises :class:`~repro.errors.DeadlockError`
  with a structured pipeline snapshot instead of spinning forever.
* :mod:`~repro.validation.faults` — seeded, deterministic fault plans
  (value corruption, bus delay/drop, steering flips) used to *prove*
  that the paper's verification-copy mechanism catches 100% of injected
  predicted-value corruptions.
* :mod:`~repro.validation.campaign` — the N-seeds x fault-kinds sweep
  behind ``benchmarks/bench_robustness.py`` and ``repro campaign``.

See docs/ROBUSTNESS.md for the fault model and guarantees.
"""

from .campaign import (CampaignCell, CampaignResult, format_campaign,
                       run_fault_campaign)
from .faults import (FAULT_BUS_DELAY, FAULT_BUS_DROP, FAULT_KINDS,
                     FAULT_STEER, FAULT_VALUE, FaultInjector, FaultPlan,
                     FaultRecord, FaultReport)
from .golden import GoldenModel
from .watchdog import ClusterSnapshot, PipelineSnapshot, PipelineWatchdog

__all__ = [
    "CampaignCell", "CampaignResult", "format_campaign",
    "run_fault_campaign",
    "FAULT_BUS_DELAY", "FAULT_BUS_DROP", "FAULT_KINDS", "FAULT_STEER",
    "FAULT_VALUE", "FaultInjector", "FaultPlan", "FaultRecord",
    "FaultReport",
    "GoldenModel",
    "ClusterSnapshot", "PipelineSnapshot", "PipelineWatchdog",
]

"""Fault-injection campaign: N seeds x fault kinds, with a verdict.

A campaign proves the paper's safety property at scale: sweep every
fault kind over several seeds and workloads, run each cell under the
golden-model co-simulator, and report

* the **detection rate** of injected predicted-value corruptions
  (must be 100%: every corruption caught by a verification copy or the
  producer-side check),
* whether every cell **recovered** (golden co-simulation clean — the
  committed stream still matches the functional execution), and
* the **recovery penalty**: extra cycles per injected value fault,
  reported against the configured wire delay (a mismatch forward costs
  one inter-cluster transfer plus the reissue of the consumer's cone).

Failed cells are ledgered, never fatal — one bad (workload, seed)
combination must not abort the sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import SimulationError
from ..obs.telemetry import active_monitor
from .faults import FAULT_VALUE, FaultPlan

__all__ = ["CampaignCell", "CampaignResult", "run_fault_campaign",
           "format_campaign"]

#: Default kinds a campaign sweeps (all of them).
DEFAULT_KINDS = ("value", "bus-delay", "bus-drop", "steer")


@dataclass
class CampaignCell:
    """One (workload, fault kind, seed) simulation under injection."""

    workload: str
    kind: str
    seed: int
    injected: int = 0
    detected: int = 0
    recovered: bool = False
    cycles: int = 0
    baseline_cycles: int = 0
    ipc: float = 0.0
    baseline_ipc: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.recovered

    @property
    def penalty_cycles_per_fault(self) -> float:
        """Extra cycles per injected fault relative to the clean run."""
        if not self.injected:
            return 0.0
        return (self.cycles - self.baseline_cycles) / self.injected


@dataclass
class CampaignResult:
    """All cells of one campaign plus the aggregate verdicts."""

    cells: List[CampaignCell] = field(default_factory=list)
    comm_latency: int = 1

    def value_cells(self) -> List[CampaignCell]:
        return [c for c in self.cells if c.kind == FAULT_VALUE]

    @property
    def detection_rate(self) -> float:
        """Detected / injected over every value-corruption cell."""
        injected = sum(c.injected for c in self.value_cells())
        if not injected:
            return 1.0
        return sum(c.detected for c in self.value_cells()) / injected

    @property
    def all_recovered(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> List[CampaignCell]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def mean_value_penalty(self) -> float:
        """Mean extra cycles per injected value fault across cells."""
        cells = [c for c in self.value_cells() if c.injected and c.ok]
        if not cells:
            return 0.0
        return (sum(c.penalty_cycles_per_fault for c in cells)
                / len(cells))


def _campaign_workload_block(payload: tuple) -> List[CampaignCell]:
    """All (kind, seed) cells of one workload — the campaign's unit of
    parallelism.

    Module-level (hence picklable) so :class:`~repro.analysis.parallel.
    WorkerPool` can fan workloads out across processes; each block
    rebuilds its trace from the explicit payload, never from inherited
    state, so parallel campaigns match serial ones cell for cell.
    """
    (name, kinds, seeds, length, n_clusters, predictor, steering,
     rate, comm_latency) = payload
    from ..core import make_config, simulate
    from ..workloads import workload_trace

    config = make_config(n_clusters, predictor=predictor, steering=steering,
                         comm_latency=comm_latency)
    trace = list(workload_trace(name, length or 6_000))
    baseline = simulate(trace, config, check=True)
    cells: List[CampaignCell] = []
    for kind in kinds:
        for seed in seeds:
            cell = CampaignCell(name, kind, seed,
                                baseline_cycles=baseline.stats.cycles,
                                baseline_ipc=baseline.ipc)
            cells.append(cell)
            plan = FaultPlan.single(kind, rate=rate, seed=seed)
            try:
                sim = simulate(trace, config, check=True,
                               fault_plan=plan)
            except SimulationError as exc:
                cell.error = f"{type(exc).__name__}: {exc}"
                continue
            report = sim.validation.get("fault_report")
            if report is not None:
                cell.injected = report.injected.get(kind, 0)
                cell.detected = report.detected_values
            cell.cycles = sim.stats.cycles
            cell.ipc = sim.ipc
            # Recovery = the run completed and the golden model
            # verified every commit without divergence.
            cell.recovered = True
    return cells


def run_fault_campaign(workloads: Optional[Sequence[str]] = None,
                       seeds: Sequence[int] = (0, 1, 2),
                       kinds: Sequence[str] = DEFAULT_KINDS,
                       length: Optional[int] = None,
                       n_clusters: int = 4,
                       predictor: str = "stride",
                       steering: str = "vpb",
                       rate: float = 0.05,
                       comm_latency: int = 1,
                       jobs: Optional[int] = None) -> CampaignResult:
    """Sweep fault kinds x seeds x workloads under the co-simulator.

    Every cell runs with the golden model enabled; a cell "recovers"
    when the run completes and the committed stream verifies clean.
    Cells that raise are recorded with their error and the campaign
    continues.

    With ``jobs > 1`` (or inside a ``with WorkerPool(...)`` block) the
    per-workload blocks fan out across worker processes — each block is
    seeded and explicit, and blocks are folded in workload order, so
    the report is identical to a serial campaign's.

    When a sweep monitor is ambient
    (:func:`~repro.obs.telemetry.use_monitor`), the campaign reports
    one telemetry cell per workload block — ``sweep_done`` fires from
    a ``finally`` block, so an interrupted campaign still flushes its
    partial event log.
    """
    # Local import: the core simulator imports this package lazily and
    # vice versa; importing at call time breaks the cycle.
    from ..analysis.parallel import WorkerPool, active_pool, resolve_jobs
    from ..workloads import workload_names

    names = list(workloads) if workloads else workload_names()[:2]
    pool = active_pool()
    if jobs is None and pool is not None:
        jobs = pool.jobs
    jobs = resolve_jobs(jobs)
    result = CampaignResult(comm_latency=comm_latency)
    payloads = [(name, tuple(kinds), tuple(seeds), length, n_clusters,
                 predictor, steering, rate, comm_latency)
                for name in names]
    monitor = active_monitor()
    if monitor is not None:
        monitor.sweep_start(
            "fault-campaign",
            [{"key": name, "workload": name, "n_clusters": n_clusters,
              "predictor": predictor, "steering": steering,
              "length": length or 6_000} for name in names],
            jobs=jobs, chunksize=1)
    try:
        if jobs <= 1 or len(payloads) <= 1:
            blocks = []
            for index, payload in enumerate(payloads):
                if monitor is not None:
                    monitor.cell_start(index)
                start = time.perf_counter()
                blocks.append(_campaign_workload_block(payload))
                if monitor is not None:
                    monitor.cell_done(
                        index, seconds=time.perf_counter() - start)
        else:
            if monitor is not None:
                for index in range(len(payloads)):
                    monitor.cell_start(index)
            if pool is not None:
                # One workload block per dispatch: blocks are coarse
                # already.
                stream = pool.imap(_campaign_workload_block, payloads,
                                   chunksize=1)
            else:
                pool = WorkerPool(jobs)
                stream = pool.imap(_campaign_workload_block, payloads,
                                   chunksize=1)
            try:
                blocks = []
                for index, block in enumerate(stream):
                    blocks.append(block)
                    if monitor is not None:
                        monitor.cell_done(index)
            finally:
                if pool is not active_pool():
                    pool.close()
    finally:
        if monitor is not None:
            monitor.sweep_done()
    for block in blocks:
        result.cells.extend(block)
    return result


def format_campaign(result: CampaignResult) -> str:
    """Render the campaign as the robustness report."""
    lines = ["Fault-injection campaign — detection and recovery report",
             "=" * 60]
    header = (f"{'workload':<12} {'kind':<10} {'seed':>4} {'inj':>5} "
              f"{'det':>5} {'recovered':>9} {'ipc':>7} {'penalty':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for cell in result.cells:
        if cell.error is not None:
            lines.append(f"{cell.workload:<12} {cell.kind:<10} "
                         f"{cell.seed:>4} FAILED: {cell.error}")
            continue
        penalty = (f"{cell.penalty_cycles_per_fault:.2f}"
                   if cell.kind == FAULT_VALUE and cell.injected else "-")
        lines.append(f"{cell.workload:<12} {cell.kind:<10} {cell.seed:>4} "
                     f"{cell.injected:>5} "
                     f"{cell.detected if cell.kind == FAULT_VALUE else '-':>5} "
                     f"{'yes' if cell.recovered else 'NO':>9} "
                     f"{cell.ipc:>7.3f} {penalty:>8}")
    lines.append("-" * len(header))
    lines.append(f"value-corruption detection rate : "
                 f"{result.detection_rate:.1%}")
    lines.append(f"all cells recovered             : "
                 f"{'yes' if result.all_recovered else 'NO'}")
    lines.append(f"mean recovery penalty           : "
                 f"{result.mean_value_penalty:.2f} cycles/fault "
                 f"(configured wire delay: {result.comm_latency} "
                 f"cycle(s) per mismatch forward)")
    if result.failures:
        lines.append(f"FAILURES: {len(result.failures)} cell(s)")
    return "\n".join(lines)

"""Pipeline watchdog: turn a silent hang into a diagnosable failure.

A cycle-level model with selective reissue, store queues and a bounded
interconnect has many ways to wedge — a lost wakeup, a register leak, a
reservation that is never released.  Before this module the timing loop
either spun forever or raised a bare one-line error.  The watchdog
tracks forward progress (commits) against a configurable cycle budget
and, on expiry, captures a :class:`PipelineSnapshot` of every stall-
relevant structure and raises :class:`~repro.errors.DeadlockError`.

The snapshot is collected *lazily*: per-cycle cost is two integer
compares, and the expensive structure walk happens only on the failure
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import DeadlockError

__all__ = ["ClusterSnapshot", "PipelineSnapshot", "PipelineWatchdog"]


@dataclass
class ClusterSnapshot:
    """Stall-relevant state of one cluster at capture time."""

    cluster_id: int
    iq_int_occupancy: int
    iq_int_capacity: int
    iq_fp_occupancy: int
    iq_fp_capacity: int
    #: Free physical registers per bank (int, fp).
    free_pregs: List[int] = field(default_factory=list)

    def render(self) -> str:
        return (f"cluster {self.cluster_id}: "
                f"iq_int {self.iq_int_occupancy}/{self.iq_int_capacity} "
                f"iq_fp {self.iq_fp_occupancy}/{self.iq_fp_capacity} "
                f"free_pregs {self.free_pregs}")


@dataclass
class PipelineSnapshot:
    """Structured post-mortem of a stuck pipeline.

    Everything a human (or a campaign ledger) needs to diagnose a hang
    without re-running under a debugger: where the ROB head is stuck,
    how full each issue queue is, how many physical registers remain,
    and what the interconnect still has in flight.
    """

    cycle: int
    last_commit_cycle: int
    budget: int
    rob_occupancy: int
    rob_size: int
    rob_head: Optional[str]
    rob_head_unverified: Optional[int]
    rob_head_min_issue: Optional[int]
    fetch_done: bool
    clusters: List[ClusterSnapshot] = field(default_factory=list)
    #: Interconnect path reservations not yet delivered.
    inflight_bus_messages: int = 0
    pending_store_addrs: int = 0
    stores_awaiting_data: int = 0
    decode_stalls: Dict[str, int] = field(default_factory=dict)
    #: Program instructions dispatched to each cluster up to the hang.
    dispatched_per_cluster: List[int] = field(default_factory=list)
    #: Uops issued from each cluster up to the hang.
    issued_per_cluster: List[int] = field(default_factory=list)
    #: Trailing pipeline events (dict form, oldest first) when an event
    #: tracer was installed; empty without one.  This is the post-mortem
    #: flight recorder: the last things the machine did before wedging.
    recent_events: List[dict] = field(default_factory=list)

    def render(self) -> str:
        """Multi-line human-readable dump (embedded in DeadlockError)."""
        lines = [
            f"pipeline snapshot @ cycle {self.cycle} "
            f"(no commit since cycle {self.last_commit_cycle}, "
            f"budget {self.budget}):",
            f"  ROB {self.rob_occupancy}/{self.rob_size}, "
            f"fetch {'done' if self.fetch_done else 'active'}",
        ]
        if self.rob_head is not None:
            lines.append(f"  ROB head: {self.rob_head} "
                         f"unverified={self.rob_head_unverified} "
                         f"min_issue={self.rob_head_min_issue}")
        for cluster in self.clusters:
            lines.append("  " + cluster.render())
        lines.append(f"  in-flight bus messages: "
                     f"{self.inflight_bus_messages}")
        lines.append(f"  pending store addrs: {self.pending_store_addrs}, "
                     f"stores awaiting data: {self.stores_awaiting_data}")
        if self.decode_stalls:
            lines.append(f"  decode stalls: {self.decode_stalls}")
        if self.dispatched_per_cluster:
            lines.append(f"  dispatched/cluster: "
                         f"{self.dispatched_per_cluster}, "
                         f"issued/cluster: {self.issued_per_cluster}")
        if self.recent_events:
            lines.append(f"  last {len(self.recent_events)} events:")
            for event in self.recent_events:
                parts = [f"{key}={value}" for key, value in event.items()
                         if key not in ("cycle", "event")]
                lines.append(f"    c{event['cycle']:<8} "
                             f"{event['event']:<13} {' '.join(parts)}")
        return "\n".join(lines)


class PipelineWatchdog:
    """Detects no-forward-progress within a configurable cycle budget.

    The processor notifies the watchdog once per cycle via
    :meth:`check`; the watchdog asks the processor for a snapshot (the
    ``snapshot_fn`` callback) only when the budget expires, then raises
    :class:`DeadlockError` carrying it.
    """

    def __init__(self, budget: int, snapshot_fn) -> None:
        if budget < 1:
            raise ValueError("watchdog budget must be >= 1 cycle")
        self.budget = budget
        self._snapshot_fn = snapshot_fn
        self.last_commit_cycle = 0

    def note_commit(self, cycle: int) -> None:
        """Record that at least one uop retired at *cycle*."""
        self.last_commit_cycle = cycle

    def check(self, cycle: int) -> None:
        """Raise :class:`DeadlockError` when the budget is exhausted."""
        if cycle - self.last_commit_cycle <= self.budget:
            return
        snapshot: PipelineSnapshot = self._snapshot_fn(
            cycle, self.last_commit_cycle, self.budget)
        raise DeadlockError(
            f"pipeline made no forward progress for {self.budget} cycles "
            f"(cycle {cycle}, last commit at cycle "
            f"{self.last_commit_cycle})\n{snapshot.render()}",
            cycle=cycle, snapshot=snapshot)

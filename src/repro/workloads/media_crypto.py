"""Encryption-category Mediabench stand-ins: pgpdec, pgpenc.

PGP spends its cycles in multi-precision modular arithmetic — long
serial multiply/divide chains over values with no exploitable stride,
the least value-predictable category in the suite (and in the paper,
where the predictor's hit rate is carried by the media codecs, not the
crypto).
"""

from __future__ import annotations

from ..isa.program import Program, ProgramBuilder
from . import kernels
from .datagen import noise_words

__all__ = ["build_pgpdec", "build_pgpenc"]

_OUTER_REPS = 1_000_000

#: Block-pipeline instantiations (distinct static code).
REPLICAS = 8

#: Input datasets: like Mediabench's per-benchmark input files, each
#: stand-in can run a second, differently seeded (and slightly larger)
#: input to check input sensitivity.
DATASET_OFFSETS = {"test": 0, "train": 5000}


#: Seed stride: far above any dataset offset, so (dataset, seed) pairs
#: never collide in the generators' seed space.
_SEED_STRIDE = 100_003


def _dataset_offset(dataset: str, seed: int = 0) -> int:
    try:
        return DATASET_OFFSETS[dataset] + seed * _SEED_STRIDE
    except KeyError:
        raise KeyError(f"unknown dataset {dataset!r}; choose from "
                       f"{sorted(DATASET_OFFSETS)}") from None


def _outer(b: ProgramBuilder):
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER_REPS)
    b.label("main")


def _outer_end(b: ProgramBuilder):
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")


def build_pgpenc(dataset: str = "test", seed: int = 0) -> Program:
    """Encrypt: modular exponentiation rounds + block scramble + entropy."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 64
    sbox = b.data("sbox", noise_words(151 + offset, 1024, bits=32))
    plain = b.data("plain", noise_words(152 + offset, n, bits=16))
    packed = b.zeros("packed", n)
    hist = b.zeros("hist", 8)
    _outer(b)
    for rep in range(REPLICAS):
        kernels.modmul_rounds(b, f"rsa{rep}", sbox, 64,
                              0x1234567 + rep, 2147483647)
        kernels.histogram(b, f"mix{rep}", plain, packed, n)
        kernels.huffman_scan(b, f"arm{rep}", plain, hist, n)
    _outer_end(b)
    return b.build()


def build_pgpdec(dataset: str = "test", seed: int = 0) -> Program:
    """Decrypt: modular rounds + bit unpacking of the armored stream."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 64
    sbox = b.data("sbox", noise_words(161 + offset, 1024, bits=32))
    armored = b.data("armored", noise_words(162 + offset, n // 4 + 4, bits=31))
    fields = b.zeros("fields", n)
    out = b.zeros("out", n)
    _outer(b)
    for rep in range(REPLICAS):
        kernels.modmul_rounds(b, f"rsa{rep}", sbox, 64,
                              0x7654321 + rep, 2147481359)
        kernels.bitunpack(b, f"b64{rep}", armored, fields, n // 4)
        kernels.memcpy_words(b, f"out{rep}", fields, out, n)
    _outer_end(b)
    return b.build()

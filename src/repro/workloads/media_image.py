"""Image-category Mediabench stand-ins: cjpeg, djpeg, epicenc, epicdec.

Each builder returns a µRISC :class:`Program` whose dynamic stream mixes
the kernels the real benchmark spends its time in.  An outer frame loop
repeats the kernel sequence; the functional executor's instruction cap
sets the run length (the paper ran Mediabench to completion; we run the
same steady-state loops, shorter).

Every stand-in instantiates its kernel pipeline :data:`REPLICAS` times
with distinct code (real codecs process multiple colour components /
subbands / subframes through separately inlined paths), so the static
footprint is Table-2-like — around a thousand instructions — and small
value-predictor tables alias realistically (Figure 5).
"""

from __future__ import annotations

from ..isa.program import Program, ProgramBuilder
from . import kernels
from .datagen import image_words, noise_words, ramp_words

__all__ = ["build_cjpeg", "build_djpeg", "build_epicenc", "build_epicdec",
           "REPLICAS"]

_OUTER_REPS = 1_000_000  # effectively unbounded; the executor cap ends runs

#: Pipeline instantiations per benchmark (distinct static code).
REPLICAS = 8

#: Input datasets: like Mediabench's per-benchmark input files, each
#: stand-in can run a second, differently seeded (and slightly larger)
#: input to check input sensitivity.
DATASET_OFFSETS = {"test": 0, "train": 5000}


#: Seed stride: far above any dataset offset, so (dataset, seed) pairs
#: never collide in the generators' seed space.
_SEED_STRIDE = 100_003


def _dataset_offset(dataset: str, seed: int = 0) -> int:
    try:
        return DATASET_OFFSETS[dataset] + seed * _SEED_STRIDE
    except KeyError:
        raise KeyError(f"unknown dataset {dataset!r}; choose from "
                       f"{sorted(DATASET_OFFSETS)}") from None


def _outer_loop_begin(b: ProgramBuilder) -> None:
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER_REPS)
    b.label("main")


def _outer_loop_end(b: ProgramBuilder) -> None:
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")


def build_cjpeg(dataset: str = "test", seed: int = 0) -> Program:
    """JPEG encode: color convert -> 8-pt transform -> quantize -> entropy."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 64
    pixels = b.data("pixels", image_words(101 + offset, 3 * n))
    luma = b.zeros("luma", n)
    coef = b.zeros("coef", n)
    qcoef = b.zeros("qcoef", n)
    rtable = b.data("rtable", [16384 // ((i % 15) + 2)
                               for i in range(16)])
    hist = b.zeros("hist", 8)
    _outer_loop_begin(b)
    for rep in range(REPLICAS):
        kernels.color_convert(b, f"cc{rep}", pixels, luma, n)
        kernels.dct8_blocks(b, f"dct{rep}", luma, coef, n // 8)
        kernels.quantize(b, f"qz{rep}", coef, rtable, qcoef, n, 16)
        kernels.huffman_scan(b, f"hf{rep}", qcoef, hist, n)
    _outer_loop_end(b)
    return b.build()


def build_djpeg(dataset: str = "test", seed: int = 0) -> Program:
    """JPEG decode: entropy scan -> dequantize -> inverse transform -> copy."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 64
    coded = b.data("coded", noise_words(202 + offset, n, bits=8))
    coef = b.zeros("coef", n)
    pix = b.zeros("pix", n)
    out = b.zeros("out", n)
    qtable = b.data("qtable", [(i % 13) + 2 for i in range(16)])
    hist = b.zeros("hist", 8)
    _outer_loop_begin(b)
    for rep in range(REPLICAS):
        kernels.huffman_scan(b, f"hf{rep}", coded, hist, n)
        kernels.dequantize(b, f"dq{rep}", coded, qtable, coef, n, 16)
        kernels.dct8_blocks(b, f"idct{rep}", coef, pix, n // 8)
        kernels.memcpy_words(b, f"out{rep}", pix, out, n)
    _outer_loop_end(b)
    return b.build()


def build_epicenc(dataset: str = "test", seed: int = 0) -> Program:
    """EPIC encode: wavelet-ish filter bank -> quantize -> entropy model."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 64
    img = b.data("img", image_words(303 + offset, n + 24))
    lo = b.zeros("lo", n)
    hi = b.zeros("hi", n)
    q = b.zeros("q", n)
    taps = b.data("taps", [3, -9, 16, 38, 16, -9, 3, 1])
    rtable = b.data("rtable", [16384 // ((i % 11) + 3)
                               for i in range(16)])
    hist = b.zeros("hist", 64)
    _outer_loop_begin(b)
    for rep in range(REPLICAS):
        kernels.fir_filter(b, f"lo{rep}", img, taps, lo, n, 8)
        kernels.iir_biquad(b, f"hi{rep}", img, hi, n, 19, -13, 7)
        kernels.quantize(b, f"qz{rep}", lo, rtable, q, n, 16)
        kernels.histogram(b, f"hg{rep}", q, hist, n)
    _outer_loop_end(b)
    return b.build()


def build_epicdec(dataset: str = "test", seed: int = 0) -> Program:
    """EPIC decode: bit unpacking -> dequantize -> synthesis filter."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 64
    packed = b.data("packed", noise_words(404 + offset, n // 4 + 4, bits=31))
    fields = b.zeros("fields", n)
    coef = b.zeros("coef", n)
    recon = b.zeros("recon", n)
    qtable = b.data("qtable", [(i % 9) + 2 for i in range(16)])
    taps = b.data("taps", ramp_words(1, 16))
    _outer_loop_begin(b)
    for rep in range(REPLICAS):
        kernels.bitunpack(b, f"bu{rep}", packed, fields, n // 4)
        kernels.dequantize(b, f"dq{rep}", fields, qtable, coef, n, 16)
        kernels.fir_filter(b, f"syn{rep}", coef, taps, recon, n - 8, 8)
    _outer_loop_end(b)
    return b.build()

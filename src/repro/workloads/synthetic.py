"""Parametric microbenchmarks for unit tests and ablations.

These isolate one microarchitectural behaviour each: serial dependence
chains (no ILP), independent chains (pure ILP), predictable vs
unpredictable value streams, branchy code, and memory streaming.  The
core's unit tests use them to pin down latencies and the steering
tests use them to force known communication patterns.
"""

from __future__ import annotations

from ..isa.program import Program, ProgramBuilder
from .datagen import noise_words, ramp_words

__all__ = ["serial_chain", "parallel_chains", "counted_loop",
           "strided_stream", "random_branches", "store_load_pairs",
           "fp_chain"]

_OUTER = 1_000_000


def serial_chain(length: int = 64) -> Program:
    """One long add chain repeated forever — IPC should approach 1."""
    b = ProgramBuilder()
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER)
    b.emit("li", "r8", 1)
    b.label("main")
    for _ in range(length):
        b.emit("add", "r8", "r8", "r8")
    b.emit("andi", "r8", "r8", 1023)
    b.emit("addi", "r8", "r8", 1)
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")
    return b.build()


def parallel_chains(chains: int = 8, length: int = 16) -> Program:
    """*chains* independent add chains — IPC should approach the width."""
    if chains > 20:
        raise ValueError("at most 20 chains (register budget)")
    b = ProgramBuilder()
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER)
    for c in range(chains):
        b.emit("li", f"r{8 + c}", c + 1)
    b.label("main")
    for _ in range(length):
        for c in range(chains):
            reg = f"r{8 + c}"
            b.emit("add", reg, reg, reg)
    for c in range(chains):
        b.emit("andi", f"r{8 + c}", f"r{8 + c}", 255)
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")
    return b.build()


def counted_loop(body_adds: int = 4) -> Program:
    """A trivially predictable counted loop (stride-friendly values)."""
    b = ProgramBuilder()
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER)
    b.emit("li", "r8", 0)
    b.label("main")
    for i in range(body_adds):
        b.emit("addi", f"r{9 + i}", "r1", i)
    b.emit("add", "r8", "r8", "r1")
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")
    return b.build()


def strided_stream(nwords: int = 1024) -> Program:
    """Streaming loads over a cyclic buffer — cache and stride behaviour."""
    b = ProgramBuilder()
    base = b.data("buf", ramp_words(0, nwords))
    end = base + 4 * nwords
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER)
    b.emit("li", "r8", base)
    b.emit("li", "r9", end)
    b.emit("li", "r10", 0)
    b.label("main")
    b.emit("lw", "r11", "r8", 0)
    b.emit("add", "r10", "r10", "r11")
    b.emit("addi", "r8", "r8", 4)
    b.emit("blt", "r8", "r9", "skip")
    b.emit("li", "r8", base)
    b.label("skip")
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")
    return b.build()


def random_branches(nvalues: int = 1024) -> Program:
    """Branches on pseudo-random data — stresses the branch predictor."""
    b = ProgramBuilder()
    base = b.data("vals", noise_words(171, nvalues, bits=8))
    end = base + 4 * nvalues
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER)
    b.emit("li", "r8", base)
    b.emit("li", "r10", 0)
    b.emit("li", "r11", 0)
    b.emit("li", "r9", end)
    b.label("main")
    b.emit("lw", "r12", "r8", 0)
    b.emit("andi", "r13", "r12", 1)
    b.emit("beq", "r13", "r0", "even")
    b.emit("addi", "r10", "r10", 1)
    b.emit("j", "next")
    b.label("even")
    b.emit("addi", "r11", "r11", 1)
    b.label("next")
    b.emit("addi", "r8", "r8", 4)
    b.emit("blt", "r8", "r9", "cont")
    b.emit("li", "r8", base)
    b.label("cont")
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")
    return b.build()


def store_load_pairs(nwords: int = 256) -> Program:
    """Store-then-load at the same address — forwarding/disambiguation."""
    b = ProgramBuilder()
    base = b.data("buf", ramp_words(0, nwords))
    end = base + 4 * nwords
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER)
    b.emit("li", "r8", base)
    b.emit("li", "r9", end)
    b.label("main")
    b.emit("lw", "r10", "r8", 0)
    b.emit("addi", "r10", "r10", 3)
    b.emit("sw", "r10", "r8", 0)
    b.emit("lw", "r11", "r8", 0)
    b.emit("add", "r12", "r11", "r10")
    b.emit("addi", "r8", "r8", 4)
    b.emit("blt", "r8", "r9", "skip")
    b.emit("li", "r8", base)
    b.label("skip")
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")
    return b.build()


def fp_chain(length: int = 16) -> Program:
    """A serial fp add chain — exercises the fp side and never benefits
    from value prediction (fp operands are not predicted).

    The accumulator carries across iterations, so the chain stays serial
    through the whole run (no inter-iteration overlap).
    """
    b = ProgramBuilder()
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER)
    b.emit("li", "r8", 3)
    b.emit("cvtif", "f8", "r8")
    b.emit("li", "r8", 1)
    b.emit("cvtif", "f9", "r8")
    b.label("main")
    for _ in range(length):
        b.emit("fadd", "f9", "f9", "f8")
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")
    return b.build()

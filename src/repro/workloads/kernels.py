"""Reusable µRISC kernels for the synthetic Mediabench stand-ins.

Each kernel emits one loop nest into a :class:`ProgramBuilder`.  They are
the building blocks real media code is made of: filters, block
transforms, quantizers, entropy-coder scans, color conversions, motion
search, fp texture/vertex math, modular-arithmetic crypto rounds and
ADPCM step logic.

Register convention (documented contract, enforced by code review and
the kernel unit tests):

* kernels may clobber ``r8``–``r31`` and ``f8``–``f31``;
* benchmark outer-loop state lives in ``r1``–``r7`` / ``f1``–``f7`` and
  is never touched by kernels;
* every label a kernel defines is prefixed with its ``tag`` argument,
  so a kernel can be instantiated any number of times per program.

All array arguments are *addresses* (as returned by
``ProgramBuilder.data``); element sizes are 4 bytes for integer data and
8 bytes for fp data.
"""

from __future__ import annotations

from ..isa.program import ProgramBuilder

__all__ = [
    "fir_filter", "iir_biquad", "dct8_blocks", "quantize", "dequantize",
    "huffman_scan", "color_convert", "sad_motion", "memcpy_words",
    "histogram", "bitunpack", "modmul_rounds", "adpcm_decode",
    "texture_lerp", "vertex_transform", "fp_poly_eval",
]


def fir_filter(b: ProgramBuilder, tag: str, src: int, coef: int, dst: int,
               n: int, taps: int) -> None:
    """``dst[i] = sum_j src[i+j] * coef[j]`` — the canonical audio kernel.

    Emitted the way an optimizing compiler (the paper used Compaq cc
    -O4) emits a short-order FIR: the loop-invariant coefficients are
    hoisted into registers before the sample loop and the tap loop is
    fully unrolled.  Register-resident loop invariants are the classic
    value-prediction win: any remote read of them is a stride-0,
    always-correct prediction, so the wire crossing vanishes (§2.2).

    ``taps`` may be at most 8 (the register budget r24..r31).
    """
    if not 1 <= taps <= 8:
        raise ValueError("fir_filter supports 1..8 register-resident taps")
    # Hoist the coefficients.
    b.emit("li", "r11", coef)
    for j in range(taps):
        b.emit("lw", f"r{24 + j}", "r11", 4 * j)
    b.emit("li", "r8", 0)          # i
    b.emit("li", "r9", src)        # &src[i]
    b.emit("li", "r16", dst)       # &dst[i]
    b.emit("li", "r19", n)
    b.label(f"{tag}_i")
    # Unrolled multiply-accumulate tree over the tap registers.
    b.emit("lw", "r12", "r9", 0)
    b.emit("mul", "r10", "r12", "r24")
    for j in range(1, taps):
        b.emit("lw", "r12", "r9", 4 * j)
        b.emit("mul", "r13", "r12", f"r{24 + j}")
        b.emit("add", "r10", "r10", "r13")
    b.emit("srai", "r10", "r10", 6)
    b.emit("sw", "r10", "r16", 0)
    b.emit("addi", "r16", "r16", 4)
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r19", f"{tag}_i")


def iir_biquad(b: ProgramBuilder, tag: str, src: int, dst: int,
               n: int, b0: int, b1: int, a1: int) -> None:
    """A first-order IIR section in fixed point — a *serial* recurrence.

    ``y = (b0*x + b1*x1 - a1*y1) >> 8`` with the state carried across
    iterations: the loop-carried dependence limits ILP, the way vocoder
    filters do.
    """
    b.emit("li", "r8", 0)          # i
    b.emit("li", "r9", src)
    b.emit("li", "r10", dst)
    b.emit("li", "r11", 0)         # x1
    b.emit("li", "r12", 0)         # y1
    b.emit("li", "r20", b0)
    b.emit("li", "r21", b1)
    b.emit("li", "r22", a1)
    b.emit("li", "r23", n)
    b.label(f"{tag}_loop")
    b.emit("lw", "r13", "r9", 0)           # x
    b.emit("mul", "r14", "r13", "r20")
    b.emit("mul", "r15", "r11", "r21")
    b.emit("mul", "r16", "r12", "r22")
    b.emit("add", "r17", "r14", "r15")
    b.emit("sub", "r17", "r17", "r16")
    b.emit("srai", "r17", "r17", 8)        # y
    b.emit("sw", "r17", "r10", 0)
    b.emit("mov", "r11", "r13")            # x1 = x
    b.emit("mov", "r12", "r17")            # y1 = y
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r10", "r10", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r23", f"{tag}_loop")


def dct8_blocks(b: ProgramBuilder, tag: str, src: int, dst: int,
                nblocks: int) -> None:
    """8-point butterfly transform per block — the JPEG/MPEG workhorse.

    Wide, shallow dependence trees over eight loaded values: high ILP,
    block-strided addresses.
    """
    b.emit("li", "r8", 0)          # block index
    b.emit("li", "r9", src)
    b.emit("li", "r10", dst)
    b.emit("li", "r28", 181)       # ~ sqrt(2)/2 in Q8
    b.emit("li", "r26", nblocks)
    b.label(f"{tag}_blk")
    b.emit("lw", "r11", "r9", 0)
    b.emit("lw", "r12", "r9", 4)
    b.emit("lw", "r13", "r9", 8)
    b.emit("lw", "r14", "r9", 12)
    b.emit("lw", "r15", "r9", 16)
    b.emit("lw", "r16", "r9", 20)
    b.emit("lw", "r17", "r9", 24)
    b.emit("lw", "r18", "r9", 28)
    # stage 1 butterflies
    b.emit("add", "r19", "r11", "r18")
    b.emit("sub", "r20", "r11", "r18")
    b.emit("add", "r21", "r12", "r17")
    b.emit("sub", "r22", "r12", "r17")
    b.emit("add", "r23", "r13", "r16")
    b.emit("sub", "r24", "r13", "r16")
    b.emit("add", "r25", "r14", "r15")
    b.emit("sub", "r27", "r14", "r15")
    # stage 2
    b.emit("add", "r11", "r19", "r25")
    b.emit("sub", "r12", "r19", "r25")
    b.emit("add", "r13", "r21", "r23")
    b.emit("sub", "r14", "r21", "r23")
    b.emit("mul", "r15", "r22", "r28")
    b.emit("srai", "r15", "r15", 8)
    b.emit("mul", "r16", "r24", "r28")
    b.emit("srai", "r16", "r16", 8)
    b.emit("add", "r17", "r20", "r15")
    b.emit("sub", "r18", "r20", "r15")
    # stage 3 + store
    b.emit("add", "r19", "r11", "r13")
    b.emit("sub", "r21", "r11", "r13")
    b.emit("add", "r23", "r17", "r16")
    b.emit("sub", "r25", "r17", "r16")
    b.emit("sw", "r19", "r10", 0)
    b.emit("sw", "r21", "r10", 4)
    b.emit("sw", "r23", "r10", 8)
    b.emit("sw", "r25", "r10", 12)
    b.emit("sw", "r12", "r10", 16)
    b.emit("sw", "r14", "r10", 20)
    b.emit("sw", "r18", "r10", 24)
    b.emit("sw", "r27", "r10", 28)
    b.emit("addi", "r9", "r9", 32)
    b.emit("addi", "r10", "r10", 32)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_blk")


def quantize(b: ProgramBuilder, tag: str, src: int, rtable: int, dst: int,
             n: int, qlen: int) -> None:
    """``dst[i] = src[i] * recip[i % qlen] >> 14`` — reciprocal quantize.

    Optimizing compilers (the paper used Compaq cc -O4) turn the JPEG
    quantizer's constant divides into reciprocal multiplies; *rtable*
    holds ``16384 // qstep`` entries.
    """
    b.emit("li", "r8", 0)
    b.emit("li", "r9", src)
    b.emit("li", "r10", dst)
    b.emit("li", "r13", rtable)
    b.emit("li", "r12", rtable + 4 * qlen)  # table end
    b.emit("li", "r26", n)
    b.label(f"{tag}_loop")
    b.emit("lw", "r14", "r9", 0)
    b.emit("lw", "r15", "r13", 0)
    b.emit("mul", "r16", "r14", "r15")
    b.emit("srai", "r16", "r16", 14)
    b.emit("sw", "r16", "r10", 0)
    b.emit("addi", "r13", "r13", 4)
    b.emit("blt", "r13", "r12", f"{tag}_nowrap")
    b.emit("li", "r13", rtable)
    b.label(f"{tag}_nowrap")
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r10", "r10", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def quantize_div(b: ProgramBuilder, tag: str, src: int, qtable: int,
                 dst: int, n: int, qlen: int) -> None:
    """``dst[i] = src[i] / q[i % qlen]`` with real (non-pipelined) divides.

    Used where the original code genuinely divides by variable steps
    (G.721's adaptive quantizer); the long-latency divides throttle the
    back end the way the real codec's do.
    """
    b.emit("li", "r8", 0)
    b.emit("li", "r9", src)
    b.emit("li", "r10", dst)
    b.emit("li", "r13", qtable)
    b.emit("li", "r12", qtable + 4 * qlen)
    b.emit("li", "r26", n)
    b.label(f"{tag}_loop")
    b.emit("lw", "r14", "r9", 0)
    b.emit("lw", "r15", "r13", 0)
    b.emit("div", "r16", "r14", "r15")
    b.emit("sw", "r16", "r10", 0)
    b.emit("addi", "r13", "r13", 4)
    b.emit("blt", "r13", "r12", f"{tag}_nowrap")
    b.emit("li", "r13", qtable)
    b.label(f"{tag}_nowrap")
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r10", "r10", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def dequantize(b: ProgramBuilder, tag: str, src: int, qtable: int, dst: int,
               n: int, qlen: int) -> None:
    """``dst[i] = src[i] * q[i % qlen]`` — the decode-side multiply."""
    b.emit("li", "r8", 0)
    b.emit("li", "r9", src)
    b.emit("li", "r10", dst)
    b.emit("li", "r13", qtable)
    b.emit("li", "r12", qtable + 4 * qlen)
    b.emit("li", "r26", n)
    b.label(f"{tag}_loop")
    b.emit("lw", "r14", "r9", 0)
    b.emit("lw", "r15", "r13", 0)
    b.emit("mul", "r16", "r14", "r15")
    b.emit("sw", "r16", "r10", 0)
    b.emit("addi", "r13", "r13", 4)
    b.emit("blt", "r13", "r12", f"{tag}_nowrap")
    b.emit("li", "r13", qtable)
    b.label(f"{tag}_nowrap")
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r10", "r10", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def huffman_scan(b: ProgramBuilder, tag: str, src: int, hist: int,
                 n: int) -> None:
    """Entropy-coder style scan: magnitude-class branches + bit buffer.

    Data-dependent branches (hard for the branch predictor on random
    data) and a serial shift-or chain through the bit buffer, plus a
    histogram update with data-dependent addresses.
    """
    b.emit("li", "r8", 0)
    b.emit("li", "r9", src)
    b.emit("li", "r20", 0)          # bit buffer
    b.emit("li", "r21", 0)          # total bits
    b.emit("li", "r26", n)
    b.label(f"{tag}_loop")
    b.emit("lw", "r10", "r9", 0)
    # branchless |v| (Alpha-style cmov idiom), clamped to 10 bits
    b.emit("sub", "r11", "r0", "r10")
    b.emit("max", "r10", "r10", "r11")
    b.emit("li", "r11", 1023)
    b.emit("min", "r10", "r10", "r11")
    b.emit("li", "r11", 16)
    b.emit("blt", "r10", "r11", f"{tag}_c0")
    b.emit("li", "r11", 64)
    b.emit("blt", "r10", "r11", f"{tag}_c1")
    b.emit("li", "r11", 128)
    b.emit("blt", "r10", "r11", f"{tag}_c2")
    b.emit("li", "r12", 10)         # class 3: 10 bits
    b.emit("li", "r13", 3)
    b.emit("j", f"{tag}_emit")
    b.label(f"{tag}_c2")
    b.emit("li", "r12", 8)
    b.emit("li", "r13", 2)
    b.emit("j", f"{tag}_emit")
    b.label(f"{tag}_c1")
    b.emit("li", "r12", 6)
    b.emit("li", "r13", 1)
    b.emit("j", f"{tag}_emit")
    b.label(f"{tag}_c0")
    b.emit("li", "r12", 4)
    b.emit("li", "r13", 0)
    b.label(f"{tag}_emit")
    b.emit("sll", "r20", "r20", "r12")
    b.emit("or", "r20", "r20", "r13")
    b.emit("add", "r21", "r21", "r12")
    # histogram[class]++
    b.emit("slli", "r14", "r13", 2)
    b.emit("li", "r15", hist)
    b.emit("add", "r14", "r14", "r15")
    b.emit("lw", "r16", "r14", 0)
    b.emit("addi", "r16", "r16", 1)
    b.emit("sw", "r16", "r14", 0)
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def color_convert(b: ProgramBuilder, tag: str, src: int, dst: int,
                  npixels: int) -> None:
    """RGB -> luma conversion: three loads, constant multiplies, shift."""
    b.emit("li", "r8", 0)
    b.emit("li", "r9", src)
    b.emit("li", "r10", dst)
    b.emit("li", "r20", 66)
    b.emit("li", "r21", 129)
    b.emit("li", "r22", 25)
    b.emit("li", "r26", npixels)
    b.label(f"{tag}_loop")
    b.emit("lw", "r11", "r9", 0)
    b.emit("lw", "r12", "r9", 4)
    b.emit("lw", "r13", "r9", 8)
    b.emit("mul", "r14", "r11", "r20")
    b.emit("mul", "r15", "r12", "r21")
    b.emit("mul", "r16", "r13", "r22")
    b.emit("add", "r17", "r14", "r15")
    b.emit("add", "r17", "r17", "r16")
    b.emit("addi", "r17", "r17", 4096)
    b.emit("srai", "r17", "r17", 8)
    b.emit("sw", "r17", "r10", 0)
    b.emit("addi", "r9", "r9", 12)
    b.emit("addi", "r10", "r10", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def sad_motion(b: ProgramBuilder, tag: str, ref: int, cur: int,
               n: int) -> None:
    """Sum-of-absolute-differences (branchless abs, early-out branch).

    The per-element abs uses the compiler's cmov idiom; a periodic
    early-out test every 16 elements keeps the data-dependent branch a
    real SAD search has.
    """
    b.emit("li", "r8", 0)
    b.emit("li", "r9", ref)
    b.emit("li", "r10", cur)
    b.emit("li", "r11", 0)          # sad
    b.emit("li", "r25", 1 << 20)    # early-out threshold (never taken here)
    b.emit("li", "r26", n)
    b.label(f"{tag}_loop")
    b.emit("lw", "r12", "r9", 0)
    b.emit("lw", "r13", "r10", 0)
    b.emit("sub", "r14", "r12", "r13")
    b.emit("sub", "r15", "r13", "r12")
    b.emit("max", "r14", "r14", "r15")
    b.emit("add", "r11", "r11", "r14")
    b.emit("andi", "r16", "r8", 15)
    b.emit("bne", "r16", "r0", f"{tag}_noexit")
    b.emit("bge", "r11", "r25", f"{tag}_done")
    b.label(f"{tag}_noexit")
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r10", "r10", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")
    b.label(f"{tag}_done")


def memcpy_words(b: ProgramBuilder, tag: str, src: int, dst: int,
                 nwords: int) -> None:
    """Word copy, unrolled by two — pure streaming loads/stores."""
    pairs = nwords // 2
    b.emit("li", "r8", 0)
    b.emit("li", "r9", src)
    b.emit("li", "r10", dst)
    b.emit("li", "r26", pairs)
    b.label(f"{tag}_loop")
    b.emit("lw", "r11", "r9", 0)
    b.emit("lw", "r12", "r9", 4)
    b.emit("sw", "r11", "r10", 0)
    b.emit("sw", "r12", "r10", 4)
    b.emit("addi", "r9", "r9", 8)
    b.emit("addi", "r10", "r10", 8)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def histogram(b: ProgramBuilder, tag: str, src: int, hist: int, n: int,
              buckets: int = 64) -> None:
    """Bucket counting — data-dependent load/store addresses."""
    mask = buckets - 1
    b.emit("li", "r8", 0)
    b.emit("li", "r9", src)
    b.emit("li", "r15", hist)
    b.emit("li", "r26", n)
    b.label(f"{tag}_loop")
    b.emit("lw", "r10", "r9", 0)
    b.emit("andi", "r11", "r10", mask)
    b.emit("slli", "r11", "r11", 2)
    b.emit("add", "r11", "r11", "r15")
    b.emit("lw", "r12", "r11", 0)
    b.emit("addi", "r12", "r12", 1)
    b.emit("sw", "r12", "r11", 0)
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def bitunpack(b: ProgramBuilder, tag: str, src: int, dst: int,
              nwords: int) -> None:
    """Unpack four 8-bit fields from each word — shift/mask ILP."""
    b.emit("li", "r8", 0)
    b.emit("li", "r9", src)
    b.emit("li", "r10", dst)
    b.emit("li", "r26", nwords)
    b.label(f"{tag}_loop")
    b.emit("lw", "r11", "r9", 0)
    b.emit("andi", "r12", "r11", 255)
    b.emit("srli", "r13", "r11", 8)
    b.emit("andi", "r13", "r13", 255)
    b.emit("srli", "r14", "r11", 16)
    b.emit("andi", "r14", "r14", 255)
    b.emit("srli", "r15", "r11", 24)
    b.emit("andi", "r15", "r15", 255)
    b.emit("sw", "r12", "r10", 0)
    b.emit("sw", "r13", "r10", 4)
    b.emit("sw", "r14", "r10", 8)
    b.emit("sw", "r15", "r10", 12)
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r10", "r10", 16)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def modmul_rounds(b: ProgramBuilder, tag: str, sbox: int, rounds: int,
                  seed: int, modulus: int, sbox_mask: int = 1023) -> None:
    """Crypto-style Montgomery-multiply rounds plus S-box lookups.

    Two interleaved residue streams (optimized bignum code keeps several
    limbs in flight), each a serial multiply/shift reduction chain with
    *unpredictable* values and data-dependent load addresses — the
    anti-stride workload (PGP stand-in).
    """
    b.emit("li", "r8", 0)
    b.emit("li", "r9", seed)          # stream x
    b.emit("li", "r19", seed ^ 0x5A5A5A)  # stream y
    b.emit("li", "r20", 1103515245)   # multiplier a
    b.emit("li", "r21", 0x9E3779B9)   # n' (Montgomery magic)
    b.emit("li", "r22", modulus)
    b.emit("li", "r23", sbox)
    b.emit("li", "r24", 0)            # digest
    b.emit("li", "r25", 0xFFFF)
    b.emit("li", "r26", rounds)
    b.label(f"{tag}_loop")
    # stream x: t = (x * n') & 0xffff; x = (x*a + t*m) >> 16
    b.emit("mul", "r10", "r9", "r20")
    b.emit("mul", "r11", "r9", "r21")
    b.emit("and", "r11", "r11", "r25")
    b.emit("mul", "r11", "r11", "r22")
    b.emit("add", "r10", "r10", "r11")
    b.emit("srai", "r9", "r10", 16)
    # stream y, same recurrence, independent
    b.emit("mul", "r12", "r19", "r20")
    b.emit("mul", "r13", "r19", "r21")
    b.emit("and", "r13", "r13", "r25")
    b.emit("mul", "r13", "r13", "r22")
    b.emit("add", "r12", "r12", "r13")
    b.emit("srai", "r19", "r12", 16)
    # S-box mix with data-dependent addresses
    b.emit("andi", "r14", "r9", sbox_mask)
    b.emit("slli", "r14", "r14", 2)
    b.emit("add", "r14", "r14", "r23")
    b.emit("lw", "r15", "r14", 0)
    b.emit("xor", "r24", "r24", "r15")
    b.emit("xor", "r9", "r9", "r19")
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def adpcm_decode(b: ProgramBuilder, tag: str, codes: int, steps: int,
                 dst: int, n: int, nsteps: int = 89) -> None:
    """ADPCM decode: step-table walk with clamping — serial and branchy.

    The real ``rawcaudio`` benchmark is exactly this loop.
    """
    b.emit("li", "r8", 0)
    b.emit("li", "r9", codes)
    b.emit("li", "r10", dst)
    b.emit("li", "r11", 0)          # predicted value
    b.emit("li", "r12", 0)          # step index
    b.emit("li", "r22", steps)
    b.emit("li", "r23", nsteps - 1)
    b.emit("li", "r26", n)
    b.label(f"{tag}_loop")
    b.emit("lw", "r13", "r9", 0)            # 4-bit code
    b.emit("andi", "r13", "r13", 15)
    # step = steps[index]
    b.emit("slli", "r14", "r12", 2)
    b.emit("add", "r14", "r14", "r22")
    b.emit("lw", "r15", "r14", 0)
    # diff = step * (code & 7) / 4 + step/8
    b.emit("andi", "r16", "r13", 7)
    b.emit("mul", "r17", "r15", "r16")
    b.emit("srai", "r17", "r17", 2)
    b.emit("srai", "r18", "r15", 3)
    b.emit("add", "r17", "r17", "r18")
    # sign bit
    b.emit("andi", "r19", "r13", 8)
    b.emit("beq", "r19", "r0", f"{tag}_plus")
    b.emit("sub", "r11", "r11", "r17")
    b.emit("j", f"{tag}_upd")
    b.label(f"{tag}_plus")
    b.emit("add", "r11", "r11", "r17")
    b.label(f"{tag}_upd")
    # clamp predicted value to 16 bits
    b.emit("li", "r20", 32767)
    b.emit("min", "r11", "r11", "r20")
    b.emit("li", "r20", -32768)
    b.emit("max", "r11", "r11", "r20")
    # index += indexdelta(code); clamp to [0, nsteps)
    b.emit("andi", "r21", "r13", 7)
    b.emit("addi", "r21", "r21", -3)
    b.emit("add", "r12", "r12", "r21")
    b.emit("max", "r12", "r12", "r0")
    b.emit("min", "r12", "r12", "r23")
    b.emit("sw", "r11", "r10", 0)
    b.emit("addi", "r9", "r9", 4)
    b.emit("addi", "r10", "r10", 4)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def texture_lerp(b: ProgramBuilder, tag: str, texels: int, dst: int,
                 n: int) -> None:
    """Bilinear texture filtering — fp multiplies and adds (3D kernels).

    FP operands are never value-predicted, so this kernel forces real
    inter-cluster communications even under perfect prediction (§3.3).
    """
    b.emit("li", "r8", 0)
    b.emit("li", "r9", texels)
    b.emit("li", "r10", dst)
    b.emit("li", "r26", n)
    # weights drift a little every pixel
    b.emit("li", "r11", 3)
    b.emit("cvtif", "f8", "r11")
    b.emit("li", "r11", 13)
    b.emit("cvtif", "f9", "r11")
    b.emit("fdiv", "f8", "f8", "f9")       # w ~ 0.23
    b.emit("li", "r11", 1)
    b.emit("cvtif", "f10", "r11")
    b.emit("fsub", "f11", "f10", "f8")     # 1 - w
    b.label(f"{tag}_loop")
    b.emit("flw", "f12", "r9", 0)
    b.emit("flw", "f13", "r9", 8)
    b.emit("flw", "f14", "r9", 16)
    b.emit("flw", "f15", "r9", 24)
    b.emit("fmul", "f16", "f12", "f8")
    b.emit("fmul", "f17", "f13", "f11")
    b.emit("fadd", "f16", "f16", "f17")
    b.emit("fmul", "f18", "f14", "f8")
    b.emit("fmul", "f19", "f15", "f11")
    b.emit("fadd", "f18", "f18", "f19")
    b.emit("fadd", "f20", "f16", "f18")
    b.emit("fsw", "f20", "r10", 0)
    b.emit("addi", "r9", "r9", 32)
    b.emit("addi", "r10", "r10", 8)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def vertex_transform(b: ProgramBuilder, tag: str, verts: int, matrix: int,
                     dst: int, n: int) -> None:
    """3x3 matrix * vertex — the geometry stage of the Mesa stand-ins."""
    # Load the matrix once (f16..f24).
    b.emit("li", "r11", matrix)
    for i in range(9):
        b.emit("flw", f"f{16 + i}", "r11", 8 * i)
    b.emit("li", "r8", 0)
    b.emit("li", "r9", verts)
    b.emit("li", "r10", dst)
    b.emit("li", "r26", n)
    b.label(f"{tag}_loop")
    b.emit("flw", "f8", "r9", 0)
    b.emit("flw", "f9", "r9", 8)
    b.emit("flw", "f10", "r9", 16)
    for row in range(3):
        m0, m1, m2 = 16 + 3 * row, 17 + 3 * row, 18 + 3 * row
        b.emit("fmul", "f11", "f8", f"f{m0}")
        b.emit("fmul", "f12", "f9", f"f{m1}")
        b.emit("fmul", "f13", "f10", f"f{m2}")
        b.emit("fadd", "f11", "f11", "f12")
        b.emit("fadd", "f11", "f11", "f13")
        b.emit("fsw", "f11", "r10", 8 * row)
    b.emit("addi", "r9", "r9", 24)
    b.emit("addi", "r10", "r10", 24)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")


def fp_poly_eval(b: ProgramBuilder, tag: str, src: int, dst: int,
                 n: int) -> None:
    """Horner polynomial over fp inputs — rasta's log/spectral math."""
    b.emit("li", "r8", 0)
    b.emit("li", "r9", src)
    b.emit("li", "r10", dst)
    b.emit("li", "r26", n)
    b.emit("li", "r11", 7)
    b.emit("cvtif", "f8", "r11")           # c3
    b.emit("li", "r11", -5)
    b.emit("cvtif", "f9", "r11")           # c2
    b.emit("li", "r11", 3)
    b.emit("cvtif", "f10", "r11")          # c1
    b.emit("li", "r11", 1)
    b.emit("cvtif", "f11", "r11")          # c0
    b.label(f"{tag}_loop")
    b.emit("flw", "f12", "r9", 0)
    b.emit("fmul", "f13", "f8", "f12")
    b.emit("fadd", "f13", "f13", "f9")
    b.emit("fmul", "f13", "f13", "f12")
    b.emit("fadd", "f13", "f13", "f10")
    b.emit("fmul", "f13", "f13", "f12")
    b.emit("fadd", "f13", "f13", "f11")
    b.emit("fsw", "f13", "r10", 0)
    b.emit("addi", "r9", "r9", 8)
    b.emit("addi", "r10", "r10", 8)
    b.emit("addi", "r8", "r8", 1)
    b.emit("blt", "r8", "r26", f"{tag}_loop")

"""The workload suite registry (the stand-in for Table 2).

Maps every Mediabench program the paper evaluated to its synthetic
stand-in, with the category and the paper's reported dynamic instruction
count for reference.  :func:`workload_trace` executes a stand-in and
caches the resulting dynamic trace so that the many configurations of a
benchmark sweep replay the *identical* instruction stream.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import WorkloadError
from ..isa.executor import FunctionalExecutor
from ..isa.instruction import DynInst
from ..isa.program import Program
from .media_3d import build_mesamipmap, build_mesaosdemo, build_mesatexgen
from .media_audio import (build_g721enc, build_gsmdec, build_gsmenc,
                          build_rasta, build_rawcaudio)
from .media_crypto import build_pgpdec, build_pgpenc
from .media_image import (build_cjpeg, build_djpeg, build_epicdec,
                          build_epicenc)
from .media_video import build_mpeg2enc

__all__ = ["WorkloadSpec", "SUITE", "workload_names", "build_workload",
           "workload_trace", "workload_trace_iter", "clear_trace_cache",
           "DEFAULT_TRACE_LENGTH", "TRACE_CACHE_MAX"]

#: Default dynamic-trace length for experiments.  The paper ran 6M-440M
#: instructions per benchmark on a C simulator; a Python cycle-level
#: model needs reduced but steady-state-representative runs (every
#: stand-in is periodic well below this length).
DEFAULT_TRACE_LENGTH = 12_000


class WorkloadSpec:
    """One suite entry.

    Attributes:
        name: Mediabench program name (Table 2).
        category: paper's workload category.
        paper_minsts: dynamic instructions (millions) in Table 2.
        builder: callable(dataset="test", seed=0) returning the stand-in
            Program.
    """

    def __init__(self, name: str, category: str, paper_minsts: float,
                 builder: Callable[[], Program]) -> None:
        self.name = name
        self.category = category
        self.paper_minsts = paper_minsts
        self.builder = builder

    def __repr__(self) -> str:
        return f"<WorkloadSpec {self.name} ({self.category})>"


#: Table 2, in paper order.
SUITE: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in [
        WorkloadSpec("cjpeg", "image", 18.8, build_cjpeg),
        WorkloadSpec("djpeg", "image", 6.0, build_djpeg),
        WorkloadSpec("epicdec", "image", 11.1, build_epicdec),
        WorkloadSpec("epicenc", "image", 70.6, build_epicenc),
        WorkloadSpec("g721enc", "audio", 440.6, build_g721enc),
        WorkloadSpec("gsmdec", "audio", 115.1, build_gsmdec),
        WorkloadSpec("gsmenc", "audio", 307.1, build_gsmenc),
        WorkloadSpec("mesamipmap", "3D graphics", 75.2, build_mesamipmap),
        WorkloadSpec("mesaosdemo", "3D graphics", 29.7, build_mesaosdemo),
        WorkloadSpec("mesatexgen", "3D graphics", 129.4, build_mesatexgen),
        WorkloadSpec("mpeg2enc", "video", 222.0, build_mpeg2enc),
        WorkloadSpec("pgpdec", "encryption", 108.6, build_pgpdec),
        WorkloadSpec("pgpenc", "encryption", 130.6, build_pgpenc),
        WorkloadSpec("rasta", "audio", 26.4, build_rasta),
        WorkloadSpec("rawcaudio", "audio", 8.7, build_rawcaudio),
    ]
}


def workload_names() -> List[str]:
    """Suite names in Table 2 order."""
    return list(SUITE.keys())


def build_workload(name: str, dataset: str = "test",
                   seed: int = 0) -> Program:
    """Build the stand-in program for Mediabench benchmark *name*.

    *dataset* selects the input ("test" or "train"), like Mediabench's
    per-benchmark input files (Table 2's testimg.ppm, clinton.pcm, ...).
    *seed* varies the input data deterministically within a dataset
    (seed 0 is the canonical input).  Generation is a pure function of
    (name, dataset, seed) — no global RNG state is consulted — so two
    processes building the same workload always produce the identical
    program.
    """
    try:
        spec = SUITE[name]
    except KeyError:
        raise WorkloadError(f"unknown workload {name!r}; choose from "
                            f"{workload_names()}") from None
    return spec.builder(dataset=dataset, seed=seed)


_trace_cache: Dict[Tuple[str, int, str, int], List[DynInst]] = {}

#: Longest trace :func:`workload_trace` will memoize.  A cached DynInst
#: costs a few hundred bytes; million-instruction traces would pin
#: hundreds of MB per (workload, length) key.  Above this bound the
#: list is still returned, just not retained — and callers running at
#: that scale should be on :func:`workload_trace_iter` or a
#: :class:`~repro.isa.program.Program` anyway.
TRACE_CACHE_MAX = 200_000


def workload_trace(name: str,
                   max_instructions: int = DEFAULT_TRACE_LENGTH,
                   dataset: str = "test", seed: int = 0) -> List[DynInst]:
    """The dynamic trace of *name*, cached per (name, length, dataset,
    seed).

    Reusing the cached list across simulator configurations keeps every
    comparison on the exact same instruction stream, like the paper's
    fixed binaries did.  Traces longer than :data:`TRACE_CACHE_MAX` are
    generated but not memoized; for bounded-memory million-instruction
    runs use :func:`workload_trace_iter`.
    """
    key = (name, max_instructions, dataset, seed)
    trace = _trace_cache.get(key)
    if trace is None:
        program = build_workload(name, dataset=dataset, seed=seed)
        trace = list(FunctionalExecutor(program, max_instructions).run())
        if max_instructions <= TRACE_CACHE_MAX:
            _trace_cache[key] = trace
    return trace


def workload_trace_iter(name: str,
                        max_instructions: int = DEFAULT_TRACE_LENGTH,
                        dataset: str = "test", seed: int = 0):
    """Lazily yield the dynamic trace of *name*, one DynInst at a time.

    The streaming counterpart of :func:`workload_trace` for
    ``length ≥ 1M`` runs: memory stays bounded by the executor's
    architectural state (registers + sparse memory image), never by
    trace length, because instructions are generated on demand and
    dropped once consumed.  Generation is the same pure function of
    (name, dataset, seed), so the stream is bit-identical to the
    cached list's contents.
    """
    program = build_workload(name, dataset=dataset, seed=seed)
    return FunctionalExecutor(program, max_instructions).run()


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    _trace_cache.clear()

"""Audio-category Mediabench stand-ins: g721enc, gsmdec, gsmenc,
rawcaudio, rasta.

The audio codecs are recurrence-heavy (ADPCM predictors, LPC lattices):
their stand-ins lean on the serial IIR and ADPCM kernels.  ``rasta``
adds floating-point spectral math.
"""

from __future__ import annotations

from ..isa.program import Program, ProgramBuilder
from . import kernels
from .datagen import audio_words, float_noise, noise_words, ramp_words

__all__ = ["build_g721enc", "build_gsmdec", "build_gsmenc",
           "build_rawcaudio", "build_rasta", "REPLICAS"]

_OUTER_REPS = 1_000_000

#: Pipeline instantiations per benchmark (distinct static code).
REPLICAS = 8

#: Input datasets: like Mediabench's per-benchmark input files, each
#: stand-in can run a second, differently seeded (and slightly larger)
#: input to check input sensitivity.
DATASET_OFFSETS = {"test": 0, "train": 5000}


#: Seed stride: far above any dataset offset, so (dataset, seed) pairs
#: never collide in the generators' seed space.
_SEED_STRIDE = 100_003


def _dataset_offset(dataset: str, seed: int = 0) -> int:
    try:
        return DATASET_OFFSETS[dataset] + seed * _SEED_STRIDE
    except KeyError:
        raise KeyError(f"unknown dataset {dataset!r}; choose from "
                       f"{sorted(DATASET_OFFSETS)}") from None

#: The IMA ADPCM step table prefix (the real rawcaudio table, truncated
#: to what the kernel indexes).
_STEP_TABLE = [7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28,
               31, 34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107,
               118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
               337, 371, 408, 449, 494, 544, 598, 658, 724, 796, 876,
               963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
               2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
               5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635,
               13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086,
               29794, 32767]


def _outer(b: ProgramBuilder):
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER_REPS)
    b.label("main")


def _outer_end(b: ProgramBuilder):
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")


def build_g721enc(dataset: str = "test", seed: int = 0) -> Program:
    """G.721 ADPCM encode: adaptive predictor + quantizer — very serial."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 80
    samples = b.data("samples", audio_words(505 + offset, n))
    filt = b.zeros("filt", n)
    codes = b.zeros("codes", n)
    steps = b.data("steps", _STEP_TABLE)
    qtable = b.data("qtable", [(i % 7) + 2 for i in range(16)])
    _outer(b)
    for rep in range(REPLICAS):
        kernels.iir_biquad(b, f"pred{rep}", samples, filt, n, 25, -11, 9)
        kernels.quantize_div(b, f"qz{rep}", filt, qtable, codes, n, 16)
        kernels.adpcm_decode(b, f"fb{rep}", codes, steps, filt, n)
    _outer_end(b)
    return b.build()


def build_gsmdec(dataset: str = "test", seed: int = 0) -> Program:
    """GSM full-rate decode: bit unpack -> LTP filter -> synthesis."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 80
    packed = b.data("packed", noise_words(606 + offset, n // 4 + 4, bits=31))
    params = b.zeros("params", n)
    excite = b.zeros("excite", n)
    speech = b.zeros("speech", n)
    taps = b.data("taps", [14, -28, 52, 88, 120, 88, 52, -28,
                           14, 6, -3, 2, -1, 1, 1, 1])
    _outer(b)
    for rep in range(REPLICAS):   # GSM processes four subframes per frame
        kernels.bitunpack(b, f"bu{rep}", packed, params, n // 4)
        kernels.fir_filter(b, f"ltp{rep}", params, taps, excite, n - 8, 8)
        kernels.iir_biquad(b, f"syn{rep}", excite, speech, n - 8,
                           31, -17, 11)
    _outer_end(b)
    return b.build()


def build_gsmenc(dataset: str = "test", seed: int = 0) -> Program:
    """GSM full-rate encode: LPC analysis + LTP search + quantize."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 80
    speech = b.data("speech", audio_words(707 + offset, n + 16))
    past = b.data("past", audio_words(708 + offset, n + 16))
    resid = b.zeros("resid", n)
    codes = b.zeros("codes", n)
    taps = b.data("taps", [40, -12, 9, -4, 3, -2, 1, 1,
                           -1, 1, -1, 1, -1, 1, -1, 1])
    rtable = b.data("rtable", [16384 // ((i % 5) + 2)
                               for i in range(16)])
    _outer(b)
    for rep in range(REPLICAS):
        kernels.fir_filter(b, f"lpc{rep}", speech, taps, resid, n, 8)
        kernels.sad_motion(b, f"ltp{rep}", past, speech, n)
        kernels.quantize(b, f"qz{rep}", resid, rtable, codes, n, 16)
    _outer_end(b)
    return b.build()


def build_rawcaudio(dataset: str = "test", seed: int = 0) -> Program:
    """IMA ADPCM (the real rawcaudio inner loop) plus output buffering."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 96
    codes = b.data("codes", noise_words(809 + offset, n, bits=4))
    pcm = b.zeros("pcm", n)
    out = b.zeros("out", n)
    steps = b.data("steps", _STEP_TABLE)
    _outer(b)
    for rep in range(REPLICAS):
        kernels.adpcm_decode(b, f"ad{rep}", codes, steps, pcm, n)
        kernels.memcpy_words(b, f"out{rep}", pcm, out, n)
    _outer_end(b)
    return b.build()


def build_rasta(dataset: str = "test", seed: int = 0) -> Program:
    """RASTA speech analysis: filterbank + fp spectral polynomial."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 64
    samples = b.data("samples", audio_words(910 + offset, n + 16))
    band = b.zeros("band", n)
    spect = b.data("spect", float_noise(911 + offset, n, scale=4.0), elem_size=8)
    feat = b.zeros("feat", n, elem_size=8)
    smooth = b.zeros("smooth", n)
    taps = b.data("taps", ramp_words(-3, 8, 2))
    _outer(b)
    for rep in range(REPLICAS):   # one instantiation per critical band
        kernels.fir_filter(b, f"fb{rep}", samples, taps, band, n, 8)
        kernels.fp_poly_eval(b, f"log{rep}", spect, feat, n)
        kernels.iir_biquad(b, f"rst{rep}", band, smooth, n, 21, -9, 5)
    _outer_end(b)
    return b.build()

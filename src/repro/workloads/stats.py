"""Trace statistics: instruction-mix summaries of dynamic streams.

Used by the Table 2 benchmark and handy for validating custom
workloads against the media-code profile they are meant to imitate.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable

from ..isa.instruction import DynInst
from ..isa.opcodes import OpClass

__all__ = ["trace_statistics"]


def trace_statistics(trace: Iterable[DynInst]) -> Dict[str, float]:
    """Instruction-mix summary of a dynamic trace.

    Returns counts and fractions: total instructions, loads, stores,
    conditional branches (and their taken rate), fp operations, integer
    multiplies/divides, plus the number of distinct static PCs touched.
    """
    total = 0
    loads = stores = branches = taken = fp_ops = muls = divs = 0
    pcs = set()
    opcounts: Counter = Counter()
    for dyn in trace:
        total += 1
        pcs.add(dyn.pc)
        opcounts[dyn.op.name] += 1
        if dyn.is_load:
            loads += 1
        elif dyn.is_store:
            stores += 1
        if dyn.is_cond_branch:
            branches += 1
            if dyn.taken:
                taken += 1
        opclass = dyn.opclass
        if not dyn.op.is_int:
            fp_ops += 1
        if opclass is OpClass.IMUL:
            muls += 1
        elif opclass is OpClass.IDIV:
            divs += 1
    def frac(count):
        return count / total if total else 0.0
    return {
        "instructions": total,
        "static_pcs": len(pcs),
        "loads": loads, "load_fraction": frac(loads),
        "stores": stores, "store_fraction": frac(stores),
        "branches": branches, "branch_fraction": frac(branches),
        "branch_taken_rate": taken / branches if branches else 0.0,
        "fp_ops": fp_ops, "fp_fraction": frac(fp_ops),
        "int_muls": muls, "int_divs": divs,
        "top_opcodes": dict(opcounts.most_common(8)),
    }

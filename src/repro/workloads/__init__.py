"""Synthetic Mediabench-like workload suite (the paper's Table 2).

The paper's Alpha Mediabench binaries are unavailable; each program here
is a µRISC stand-in composed from the kernels its original spends time
in (see DESIGN.md §3 for the substitution argument).  The suite registry
lives in :mod:`repro.workloads.suite`; parametric microbenchmarks for
tests and ablations live in :mod:`repro.workloads.synthetic`.
"""

from .stats import trace_statistics
from .suite import (DEFAULT_TRACE_LENGTH, SUITE, TRACE_CACHE_MAX,
                    WorkloadSpec, build_workload, clear_trace_cache,
                    workload_names, workload_trace, workload_trace_iter)

__all__ = ["DEFAULT_TRACE_LENGTH", "SUITE", "TRACE_CACHE_MAX",
           "WorkloadSpec", "build_workload", "clear_trace_cache",
           "trace_statistics", "workload_names", "workload_trace",
           "workload_trace_iter"]

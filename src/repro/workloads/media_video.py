"""Video-category Mediabench stand-in: mpeg2enc.

MPEG-2 encoding is motion estimation (SAD over candidate blocks), the
8x8 transform, quantization, and entropy coding — all integer, wide-ILP
kernels with data-dependent branches in the search.
"""

from __future__ import annotations

from ..isa.program import Program, ProgramBuilder
from . import kernels
from .datagen import image_words

__all__ = ["build_mpeg2enc"]

_OUTER_REPS = 1_000_000

#: Macroblock-pipeline instantiations (distinct static code).
REPLICAS = 6

#: Input datasets: like Mediabench's per-benchmark input files, each
#: stand-in can run a second, differently seeded (and slightly larger)
#: input to check input sensitivity.
DATASET_OFFSETS = {"test": 0, "train": 5000}


#: Seed stride: far above any dataset offset, so (dataset, seed) pairs
#: never collide in the generators' seed space.
_SEED_STRIDE = 100_003


def _dataset_offset(dataset: str, seed: int = 0) -> int:
    try:
        return DATASET_OFFSETS[dataset] + seed * _SEED_STRIDE
    except KeyError:
        raise KeyError(f"unknown dataset {dataset!r}; choose from "
                       f"{sorted(DATASET_OFFSETS)}") from None


def build_mpeg2enc(dataset: str = "test", seed: int = 0) -> Program:
    """Motion search -> transform -> quantize -> entropy scan."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 64
    cur = b.data("cur", image_words(111 + offset, n + 32))
    ref = b.data("ref", image_words(112 + offset, n + 32))
    diff = b.zeros("diff", n)
    coef = b.zeros("coef", n)
    qcoef = b.zeros("qcoef", n)
    rtable = b.data("rtable", [16384 // ((i % 15) + 2)
                               for i in range(16)])
    hist = b.zeros("hist", 8)
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER_REPS)
    b.label("main")
    for rep in range(REPLICAS):
        # Three candidate motion vectors (offset the reference pointer).
        kernels.sad_motion(b, f"mv0_{rep}", ref, cur, n)
        kernels.sad_motion(b, f"mv1_{rep}", ref + 4, cur, n)
        kernels.sad_motion(b, f"mv2_{rep}", ref + 8, cur, n)
        kernels.dct8_blocks(b, f"dct{rep}", cur, coef, n // 8)
        kernels.quantize(b, f"qz{rep}", coef, rtable, qcoef, n, 16)
        kernels.huffman_scan(b, f"hf{rep}", qcoef, hist, n)
        kernels.memcpy_words(b, f"rec{rep}", qcoef, diff, n)
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")
    return b.build()

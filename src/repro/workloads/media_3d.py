"""3D-graphics Mediabench stand-ins: mesamipmap, mesaosdemo, mesatexgen.

The Mesa demos are floating-point heavy: vertex transforms and texture
filtering.  FP values are never value-predicted (§3.3), so these
programs keep real inter-cluster communications alive even under
perfect prediction — exactly the behaviour the paper's Figure 3 "perfect
predict" bars show.
"""

from __future__ import annotations

from ..isa.program import Program, ProgramBuilder
from . import kernels
from .datagen import float_noise, float_ramp, image_words, noise_words

__all__ = ["build_mesamipmap", "build_mesaosdemo", "build_mesatexgen"]

_OUTER_REPS = 1_000_000

#: Batch-pipeline instantiations (distinct static code).
REPLICAS = 8

#: Input datasets: like Mediabench's per-benchmark input files, each
#: stand-in can run a second, differently seeded (and slightly larger)
#: input to check input sensitivity.
DATASET_OFFSETS = {"test": 0, "train": 5000}


#: Seed stride: far above any dataset offset, so (dataset, seed) pairs
#: never collide in the generators' seed space.
_SEED_STRIDE = 100_003


def _dataset_offset(dataset: str, seed: int = 0) -> int:
    try:
        return DATASET_OFFSETS[dataset] + seed * _SEED_STRIDE
    except KeyError:
        raise KeyError(f"unknown dataset {dataset!r}; choose from "
                       f"{sorted(DATASET_OFFSETS)}") from None


def _outer(b: ProgramBuilder):
    b.emit("li", "r1", 0)
    b.emit("li", "r2", _OUTER_REPS)
    b.label("main")


def _outer_end(b: ProgramBuilder):
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "main")
    b.emit("halt")


def build_mesamipmap(dataset: str = "test", seed: int = 0) -> Program:
    """Mipmap generation: box-filtered downsampling of texel quads."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 48
    texels = b.data("texels", float_noise(121 + offset, 4 * n, scale=255.0),
                    elem_size=8)
    level1 = b.zeros("level1", n, elem_size=8)
    ipix = b.data("ipix", image_words(122 + offset, n))
    iout = b.zeros("iout", n)
    _outer(b)
    for rep in range(REPLICAS):   # one instantiation per mip level
        kernels.texture_lerp(b, f"box{rep}", texels, level1, n)
        kernels.color_convert(b, f"pack{rep}", ipix, iout, n // 3)
        kernels.memcpy_words(b, f"cp{rep}", ipix, iout, n // 2)
    _outer_end(b)
    return b.build()


def build_mesaosdemo(dataset: str = "test", seed: int = 0) -> Program:
    """Off-screen rendering demo: geometry + span fill + texture."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 32
    verts = b.data("verts", float_ramp(0.5, 3 * n, 0.37), elem_size=8)
    matrix = b.data("matrix", float_noise(131 + offset, 9, scale=2.0), elem_size=8)
    xformed = b.zeros("xformed", 3 * n, elem_size=8)
    texels = b.data("texels", float_noise(132 + offset, 4 * n, scale=255.0),
                    elem_size=8)
    shaded = b.zeros("shaded", n, elem_size=8)
    fb = b.zeros("fb", 2 * n)
    spans = b.data("spans", noise_words(133 + offset, 2 * n, bits=8))
    _outer(b)
    for rep in range(REPLICAS):   # one instantiation per primitive batch
        kernels.vertex_transform(b, f"xf{rep}", verts, matrix, xformed, n)
        kernels.texture_lerp(b, f"tx{rep}", texels, shaded, n)
        kernels.memcpy_words(b, f"span{rep}", spans, fb, 2 * n)
    _outer_end(b)
    return b.build()


def build_mesatexgen(dataset: str = "test", seed: int = 0) -> Program:
    """Texture-coordinate generation: transforms + fp polynomial + pack."""
    offset = _dataset_offset(dataset, seed)
    b = ProgramBuilder()
    n = 32
    verts = b.data("verts", float_noise(141 + offset, 3 * n + 3, scale=10.0),
                   elem_size=8)
    matrix = b.data("matrix", float_noise(142 + offset, 9, scale=1.5), elem_size=8)
    coords = b.zeros("coords", 3 * n, elem_size=8)
    warped = b.zeros("warped", n, elem_size=8)
    ipix = b.data("ipix", image_words(143 + offset, n))
    hist = b.zeros("hist", 64)
    _outer(b)
    for rep in range(REPLICAS):
        kernels.vertex_transform(b, f"tg{rep}", verts, matrix, coords, n)
        kernels.fp_poly_eval(b, f"wp{rep}", coords, warped, n)
        kernels.histogram(b, f"hg{rep}", ipix, hist, n)
    _outer_end(b)
    return b.build()

"""Deterministic data generators for the synthetic workloads.

Every benchmark's input data is produced by a seeded linear congruential
generator, so traces are bit-reproducible across runs and machines
without depending on Python's ``random`` module internals.
"""

from __future__ import annotations

import math
from typing import List

__all__ = ["lcg_stream", "noise_words", "image_words", "audio_words",
           "ramp_words", "float_noise", "float_ramp"]

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK64 = (1 << 64) - 1


def lcg_stream(seed: int, count: int) -> List[int]:
    """*count* raw 64-bit LCG outputs from *seed*."""
    state = (seed * 2 + 1) & _MASK64
    out = []
    for _ in range(count):
        state = (state * _LCG_A + _LCG_C) & _MASK64
        out.append(state)
    return out


def noise_words(seed: int, count: int, bits: int = 16) -> List[int]:
    """Uniform pseudo-random non-negative ints below ``2**bits``."""
    mask = (1 << bits) - 1
    return [(value >> 24) & mask for value in lcg_stream(seed, count)]


def image_words(seed: int, count: int) -> List[int]:
    """Image-like data: a smooth gradient plus low-amplitude noise.

    Neighbouring values correlate, as pixels do, so difference-based
    kernels see small magnitudes most of the time — the property entropy
    coders and motion estimation exploit.
    """
    noise = noise_words(seed, count, bits=3)
    return [((i * 7) // 16 + noise[i]) & 255 for i in range(count)]


def audio_words(seed: int, count: int, amplitude: int = 12000) -> List[int]:
    """Audio-like data: a slow sine with noise, in 16-bit sample range."""
    noise = noise_words(seed, count, bits=6)
    out = []
    for i in range(count):
        base = int(amplitude * math.sin(i / 23.0))
        out.append(base + noise[i] - 32)
    return out


def ramp_words(start: int, count: int, step: int = 1) -> List[int]:
    """A plain arithmetic ramp (maximally stride-predictable data)."""
    return [start + i * step for i in range(count)]


def float_noise(seed: int, count: int, scale: float = 1.0) -> List[float]:
    """Pseudo-random floats in ``[0, scale)``."""
    return [((value >> 16) & 0xFFFF) / 65536.0 * scale
            for value in lcg_stream(seed, count)]


def float_ramp(start: float, count: int, step: float = 0.25) -> List[float]:
    """An fp arithmetic ramp."""
    return [start + i * step for i in range(count)]

"""Reference steerers used as ablation baselines.

These are not from the paper's evaluation but serve the related-work
comparisons it discusses (§5): steering purely for balance (ignoring
dependences, like trace-based partitioning tends to), steering purely by
dependences (ignoring balance, like the dependence-based paradigm), and
blind round-robin.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from .base import SourceView, Steerer
from .metrics import DCountTracker

__all__ = ["RoundRobinSteerer", "BalanceOnlySteerer", "DependenceOnlySteerer"]


class RoundRobinSteerer(Steerer):
    """Dispatch to clusters cyclically; perfect count balance, blind to data.

    The cursor advances on *dispatch*, not on ``choose``, so decode-stage
    retries after structural stalls do not perturb the rotation.
    """

    name = "round-robin"
    last_reason = "round-robin"

    def __init__(self, n_clusters: int) -> None:
        super().__init__(n_clusters)
        self._next = 0

    def choose(self, sources: Sequence[SourceView],
               dcount: DCountTracker, pc=None) -> int:
        return self._next

    def notify_dispatch(self, cluster: int) -> None:
        self._next = (self._next + 1) % self.n_clusters


class BalanceOnlySteerer(Steerer):
    """Always pick the least-loaded cluster (maximal balance pressure)."""

    name = "balance-only"
    last_reason = "balance"

    def choose(self, sources: Sequence[SourceView],
               dcount: DCountTracker, pc=None) -> int:
        return dcount.least_loaded()


class DependenceOnlySteerer(Steerer):
    """Follow operands only; ignore balance entirely.

    Prefers the cluster producing a pending operand, then the cluster
    with the most mapped operands; ties and no-operand cases fall back
    to cluster 0, which concentrates work — exactly the failure mode
    balance-aware steering exists to avoid.
    """

    name = "dependence-only"

    def choose(self, sources: Sequence[SourceView],
               dcount: DCountTracker, pc=None) -> int:
        pending: Counter = Counter()
        mapped: Counter = Counter()
        for src in sources:
            if not src.available and src.soonest_cluster is not None:
                pending[src.soonest_cluster] += 1
            else:
                for cluster in src.mapped:
                    mapped[cluster] += 1
        for votes, reason in ((pending, "pending"), (mapped, "mapped")):
            if votes:
                best = max(votes.values())
                self.last_reason = reason
                return min(c for c, v in votes.items() if v == best)
        self.last_reason = "fallback"
        return 0

"""Workload-balance metrics: DCOUNT (drives steering) and NREADY (reported).

§2.3.2 defines both.  **DCOUNT**: a signed counter per cluster; on every
dispatch the chosen cluster's counter rises by N-1 and every other falls
by 1, so each counter equals N times (instructions dispatched there -
average per cluster) and their sum stays zero.  Steering uses the
maximum absolute counter as the imbalance.  **NREADY**: the number of
ready instructions that could not issue because their cluster's issue
capacity was exhausted but idle capacity existed elsewhere; the paper
*measures* imbalance with NREADY while *steering* with DCOUNT, and so do
we.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["DCountTracker", "NReadyMeter"]


class DCountTracker:
    """The paper's DCOUNT workload counters.

    Stored in offset form: ``_raw[c]`` is the true counter plus a
    shared ``_offset`` that grows by one per dispatch.  That turns the
    "every other counter falls by 1" part of a dispatch into a single
    offset bump — O(1) instead of O(N) on the dispatch hot path —
    while comparisons between counters (least-loaded picks) are
    offset-invariant.  ``counters`` materializes the true values.
    """

    def __init__(self, n_clusters: int) -> None:
        if n_clusters < 1:
            raise ValueError("need at least one cluster")
        self.n_clusters = n_clusters
        self._raw: List[int] = [0] * n_clusters
        self._offset = 0

    @property
    def counters(self) -> List[int]:
        """The true DCOUNT values (their sum is always zero)."""
        offset = self._offset
        return [c - offset for c in self._raw]

    def dispatch(self, cluster: int) -> None:
        """Account one instruction dispatched to *cluster*."""
        self._offset += 1
        self._raw[cluster] += self.n_clusters

    def imbalance(self) -> int:
        """Maximum absolute counter value (the steering imbalance figure)."""
        offset = self._offset
        best = 0
        for c in self._raw:
            c -= offset
            if c < 0:
                c = -c
            if c > best:
                best = c
        return best

    def least_loaded(self) -> int:
        """Cluster with the minimum counter (ties break to the lowest id)."""
        counters = self._raw
        best = 0
        for c in range(1, self.n_clusters):
            if counters[c] < counters[best]:
                best = c
        return best

    def least_loaded_among(self, candidates: Sequence[int]) -> int:
        """Least-loaded cluster restricted to *candidates*."""
        if len(candidates) == 1:
            return candidates[0]
        counters = self._raw
        return min(candidates, key=lambda c: (counters[c], c))


class NReadyMeter:
    """Accumulates the per-cycle NREADY imbalance figure.

    Each cycle the core reports, per cluster and per side (integer/fp),
    how many *ready* instructions were left unissued by capacity limits
    and how much idle issue capacity remained.  Ready-but-stuck work in
    one cluster only counts when another cluster had idle capacity on
    the same side; idle capacity is taken from clusters that had no
    leftover of their own on that side (a cluster with leftover has, by
    construction, no usable idle capacity there).
    """

    def __init__(self, n_clusters: int) -> None:
        self.n_clusters = n_clusters
        self.total = 0
        self.cycles = 0

    def record(self, leftover_int: Sequence[int], idle_int: Sequence[int],
               leftover_fp: Sequence[int], idle_fp: Sequence[int]) -> None:
        """Accumulate one cycle's measurement."""
        self.cycles += 1
        self.total += self._match(leftover_int, idle_int)
        self.total += self._match(leftover_fp, idle_fp)

    def record_idle(self) -> None:
        """A cycle with no capacity-stuck instruction on either side.

        Equivalent to :meth:`record` with all-zero leftover vectors
        (``_match`` contributes 0 whenever nothing is stuck), without
        requiring the caller to compute idle capacities at all.
        """
        self.cycles += 1

    @staticmethod
    def _match(leftover: Sequence[int], idle: Sequence[int]) -> int:
        stuck = sum(leftover)
        if not stuck:
            return 0
        usable_idle = sum(idle[c] for c in range(len(idle))
                          if leftover[c] == 0)
        return min(stuck, usable_idle)

    @property
    def average(self) -> float:
        """Average NREADY per cycle — the paper's "workload imbalance"."""
        return self.total / self.cycles if self.cycles else 0.0

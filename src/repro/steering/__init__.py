"""Dynamic instruction steering: metrics, Baseline/Modified/VPB, ablations."""

from .base import SourceView, Steerer
from .baseline import (BaselineSteerer, ModifiedSteerer, RMBSSteerer,
                       VPBSteerer, default_balance_threshold,
                       default_vpb_threshold)
from .metrics import DCountTracker, NReadyMeter
from .simple import BalanceOnlySteerer, DependenceOnlySteerer, RoundRobinSteerer
from .static import StaticSteerer, profile_static_assignment

__all__ = ["SourceView", "Steerer",
           "BaselineSteerer", "ModifiedSteerer", "RMBSSteerer", "VPBSteerer",
           "default_balance_threshold", "default_vpb_threshold",
           "DCountTracker", "NReadyMeter",
           "BalanceOnlySteerer", "DependenceOnlySteerer", "RoundRobinSteerer",
           "StaticSteerer", "profile_static_assignment"]

"""Steering interfaces: the decode-time operand view and the Steerer ABC.

The steering logic runs in the decode/rename stage.  For each source
operand it sees exactly what the map table and scoreboards expose at that
moment (§2.3.1): where the operand is mapped, whether its value is
already available, where a pending value will be produced soonest, and —
for the value-prediction-aware schemes — whether a confident prediction
exists for it.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence

from .metrics import DCountTracker

__all__ = ["SourceView", "Steerer"]

_ALL_CLUSTERS_CACHE = {}


def _all_clusters(n: int) -> FrozenSet[int]:
    cached = _ALL_CLUSTERS_CACHE.get(n)
    if cached is None:
        cached = frozenset(range(n))
        _ALL_CLUSTERS_CACHE[n] = cached
    return cached


class SourceView:
    """Decode-time facts about one source operand.

    Attributes:
        logical: logical register id.
        is_fp: operand lives in the fp bank (never predicted).
        available: value is already computed in at least one mapped
            cluster at decode time.
        mapped: clusters with a valid map-table field for the operand.
        soonest_cluster: mapped cluster where the value is (or will
            first be) available — rule 2.1's "where the pending operand
            is to be produced", narrowed per §2.3.1 when replicas are in
            flight.
        predicted: a confident value prediction exists for this operand.
    """

    __slots__ = ("logical", "is_fp", "available", "mapped",
                 "soonest_cluster", "predicted")

    def __init__(self, logical: int, is_fp: bool, available: bool,
                 mapped: FrozenSet[int], soonest_cluster: Optional[int],
                 predicted: bool) -> None:
        self.logical = logical
        self.is_fp = is_fp
        self.available = available
        self.mapped = mapped
        self.soonest_cluster = soonest_cluster
        self.predicted = predicted

    def __repr__(self) -> str:
        return (f"<Src r{self.logical} avail={self.available} "
                f"mapped={sorted(self.mapped)} pred={self.predicted}>")


class Steerer:
    """Decides the execution cluster of each decoded instruction."""

    #: Human-readable scheme name (used in reports and benchmarks).
    name = "abstract"

    #: Decision class of the most recent :meth:`choose` call — why the
    #: cluster was picked ("balance", "pending", "mapped", "mod2-all",
    #: "unconstrained", "static", ...).  Read by the event tracer when
    #: the instruction actually dispatches; because decode retries call
    #: ``choose`` again before dispatching, the attribute always
    #: reflects the decision that took effect.  Purely observational:
    #: no steering logic may read it.
    last_reason = "unknown"

    def __init__(self, n_clusters: int) -> None:
        self.n_clusters = n_clusters

    def choose(self, sources: Sequence[SourceView],
               dcount: DCountTracker, pc: Optional[int] = None) -> int:
        """Return the cluster for an instruction with *sources*.

        *pc* is the instruction's address; only PC-indexed schemes
        (static partitioning) use it.

        ``choose`` may be called several times for the same instruction
        (the decode stage retries after structural stalls), so it must
        be side-effect free; dispatch-dependent state belongs in
        :meth:`notify_dispatch`.  The core updates DCOUNT after the
        decision; implementations must not mutate it.
        """
        raise NotImplementedError

    def notify_dispatch(self, cluster: int) -> None:
        """Called once when an instruction actually dispatches."""

    def all_clusters(self) -> FrozenSet[int]:
        """The full candidate set."""
        return _all_clusters(self.n_clusters)

"""The Baseline steering scheme and its value-prediction variants.

§3.1's Baseline is an enhanced "Advanced RMBS" heuristic generalized to
N clusters:

1. If the workload imbalance (max |DCOUNT|) exceeds a threshold, send
   the instruction to the least loaded cluster.
2. Otherwise identify the clusters with minimum communication penalty:
   2.1 if any source operand is unavailable, the clusters where the
       pending operands are to be produced;
   2.2 if all operands are available, the clusters with the greatest
       number of operands currently mapped;
   2.3 with no source operands, all clusters.
3. Pick the least loaded cluster among those selected by step 2.

§3.2's **Modified** scheme adds, unconditionally: (mod 1) a predicted
operand counts as available, and (mod 2) a predicted operand counts as
mapped in every cluster.  The paper found it performs no better than the
Baseline because mod 2 indiscriminately trades communications for
balance.

§3.3's **VPB** scheme keeps mod 1 but applies mod 2 *only when the
imbalance exceeds a second (lower) threshold*, so prediction is spent on
balance only when balance is actually poor.

Thresholds come from the paper: Baseline rule 1 uses DCOUNT=32 / 16 for
4 / 2 clusters; VPB's mod-2 gate uses DCOUNT=16 / 8.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .base import SourceView, Steerer
from .metrics import DCountTracker

__all__ = ["RMBSSteerer", "BaselineSteerer", "ModifiedSteerer", "VPBSteerer",
           "default_balance_threshold", "default_vpb_threshold"]


def default_balance_threshold(n_clusters: int) -> int:
    """Paper's rule-1 threshold: 32 for 4 clusters, 16 for 2."""
    return 8 * n_clusters


def default_vpb_threshold(n_clusters: int) -> int:
    """Paper's VPB mod-2 gate: 16 for 4 clusters, 8 for 2."""
    return 4 * n_clusters


class RMBSSteerer(Steerer):
    """Parameterized Advanced-RMBS steering (see module docstring).

    Args:
        n_clusters: number of clusters.
        balance_threshold: rule-1 imbalance threshold (``None`` uses the
            paper's value for the cluster count).
        use_mod1: treat predicted operands as available.
        mod2_threshold: imbalance above which predicted operands count
            as mapped everywhere.  ``None`` disables mod 2; ``-1`` makes
            it unconditional (the §3.2 Modified scheme).
    """

    name = "rmbs"

    def __init__(self, n_clusters: int,
                 balance_threshold: Optional[int] = None,
                 use_mod1: bool = False,
                 mod2_threshold: Optional[int] = None) -> None:
        super().__init__(n_clusters)
        if balance_threshold is None:
            balance_threshold = default_balance_threshold(n_clusters)
        self.balance_threshold = balance_threshold
        self.use_mod1 = use_mod1
        self.mod2_threshold = mod2_threshold

    def choose(self, sources: Sequence[SourceView],
               dcount: DCountTracker, pc: Optional[int] = None) -> int:
        if self.n_clusters == 1:
            self.last_reason = "single"
            return 0
        imbalance = dcount.imbalance()
        # Rule 1: correct a gross imbalance unconditionally.
        if imbalance > self.balance_threshold:
            self.last_reason = "balance"
            return dcount.least_loaded()
        mod2 = (self.mod2_threshold is not None
                and imbalance > self.mod2_threshold)
        candidates, self.last_reason = \
            self._communication_candidates(sources, mod2)
        # Rule 3: least loaded among the candidates.
        return dcount.least_loaded_among(candidates)

    # -- rule 2 -----------------------------------------------------------------

    def _communication_candidates(self, sources: Sequence[SourceView],
                                  mod2: bool) -> Tuple[List[int], str]:
        """Rule-2 candidate set plus the decision class that produced it.

        Reasons: "pending" (rule 2.1), "mapped" (rule 2.2),
        "unconstrained" (operands with no useful mapping),
        "mod2-all" (§3.2/§3.3's relaxation released every operand),
        "no-sources" (rule 2.3).

        With at most two source operands (every ISA op here) the vote
        tallies collapse to closed forms — two pending votes agree or
        tie, two mapped sets vote for their intersection when it is
        non-empty and their union otherwise — so the decode hot path
        runs allocation-light set arithmetic instead of vote dicts.
        The candidate *order* may differ from the dict tally, which is
        immaterial: rule 3's least-loaded pick is order-invariant.
        """
        if len(sources) > 2:
            return self._communication_candidates_general(sources, mod2)
        pend_a = pend_b = None
        map_a = map_b = None
        relevant = 0
        mod2_applies = False
        use_mod1 = self.use_mod1
        for src in sources:
            predicted = src.predicted
            if mod2 and predicted:
                # Mod 2: this operand constrains nothing.
                mod2_applies = True
                continue
            relevant += 1
            if src.available or (use_mod1 and predicted):
                mapped = src.mapped
                if mapped:
                    if map_a is None:
                        map_a = mapped
                    else:
                        map_b = mapped
            else:
                # Rule 2.1: vote for the cluster producing it soonest.
                soonest = src.soonest_cluster
                if soonest is not None:
                    if pend_a is None:
                        pend_a = soonest
                    else:
                        pend_b = soonest
        if pend_a is not None:
            if pend_b is None or pend_b == pend_a:
                return [pend_a], "pending"
            return [pend_a, pend_b], "pending"
        if map_a is not None:
            if map_b is None:
                return list(map_a), "mapped"
            inter = map_a & map_b
            return list(inter if inter else map_a | map_b), "mapped"
        if relevant and not mod2_applies:
            # Operands exist but none is mapped anywhere useful (only
            # possible for always-available zero-register operands,
            # which carry no mapping): no constraint.
            return list(self.all_clusters()), "unconstrained"
        # Rule 2.3 (no sources), or every operand released by mod 2.
        return list(self.all_clusters()), (
            "mod2-all" if mod2_applies else "no-sources")

    def _communication_candidates_general(
            self, sources: Sequence[SourceView],
            mod2: bool) -> Tuple[List[int], str]:
        """Dict-tally fallback for hypothetical >2-operand sources."""
        # Plain dicts, not Counters: vote keys arrive in first-vote
        # order either way (Counter is a dict subclass), and Counter's
        # __init__ is pure overhead per call.
        pending_votes: Dict[int, int] = {}
        mapped_votes: Dict[int, int] = {}
        relevant = 0
        mod2_applies = False
        for src in sources:
            predicted = src.predicted
            available = src.available or (self.use_mod1 and predicted)
            if mod2 and predicted:
                mod2_applies = True
                continue
            relevant += 1
            if not available:
                soonest = src.soonest_cluster
                if soonest is not None:
                    pending_votes[soonest] = pending_votes.get(soonest, 0) + 1
            else:
                for cluster in src.mapped:
                    mapped_votes[cluster] = mapped_votes.get(cluster, 0) + 1
        if pending_votes:
            return self._argmax(pending_votes), "pending"
        if relevant and mapped_votes:
            return self._argmax(mapped_votes), "mapped"
        if relevant and not mapped_votes and not mod2_applies:
            return list(self.all_clusters()), "unconstrained"
        return list(self.all_clusters()), (
            "mod2-all" if mod2_applies else "no-sources")

    @staticmethod
    def _argmax(votes: Dict[int, int]) -> List[int]:
        best = max(votes.values())
        return [cluster for cluster, count in votes.items() if count == best]


class BaselineSteerer(RMBSSteerer):
    """§3.1 Baseline: communication first, balance second (no VP use)."""

    name = "baseline"

    def __init__(self, n_clusters: int,
                 balance_threshold: Optional[int] = None) -> None:
        super().__init__(n_clusters, balance_threshold,
                         use_mod1=False, mod2_threshold=None)


class ModifiedSteerer(RMBSSteerer):
    """§3.2 Modified: both VP modifications applied unconditionally."""

    name = "modified"

    def __init__(self, n_clusters: int,
                 balance_threshold: Optional[int] = None) -> None:
        super().__init__(n_clusters, balance_threshold,
                         use_mod1=True, mod2_threshold=-1)


class VPBSteerer(RMBSSteerer):
    """§3.3 VPB: mod 1 always, mod 2 gated by the imbalance threshold."""

    name = "vpb"

    def __init__(self, n_clusters: int,
                 balance_threshold: Optional[int] = None,
                 vpb_threshold: Optional[int] = None) -> None:
        if vpb_threshold is None:
            vpb_threshold = default_vpb_threshold(n_clusters)
        super().__init__(n_clusters, balance_threshold,
                         use_mod1=True, mod2_threshold=vpb_threshold)

"""Profile-driven static code partitioning (§5's related-work foil).

The paper argues (§2.3, §5) that static partitioning — assigning every
*static* instruction to a fixed cluster at compile time, as Sastry,
Palacharla & Smith did — is less effective than dynamic steering because
all dynamic instances of an instruction land in the same cluster
regardless of run-time conditions.  This module provides the strongest
practical static scheme to test that claim against:

* :func:`profile_static_assignment` plays the compiler: it profiles a
  training trace, builds the static dependence graph weighted by
  dynamic frequency, and greedily assigns each static instruction to
  the cluster holding most of its producers, tie-breaking toward the
  least-loaded cluster (by dynamic instruction count).
* :class:`StaticSteerer` applies the resulting PC -> cluster map at
  run time, falling back to least-loaded for unprofiled PCs.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, Optional, Sequence

from ..isa.instruction import DynInst
from ..isa.registers import ZERO_REG
from .base import SourceView, Steerer
from .metrics import DCountTracker

__all__ = ["StaticSteerer", "profile_static_assignment"]


def profile_static_assignment(trace: Iterable[DynInst],
                              n_clusters: int) -> Dict[int, int]:
    """Compute a static PC -> cluster assignment from a profiling run.

    Greedy placement over static instructions in first-execution order:
    each PC goes to the cluster that maximizes the dynamic frequency of
    its register dependences already placed there, tie-breaking toward
    the cluster with the least assigned dynamic work.
    """
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    exec_count: Counter = Counter()
    edge_weight: Dict[int, Counter] = defaultdict(Counter)
    order: list = []
    last_writer: Dict[int, int] = {}
    for dyn in trace:
        if dyn.pc not in exec_count:
            order.append(dyn.pc)
        exec_count[dyn.pc] += 1
        for logical in dyn.srcs:
            if logical == ZERO_REG:
                continue
            producer_pc = last_writer.get(logical)
            if producer_pc is not None and producer_pc != dyn.pc:
                edge_weight[dyn.pc][producer_pc] += 1
        if dyn.dest is not None and dyn.dest != ZERO_REG:
            last_writer[dyn.dest] = dyn.pc
    assignment: Dict[int, int] = {}
    cluster_work = [0] * n_clusters
    for pc in order:
        scores = [0] * n_clusters
        for producer_pc, weight in edge_weight[pc].items():
            home = assignment.get(producer_pc)
            if home is not None:
                scores[home] += weight
        best_score = max(scores)
        candidates = [c for c in range(n_clusters)
                      if scores[c] == best_score]
        chosen = min(candidates, key=lambda c: (cluster_work[c], c))
        assignment[pc] = chosen
        cluster_work[chosen] += exec_count[pc]
    return assignment


class StaticSteerer(Steerer):
    """Fixed PC -> cluster steering (every dynamic instance co-located).

    Args:
        n_clusters: number of clusters.
        assignment: PC -> cluster map (from
            :func:`profile_static_assignment` or hand-built).
    """

    name = "static"

    def __init__(self, n_clusters: int,
                 assignment: Optional[Dict[int, int]] = None) -> None:
        super().__init__(n_clusters)
        self.assignment = dict(assignment or {})

    def choose(self, sources: Sequence[SourceView],
               dcount: DCountTracker, pc: Optional[int] = None) -> int:
        cluster = self.assignment.get(pc)
        if cluster is None:
            # Unprofiled code: the hardware has no information, fall
            # back to the least-loaded cluster.
            self.last_reason = "fallback"
            return dcount.least_loaded()
        self.last_reason = "static"
        return cluster % self.n_clusters

"""Exception taxonomy shared across the repro package.

Every failure the package can diagnose maps onto one of four leaf
classes, all rooted at :class:`ReproError`:

* :class:`ConfigError` — an invalid or inconsistent configuration /
  argument (also a :class:`ValueError`, so call sites that predate the
  taxonomy keep working).
* :class:`WorkloadError` — an unknown workload or dataset name (also a
  :class:`KeyError` for the same reason).
* :class:`SimulationError` — the timing model reached an inconsistent
  state; its subclasses :class:`DivergenceError` (golden-model
  mismatch) and :class:`DeadlockError` (no forward progress) carry the
  structured context the validation layer collects.

The rich errors carry machine-readable context (``cycle``,
``component``, ``details``) so that harnesses — the graceful experiment
runner, the fault-injection campaign — can ledger failures instead of
merely printing tracebacks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["ReproError", "SimulationError", "ConfigError", "WorkloadError",
           "DivergenceError", "DeadlockError"]


class ReproError(Exception):
    """Base class of all repro-specific errors."""


class ConfigError(ReproError, ValueError):
    """An invalid or inconsistent configuration parameter or CLI argument.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites (and tests) continue to catch configuration mistakes.
    """


class WorkloadError(ReproError, KeyError, ValueError):
    """An unknown workload, dataset, or suite-subset name.

    Subclasses both :class:`KeyError` (registry lookups) and
    :class:`ValueError` (argument parsing) so every call site that
    predates the taxonomy keeps catching it.
    """

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else ""


class SimulationError(ReproError):
    """The timing simulation reached an inconsistent or stuck state.

    Attributes:
        cycle: simulation cycle at which the failure was detected
            (``None`` when not applicable).
        component: short name of the structure that failed
            ("commit", "rob", "golden-model", "watchdog", ...).
        details: free-form machine-readable context.
    """

    def __init__(self, message: str, *, cycle: Optional[int] = None,
                 component: Optional[str] = None,
                 details: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.component = component
        self.details = details or {}

    def context(self) -> Dict[str, Any]:
        """Machine-readable context for ledgers and reports."""
        out: Dict[str, Any] = dict(self.details)
        if self.cycle is not None:
            out["cycle"] = self.cycle
        if self.component is not None:
            out["component"] = self.component
        return out


class DivergenceError(SimulationError):
    """The committed stream diverged from the golden functional model.

    Raised by the co-simulator with the cycle, the PC and sequence
    number of the diverging instruction, the cluster that executed it,
    and the register-level diff between the golden state and the trace.
    """

    def __init__(self, message: str, *, cycle: Optional[int] = None,
                 pc: Optional[int] = None, seq: Optional[int] = None,
                 cluster: Optional[int] = None,
                 register_diff: Optional[Dict[str, Any]] = None) -> None:
        details: Dict[str, Any] = {}
        if pc is not None:
            details["pc"] = pc
        if seq is not None:
            details["seq"] = seq
        if cluster is not None:
            details["cluster"] = cluster
        if register_diff:
            details["register_diff"] = register_diff
        super().__init__(message, cycle=cycle, component="golden-model",
                         details=details)
        self.pc = pc
        self.seq = seq
        self.cluster = cluster
        self.register_diff = register_diff or {}


class DeadlockError(SimulationError):
    """The pipeline made no forward progress within the cycle budget.

    Carries the :class:`~repro.validation.watchdog.PipelineSnapshot`
    captured at detection time so a hang is diagnosable post-mortem.
    """

    def __init__(self, message: str, *, cycle: Optional[int] = None,
                 snapshot: Any = None) -> None:
        super().__init__(message, cycle=cycle, component="watchdog",
                         details={"snapshot": snapshot})
        self.snapshot = snapshot

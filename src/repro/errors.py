"""Exception types shared across the repro package."""

from __future__ import annotations

__all__ = ["ReproError", "SimulationError"]


class ReproError(Exception):
    """Base class of all repro-specific errors."""


class SimulationError(ReproError):
    """The timing simulation reached an inconsistent or stuck state."""

"""Inter-cluster interconnection network (pipelined point-to-point paths)."""

from .bus import Interconnect

__all__ = ["Interconnect"]

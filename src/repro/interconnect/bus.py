"""Inter-cluster interconnection paths (§4.2's simplified model).

"For an N-cluster configuration, we assume a simplified model with N×B
independent paths.  Each path is implemented through a pipelined bus
where any cluster can send a value and each bus is connected to the
write port of a single cluster register file."

So bandwidth is modelled *per destination cluster*: B values per cycle
may arrive at any one cluster's register file; since paths are fully
pipelined, a new transfer may start on each path every cycle regardless
of latency.  ``paths_per_cluster=None`` models the unbounded
interconnect the paper uses to isolate latency effects.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["Interconnect"]


class Interconnect:
    """Tracks path reservations and counts communications.

    A transfer that leaves its source cluster at cycle *c* (the cycle
    after its copy issues) delivers to the destination register file at
    ``c + latency - 1``, giving the paper's one-cycle "bubble" between a
    copy and its remote dependent when ``latency == 1``.
    """

    def __init__(self, n_clusters: int, latency: int = 1,
                 paths_per_cluster: Optional[int] = None,
                 fault_injector=None) -> None:
        if latency < 1:
            raise ValueError("communication latency must be >= 1")
        if paths_per_cluster is not None and paths_per_cluster < 1:
            raise ValueError("paths_per_cluster must be >= 1 or None")
        self.n_clusters = n_clusters
        self.latency = latency
        self.paths_per_cluster = paths_per_cluster
        #: Optional repro.validation.faults.FaultInjector; may reject
        #: reservations (transient drop) or stretch delivery latency.
        self.fault_injector = fault_injector
        #: Optional repro.obs.EventTracer; granted reservations emit a
        #: ``bus`` event (the transfer actually occupying a path).
        self.tracer = None
        self._reservations: Dict[Tuple[int, int], int] = {}
        self.transfers = 0
        self.rejected = 0
        #: Rejections forced by the fault injector (subset of rejected).
        self.dropped = 0

    def try_reserve(self, dest_cluster: int, depart_cycle: int) -> bool:
        """Reserve one path slot into *dest_cluster* at *depart_cycle*.

        Returns False (and counts the rejection) when all B paths into
        that cluster are busy that cycle, or when the fault injector
        drops the message (the sender retries the next cycle).
        """
        injector = self.fault_injector
        if injector is not None and injector.bus_drop(dest_cluster,
                                                      depart_cycle):
            self.rejected += 1
            self.dropped += 1
            return False
        if self.paths_per_cluster is None:
            self.transfers += 1
            tracer = self.tracer
            if tracer is not None:
                tracer.bus(depart_cycle, dest_cluster)
            return True
        key = (dest_cluster, depart_cycle)
        used = self._reservations.get(key, 0)
        if used >= self.paths_per_cluster:
            self.rejected += 1
            return False
        self._reservations[key] = used + 1
        self.transfers += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.bus(depart_cycle, dest_cluster)
        return True

    def arrival_cycle(self, depart_cycle: int) -> int:
        """Cycle at which a transfer departing at *depart_cycle* is usable."""
        arrival = depart_cycle + self.latency
        injector = self.fault_injector
        if injector is not None:
            arrival += injector.bus_extra_delay(depart_cycle)
        return arrival

    def inflight(self, cycle: int) -> int:
        """Path reservations at or after *cycle* (watchdog snapshots)."""
        if self.paths_per_cluster is None:
            return 0
        return sum(count for (_, depart), count
                   in self._reservations.items() if depart >= cycle)

    def prune(self, before_cycle: int) -> None:
        """Drop reservation records older than *before_cycle*."""
        if self.paths_per_cluster is None or not self._reservations:
            return
        self._reservations = {key: count for key, count
                              in self._reservations.items()
                              if key[1] >= before_cycle}

"""repro: reproduction of Parcerisa & González, *Reducing Wire Delay
Penalty through Value Prediction* (MICRO-33, 2000).

A clustered out-of-order superscalar timing simulator with dynamic
instruction steering and stride value prediction, a synthetic
Mediabench-like workload suite on a small RISC ISA, and experiment
drivers that regenerate every figure of the paper's evaluation.

Quickstart::

    from repro import make_config, simulate
    from repro.workloads import build_workload

    result = simulate(build_workload("cjpeg"),
                      make_config(4, predictor="stride", steering="vpb"))
    print(result.summary())
"""

from .core import (ProcessorConfig, Processor, SimResult, SimStats,
                   make_config, run_trace, simulate)
from .errors import (ConfigError, DeadlockError, DivergenceError, ReproError,
                     SimulationError, WorkloadError)

__version__ = "1.1.0"

__all__ = ["ProcessorConfig", "Processor", "SimResult", "SimStats",
           "make_config", "run_trace", "simulate",
           "ReproError", "SimulationError", "ConfigError", "WorkloadError",
           "DivergenceError", "DeadlockError", "__version__"]

"""ASCII rendering of experiment results (the "figures" of this repo).

Each ``format_*`` function takes the matching ``run_*`` result from
:mod:`repro.analysis.experiments` and returns a printable string laid
out like the paper's table/figure, so benchmark output can be eyeballed
against the original.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .experiments import (AblationResult, Figure2Result, Figure3Result,
                          Figure4Result, Figure5Result, HeadlineResult,
                          ScalingResult)

__all__ = ["table", "bar", "format_figure2", "format_figure3",
           "format_figure4", "format_figure5", "format_ablation",
           "format_headline", "format_scaling"]


def table(headers: Sequence[str], rows: Sequence[Sequence],
          title: str = "") -> str:
    """Render a simple fixed-width table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
              else len(headers[i]) for i in range(len(headers))]
    def fmt(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def bar(value: float, scale: float, width: int = 40) -> str:
    """A proportional ASCII bar."""
    if scale <= 0:
        return ""
    filled = max(0, min(width, round(value / scale * width)))
    return "#" * filled


def format_figure2(result: Figure2Result) -> str:
    """Figure 2: per-benchmark IPC for the six configurations."""
    headers = ["benchmark", "1c", "1c+vp", "2c", "2c+vp", "4c", "4c+vp"]
    rows: List[List[str]] = []
    for name, row in result.ipc.items():
        rows.append([name] + [f"{row[key]:.2f}"
                              for key in Figure2Result.CONFIGS])
    rows.append(["AVERAGE"] + [f"{result.average(key):.2f}"
                               for key in Figure2Result.CONFIGS])
    gains = ", ".join(
        f"{n}c: {result.prediction_gain_pct(n):+.1f}%" for n in (1, 2, 4))
    return (table(headers, rows,
                  "Figure 2 — IPC, baseline steering, +/- value prediction")
            + f"\nvalue-prediction IPC gain ({gains})"
            + "\n(paper: +2% 1c, +5% 2c, +16% 4c)")


def format_figure3(result: Figure3Result) -> str:
    """Figure 3: imbalance / comm / IPCR for the four schemes."""
    sections = []
    for n_clusters, metric, data, paper in (
            (2, "imbalance", result.imbalance, None),
            (2, "comm/inst", result.comm, None),
            (2, "IPCR", result.ipcr, "paper: 0.85 / - / 0.89 / 0.96"),
            (4, "imbalance", result.imbalance, None),
            (4, "comm/inst", result.comm, None),
            (4, "IPCR", result.ipcr, "paper: 0.65 / 0.74 / 0.77 / 0.90")):
        row = data[n_clusters]
        scale = max(row.values()) or 1.0
        lines = [f"-- {n_clusters} clusters, {metric} --"]
        for scheme, value in row.items():
            lines.append(f"  {scheme:<20} {value:7.3f} "
                         f"{bar(value, scale, 30)}")
        if paper:
            lines.append(f"  ({paper})")
        sections.append("\n".join(lines))
    return ("Figure 3 — Baseline/VPB x prediction comparison\n"
            + "\n".join(sections))


def format_figure4(result: Figure4Result, which: str) -> str:
    """Figure 4(a) or 4(b): IPC series over the swept parameter."""
    headers = ["config"] + [str(x) for x in result.xvalues] + ["degr%"]
    rows = []
    for (n_clusters, predict), series in result.ipc.items():
        label = f"{n_clusters}c {'predict' if predict else 'no-predict'}"
        rows.append([label]
                    + [f"{series[x]:.2f}" for x in result.xvalues]
                    + [f"{result.degradation_pct((n_clusters, predict)):.1f}"])
    note = ("(paper 4a: 17% IPC loss 1->4 cycles at 4c with prediction, "
            "20% without)" if which == "a" else
            "(paper 4b: ~1% IPC loss with a single path/cluster at 4c)")
    return table(headers, rows,
                 f"Figure 4({which}) — IPC vs {result.xlabel}") + "\n" + note


def format_figure5(result: Figure5Result) -> str:
    """Figure 5: IPC and predictor accuracy vs table size."""
    headers = ["entries", "IPC", "confident%", "hit%"]
    rows = [[f"{size // 1024}K" if size >= 1024 else str(size),
             f"{result.ipc[size]:.2f}",
             f"{result.confident_fraction[size] * 100:.1f}",
             f"{result.hit_ratio[size] * 100:.1f}"]
            for size in result.sizes]
    def label(size):
        return f"{size // 1024}K" if size >= 1024 else str(size)
    return (table(headers, rows,
                  "Figure 5 — value predictor table size (4 clusters, VPB)")
            + f"\nIPC degradation {label(result.sizes[-1])} -> "
            f"{label(result.sizes[0])}: "
            f"{result.ipc_degradation_pct():.1f}% "
            "(paper: < 4.5% from 128K to 1K; hit 93.4% -> 90.9%)")


def format_ablation(result: AblationResult, title: str,
                    note: str = "") -> str:
    """Generic ablation table."""
    if not result.rows:
        return title + "\n(empty)"
    metrics = list(next(iter(result.rows.values())).keys())
    headers = ["scheme"] + metrics
    rows = [[label] + [f"{values[m]:.3f}" for m in metrics]
            for label, values in result.rows.items()]
    out = table(headers, rows, title)
    return out + ("\n" + note if note else "")


def format_headline(result: HeadlineResult) -> str:
    """The §6 summary, paper vs measured."""
    headers = ["metric", "paper", "measured"]
    rows = [[key, f"{result.paper[key]:.2f}",
             f"{result.measured.get(key, float('nan')):.2f}"]
            for key in result.paper]
    return table(headers, rows, "Headline results — paper vs measured")


def format_scaling(result: "ScalingResult") -> str:
    """Cluster-count scaling extension: IPC/IPCR/comm vs N, +/- VP."""
    headers = ["clusters", "IPC", "IPC+vp", "gain%", "IPCR", "IPCR+vp",
               "comm", "comm+vp"]
    rows = []
    for n in result.counts:
        rows.append([
            str(n),
            f"{result.ipc[(n, False)]:.2f}",
            f"{result.ipc[(n, True)]:.2f}",
            f"{result.vp_gain_pct(n):+.1f}",
            f"{result.ipcr[(n, False)]:.2f}",
            f"{result.ipcr[(n, True)]:.2f}",
            f"{result.comm[(n, False)]:.3f}",
            f"{result.comm[(n, True)]:.3f}"])
    return (table(headers, rows,
                  "Cluster-count scaling (Table 1 rule extended, VPB+VP "
                  "vs no-VP)")
            + "\n(extension: the VP benefit should grow with the degree "
              "of clustering)")

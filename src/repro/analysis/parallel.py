"""Parallel sweep execution with deterministic worker seeding.

Every figure/ablation driver decomposes into independent *cells* — one
(workload, configuration) simulation each — so a sweep is an
embarrassingly parallel map.  This module provides that map:

* :class:`SweepCell` — a fully explicit, picklable cell description.
  Workers receive *everything* through the cell (trace length, dataset,
  generation seed, config overrides); they never read ``os.environ``,
  so a sweep's outcome cannot depend on environment inherited at fork
  time or on which worker happens to execute which cell.
* :func:`run_cells` — executes a list of cells either serially (in
  process, sharing the trace cache) or across a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with identical
  retry/ledger semantics on both paths.  Results are collected **in
  cell order**, so ledgers and result dictionaries are byte-identical
  regardless of completion order, worker count, chunk size, or cache
  state.
* :class:`WorkerPool` — a reusable executor shared across sweeps.  A
  4k-instruction cell simulates in a few hundred milliseconds, so
  paying worker-interpreter startup per figure driver (and one
  pickle/IPC round-trip per cell, the default ``chunksize=1``) is what
  made ``jobs=2`` *slower* than serial in BENCH_sweep.json.  Enter one
  pool around a batch of drivers (``with WorkerPool(jobs):``) and every
  ``run_cells`` inside reuses its warm workers; cells are dispatched in
  chunks sized by :func:`resolve_chunksize`.
* :func:`resolve_jobs` / :func:`resolve_trace_length` /
  :func:`resolve_chunksize` — the only places that read the
  ``REPRO_JOBS`` / ``REPRO_TRACE_LEN`` / ``REPRO_CHUNKSIZE``
  environment knobs, validating them once at sweep setup (malformed
  values raise :class:`~repro.errors.ConfigError`, not a bare
  ``ValueError``).

Repeated sweeps can additionally skip simulation entirely via the
opt-in content-addressed result cache (``repro.analysis.cache``):
``run_cells`` looks every cell up before dispatching, runs only the
misses, and stores their results — hits and misses are counted on the
cache object and surfaced by the CLI and benchmarks.

Failure handling matches :func:`repro.analysis.experiments.run_one_safe`:
the simulator is deterministic, so a cell that failed with a
*deterministic* error (bad configuration, unknown workload, golden-model
divergence, deadlock) is ledgered immediately — replaying it would fail
identically and double the wall-clock cost of the slowest failures.
Only errors not known to be deterministic (the transient bucket:
harness hiccups, injected-fault trips) are retried.
"""

from __future__ import annotations

import logging
import os
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core import SimResult, make_config, simulate
from ..errors import (ConfigError, DeadlockError, DivergenceError,
                      ReproError, SimulationError, WorkloadError)
from ..obs.telemetry import SweepMonitor, active_monitor, use_monitor
from ..workloads import (DEFAULT_TRACE_LENGTH, build_workload,
                         workload_trace)
from .cache import ResultCache, default_cache
from .sampling import SamplingConfig, simulate_sampled

__all__ = ["SweepCell", "CellFailure", "CellOutcome", "WorkerPool",
           "active_pool", "cell_seed", "is_transient_error", "run_cells",
           "resolve_chunksize", "resolve_jobs", "resolve_trace_length",
           "simulate_sweep_cell"]


#: Error types whose failures are deterministic replays: the simulator
#: and the workload generators are seeded and deterministic, so these
#: fail identically on retry and are ledgered immediately.
DETERMINISTIC_ERRORS = (ConfigError, WorkloadError, DivergenceError,
                        DeadlockError)


def is_transient_error(error: BaseException) -> bool:
    """True when retrying *error* could plausibly change the outcome.

    Deterministic error types (:data:`DETERMINISTIC_ERRORS`) always
    replay identically; everything else — including the base
    :class:`~repro.errors.SimulationError`, which fault-injection and
    harness-level hiccups raise — stays in the retryable bucket.
    """
    return not isinstance(error, DETERMINISTIC_ERRORS)


def resolve_trace_length(length: Optional[int] = None,
                         default: int = DEFAULT_TRACE_LENGTH) -> int:
    """Resolve the per-cell trace length exactly once, at sweep setup.

    Explicit *length* wins; otherwise ``REPRO_TRACE_LEN`` is read and
    validated here (and only here), so worker processes never consult
    the environment.  A malformed or non-positive value raises
    :class:`~repro.errors.ConfigError`.
    """
    if length is not None:
        if length < 1:
            raise ConfigError(
                f"trace length must be a positive instruction count, "
                f"got {length}")
        return length
    raw = os.environ.get("REPRO_TRACE_LEN")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_TRACE_LEN must be an integer instruction count, "
            f"got {raw!r}") from None
    if value < 1:
        raise ConfigError(
            f"REPRO_TRACE_LEN must be positive, got {value}")
    return value


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the sweep worker count once, at sweep setup.

    Explicit *jobs* wins; ``jobs=0`` (or ``REPRO_JOBS=0``) means "all
    cores".  With neither given, the sweep runs serially (1 job) — the
    historical behaviour.  A request above the machine's core count is
    clamped to it (with a logged warning): oversubscribed workers just
    time-slice one another, which adds scheduler churn and pickle
    queues without adding throughput (the BENCH_sweep.json
    ``jobs=2``-on-one-core entries measured exactly that).  Malformed
    values raise :class:`~repro.errors.ConfigError`.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw is None:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer job count, "
                f"got {raw!r}") from None
    if jobs < 0:
        raise ConfigError(f"job count must be >= 0, got {jobs}")
    cores = os.cpu_count() or 1
    if jobs == 0:
        jobs = cores
    elif jobs > cores:
        logging.getLogger(__name__).warning(
            "requested %d sweep jobs but only %d CPU core%s available; "
            "clamping to %d", jobs, cores, "" if cores == 1 else "s",
            cores)
        jobs = cores
    return jobs


def resolve_chunksize(chunksize: Optional[int] = None, n_items: int = 0,
                      jobs: int = 1) -> int:
    """Resolve the per-dispatch cell chunk size once, at sweep setup.

    Explicit *chunksize* wins; otherwise ``REPRO_CHUNKSIZE`` is read and
    validated here.  With neither given, the heuristic splits the sweep
    into about four chunks per worker — large enough to amortize the
    pickle + IPC round-trip that dominated per-cell dispatch at the
    default ``chunksize=1`` (the BENCH_sweep.json ``speedup: 0.911``
    regression), small enough that a straggler chunk cannot idle the
    other workers for long.
    """
    if chunksize is None:
        raw = os.environ.get("REPRO_CHUNKSIZE")
        if raw is None:
            if jobs < 1 or n_items < 1:
                return 1
            return max(1, -(-n_items // (jobs * 4)))
        try:
            chunksize = int(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_CHUNKSIZE must be an integer cell count, "
                f"got {raw!r}") from None
    if chunksize < 1:
        raise ConfigError(f"chunk size must be >= 1, got {chunksize}")
    return chunksize


#: Stack of pools entered via ``with WorkerPool(...)`` (innermost last).
_POOL_STACK: List["WorkerPool"] = []


def active_pool() -> Optional["WorkerPool"]:
    """The innermost entered :class:`WorkerPool`, if any."""
    return _POOL_STACK[-1] if _POOL_STACK else None


class WorkerPool:
    """A reusable sweep executor shared across ``run_cells`` calls.

    Creating a :class:`~concurrent.futures.ProcessPoolExecutor` costs a
    Python interpreter startup (plus ``repro`` import) per worker; the
    figure drivers each ran a sweep of a few seconds, so paying that per
    driver erased the parallel win.  A ``WorkerPool`` creates its
    executor lazily on first parallel use and keeps it warm until
    :meth:`close`; used as a context manager it also registers itself as
    the process-wide default, so every ``run_cells`` (and the fault
    campaign) inside the block shares it without parameter threading::

        with WorkerPool(jobs=4):
            fig2 = run_figure2()    # starts the workers
            fig3 = run_figure3()    # reuses them
        # workers shut down here

    A pool resolved to ``jobs=1`` never spawns processes — every mapped
    call runs serially in-process, preserving the serial path's
    trace-cache sharing.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    @property
    def started(self) -> bool:
        """True once worker processes exist."""
        return self._executor is not None

    def map(self, fn, items: Sequence, chunksize: Optional[int] = None
            ) -> list:
        """``map(fn, items)`` over the pool, in input order.

        Serial (``jobs=1``) pools run in-process; parallel pools
        dispatch *chunksize* items per worker round-trip
        (:func:`resolve_chunksize` when not given).
        """
        return list(self.imap(fn, items, chunksize=chunksize))

    def imap(self, fn, items: Sequence, chunksize: Optional[int] = None):
        """Lazy :meth:`map`: yields results in input order as they
        arrive, so callers (the sweep monitor's progress line) can
        observe completion without waiting for the whole batch."""
        if self._closed:
            raise ConfigError("worker pool is closed")
        if self.jobs <= 1 or len(items) <= 1:
            return (fn(item) for item in items)
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        chunksize = resolve_chunksize(chunksize, len(items), self.jobs)
        return self._executor.map(fn, items, chunksize=chunksize)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        _POOL_STACK.append(self)
        return self

    def __exit__(self, *exc) -> None:
        if _POOL_STACK and _POOL_STACK[-1] is self:
            _POOL_STACK.pop()
        self.close()


def cell_seed(workload: str, n_clusters: int, predictor: str,
              steering: str, length: int, salt: int = 0) -> int:
    """A deterministic 32-bit seed derived from a cell's identity.

    Campaigns that want decorrelated per-cell input data derive the
    seed from the cell coordinates (never from worker identity, RNG
    state, or submission order), so the same cell always receives the
    same seed in any process on any machine.
    """
    tag = f"{workload}|{n_clusters}|{predictor}|{steering}|{length}|{salt}"
    return zlib.crc32(tag.encode("ascii"))


@dataclass(frozen=True)
class SweepCell:
    """One fully explicit (workload, configuration) simulation.

    Attributes:
        key: caller-chosen hashable identifier used to index the result
            dictionary returned by :func:`run_cells`.
        workload: suite workload name.
        n_clusters: cluster count for :func:`~repro.core.make_config`.
        predictor / steering: scheme names.
        length: dynamic trace length — always explicit; resolve
            environment defaults with :func:`resolve_trace_length`
            *before* building cells.
        seed: explicit workload-generation seed (0 = the suite's
            canonical input data).
        dataset: workload input dataset ("test" / "train").
        overrides: extra :class:`~repro.core.ProcessorConfig` fields as
            a sorted tuple of (name, value) pairs, picklable by
            construction.
        sampling: when given (a frozen
            :class:`~repro.analysis.sampling.SamplingConfig`), the cell
            runs as a *sampled* simulation over ``length`` instructions
            and produces a
            :class:`~repro.analysis.sampling.SampledResult` instead of
            a :class:`~repro.core.SimResult`.  This is how
            million-instruction cells stay affordable inside sweeps.
        checkpoint_dir: optional directory for a shared
            :class:`~repro.core.snapshot.CheckpointStore`; sampled
            cells publish (and, without predictor warming, reuse)
            fast-forward checkpoints there.  Never part of the result's
            identity — it only affects speed.
    """

    key: Any
    workload: str
    n_clusters: int
    predictor: str = "none"
    steering: str = "baseline"
    length: int = DEFAULT_TRACE_LENGTH
    seed: int = 0
    dataset: str = "test"
    overrides: Tuple[Tuple[str, Any], ...] = ()
    sampling: Optional[SamplingConfig] = None
    checkpoint_dir: Optional[str] = None

    @staticmethod
    def pack_overrides(overrides: Dict[str, Any]
                       ) -> Tuple[Tuple[str, Any], ...]:
        """Normalize an override dict into the tuple form."""
        return tuple(sorted(overrides.items()))

    @property
    def config_label(self) -> str:
        """The ledger's configuration label (matches ``run_one_safe``)."""
        return f"{self.n_clusters}cl/{self.predictor}/{self.steering}"


@dataclass(frozen=True)
class CellFailure:
    """One failed attempt at a cell, as recorded by a worker."""

    attempt: int
    error_type: str
    message: str


@dataclass
class CellOutcome:
    """Everything one cell's execution produced.

    ``result`` is ``None`` when every attempt failed; ``failures``
    lists the failed attempts in order (empty on first-try success).
    ``seconds`` is the worker-side wall-clock cost of the cell across
    all attempts (host profiling; no effect on simulated results).
    ``cache_stored`` reports that the *worker* entered the fresh result
    into the result cache — the parent folds these into its own cache
    counters, so ``repro cache stats`` and run receipts aggregate
    correctly under ``jobs>1`` (worker-process counters die with the
    worker).
    """

    key: Any
    result: Optional[SimResult] = None
    failures: List[CellFailure] = field(default_factory=list)
    seconds: float = 0.0
    cache_stored: bool = False


def simulate_sweep_cell(cell: SweepCell) -> SimResult:
    """Simulate one cell from its explicit description (no retries).

    This is the single simulation path shared by the serial and the
    parallel runners — and by :func:`repro.analysis.experiments.run_one`
    — so the three are metric-identical by construction.  Cells with a
    ``sampling`` config route through
    :func:`~repro.analysis.sampling.simulate_sampled` on the workload
    *program* (the trace is never materialized) and return a
    :class:`~repro.analysis.sampling.SampledResult`.
    """
    config = make_config(cell.n_clusters, predictor=cell.predictor,
                         steering=cell.steering, **dict(cell.overrides))
    if cell.sampling is not None:
        program = build_workload(cell.workload, dataset=cell.dataset,
                                 seed=cell.seed)
        return simulate_sampled(program, config, cell.sampling,
                                max_instructions=cell.length,
                                checkpoints=cell.checkpoint_dir,
                                workload_name=cell.workload,
                                dataset=cell.dataset, seed=cell.seed,
                                monitor=active_monitor())
    trace = workload_trace(cell.workload, cell.length,
                           dataset=cell.dataset, seed=cell.seed)
    return simulate(list(trace), config)


def _execute_cell(cell: SweepCell, retries: int) -> CellOutcome:
    """Run one cell with classified retries; never raises.

    Module-level (hence picklable) so it can serve as the worker
    function of a :class:`ProcessPoolExecutor`.  The cell carries every
    input explicitly; nothing here reads the environment.
    """
    outcome = CellOutcome(cell.key)
    start = time.perf_counter()
    try:
        for attempt in range(1 + max(0, retries)):
            try:
                outcome.result = simulate_sweep_cell(cell)
                return outcome
            except Exception as error:  # noqa: BLE001 - sweeps survive
                outcome.failures.append(CellFailure(
                    attempt + 1, type(error).__name__, str(error)))
                if not is_transient_error(error):
                    return outcome  # deterministic: replay fails alike
        return outcome
    finally:
        outcome.seconds = time.perf_counter() - start


#: Worker entry point: (cell, retries, cache_root, cache_key) tuple ->
#: CellOutcome.  The worker stores its own fresh result (parallelizing
#: the pickle+write I/O that the parent used to serialize after the
#: sweep) through a silent cache handle; the parent learns about the
#: store from ``outcome.cache_stored`` and folds it into the sweep
#: cache's counters.
def _pool_worker(item: Tuple[SweepCell, int, Optional[str], Optional[str]]
                 ) -> CellOutcome:
    cell, retries, cache_root, cache_key = item
    outcome = _execute_cell(cell, retries)
    if (cache_root is not None and cache_key is not None
            and outcome.result is not None):
        ResultCache(cache_root, notify=False).put(cache_key, outcome.result)
        outcome.cache_stored = True
    return outcome


_ERROR_TYPES = {cls.__name__: cls for cls in
                (ConfigError, WorkloadError, SimulationError,
                 DivergenceError, DeadlockError, ReproError)}


def _raise_failure(cell: SweepCell, failure: CellFailure) -> None:
    """Re-raise a worker-side failure in the parent (fail-fast mode).

    Worker exceptions are transported as (type name, message) records —
    structured context does not survive pickling reliably — and
    reconstructed against the repro error taxonomy, falling back to
    :class:`SimulationError` for foreign types.
    """
    error_cls = _ERROR_TYPES.get(failure.error_type, SimulationError)
    raise error_cls(
        f"sweep cell {cell.workload} [{cell.config_label}] failed "
        f"after {failure.attempt} attempt(s): "
        f"{failure.error_type}: {failure.message}")


def _note_outcome(monitor: Optional[SweepMonitor], index: int,
                  outcome: CellOutcome) -> None:
    """Report one freshly executed cell's outcome to the monitor."""
    if monitor is None:
        return
    for failure in outcome.failures:
        monitor.cell_retry(index, failure.attempt, failure.error_type)
    monitor.cell_done(index, seconds=outcome.seconds,
                      ok=outcome.result is not None,
                      stored=outcome.cache_stored)


def run_cells(cells: Sequence[SweepCell], jobs: Optional[int] = None,
              ledger=None, retries: int = 1,
              timings: Optional[Dict[Any, float]] = None,
              pool: Optional[WorkerPool] = None,
              cache: Optional[ResultCache] = None,
              chunksize: Optional[int] = None,
              label: str = "sweep",
              receipt_path=None) -> Dict[Any, SimResult]:
    """Execute *cells* and return ``{cell.key: SimResult}``.

    Args:
        cells: the sweep, in the order results (and ledger entries)
            should be recorded.
        jobs: worker processes; ``None`` defers to the active
            :class:`WorkerPool`'s count, then ``REPRO_JOBS`` (see
            :func:`resolve_jobs`); 1 runs serially in process.
        ledger: an :class:`~repro.analysis.experiments.ErrorLedger`.
            When given, failed cells are recorded there and omitted
            from the result dict; when ``None``, the first failure is
            re-raised (fail-fast, the figure drivers' behaviour).
        retries: extra attempts for cells failing with *transient*
            errors; deterministic failures are never retried.
        timings: optional dict receiving ``{cell.key: seconds}`` —
            each cell's worker-side wall-clock cost (all attempts),
            for sweep profiling (benchmarks/BENCH_sweep.json).  Cache
            hits report 0.0 (no simulation happened).
        pool: a :class:`WorkerPool` to dispatch through; ``None`` uses
            the innermost ``with WorkerPool(...)`` block if any, else
            an ephemeral executor torn down when the call returns.
        cache: a :class:`~repro.analysis.cache.ResultCache`; ``None``
            defers to :func:`~repro.analysis.cache.default_cache`
            (``use_cache`` context, then the ``REPRO_CACHE`` opt-in).
            Cells found in the cache are never dispatched; workers
            store fresh successful results back themselves (the parent
            folds their store counts into the cache's counters).
        chunksize: cells per worker dispatch; ``None`` defers to
            ``REPRO_CHUNKSIZE``, then :func:`resolve_chunksize`'s
            about-four-chunks-per-worker heuristic.
        label: the sweep's telemetry label — names this sweep in
            progress lines, event logs and receipts.
        receipt_path: when given, a
            :class:`~repro.analysis.provenance.RunReceipt` covering
            exactly this sweep is written here (atomically) after the
            fold.

    Every execution path calls the same per-cell function, and outcomes
    are folded in submission order, so serial, parallel, and
    cache-assisted runs produce identical result dictionaries and
    identical ledgers.

    Telemetry: when a :func:`~repro.obs.telemetry.use_monitor` block is
    active (or *receipt_path* forces a private monitor), the run emits
    typed sweep events — ``sweep_start``, per-cell
    ``cell_start``/``cell_retry``/``cell_done`` (as results arrive, so
    progress is live), cache events from the pre-pass, and a
    ``sweep_done`` from a ``finally`` block so even an interrupted
    sweep flushes a terminal event to any JSONL sink.
    """
    monitor = active_monitor()
    if monitor is None and receipt_path is not None:
        # A receipt was requested with no ambient monitor: install a
        # silent private one so cache/sweep events have a destination.
        with use_monitor(SweepMonitor()) as monitor:
            return _run_cells_monitored(
                cells, jobs, ledger, retries, timings, pool, cache,
                chunksize, label, receipt_path, monitor)
    return _run_cells_monitored(cells, jobs, ledger, retries, timings,
                                pool, cache, chunksize, label,
                                receipt_path, monitor)


def _run_cells_monitored(cells: Sequence[SweepCell], jobs: Optional[int],
                         ledger, retries: int,
                         timings: Optional[Dict[Any, float]],
                         pool: Optional[WorkerPool],
                         cache: Optional[ResultCache],
                         chunksize: Optional[int], label: str,
                         receipt_path,
                         monitor: Optional[SweepMonitor]
                         ) -> Dict[Any, SimResult]:
    """The body of :func:`run_cells` (monitor already resolved)."""
    if pool is None:
        pool = active_pool()
    if jobs is None and pool is not None:
        jobs = pool.jobs
    jobs = resolve_jobs(jobs)
    if cache is None:
        cache = default_cache()

    # Cache pre-pass: resolve hits in the parent, dispatch only misses.
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    pending: List[int] = []
    if cache is not None:
        for index, cell in enumerate(cells):
            try:
                key = cache.key_for(cell)
            except Exception:
                # Invalid cell (e.g. bad config): uncacheable; let the
                # execution path produce the real, classified failure.
                key = None
            keys[index] = key
            hit = cache.get(key) if key is not None else None
            if hit is not None:
                outcomes[index] = CellOutcome(cell.key, result=hit)
            else:
                pending.append(index)
    else:
        pending = list(range(len(cells)))

    record = None
    if monitor is not None:
        chunk_used = (resolve_chunksize(chunksize, len(pending), jobs)
                      if jobs > 1 and len(pending) > 1 else 1)
        record = monitor.sweep_start(label, cells, jobs=jobs,
                                     chunksize=chunk_used)
        for index, outcome in enumerate(outcomes):
            if outcome is not None:
                monitor.cell_done(index, seconds=0.0, ok=True, cached=True)

    try:
        if pending:
            cache_root = str(cache.root) if cache is not None else None
            items = [(cells[index], retries, cache_root, keys[index])
                     for index in pending]
            if jobs <= 1 or len(items) <= 1:
                ran = []
                for position, item in enumerate(items):
                    if monitor is not None:
                        monitor.cell_start(pending[position])
                    outcome = _pool_worker(item)
                    ran.append(outcome)
                    _note_outcome(monitor, pending[position], outcome)
            else:
                if monitor is not None:
                    for index in pending:
                        monitor.cell_start(index)
                if pool is not None:
                    if monitor is not None and not pool.started:
                        monitor.worker_up(min(pool.jobs, len(items)))
                    stream = pool.imap(_pool_worker, items,
                                       chunksize=chunksize)
                    ran = []
                    for position, outcome in enumerate(stream):
                        ran.append(outcome)
                        _note_outcome(monitor, pending[position], outcome)
                else:
                    chunk = resolve_chunksize(chunksize, len(items), jobs)
                    workers = min(jobs, len(items))
                    if monitor is not None:
                        monitor.worker_up(workers)
                    with ProcessPoolExecutor(max_workers=workers) \
                            as executor:
                        ran = []
                        for position, outcome in enumerate(
                                executor.map(_pool_worker, items,
                                             chunksize=chunk)):
                            ran.append(outcome)
                            _note_outcome(monitor, pending[position],
                                          outcome)
                    if monitor is not None:
                        monitor.worker_down()
            for index, outcome in zip(pending, ran):
                outcomes[index] = outcome
                # Fold worker-side cache stores into the sweep cache's
                # counters (worker-process CacheStats die with the
                # worker).
                if cache is not None and outcome.cache_stored:
                    cache.stats.stores += 1
    finally:
        if monitor is not None:
            monitor.sweep_done()

    results: Dict[Any, SimResult] = {}
    for cell, outcome in zip(cells, outcomes):
        if timings is not None:
            timings[cell.key] = outcome.seconds
        if ledger is not None:
            for failure in outcome.failures:
                ledger.record_failure(cell.workload, cell.config_label,
                                      failure.attempt, failure.error_type,
                                      failure.message)
        if outcome.result is not None:
            results[cell.key] = outcome.result
        elif ledger is None:
            _raise_failure(cell, outcome.failures[-1])

    if receipt_path is not None and monitor is not None:
        from .provenance import RunReceipt
        RunReceipt.from_monitor(
            monitor, label=label, cache_enabled=cache is not None,
            sweeps=None if record is None else [record],
        ).write(receipt_path)
    return results

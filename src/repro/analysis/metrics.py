"""Aggregate metrics over benchmark suites.

The paper's central metric is **IPCR_N** (§2.4): the IPC of the
N-cluster machine divided by the IPC of the 1-cluster machine running
the same binary with the same predictor.  "It indicates the IPC
degradation caused by inter-cluster communication delays ... its
maximum value is 1."  Averages over the suite are arithmetic means of
the per-benchmark values, which is how the paper reports them
("IPCR4 increases by 14%, from 0.65 to 0.74").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from ..errors import WorkloadError

__all__ = ["ipcr", "mean", "pct_change", "suite_mean"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def ipcr(clustered_ipc: float, centralized_ipc: float) -> float:
    """The normalized N-clusters IPC ratio of §2.4."""
    if centralized_ipc <= 0:
        return 0.0
    return clustered_ipc / centralized_ipc


def pct_change(before: float, after: float) -> float:
    """Relative change in percent (positive = improvement)."""
    if before == 0:
        return 0.0
    return (after - before) / before * 100.0


def suite_mean(per_benchmark: Mapping[str, float],
               subset: Sequence[str] = None) -> float:
    """Mean of a per-benchmark metric, optionally over a subset.

    A *subset* naming benchmarks absent from *per_benchmark* raises
    :class:`~repro.errors.WorkloadError` listing the available names
    (the PR 1 error taxonomy), not a bare ``KeyError``.
    """
    if subset is None:
        return mean(per_benchmark.values())
    unknown = [name for name in subset if name not in per_benchmark]
    if unknown:
        raise WorkloadError(
            f"unknown benchmark(s) in subset: {unknown}; "
            f"available: {sorted(per_benchmark)}")
    return mean(per_benchmark[name] for name in subset)

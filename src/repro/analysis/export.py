"""Export experiment results to JSON/CSV for external plotting.

The ASCII reports in :mod:`repro.analysis.report` are for eyeballing;
these exporters produce machine-readable files so the figures can be
re-plotted with any tool. All exporters accept the corresponding
``run_*`` result objects.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict

from .experiments import (AblationResult, Figure2Result, Figure3Result,
                          Figure4Result, Figure5Result, HeadlineResult,
                          ScalingResult)

__all__ = ["figure2_rows", "figure3_rows", "figure4_rows", "figure5_rows",
           "ablation_rows", "headline_rows", "interval_rows",
           "scaling_rows", "to_csv", "to_json"]


def figure2_rows(result: Figure2Result) -> list:
    """Long-format rows: benchmark, clusters, predict, ipc."""
    rows = []
    for name, series in result.ipc.items():
        for (n_clusters, predict), ipc in series.items():
            rows.append({"benchmark": name, "clusters": n_clusters,
                         "predict": predict, "ipc": ipc})
    return rows


def figure3_rows(result: Figure3Result) -> list:
    """Long-format rows: clusters, scheme, metric columns."""
    rows = []
    for n_clusters, schemes in result.ipcr.items():
        for scheme in schemes:
            rows.append({
                "clusters": n_clusters, "scheme": scheme,
                "ipcr": result.ipcr[n_clusters][scheme],
                "comm_per_inst": result.comm[n_clusters][scheme],
                "imbalance": result.imbalance[n_clusters][scheme]})
    return rows


def figure4_rows(result: Figure4Result) -> list:
    rows = []
    for (n_clusters, predict), series in result.ipc.items():
        for x, ipc in series.items():
            rows.append({"clusters": n_clusters, "predict": predict,
                         result.xlabel: x, "ipc": ipc})
    return rows


def figure5_rows(result: Figure5Result) -> list:
    return [{"entries": size, "ipc": result.ipc[size],
             "confident_fraction": result.confident_fraction[size],
             "hit_ratio": result.hit_ratio[size]}
            for size in result.sizes]


def ablation_rows(result: AblationResult) -> list:
    return [{"scheme": label, **metrics}
            for label, metrics in result.rows.items()]


def headline_rows(result: HeadlineResult) -> list:
    return [{"metric": key, "paper": result.paper[key],
             "measured": result.measured.get(key)}
            for key in result.paper]


def scaling_rows(result: ScalingResult) -> list:
    rows = []
    for n_clusters in result.counts:
        for predict in (False, True):
            key = (n_clusters, predict)
            rows.append({"clusters": n_clusters, "predict": predict,
                         "ipc": result.ipc[key], "ipcr": result.ipcr[key],
                         "comm_per_inst": result.comm[key]})
    return rows


def interval_rows(metrics) -> list:
    """Flattened sample rows from a :class:`repro.obs.IntervalMetrics`.

    One dict per sampled interval, list-valued gauges expanded to
    ``name_c<i>`` columns — ready for :func:`to_csv`/:func:`to_json`.
    """
    return metrics.rows()


def to_json(rows: list, path: str = None) -> str:
    """Serialize rows as pretty JSON; optionally write to *path*."""
    text = json.dumps(rows, indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return text


def to_csv(rows: list, path: str = None) -> str:
    """Serialize rows as CSV (union of keys); optionally write *path*."""
    if not rows:
        return ""
    fields: Dict[str, None] = {}
    for row in rows:
        for key in row:
            fields.setdefault(key, None)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(fields),
                            lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text

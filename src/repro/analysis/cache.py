"""Content-addressed on-disk cache of sweep simulation results.

The paper's evaluation is a large cross-product sweep (6 configurations
x 1/2/4 clusters x the Mediabench suite), and every figure driver
re-simulates cells that earlier drivers already ran — the 1-cluster
reference cells alone appear in Figures 2, 3 and the headline table.
The simulator is deterministic, so a cell's :class:`~repro.core.SimResult`
is a pure function of its inputs; this module memoizes that function on
disk.

Keying
------

A cell's cache key is the SHA-256 of a canonical JSON payload covering
*everything* the result depends on:

* the resolved :class:`~repro.core.ProcessorConfig`
  (:meth:`~repro.core.ProcessorConfig.canonical_json` — overrides
  applied, enum keys flattened, order-independent),
* the workload name, input dataset, generation seed and trace length,
* a code fingerprint (:func:`code_version`) hashing every ``repro``
  source file, so any change to the simulator, the ISA or the workload
  generators invalidates the whole cache automatically,
* a cache schema tag (:data:`CACHE_SCHEMA`).

Results are stored as pickles under ``<root>/<key[:2]>/<key>.pkl`` and
written atomically (temp file + rename), so a crashed or concurrent
sweep can never leave a truncated entry behind; unreadable entries are
treated as misses and deleted.

Opt-in wiring
-------------

Caching is **off by default** — ``repro.analysis.parallel.run_cells``
consults, in order: an explicit ``cache=`` argument, the innermost
:func:`use_cache` context (the CLI's ``--cache-dir``), then the
``REPRO_CACHE`` environment variable (a directory path, or ``1`` for
the default ``.repro_cache``).  Only plain sweep cells are cached —
runs with golden checking, fault injection or observers attached never
go through this path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from ..errors import ConfigError
from ..obs.telemetry import active_monitor

__all__ = ["CACHE_SCHEMA", "DEFAULT_CACHE_DIR", "CacheStats",
           "ResultCache", "active_cache", "code_version", "default_cache",
           "resolve_cache", "use_cache"]

#: Bump when the on-disk entry format changes (keys include it, so old
#: entries simply stop matching instead of unpickling wrongly).
CACHE_SCHEMA = "repro-cache-v1"

#: Directory used when ``REPRO_CACHE`` enables caching without naming one.
DEFAULT_CACHE_DIR = ".repro_cache"

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"", "0", "false", "no", "off"}

_code_version: Optional[str] = None


def code_version() -> str:
    """Fingerprint of every ``repro`` source file (cached per process).

    Hashing the sources — rather than trusting a hand-bumped version
    string — means editing the simulator, a predictor, or a workload
    generator invalidates stale entries without anyone remembering to.
    """
    global _code_version
    if _code_version is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def render(self) -> str:
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.stores} store(s)")


class ResultCache:
    """Content-addressed store of pickled :class:`~repro.core.SimResult`.

    One instance wraps one directory; counters accumulate over its
    lifetime (a sweep creates a cache, runs, then surfaces
    ``cache.stats``).  Instances are cheap — the directory is created
    lazily on the first store.

    When *notify* is true (the default), every lookup and store is
    reported to the ambient :class:`~repro.obs.telemetry.SweepMonitor`
    as a ``cache_hit``/``cache_miss``/``cache_store`` event.  The sweep
    runner's worker-side caches pass ``notify=False`` — their outcomes
    travel back through :class:`~repro.analysis.parallel.CellOutcome`
    and are folded (and reported) once, in the parent.
    """

    def __init__(self, root, notify: bool = True) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        self.notify = notify

    def _notify(self, event: str, key: str) -> None:
        if not self.notify:
            return
        monitor = active_monitor()
        if monitor is not None:
            monitor.emit(event, key=key)

    # ------------------------------------------------------------- keys --

    def key_for(self, cell) -> str:
        """The content hash of a :class:`~repro.analysis.parallel.SweepCell`.

        Builds the cell's fully resolved config (same call the worker
        makes), so two cells that differ only in override spelling but
        resolve to the same machine share an entry.  Raises whatever
        ``make_config`` raises for invalid cells — callers treat those
        as uncacheable and let the normal execution path report the
        error.
        """
        from ..core import make_config
        config = make_config(cell.n_clusters, predictor=cell.predictor,
                             steering=cell.steering, **dict(cell.overrides))
        payload = {
            "schema": CACHE_SCHEMA,
            "code": code_version(),
            "config": config.canonical_json(),
            "workload": cell.workload,
            "dataset": cell.dataset,
            "seed": cell.seed,
            "length": cell.length,
        }
        sampling = getattr(cell, "sampling", None)
        if sampling is not None:
            # Sampled estimates are a different observable than exact
            # runs of the same cell — the sampling plan is part of the
            # result's identity (checkpoint_dir is not: it only
            # affects where fast-forward state is shared, never what
            # the estimate is).
            payload["sampling"] = sampling.canonical_dict()
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------ get/put/clear --

    def get(self, key: str):
        """The cached result for *key*, or ``None`` (counted as a miss).

        A corrupt or unreadable entry (interrupted write predating the
        atomic-rename scheme, disk fault) is deleted and reported as a
        miss rather than poisoning the sweep.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            self._notify("cache_miss", key)
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            self._notify("cache_miss", key)
            return None
        self.stats.hits += 1
        self._notify("cache_hit", key)
        return result

    def put(self, key: str, result) -> None:
        """Store *result* under *key* atomically (write + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self._notify("cache_store", key)

    def entries(self) -> List[Path]:
        """Every entry file currently on disk."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.pkl"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def describe(self) -> str:
        entries = self.entries()
        size = sum(path.stat().st_size for path in entries)
        return (f"cache at {self.root}: {len(entries)} entr"
                f"{'y' if len(entries) == 1 else 'ies'}, "
                f"{size / 1024:.1f} KiB")


# ------------------------------------------------------- default wiring --

_ACTIVE: List[Optional[ResultCache]] = []


@contextmanager
def use_cache(cache: Optional[ResultCache]):
    """Make *cache* the default for ``run_cells`` calls in this block.

    ``use_cache(None)`` explicitly disables caching inside the block,
    shadowing any ``REPRO_CACHE`` environment setting.
    """
    _ACTIVE.append(cache)
    try:
        yield cache
    finally:
        _ACTIVE.pop()


def active_cache() -> Optional[ResultCache]:
    """The innermost :func:`use_cache` cache, if any block is active."""
    return _ACTIVE[-1] if _ACTIVE else None


def default_cache() -> Optional[ResultCache]:
    """The cache ``run_cells`` uses absent an explicit argument.

    An active :func:`use_cache` block wins even when it holds ``None``
    (explicit disable); otherwise the ``REPRO_CACHE`` environment
    opt-in applies.
    """
    if _ACTIVE:
        return _ACTIVE[-1]
    return resolve_cache()


def resolve_cache(cache_dir: Optional[str] = None
                  ) -> Optional[ResultCache]:
    """Resolve the opt-in cache directory to a :class:`ResultCache`.

    Explicit *cache_dir* wins; otherwise ``REPRO_CACHE`` is consulted:
    unset or falsy ("", "0", "false", ...) disables caching, a truthy
    flag ("1", "true", ...) enables it at :data:`DEFAULT_CACHE_DIR`,
    and anything else is taken as the directory path itself.
    """
    if cache_dir is not None:
        if not str(cache_dir).strip():
            raise ConfigError("cache directory must be a non-empty path")
        return ResultCache(cache_dir)
    raw = os.environ.get("REPRO_CACHE")
    if raw is None or raw.strip().lower() in _FALSY:
        return None
    if raw.strip().lower() in _TRUTHY:
        return ResultCache(DEFAULT_CACHE_DIR)
    return ResultCache(raw)

"""Perf-regression dashboard over BENCH_sweep.json + run receipts.

``BENCH_sweep.json`` is the repo's performance trajectory: every
``make bench-wallclock`` / ``make bench-smoke`` run appends one entry.
The file grew organically across PRs, so entries are heterogeneous —
early ones lack provenance, later ones add cache/pool/tracer sections.
This module makes that history *queryable*:

* :func:`normalize_entry` / :func:`append_entry` — the single write
  path for new entries (satellite of PR 6): every entry gains a
  ``schema`` version tag, keys are written in stable sorted order, and
  exact duplicates (identical but for their timestamp) are dropped, so
  the file stays a clean append-only log that this module can always
  parse — including the pre-schema entries already in it.
* :func:`find_regressions` — flags entries whose throughput fell more
  than *threshold* below the best **earlier same-shape** entry.  Shape
  (:func:`shape_key`) is (benchmark, trace length, cell count, core
  count): a 30-cell 4k-instruction sweep on a 2-core host is simply
  not rate-comparable to an 8-cell 1.5k-instruction one, the same rule
  ``bench_smoke.best_comparable_rate`` applies.
* :func:`render_dashboard` — the ``repro report`` markdown: throughput
  trajectory per shape across commits, slowest cells of the latest
  full run, cache warm/cold ratios, tracer overhead trend, regression
  flags, and a summary of any :class:`~repro.analysis.provenance`
  run receipts handed in.

Nothing here imports the simulator — the dashboard renders from JSON
artifacts alone, so it works on a checkout that cannot even run a
sweep (e.g. a CI artifact viewer).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["BENCH_SCHEMA", "DEFAULT_THRESHOLD", "SHAPES", "append_entry",
           "dedup_history", "entry_identity", "find_regressions",
           "infer_shape", "load_history", "normalize_entry",
           "render_dashboard", "shape_key"]

#: Schema tag stamped on every entry written through
#: :func:`append_entry`.  v1 is the implicit schema of the organic
#: pre-PR-6 entries (no tag at all); readers treat untagged entries as
#: v1 and keep parsing them.
BENCH_SCHEMA = "bench-sweep-v2"

#: Fractional throughput drop vs the best earlier same-shape entry
#: that counts as a regression.  Matches ``bench_smoke``'s gate.
DEFAULT_THRESHOLD = 0.20

#: Fields ignored when deciding whether two entries are duplicates:
#: re-running an unchanged benchmark twice in a minute produces two
#: entries identical but for these.  ``shape`` is derived
#: deterministically (see :func:`infer_shape`), so a healed and an
#: unhealed copy of the same measurement still deduplicate.
_IDENTITY_VOLATILE = ("timestamp_utc", "schema", "shape")

#: The measurement shapes an entry can be tagged with.  ``serial`` and
#: ``parallel`` are detailed-simulation wall-clock measurements;
#: ``sampled`` entries report *effective* (represented-instructions)
#: rates, which are not comparable to detailed throughput and must
#: never feed the detailed regression guard.
SHAPES = ("serial", "parallel", "sampled")


def infer_shape(entry: dict) -> str:
    """The measurement shape of an entry, for legacy untagged entries.

    Sampled entries are recognized by their effective-rate field or
    sampling section; entries that only measured a parallel sweep are
    ``parallel``; everything else — including the historic
    ``sweep_wallclock``/``smoke_guard`` entries, whose guarded metric
    is the serial rate — is ``serial``.
    """
    shape = entry.get("shape")
    if shape in SHAPES:
        return shape
    if "effective_insts_per_second" in entry or "sampling" in entry:
        return "sampled"
    if ("parallel_insts_per_second" in entry
            and "serial_insts_per_second" not in entry):
        return "parallel"
    return "serial"


def load_history(path) -> List[dict]:
    """The benchmark history at *path* as a list (tolerant reader).

    A missing file is an empty history; a single-object file (the
    format's oldest incarnation) is a one-entry history; an unparsable
    file is treated as empty rather than killing the report.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return []
    try:
        history = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return []
    if isinstance(history, dict):
        return [history]
    if isinstance(history, list):
        return [entry for entry in history if isinstance(entry, dict)]
    return []


def normalize_entry(entry: dict) -> dict:
    """One entry in canonical form: schema-tagged, stably key-ordered.

    Entries predating the schema tag pass through unmodified except
    for ordering — their fields are already what the readers expect.
    Legacy entries with no explicit ``shape`` are healed with the
    inferred one, so every rewrite leaves a fully tagged history.
    """
    normalized = dict(entry)
    normalized.setdefault("schema", BENCH_SCHEMA)
    normalized["shape"] = infer_shape(normalized)
    return {key: normalized[key] for key in sorted(normalized)}


def entry_identity(entry: dict) -> str:
    """A stable fingerprint of an entry's *measurement* content.

    Two runs of an unchanged benchmark differ only in timestamp (and
    possibly the tag a rewrite added); everything else identical means
    the second entry adds no information to the trajectory.
    """
    content = {key: value for key, value in entry.items()
               if key not in _IDENTITY_VOLATILE}
    return json.dumps(content, sort_keys=True, default=str)


def dedup_history(history: Sequence[dict]) -> List[dict]:
    """Drop exact-duplicate entries, keeping each first occurrence."""
    seen = set()
    kept = []
    for entry in history:
        identity = entry_identity(entry)
        if identity in seen:
            continue
        seen.add(identity)
        kept.append(entry)
    return kept


def append_entry(path, entry: dict) -> List[dict]:
    """Append *entry* to the history at *path*; returns the history.

    The whole file is rewritten normalized (schema tags, stable key
    order) and deduplicated, so one append also heals a history that
    accumulated duplicates before this write path existed.
    """
    history = [normalize_entry(existing) for existing in
               load_history(path)]
    history.append(normalize_entry(entry))
    history = dedup_history(history)
    pathlib.Path(path).write_text(json.dumps(history, indent=2) + "\n")
    return history


def shape_key(entry: dict) -> Tuple:
    """What makes two entries rate-comparable.

    Includes the measurement shape: a ``sampled`` entry's effective
    rate lives on a different axis than detailed serial/parallel
    throughput, so same-shape matching alone keeps sampled entries out
    of the detailed-throughput regression guard.
    """
    return (entry.get("benchmark"), infer_shape(entry),
            entry.get("trace_length"), entry.get("cells"),
            entry.get("cpu_count"))


def find_regressions(history: Sequence[dict],
                     threshold: float = DEFAULT_THRESHOLD,
                     metric: str = "serial_insts_per_second"
                     ) -> List[dict]:
    """Entries whose *metric* dropped > *threshold* vs earlier bests.

    Each entry is judged only against **earlier** entries of the same
    shape, so a deliberate workload change (new cell count, longer
    traces) opens a fresh baseline instead of flagging forever.
    """
    best_by_shape: Dict[Tuple, Tuple[float, Optional[str]]] = {}
    flagged = []
    for index, entry in enumerate(history):
        rate = entry.get(metric)
        if not isinstance(rate, (int, float)) or rate <= 0:
            continue
        shape = shape_key(entry)
        best = best_by_shape.get(shape)
        if best is not None and rate < best[0] * (1.0 - threshold):
            flagged.append({
                "index": index,
                "benchmark": entry.get("benchmark"),
                "commit": entry.get("commit"),
                "timestamp_utc": entry.get("timestamp_utc"),
                "shape": {"shape": shape[1], "trace_length": shape[2],
                          "cells": shape[3], "cpu_count": shape[4]},
                "rate": rate,
                "best": best[0],
                "best_commit": best[1],
                "drop": round(1.0 - rate / best[0], 4),
            })
        if best is None or rate > best[0]:
            best_by_shape[shape] = (rate, entry.get("commit"))
    return flagged


# ------------------------------------------------------------ rendering --

def _fmt_rate(rate) -> str:
    return f"{rate:,.0f}" if isinstance(rate, (int, float)) else "—"


def _fmt(value, spec: str = "") -> str:
    if value is None:
        return "—"
    try:
        return format(value, spec)
    except (TypeError, ValueError):
        return str(value)


def _trajectory_section(lines: List[str], history: Sequence[dict]) -> None:
    lines.append("## Throughput trajectory")
    lines.append("")
    if not history:
        lines.append("_No benchmark history found._")
        lines.append("")
        return
    shapes: Dict[Tuple, List[dict]] = {}
    for entry in history:
        shapes.setdefault(shape_key(entry), []).append(entry)
    for shape in sorted(shapes, key=lambda s: str(s)):
        entries = shapes[shape]
        benchmark, kind, length, cells, cores = shape
        lines.append(f"### {benchmark or 'unknown'} [{kind}] — "
                     f"{cells} cells × "
                     f"{_fmt(length, ',')} insts (cpu_count={cores})")
        lines.append("")
        if kind == "sampled":
            lines.append("| commit | timestamp (UTC) | effective insts/s "
                         "| speedup | max IPC err |")
            lines.append("|---|---|---:|---:|---:|")
            for entry in entries:
                lines.append(
                    f"| {entry.get('commit') or '—'} "
                    f"| {entry.get('timestamp_utc') or '—'} "
                    f"| {_fmt_rate(entry.get('effective_insts_per_second'))} "
                    f"| {_fmt(entry.get('speedup'), '.1f')} "
                    f"| {_fmt(entry.get('max_ipc_error'), '.2%')} |")
        else:
            lines.append("| commit | timestamp (UTC) | serial insts/s "
                         "| parallel insts/s | speedup |")
            lines.append("|---|---|---:|---:|---:|")
            for entry in entries:
                lines.append(
                    f"| {entry.get('commit') or '—'} "
                    f"| {entry.get('timestamp_utc') or '—'} "
                    f"| {_fmt_rate(entry.get('serial_insts_per_second'))} "
                    f"| {_fmt_rate(entry.get('parallel_insts_per_second'))} "
                    f"| {_fmt(entry.get('speedup'), '.2f')} |")
        lines.append("")


def _latest_with(history: Sequence[dict], field: str) -> Optional[dict]:
    for entry in reversed(history):
        if entry.get(field):
            return entry
    return None


def _slowest_section(lines: List[str], history: Sequence[dict]) -> None:
    entry = _latest_with(history, "slowest_cells")
    if entry is None:
        return
    lines.append("## Slowest cells (latest full run)")
    lines.append("")
    lines.append(f"From the `{entry.get('benchmark')}` entry at commit "
                 f"`{entry.get('commit') or 'unknown'}`:")
    lines.append("")
    lines.append("| workload | clusters | seconds |")
    lines.append("|---|---:|---:|")
    for cell in entry["slowest_cells"]:
        lines.append(f"| {cell.get('workload')} | {cell.get('clusters')} "
                     f"| {_fmt(cell.get('seconds'), '.3f')} |")
    lines.append("")


def _cache_section(lines: List[str], history: Sequence[dict]) -> None:
    entries = [entry for entry in history
               if isinstance(entry.get("cache"), dict)]
    if not entries:
        return
    lines.append("## Result-cache cold → warm")
    lines.append("")
    lines.append("| commit | cold s | warm s | warm speedup | warm hits |")
    lines.append("|---|---:|---:|---:|---:|")
    for entry in entries:
        cache = entry["cache"]
        lines.append(
            f"| {entry.get('commit') or '—'} "
            f"| {_fmt(cache.get('cold_seconds'), '.2f')} "
            f"| {_fmt(cache.get('warm_seconds'), '.2f')} "
            f"| {_fmt(cache.get('warm_speedup'), '.1f')} "
            f"| {_fmt(cache.get('warm_hits'))} |")
    lines.append("")


def _tracer_section(lines: List[str], history: Sequence[dict]) -> None:
    entries = [entry for entry in history
               if isinstance(entry.get("tracer_overhead"), dict)]
    if not entries:
        return
    lines.append("## Tracer overhead")
    lines.append("")
    lines.append("| commit | ring | jsonl |")
    lines.append("|---|---:|---:|")
    for entry in entries:
        overhead = entry["tracer_overhead"]
        lines.append(
            f"| {entry.get('commit') or '—'} "
            f"| {_fmt(overhead.get('ring_overhead'), '+.1%')} "
            f"| {_fmt(overhead.get('jsonl_overhead'), '+.1%')} |")
    lines.append("")


def _regression_section(lines: List[str], history: Sequence[dict],
                        threshold: float) -> List[dict]:
    regressions = find_regressions(history, threshold=threshold)
    lines.append(f"## Regressions (> {threshold:.0%} below best "
                 f"same-shape entry)")
    lines.append("")
    if not regressions:
        lines.append("None detected.")
        lines.append("")
        return regressions
    lines.append("| # | benchmark | commit | rate | best (commit) "
                 "| drop |")
    lines.append("|---:|---|---|---:|---|---:|")
    for flag in regressions:
        lines.append(
            f"| {flag['index']} | {flag['benchmark']} "
            f"| {flag.get('commit') or '—'} "
            f"| {_fmt_rate(flag['rate'])} "
            f"| {_fmt_rate(flag['best'])} "
            f"({flag.get('best_commit') or '—'}) "
            f"| {flag['drop']:.1%} |")
    lines.append("")
    return regressions


def _receipt_section(lines: List[str], receipts: Sequence[dict]) -> None:
    if not receipts:
        return
    lines.append("## Run receipts")
    lines.append("")
    lines.append("| label | commit | cells | ok | failed | cache h/m/s "
                 "| total s |")
    lines.append("|---|---|---:|---:|---:|---|---:|")
    for receipt in receipts:
        counts = receipt.get("counts", {})
        cache = receipt.get("cache", {})
        run = receipt.get("run", {})
        lines.append(
            f"| {receipt.get('label', '—')} "
            f"| {receipt.get('commit') or '—'} "
            f"| {_fmt(counts.get('cells'))} "
            f"| {_fmt(counts.get('completed'))} "
            f"| {_fmt(counts.get('failed'))} "
            f"| {_fmt(cache.get('hits'))}/{_fmt(cache.get('misses'))}/"
            f"{_fmt(cache.get('stores'))} "
            f"| {_fmt(run.get('total_seconds'), '.2f')} |")
    lines.append("")


def render_dashboard(history: Sequence[dict],
                     receipts: Sequence[dict] = (),
                     threshold: float = DEFAULT_THRESHOLD) -> str:
    """The full markdown dashboard; see module docstring for sections."""
    lines: List[str] = ["# Sweep performance dashboard", ""]
    lines.append(f"{len(history)} benchmark entr"
                 f"{'y' if len(history) == 1 else 'ies'}, "
                 f"{len(receipts)} receipt(s).")
    lines.append("")
    _regression_section(lines, history, threshold)
    _trajectory_section(lines, history)
    _slowest_section(lines, history)
    _cache_section(lines, history)
    _tracer_section(lines, history)
    _receipt_section(lines, receipts)
    return "\n".join(lines).rstrip() + "\n"

"""Pipeline timeline capture and rendering.

Records, for a window of the dynamic stream, the cycle each instruction
passed every pipeline stage — fetch, dispatch (decode/rename/steer),
issue, writeback, retire — and renders the classic pipeline diagram.
Reissues after value mispredictions show up as extra issue marks, and
copies/verification-copies appear as their own rows, which makes the
mechanics of §2.1/§2.2 directly visible:

    seq  cl op       F--D--I==W-----R
    ...

Stage letters: F fetch, D dispatch, I issue (lower-case ``i`` for a
reissue), W writeback/complete, R retire.

The timeline is a pure fold over the structured event stream emitted by
:class:`repro.obs.EventTracer` — the capture run is an ordinary
:func:`repro.core.simulator.simulate` call with a tracer attached, so
the timing behaviour is exactly that of an untraced run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.config import ProcessorConfig
from ..core.simulator import simulate
from ..isa.instruction import DynInst
from ..obs.events import (EV_COMMIT, EV_COMPLETE, EV_DISPATCH, EV_ISSUE,
                          KIND_NAMES)
from ..obs.sinks import ListSink
from ..obs.tracer import EventTracer

__all__ = ["timeline_from_events", "capture_timeline", "render_timeline",
           "pipeline_timeline"]


def timeline_from_events(events: Iterable[tuple]) -> Dict[int, dict]:
    """Fold a raw event stream into per-uop stage timestamps.

    Returns a map of uop order -> event dict with keys ``fetch``,
    ``dispatch``, ``issues`` (list), ``complete``, ``commit``, plus
    identification (``kind``, ``op``, ``seq``, ``pc``, ``cluster``).
    A reissued uop accumulates extra entries in ``issues`` and its
    ``complete`` reflects the final (architecturally used) writeback.
    """
    timeline: Dict[int, dict] = {}
    for event in events:
        cycle, code = event[0], event[1]
        if code == EV_DISPATCH:
            order, kind, seq, pc, cluster, op, fetch_cycle = event[2:]
            timeline[order] = {
                "kind": KIND_NAMES[kind],
                "op": op,
                "seq": seq,
                "pc": pc,
                "cluster": cluster,
                "fetch": fetch_cycle,
                "dispatch": cycle,
                "issues": [],
                "complete": None,
                "commit": None,
            }
        elif code == EV_ISSUE:
            entry = timeline.get(event[2])
            if entry is not None:
                entry["issues"].append(cycle)
        elif code == EV_COMPLETE:
            entry = timeline.get(event[2])
            if entry is not None:
                entry["complete"] = cycle
        elif code == EV_COMMIT:
            entry = timeline.get(event[2])
            if entry is not None:
                entry["commit"] = cycle
    return timeline


def capture_timeline(trace: Iterable[DynInst], config: ProcessorConfig,
                     max_cycles: Optional[int] = None) -> Dict[int, dict]:
    """Run *trace* and return the recorded per-uop timeline."""
    sink = ListSink()
    tracer = EventTracer(sink)
    simulate(iter(list(trace)), config, max_cycles=max_cycles,
             tracer=tracer)
    return timeline_from_events(sink.events)


def render_timeline(timeline: Dict[int, dict], first_seq: int = 0,
                    count: int = 24, max_width: int = 64) -> str:
    """Render a window of the timeline as a pipeline diagram."""
    rows: List[dict] = [entry for order, entry in sorted(timeline.items())
                        if entry["seq"] is None
                        or first_seq <= entry["seq"] < first_seq + count]
    rows = [entry for entry in rows
            if entry["seq"] is not None or _helper_in_window(
                entry, first_seq, count)]
    if not rows:
        return "(empty timeline window)"
    base = min(entry["fetch"] for entry in rows)
    lines = []
    for entry in rows:
        marks: Dict[int, str] = {}
        def put(cycle, letter):
            if cycle is None:
                return
            column = cycle - base
            if 0 <= column < max_width and column not in marks:
                marks[column] = letter
        put(entry["fetch"], "F")
        put(entry["dispatch"], "D")
        for index, cycle in enumerate(entry["issues"]):
            put(cycle, "I" if index == 0 else "i")
        put(entry["complete"], "W")
        put(entry["commit"], "R")
        track = "".join(marks.get(i, ".")
                        for i in range(max(marks, default=0) + 1))
        seq = entry["seq"] if entry["seq"] is not None else "-"
        label = (entry["op"] if entry["kind"] == "inst"
                 else f"[{entry['kind']}]")
        lines.append(f"{str(seq):>5} c{entry['cluster']} "
                     f"{label:<8} {track}")
    header = (f"{'seq':>5} cl {'op':<8} cycles from {base} "
              f"(F fetch, D dispatch, I/i issue, W writeback, R retire)")
    return header + "\n" + "\n".join(lines)


def _helper_in_window(entry: dict, first_seq: int, count: int) -> bool:
    # Copies carry their consumer's DynInst, so seq is never None in
    # practice; keep helpers whose consumer lies in the window.
    return True


def pipeline_timeline(trace, config: ProcessorConfig, first_seq: int = 0,
                      count: int = 24) -> str:
    """One-call convenience: capture and render a pipeline diagram."""
    timeline = capture_timeline(trace, config)
    return render_timeline(timeline, first_seq, count)

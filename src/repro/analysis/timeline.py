"""Pipeline timeline capture and rendering.

Records, for a window of the dynamic stream, the cycle each instruction
passed every pipeline stage — fetch, dispatch (decode/rename/steer),
issue, writeback, retire — and renders the classic pipeline diagram.
Reissues after value mispredictions show up as extra issue marks, and
copies/verification-copies appear as their own rows, which makes the
mechanics of §2.1/§2.2 directly visible:

    seq  cl op       F--D--I==W-----R
    ...

Stage letters: F fetch, D dispatch, I issue (lower-case ``i`` for a
reissue), W writeback/complete, R retire.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.config import ProcessorConfig
from ..core.processor import Processor
from ..isa.instruction import DynInst

__all__ = ["TimelineProcessor", "capture_timeline", "render_timeline",
           "pipeline_timeline"]


class TimelineProcessor(Processor):
    """A Processor that records per-uop stage timestamps.

    ``timeline`` maps uop order -> event dict with keys ``fetch``,
    ``dispatch``, ``issues`` (list), ``complete``, ``commit``, plus
    identification (``kind``, ``op``, ``seq``, ``pc``, ``cluster``).
    """

    def __init__(self, config: ProcessorConfig, trace) -> None:
        super().__init__(config, trace)
        self.timeline: Dict[int, dict] = {}

    def _dispatch(self, fetched, cluster_id, plan, cycle):
        first_order = self._next_order
        super()._dispatch(fetched, cluster_id, plan, cycle)
        # The uops just appended (instruction + helpers) are the ROB tail.
        count = self._next_order - first_order
        for uop in list(self.rob)[-count:]:
            self.timeline[uop.order] = {
                "kind": uop.kind_name(),
                "op": uop.dyn.op.name if uop.dyn is not None else "?",
                "seq": uop.dyn.seq if uop.dyn is not None else None,
                "pc": uop.dyn.pc if uop.dyn is not None else None,
                "cluster": uop.cluster,
                "fetch": fetched.fetch_cycle,
                "dispatch": cycle,
                "issues": [],
                "complete": None,
                "commit": None,
            }

    def _mark_issued(self, uop, cycle):
        super()._mark_issued(uop, cycle)
        entry = self.timeline.get(uop.order)
        if entry is not None:
            entry["issues"].append(cycle)

    def _complete(self, uop, cycle):
        super()._complete(uop, cycle)
        entry = self.timeline.get(uop.order)
        if entry is not None and uop.complete_cycle == cycle:
            entry["complete"] = cycle

    def _commit(self, cycle):
        before = {uop.order for uop in self.rob}
        retired = super()._commit(cycle)
        if retired:
            after = {uop.order for uop in self.rob}
            for order in before - after:
                entry = self.timeline.get(order)
                if entry is not None:
                    entry["commit"] = cycle
        return retired


def capture_timeline(trace: Iterable[DynInst], config: ProcessorConfig,
                     max_cycles: Optional[int] = None) -> Dict[int, dict]:
    """Run *trace* and return the recorded per-uop timeline."""
    processor = TimelineProcessor(config, iter(list(trace)))
    processor.run(max_cycles=max_cycles)
    return processor.timeline


def render_timeline(timeline: Dict[int, dict], first_seq: int = 0,
                    count: int = 24, max_width: int = 64) -> str:
    """Render a window of the timeline as a pipeline diagram."""
    rows: List[dict] = [entry for order, entry in sorted(timeline.items())
                        if entry["seq"] is None
                        or first_seq <= entry["seq"] < first_seq + count]
    rows = [entry for entry in rows
            if entry["seq"] is not None or _helper_in_window(
                entry, first_seq, count)]
    if not rows:
        return "(empty timeline window)"
    base = min(entry["fetch"] for entry in rows)
    lines = []
    for entry in rows:
        marks: Dict[int, str] = {}
        def put(cycle, letter):
            if cycle is None:
                return
            column = cycle - base
            if 0 <= column < max_width and column not in marks:
                marks[column] = letter
        put(entry["fetch"], "F")
        put(entry["dispatch"], "D")
        for index, cycle in enumerate(entry["issues"]):
            put(cycle, "I" if index == 0 else "i")
        put(entry["complete"], "W")
        put(entry["commit"], "R")
        track = "".join(marks.get(i, ".")
                        for i in range(max(marks, default=0) + 1))
        seq = entry["seq"] if entry["seq"] is not None else "-"
        label = (entry["op"] if entry["kind"] == "inst"
                 else f"[{entry['kind']}]")
        lines.append(f"{str(seq):>5} c{entry['cluster']} "
                     f"{label:<8} {track}")
    header = (f"{'seq':>5} cl {'op':<8} cycles from {base} "
              f"(F fetch, D dispatch, I/i issue, W writeback, R retire)")
    return header + "\n" + "\n".join(lines)


def _helper_in_window(entry: dict, first_seq: int, count: int) -> bool:
    # Copies carry their consumer's DynInst, so seq is never None in
    # practice; keep helpers whose consumer lies in the window.
    return True


def pipeline_timeline(trace, config: ProcessorConfig, first_seq: int = 0,
                      count: int = 24) -> str:
    """One-call convenience: capture and render a pipeline diagram."""
    timeline = capture_timeline(trace, config)
    return render_timeline(timeline, first_seq, count)

"""Per-run provenance receipts: what ran, where, from which sources.

Every sweep can leave a ``run_receipt.json`` next to its results — a
self-describing record in the shape of the ``build_receipt.json``
exemplar (SNIPPETS.md Snippet 3) that makes any result attributable
after the fact and is the substrate the future distributed experiment
service (ROADMAP item 3) fans jobs out over:

* **identity** — per-cell config canonical hashes
  (:func:`config_sha256` over
  :meth:`~repro.core.ProcessorConfig.canonical_json`), workload names,
  per-cell seeds, trace lengths;
* **sources** — the :func:`repro.analysis.cache.code_version` source
  fingerprint plus the git commit (``-dirty`` suffixed when the
  checkout has local changes);
* **execution** — host info, jobs/chunksize, total and per-cell
  wall-clock, cache hit/miss/store counters that match the number of
  simulate calls actually made (validated by
  :func:`repro.obs.schema.validate_receipt`).

Receipts are written atomically (temp file + ``os.replace``), the same
contract the result cache honours, so a crashed writer can never leave
a truncated receipt behind.

Determinism: :meth:`RunReceipt.deterministic_dict` strips the fields
that legitimately vary between hosts and runs (timestamps, host info,
wall-clock, worker topology); what remains is byte-identical between
serial and parallel executions of the same sweep — the tier-1 suite
asserts this.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import subprocess
import tempfile
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from ..obs.schema import RECEIPT_SCHEMA
from ..obs.telemetry import CellTelemetry, SweepMonitor

__all__ = ["RECEIPT_SCHEMA", "RunReceipt", "config_sha256", "git_commit",
           "host_info"]

#: Receipt fields (top-level or per-cell) that legitimately differ
#: between two runs of the same sweep: wall-clock, host identity,
#: worker topology.  ``deterministic_dict`` strips them.
VOLATILE_RECEIPT_FIELDS = frozenset({"created_utc", "host", "run",
                                     "commit"})
VOLATILE_CELL_FIELDS = frozenset({"seconds", "stored"})


def config_sha256(n_clusters: int, predictor: str = "none",
                  steering: str = "baseline",
                  overrides: tuple = ()) -> Optional[str]:
    """Canonical hash of a fully resolved processor configuration.

    Two cells that spell their overrides differently but resolve to
    the same machine share a hash; an invalid configuration (the cell
    would fail with :class:`~repro.errors.ConfigError` anyway) yields
    ``None`` rather than raising — the receipt still records the cell.
    """
    from ..core import make_config
    try:
        config = make_config(n_clusters, predictor=predictor,
                             steering=steering, **dict(overrides))
    except Exception:
        return None
    blob = json.dumps(config.canonical_json(), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def git_commit(repo_root: Optional[os.PathLike] = None) -> Optional[str]:
    """The short HEAD commit (``-dirty`` suffixed), or ``None``.

    Outside a git checkout — or with git unavailable — provenance
    degrades to ``None`` instead of failing the run.
    """
    if repo_root is None:
        repo_root = pathlib.Path(__file__).resolve().parents[3]
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=repo_root,
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
        if commit is not None:
            dirty = subprocess.run(
                ["git", "status", "--porcelain"], cwd=repo_root,
                capture_output=True, text=True, timeout=10,
            ).stdout.strip()
            if dirty:
                commit += "-dirty"
    except (OSError, subprocess.TimeoutExpired):
        commit = None
    return commit


def host_info() -> Dict[str, Any]:
    """Where this run executed (platform, interpreter, core count)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def _cell_record(cell: CellTelemetry) -> Dict[str, Any]:
    """One receipt cell entry from the monitor's telemetry record."""
    return {
        "key": cell.key,
        "workload": cell.workload,
        "config": cell.config,
        "config_sha256": config_sha256(cell.n_clusters, cell.predictor,
                                       cell.steering, cell.overrides),
        "seed": cell.seed,
        "dataset": cell.dataset,
        "length": cell.length,
        "sampling": cell.sampling,
        "seconds": round(cell.seconds, 6),
        "cached": cell.cached,
        "stored": cell.stored,
        "retries": cell.retries,
        "ok": cell.ok,
    }


@dataclass
class RunReceipt:
    """A self-describing provenance record of one (or more) sweeps."""

    label: str
    created_utc: str
    code_version: str
    commit: Optional[str]
    host: Dict[str, Any]
    run: Dict[str, Any]
    cache: Dict[str, Any]
    counts: Dict[str, Any]
    cells: List[Dict[str, Any]] = field(default_factory=list)
    schema: str = RECEIPT_SCHEMA

    @classmethod
    def from_monitor(cls, monitor: SweepMonitor, label: Optional[str] = None,
                     cache_enabled: Optional[bool] = None,
                     sweeps=None) -> "RunReceipt":
        """Assemble a receipt from everything *monitor* observed.

        A monitor that watched several sweeps (the ``ablations``
        command) yields one receipt whose cells and counters aggregate
        across them; pass *sweeps* (a subset of ``monitor.sweeps``) to
        scope the receipt to specific sweeps — ``run_cells`` uses this
        so a per-sweep receipt under a long-lived monitor covers only
        its own cells.  ``cache_enabled`` defaults to "any cell
        resolved from or entered the cache".
        """
        from .cache import code_version
        if sweeps is None:
            sweeps = monitor.sweeps
        cells = [cell for sweep in sweeps for cell in sweep.cells]
        records = [_cell_record(cell) for cell in cells]
        hits = sum(1 for cell in cells if cell.cached)
        stores = sum(1 for cell in cells if cell.stored)
        simulated = sum(1 for cell in cells
                        if cell.ok is not None and not cell.cached)
        if cache_enabled is None:
            cache_enabled = bool(hits or stores)
        if label is None:
            label = sweeps[0].label if sweeps else "sweep"
        return cls(
            label=label,
            created_utc=datetime.now(timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"),
            code_version=code_version(),
            commit=git_commit(),
            host=host_info(),
            run={
                "jobs": max((sweep.jobs for sweep in sweeps), default=1),
                "chunksize": max((sweep.chunksize for sweep in sweeps),
                                 default=1),
                "sweeps": len(sweeps),
                "total_seconds": round(sum(sweep.seconds
                                           for sweep in sweeps), 6),
            },
            cache={
                "enabled": bool(cache_enabled),
                "hits": hits,
                "misses": simulated if cache_enabled else 0,
                "stores": stores,
            },
            counts={
                "cells": len(cells),
                "completed": sum(1 for cell in cells if cell.ok),
                "failed": sum(1 for cell in cells if cell.ok is False),
                "simulated": simulated,
            },
            cells=records,
        )

    # ------------------------------------------------------------- views --

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def deterministic_dict(self) -> Dict[str, Any]:
        """The receipt minus every host/wall-clock-dependent field.

        What remains — cell identities, config hashes, seeds, cache
        and outcome counts, the code fingerprint — must be identical
        between serial and parallel runs of the same sweep.
        """
        data = {key: value for key, value in self.to_dict().items()
                if key not in VOLATILE_RECEIPT_FIELDS}
        data["cells"] = [
            {key: value for key, value in cell.items()
             if key not in VOLATILE_CELL_FIELDS}
            for cell in data["cells"]]
        # Worker-side stores depend on cache state, not the sweep.
        data["cache"] = {key: value
                         for key, value in data["cache"].items()
                         if key != "stores"}
        return data

    def canonical_json(self) -> str:
        """Stable-key-ordered JSON of the full receipt."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2,
                          default=str)

    # --------------------------------------------------------------- I/O --

    def write(self, path) -> pathlib.Path:
        """Write the receipt atomically (temp file + rename)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self.canonical_json() + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @staticmethod
    def read(path) -> Dict[str, Any]:
        """Load a receipt file back as a plain dict."""
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

"""Experiment drivers and reporting for every table/figure of the paper."""

from .experiments import (AblationResult, ErrorLedger, Figure2Result,
                          Figure3Result, Figure4Result, Figure5Result,
                          GracefulSweepResult, HeadlineResult, LedgerEntry,
                          run_ablation_free_copies, run_graceful_sweep,
                          run_one_safe,
                          run_ablation_modified, run_ablation_predictor,
                          run_ablation_rename2,
                          run_figure2, run_figure3, run_figure4_bandwidth,
                          run_figure4_latency, run_figure5, run_headline,
                          run_ablation_static, run_one,
                          run_predictor_comparison, run_robustness,
                          run_scaling,
                          ScalingResult, selected_workloads,
                          simulate_cell, trace_length)
from .cache import (CacheStats, ResultCache, active_cache, code_version,
                    default_cache, resolve_cache, use_cache)
from .export import (ablation_rows, figure2_rows, figure3_rows,
                     figure4_rows, figure5_rows, headline_rows,
                     interval_rows, scaling_rows, to_csv, to_json)
from .metrics import ipcr, mean, pct_change, suite_mean
from .perf_report import (BENCH_SCHEMA, append_entry, dedup_history,
                          find_regressions, load_history, normalize_entry,
                          render_dashboard, shape_key)
from .provenance import RunReceipt, config_sha256, git_commit, host_info
from .parallel import (CellFailure, CellOutcome, SweepCell, WorkerPool,
                       active_pool, cell_seed, is_transient_error,
                       resolve_chunksize, resolve_jobs,
                       resolve_trace_length, run_cells,
                       simulate_sweep_cell)
from .report import (bar, format_ablation, format_figure2, format_figure3,
                     format_figure4, format_figure5, format_headline, table)
from .sampling import (SampledResult, SampleWindow, SamplingConfig,
                       simulate_sampled)
from .timeline import (capture_timeline, pipeline_timeline,
                       render_timeline, timeline_from_events)

__all__ = [
    "AblationResult", "Figure2Result", "Figure3Result", "Figure4Result",
    "Figure5Result", "HeadlineResult",
    "ErrorLedger", "LedgerEntry", "GracefulSweepResult",
    "run_one_safe", "run_graceful_sweep",
    "run_ablation_free_copies",
    "run_ablation_modified", "run_ablation_predictor",
    "run_ablation_rename2", "run_figure2",
    "run_figure3", "run_figure4_bandwidth", "run_figure4_latency",
    "run_figure5", "run_headline", "run_one",
    "run_predictor_comparison", "run_ablation_static",
    "run_scaling", "ScalingResult", "run_robustness",
    "simulate_cell", "selected_workloads",
    "trace_length",
    "CellFailure", "CellOutcome", "SweepCell", "WorkerPool",
    "active_pool", "cell_seed",
    "is_transient_error", "resolve_chunksize", "resolve_jobs",
    "resolve_trace_length", "run_cells", "simulate_sweep_cell",
    "CacheStats", "ResultCache", "active_cache", "code_version",
    "default_cache", "resolve_cache", "use_cache",
    "BENCH_SCHEMA", "append_entry", "dedup_history", "find_regressions",
    "load_history", "normalize_entry", "render_dashboard", "shape_key",
    "RunReceipt", "config_sha256", "git_commit", "host_info",
    "ipcr", "mean", "pct_change", "suite_mean",
    "ablation_rows", "figure2_rows", "figure3_rows", "figure4_rows",
    "figure5_rows", "headline_rows", "interval_rows", "scaling_rows",
    "to_csv", "to_json",
    "bar", "format_ablation", "format_figure2", "format_figure3",
    "format_figure4", "format_figure5", "format_headline", "table",
    "capture_timeline", "pipeline_timeline",
    "render_timeline", "timeline_from_events",
    "SampledResult", "SampleWindow", "SamplingConfig", "simulate_sampled",
]

"""Experiment drivers: one function per table/figure of the paper.

Every driver returns a plain-data result object that the report module
renders and the benchmarks print; EXPERIMENTS.md records the outputs
against the paper's numbers.

Each driver decomposes its sweep into independent
:class:`~repro.analysis.parallel.SweepCell` descriptions and hands the
whole list to :func:`~repro.analysis.parallel.run_cells`, so any sweep
can fan out across worker processes via the ``jobs=`` argument (or the
``REPRO_JOBS`` environment variable) while staying metric-identical to
the serial path.

Environment knobs (validated once at sweep setup, never read inside
worker processes):

* ``REPRO_TRACE_LEN`` — dynamic instructions per benchmark (default
  12000; the paper ran Mediabench to completion on a C simulator, a
  Python model uses reduced steady-state runs).
* ``REPRO_WORKLOADS`` — comma-separated subset of the suite.
* ``REPRO_JOBS`` — sweep worker processes (default 1 = serial;
  0 = all cores).
* ``REPRO_CHUNKSIZE`` — cells per worker dispatch (default: a
  four-chunks-per-worker heuristic; see docs/PERFORMANCE.md).
* ``REPRO_CACHE`` — opt-in content-addressed result cache directory
  (see :mod:`repro.analysis.cache`).

Several drivers in one session should share a
:class:`~repro.analysis.parallel.WorkerPool` (``with WorkerPool(jobs):``)
so worker startup is paid once, not per figure.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import SimResult, make_config, simulate
from ..errors import WorkloadError
from ..obs.telemetry import active_monitor
from ..workloads import workload_names, workload_trace
from .metrics import mean, pct_change
from .parallel import (SweepCell, active_pool, is_transient_error,
                       resolve_jobs, resolve_trace_length, run_cells,
                       simulate_sweep_cell)

__all__ = [
    "trace_length", "selected_workloads", "run_one",
    "LedgerEntry", "ErrorLedger", "run_one_safe",
    "GracefulSweepResult", "run_graceful_sweep",
    "Figure2Result", "run_figure2",
    "Figure3Result", "run_figure3",
    "Figure4Result", "run_figure4_latency", "run_figure4_bandwidth",
    "Figure5Result", "run_figure5",
    "AblationResult", "run_ablation_modified", "run_ablation_rename2",
    "run_ablation_predictor", "run_ablation_free_copies",
    "run_predictor_comparison", "run_ablation_static", "simulate_cell",
    "ScalingResult", "run_scaling", "run_robustness",
    "HeadlineResult", "run_headline",
]


def trace_length(default: int = 12_000) -> int:
    """Dynamic trace length, overridable via ``REPRO_TRACE_LEN``.

    A malformed or non-positive override raises
    :class:`~repro.errors.ConfigError` (not a bare ``ValueError``), so
    sweeps fail at setup with an actionable message instead of deep
    inside a driver loop.
    """
    return resolve_trace_length(None, default=default)


def selected_workloads() -> List[str]:
    """Suite subset, overridable via ``REPRO_WORKLOADS``."""
    env = os.environ.get("REPRO_WORKLOADS")
    if not env:
        return workload_names()
    names = [name.strip() for name in env.split(",") if name.strip()]
    known = set(workload_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise WorkloadError(
            f"unknown workloads in REPRO_WORKLOADS: {unknown}")
    return names


def run_one(workload: str, n_clusters: int, predictor: str = "none",
            steering: str = "baseline", length: Optional[int] = None,
            seed: int = 0, **overrides) -> SimResult:
    """Simulate one (workload, configuration) cell."""
    cell = SweepCell(key=None, workload=workload, n_clusters=n_clusters,
                     predictor=predictor, steering=steering,
                     length=resolve_trace_length(length), seed=seed,
                     overrides=SweepCell.pack_overrides(overrides))
    return simulate_sweep_cell(cell)


def _cells_for(names: Sequence[str], specs: Sequence[tuple],
               length: int) -> List[SweepCell]:
    """Cross *names* with (n_clusters, predictor, steering, overrides)
    tuples into cells keyed ``(name,) + spec[:3]``-style by the caller.

    *specs* entries are ``(key_suffix, n_clusters, predictor, steering,
    overrides_dict)``; the cell key becomes ``(name, key_suffix)``.
    """
    cells: List[SweepCell] = []
    for name in names:
        for key_suffix, n_clusters, predictor, steering, overrides in specs:
            cells.append(SweepCell(
                key=(name, key_suffix), workload=name,
                n_clusters=n_clusters, predictor=predictor,
                steering=steering, length=length,
                overrides=SweepCell.pack_overrides(overrides)))
    return cells


# --------------------------------------------------- graceful degradation --

@dataclass
class LedgerEntry:
    """One failed simulation attempt inside a sweep."""

    workload: str
    config: str
    attempt: int
    error_type: str
    message: str

    def render(self) -> str:
        return (f"{self.workload} [{self.config}] attempt {self.attempt}: "
                f"{self.error_type}: {self.message}")


@dataclass
class ErrorLedger:
    """Failures collected by a sweep that refused to abort.

    A multi-hour sweep must not lose every finished cell to one bad
    (workload, configuration) pair, but it must not lose the *failure*
    either — each one lands here with enough context to replay it.
    """

    entries: List[LedgerEntry] = field(default_factory=list)

    def record(self, workload: str, config: str, attempt: int,
               error: BaseException) -> None:
        self.record_failure(workload, config, attempt,
                            type(error).__name__, str(error))

    def record_failure(self, workload: str, config: str, attempt: int,
                       error_type: str, message: str) -> None:
        """Record a failure from its already-flattened description.

        Worker processes report failures as (type name, message) pairs —
        exception objects do not survive pickling reliably — so this is
        the form the parallel runner records.
        """
        self.entries.append(LedgerEntry(
            workload, config, attempt, error_type, message))

    @property
    def failed_cells(self) -> List[Tuple[str, str]]:
        """Distinct (workload, config) pairs that never succeeded."""
        seen: List[Tuple[str, str]] = []
        for entry in self.entries:
            key = (entry.workload, entry.config)
            if key not in seen:
                seen.append(key)
        return seen

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def render(self) -> str:
        if not self.entries:
            return "error ledger: clean (no failures)"
        lines = [f"error ledger: {len(self.entries)} failed attempt(s)"]
        lines += [f"  {entry.render()}" for entry in self.entries]
        return "\n".join(lines)


def run_one_safe(workload: str, n_clusters: int, predictor: str = "none",
                 steering: str = "baseline", length: Optional[int] = None,
                 ledger: Optional[ErrorLedger] = None, retries: int = 1,
                 **overrides) -> Optional[SimResult]:
    """:func:`run_one` that degrades gracefully instead of aborting.

    A cell failing with a *transient* error is retried up to *retries*
    more times (an injected-fault run tripping a watchdog, a flaky
    harness — these can pass on replay); a cell failing with a
    *deterministic* error (bad config, unknown workload, divergence,
    deadlock — see
    :data:`~repro.analysis.parallel.DETERMINISTIC_ERRORS`) is ledgered
    immediately, because the simulator is deterministic and the replay
    would fail identically, doubling the cost of the slowest failures.
    Every failed attempt is recorded in *ledger*.  Returns ``None``
    when no attempt succeeded.
    """
    label = f"{n_clusters}cl/{predictor}/{steering}"
    for attempt in range(1 + max(0, retries)):
        try:
            return run_one(workload, n_clusters, predictor=predictor,
                           steering=steering, length=length, **overrides)
        except Exception as error:  # noqa: BLE001 - the sweep must survive
            if ledger is not None:
                ledger.record(workload, label, attempt + 1, error)
            if not is_transient_error(error):
                return None  # deterministic: replay would fail identically
    return None


@dataclass
class GracefulSweepResult:
    """Completed cells plus the ledger of the ones that failed."""

    ipc: Dict[Tuple[str, str], float] = field(default_factory=dict)
    ledger: ErrorLedger = field(default_factory=ErrorLedger)

    @property
    def completed(self) -> int:
        return len(self.ipc)


def run_graceful_sweep(workloads: Sequence[str] = None,
                       configs: Sequence[Tuple[int, str, str]] = (
                           (4, "none", "baseline"), (4, "stride", "vpb")),
                       length: Optional[int] = None,
                       retries: int = 1,
                       jobs: Optional[int] = None) -> GracefulSweepResult:
    """Sweep (workload x config) cells, never aborting on a bad cell.

    The robustness harness's answer to a poisoned workload or a
    pathological configuration: every healthy cell still produces its
    IPC, and every failure is in ``result.ledger``.  With ``jobs > 1``
    the cells fan out across worker processes; ledger entries and
    results are collected in cell order on both paths, so the outcome
    is identical regardless of worker count.
    """
    length = resolve_trace_length(length)
    pool = active_pool()
    if jobs is None and pool is not None:
        jobs = pool.jobs
    jobs = resolve_jobs(jobs)
    names = list(workloads or selected_workloads())
    result = GracefulSweepResult()
    cells = [SweepCell(key=(name, f"{n}cl/{predictor}/{steering}"),
                       workload=name, n_clusters=n, predictor=predictor,
                       steering=steering, length=length)
             for name in names for n, predictor, steering in configs]
    if jobs <= 1:
        # Serial path: route through run_one_safe (same classification,
        # same ledger shape) so in-process harness hooks apply.  It
        # bypasses run_cells, so the sweep telemetry is emitted here —
        # the same event sequence, with sweep_done in a finally block
        # (crash-flush).
        monitor = active_monitor()
        if monitor is not None:
            monitor.sweep_start("graceful-sweep", cells, jobs=1,
                                chunksize=1)
        try:
            for index, cell in enumerate(cells):
                if monitor is not None:
                    monitor.cell_start(index)
                already = len(result.ledger.entries)
                start = time.perf_counter()
                sim = run_one_safe(cell.workload, cell.n_clusters,
                                   predictor=cell.predictor,
                                   steering=cell.steering, length=length,
                                   ledger=result.ledger, retries=retries)
                if monitor is not None:
                    for entry in result.ledger.entries[already:]:
                        monitor.cell_retry(index, entry.attempt,
                                           entry.error_type)
                    monitor.cell_done(
                        index, seconds=time.perf_counter() - start,
                        ok=sim is not None)
                if sim is not None:
                    result.ipc[cell.key] = sim.ipc
        finally:
            if monitor is not None:
                monitor.sweep_done()
        return result
    sims = run_cells(cells, jobs=jobs, ledger=result.ledger,
                     retries=retries, label="graceful-sweep")
    result.ipc = {key: sim.ipc for key, sim in sims.items()}
    return result


# --------------------------------------------------------------- Figure 2 --

class Figure2Result:
    """IPC of 1/2/4 clusters with and without value prediction (Fig. 2).

    ``ipc[benchmark][(n_clusters, predict)]`` plus suite averages.
    """

    CONFIGS: List[Tuple[int, bool]] = [
        (1, False), (1, True), (2, False), (2, True), (4, False), (4, True)]

    def __init__(self) -> None:
        self.ipc: Dict[str, Dict[Tuple[int, bool], float]] = {}

    def average(self, key: Tuple[int, bool]) -> float:
        return mean(row[key] for row in self.ipc.values())

    def prediction_gain_pct(self, n_clusters: int) -> float:
        """Average IPC gain of value prediction at a cluster count."""
        return pct_change(self.average((n_clusters, False)),
                          self.average((n_clusters, True)))


def run_figure2(workloads: Sequence[str] = None,
                length: Optional[int] = None,
                jobs: Optional[int] = None) -> Figure2Result:
    """IPC for the 6 configurations of Figure 2, per benchmark."""
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    specs = [((n_clusters, predict), n_clusters,
              "stride" if predict else "none", "baseline", {})
             for n_clusters, predict in Figure2Result.CONFIGS]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="figure2")
    result = Figure2Result()
    for name in names:
        result.ipc[name] = {config: sims[(name, config)].ipc
                            for config in Figure2Result.CONFIGS}
    return result


# --------------------------------------------------------------- Figure 3 --

#: The four schemes compared in Figure 3, in bar order.
FIGURE3_SCHEMES = [
    ("baseline-nopredict", "none", "baseline"),
    ("baseline-predict", "stride", "baseline"),
    ("vpb-predict", "stride", "vpb"),
    ("vpb-perfect", "perfect", "vpb"),
]


class Figure3Result:
    """Workload imbalance, communications/instruction and IPCR (Fig. 3).

    Indexed ``metric[n_clusters][scheme]`` with per-benchmark detail in
    ``per_benchmark``.
    """

    def __init__(self) -> None:
        self.imbalance: Dict[int, Dict[str, float]] = {}
        self.comm: Dict[int, Dict[str, float]] = {}
        self.ipcr: Dict[int, Dict[str, float]] = {}
        self.per_benchmark: Dict[Tuple[int, str, str], Dict[str, float]] = {}


def run_figure3(workloads: Sequence[str] = None,
                length: Optional[int] = None,
                cluster_counts: Sequence[int] = (2, 4),
                jobs: Optional[int] = None) -> Figure3Result:
    """The 4-scheme comparison of Figure 3 for 2 and 4 clusters."""
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    # 1-cluster reference cells (IPCR denominators) plus every scheme
    # cell, submitted as one flat sweep.
    specs = [(("ref", predictor), 1, predictor, "baseline", {})
             for predictor in ("none", "stride", "perfect")]
    specs += [((n_clusters, scheme), n_clusters, predictor, steering, {})
              for n_clusters in cluster_counts
              for scheme, predictor, steering in FIGURE3_SCHEMES]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="figure3")
    result = Figure3Result()
    for n_clusters in cluster_counts:
        imb: Dict[str, float] = {}
        comm: Dict[str, float] = {}
        ipcr: Dict[str, float] = {}
        for scheme, predictor, steering in FIGURE3_SCHEMES:
            per_imb, per_comm, per_ipcr = [], [], []
            for name in names:
                sim = sims[(name, (n_clusters, scheme))]
                reference = sims[(name, ("ref", predictor))]
                ratio = sim.ipc / reference.ipc
                per_imb.append(sim.imbalance)
                per_comm.append(sim.comm_per_inst)
                per_ipcr.append(ratio)
                result.per_benchmark[(n_clusters, scheme, name)] = {
                    "ipc": sim.ipc, "ipcr": ratio,
                    "comm": sim.comm_per_inst,
                    "imbalance": sim.imbalance}
            imb[scheme] = mean(per_imb)
            comm[scheme] = mean(per_comm)
            ipcr[scheme] = mean(per_ipcr)
        result.imbalance[n_clusters] = imb
        result.comm[n_clusters] = comm
        result.ipcr[n_clusters] = ipcr
    return result


# --------------------------------------------------------------- Figure 4 --

class Figure4Result:
    """IPC vs communication latency (4a) or bandwidth (4b).

    ``ipc[(n_clusters, predict)][x]`` where x is the swept value.
    """

    def __init__(self, xlabel: str, xvalues: List) -> None:
        self.xlabel = xlabel
        self.xvalues = xvalues
        self.ipc: Dict[Tuple[int, bool], Dict[object, float]] = {}

    def degradation_pct(self, key: Tuple[int, bool]) -> float:
        """IPC loss from the first to the last swept point, percent."""
        series = self.ipc[key]
        first, last = series[self.xvalues[0]], series[self.xvalues[-1]]
        return -pct_change(first, last)


def _run_figure4(names: List[str], length: int, jobs: Optional[int],
                 result: Figure4Result, override_name: str,
                 points: Sequence[Tuple[object, object]],
                 label: str = "figure4") -> Figure4Result:
    """Shared Figure 4 sweep: *points* is (x key, override value) pairs."""
    specs = [((n_clusters, predict, key), n_clusters,
              "stride" if predict else "none",
              "vpb" if predict else "baseline",
              {override_name: value})
             for n_clusters in (2, 4)
             for predict in (False, True)
             for key, value in points]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label=label)
    for n_clusters in (2, 4):
        for predict in (False, True):
            result.ipc[(n_clusters, predict)] = {
                key: mean(sims[(name, (n_clusters, predict, key))].ipc
                          for name in names)
                for key, _ in points}
    return result


def run_figure4_latency(workloads: Sequence[str] = None,
                        length: Optional[int] = None,
                        latencies: Sequence[int] = (1, 2, 4),
                        jobs: Optional[int] = None) -> Figure4Result:
    """Figure 4(a): IPC vs inter-cluster latency, 2/4 clusters, ±VP."""
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    result = Figure4Result("communication latency (cycles)", list(latencies))
    return _run_figure4(names, length, jobs, result, "comm_latency",
                        [(latency, latency) for latency in latencies],
                        label="figure4a")


def run_figure4_bandwidth(workloads: Sequence[str] = None,
                          length: Optional[int] = None,
                          bandwidths: Sequence[Optional[int]] = (1, 2, None),
                          jobs: Optional[int] = None) -> Figure4Result:
    """Figure 4(b): IPC vs paths/cluster (None = unbounded)."""
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    xvalues = [b if b is not None else "unbounded" for b in bandwidths]
    result = Figure4Result("paths per cluster", xvalues)
    points = [(b if b is not None else "unbounded", b) for b in bandwidths]
    return _run_figure4(names, length, jobs, result,
                        "comm_paths_per_cluster", points,
                        label="figure4b")


# --------------------------------------------------------------- Figure 5 --

class Figure5Result:
    """IPC and predictor accuracy vs value-predictor table size (Fig. 5)."""

    def __init__(self, sizes: List[int]) -> None:
        self.sizes = sizes
        self.ipc: Dict[int, float] = {}
        self.confident_fraction: Dict[int, float] = {}
        self.hit_ratio: Dict[int, float] = {}

    def ipc_degradation_pct(self) -> float:
        """IPC loss from the largest to the smallest table, percent."""
        return -pct_change(self.ipc[self.sizes[-1]], self.ipc[self.sizes[0]])


def run_figure5(workloads: Sequence[str] = None,
                length: Optional[int] = None,
                sizes: Sequence[int] = (64, 256, 1024, 4096, 16384, 131072),
                jobs: Optional[int] = None) -> Figure5Result:
    """Figure 5: sweep the stride predictor table (4 clusters, VPB).

    The paper sweeps 1K..128K on full Mediabench binaries (tens of
    thousands of static instructions).  The stand-ins' working set of
    static instructions is ~50x smaller, so the aliasing regime the
    paper's 1K point sits in corresponds to the 64-256-entry points
    here; the sweep includes them to expose the same curve shape.
    """
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    specs = [(size, 4, "stride", "vpb", {"vp_entries": size})
             for size in sizes]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="figure5")
    result = Figure5Result(list(sizes))
    for size in sizes:
        cells = [sims[(name, size)] for name in names]
        result.ipc[size] = mean(sim.ipc for sim in cells)
        result.confident_fraction[size] = mean(
            sim.vp_stats["confident_fraction"] for sim in cells)
        result.hit_ratio[size] = mean(
            sim.vp_stats["hit_ratio"] for sim in cells)
    return result


# -------------------------------------------------------------- ablations --

class AblationResult:
    """A labelled set of (ipcr/ipc, comm, imbalance) rows."""

    def __init__(self) -> None:
        self.rows: Dict[str, Dict[str, float]] = {}


def run_ablation_modified(workloads: Sequence[str] = None,
                          length: Optional[int] = None,
                          jobs: Optional[int] = None) -> AblationResult:
    """§3.2: the ungated Modified scheme vs Baseline vs VPB (4 clusters).

    The paper found Modified ≈ Baseline (imbalance drops but
    communication does not), motivating VPB's threshold gate.
    """
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    specs = [("ref", 1, "stride", "baseline", {})]
    specs += [(label, 4, "stride", steering, {})
              for label, steering in (("baseline", "baseline"),
                                      ("modified", "modified"),
                                      ("vpb", "vpb"))]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="ablation-modified")
    result = AblationResult()
    for label in ("baseline", "modified", "vpb"):
        cells = [sims[(name, label)] for name in names]
        result.rows[label] = {
            "ipcr": mean(sims[(name, label)].ipc / sims[(name, "ref")].ipc
                         for name in names),
            "comm": mean(sim.comm_per_inst for sim in cells),
            "imbalance": mean(sim.imbalance for sim in cells)}
    return result


def run_ablation_rename2(workloads: Sequence[str] = None,
                         length: Optional[int] = None,
                         jobs: Optional[int] = None) -> AblationResult:
    """§3.3: a 2-cycle rename/steer stage costs <2% IPC (4c, VPB)."""
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    labels = (("rename-1-cycle", 0), ("rename-2-cycle", 1))
    specs = [(label, 4, "stride", "vpb", {"extra_rename_cycles": extra})
             for label, extra in labels]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="ablation-rename2")
    result = AblationResult()
    for label, _ in labels:
        result.rows[label] = {
            "ipc": mean(sims[(name, label)].ipc for name in names)}
    return result


# --------------------------------------------------------------- headline --

class HeadlineResult:
    """The paper's summary numbers, paper-vs-measured."""

    def __init__(self) -> None:
        self.measured: Dict[str, float] = {}
        #: Paper values for the same metrics (§1, §3.3, §6).
        self.paper: Dict[str, float] = {
            "ipcr4_baseline_nopredict": 0.65,
            "ipcr4_vpb": 0.77,
            "ipcr4_gain_pct": 18.0,
            "ipcr2_baseline_nopredict": 0.85,
            "ipcr2_vpb": 0.89,
            "comm4_nopredict": 0.22,
            "comm4_vpb": 0.11,
            "ipc_gain_pct_1c": 2.0,
            "ipc_gain_pct_2c": 8.0,
            "ipc_gain_pct_4c": 21.0,
        }


def run_headline(workloads: Sequence[str] = None,
                 length: Optional[int] = None,
                 jobs: Optional[int] = None) -> HeadlineResult:
    """Compute every §6 headline metric on the stand-in suite."""
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    cells_spec = [(1, "none", "baseline"), (1, "stride", "baseline"),
                  (2, "none", "baseline"), (2, "stride", "vpb"),
                  (4, "none", "baseline"), (4, "stride", "vpb")]
    specs = [(cell, cell[0], cell[1], cell[2], {}) for cell in cells_spec]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="headline")
    result = HeadlineResult()

    def _mean(cell):
        return mean(sims[(name, cell)].ipc for name in names)

    def _comm(cell):
        return mean(sims[(name, cell)].comm_per_inst for name in names)

    measured = result.measured
    measured["ipcr4_baseline_nopredict"] = (
        _mean((4, "none", "baseline")) / _mean((1, "none", "baseline")))
    measured["ipcr4_vpb"] = (
        _mean((4, "stride", "vpb")) / _mean((1, "stride", "baseline")))
    measured["ipcr4_gain_pct"] = pct_change(
        measured["ipcr4_baseline_nopredict"], measured["ipcr4_vpb"])
    measured["ipcr2_baseline_nopredict"] = (
        _mean((2, "none", "baseline")) / _mean((1, "none", "baseline")))
    measured["ipcr2_vpb"] = (
        _mean((2, "stride", "vpb")) / _mean((1, "stride", "baseline")))
    measured["comm4_nopredict"] = _comm((4, "none", "baseline"))
    measured["comm4_vpb"] = _comm((4, "stride", "vpb"))
    measured["ipc_gain_pct_1c"] = pct_change(
        _mean((1, "none", "baseline")), _mean((1, "stride", "baseline")))
    measured["ipc_gain_pct_2c"] = pct_change(
        _mean((2, "none", "baseline")), _mean((2, "stride", "vpb")))
    measured["ipc_gain_pct_4c"] = pct_change(
        _mean((4, "none", "baseline")), _mean((4, "stride", "vpb")))
    return result


def run_ablation_predictor(workloads: Sequence[str] = None,
                           length: Optional[int] = None,
                           jobs: Optional[int] = None) -> AblationResult:
    """Predictor-design ablation: 2-delta vs naive stride update.

    DESIGN.md §6.1: the literal replace-on-mismatch update mispredicts
    twice per loop restart while confident; 2-delta (the paper's
    reference [19]) keeps one-off breaks from poisoning the stride.
    Measured at 4 clusters with VPB steering.
    """
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    labels = (("two-delta", True), ("naive", False))
    specs = [(label, 4, "stride", "vpb", {"vp_two_delta": two_delta})
             for label, two_delta in labels]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="ablation-predictor")
    result = AblationResult()
    for label, _ in labels:
        cells = [sims[(name, label)] for name in names]
        result.rows[label] = {
            "ipc": mean(sim.ipc for sim in cells),
            "comm": mean(sim.comm_per_inst for sim in cells),
            "hit_ratio": mean(sim.vp_stats["hit_ratio"] for sim in cells),
            "confident": mean(sim.vp_stats["confident_fraction"]
                              for sim in cells)}
    return result


def run_ablation_free_copies(workloads: Sequence[str] = None,
                             length: Optional[int] = None,
                             jobs: Optional[int] = None) -> AblationResult:
    """§2.1 extension: dedicated copy-out hardware.

    The paper notes a real implementation could avoid charging copies
    to the issue width ("specific hardware that avoids generating copy
    instructions. However, we have not assumed any of these
    optimizations").  This ablation measures that headroom at 4
    clusters, with and without value prediction.
    """
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    variants = (("paper, no VP", "none", "baseline", False),
                ("free copies, no VP", "none", "baseline", True),
                ("paper, VPB", "stride", "vpb", False),
                ("free copies, VPB", "stride", "vpb", True))
    specs = [(label, 4, predictor, steering, {"free_copy_issue": free})
             for label, predictor, steering, free in variants]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="ablation-free-copies")
    result = AblationResult()
    for label, _, _, _ in variants:
        cells = [sims[(name, label)] for name in names]
        result.rows[label] = {
            "ipc": mean(sim.ipc for sim in cells),
            "comm": mean(sim.comm_per_inst for sim in cells)}
    return result


def run_predictor_comparison(workloads: Sequence[str] = None,
                             length: Optional[int] = None,
                             jobs: Optional[int] = None
                             ) -> AblationResult:
    """§6 future work: "the results will likely be better with more
    complex and effective predictors".

    Compares the paper's stride predictor against the context (FCM) and
    hybrid tournament predictors from the Sazeides-Smith family the
    paper cites, plus the perfect upper bound, at 4 clusters with VPB.
    """
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    labels = ("none", "stride", "context", "hybrid", "perfect")
    specs = [(label, 4, label,
              "vpb" if label != "none" else "baseline", {})
             for label in labels]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="predictor-comparison")
    result = AblationResult()
    for label in labels:
        cells = [sims[(name, label)] for name in names]
        result.rows[label] = {
            "ipc": mean(sim.ipc for sim in cells),
            "comm": mean(sim.comm_per_inst for sim in cells),
            "hit_ratio": mean(sim.vp_stats.get("hit_ratio", 0.0)
                              for sim in cells),
            "confident": mean(sim.vp_stats.get("confident_fraction", 0.0)
                              for sim in cells)}
    return result


def run_ablation_static(workloads: Sequence[str] = None,
                        length: Optional[int] = None,
                        jobs: Optional[int] = None) -> AblationResult:
    """§5 related-work claim: dynamic steering beats static partitioning.

    The static scheme gets the best possible conditions — it is profiled
    on the *same* trace it then runs (a perfect-profile compiler) — and
    still loses to dynamic steering because every dynamic instance of an
    instruction is pinned to one cluster regardless of run-time balance.

    Profiles are computed in the parent process (the profile is a plain
    PC→cluster dict) and shipped to workers as explicit per-cell config,
    like every other override.
    """
    from ..steering import profile_static_assignment
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    cells: List[SweepCell] = []
    for name in names:
        trace = workload_trace(name, length)
        assignment = profile_static_assignment(trace, 4)
        cells.append(SweepCell(
            key=(name, "static"), workload=name, n_clusters=4,
            steering="static", length=length,
            overrides=SweepCell.pack_overrides(
                {"static_assignment": assignment})))
        cells.append(SweepCell(key=(name, "baseline"), workload=name,
                               n_clusters=4, length=length))
        cells.append(SweepCell(key=(name, "vpb"), workload=name,
                               n_clusters=4, predictor="stride",
                               steering="vpb", length=length))
    sims = run_cells(cells, jobs=jobs, label="ablation-static")
    result = AblationResult()
    for label, suffix in (("static (perfect profile)", "static"),
                          ("baseline (dynamic)", "baseline"),
                          ("vpb (dynamic + VP)", "vpb")):
        row = [sims[(name, suffix)] for name in names]
        result.rows[label] = {
            "ipc": mean(c.ipc for c in row),
            "comm": mean(c.comm_per_inst for c in row),
            "imbalance": mean(c.imbalance for c in row)}
    return result


def simulate_cell(trace, n_clusters: int = 4, predictor: str = "none",
                  steering: str = "baseline", **overrides):
    """Simulate a pre-built trace on one 4-cluster configuration."""
    config = make_config(n_clusters, predictor=predictor,
                         steering=steering, **overrides)
    return simulate(list(trace), config)


class ScalingResult:
    """IPC/IPCR/comm vs cluster count, with and without prediction."""

    def __init__(self, counts: List[int]) -> None:
        self.counts = counts
        #: metric[(n_clusters, predict)] suite averages
        self.ipc: Dict[Tuple[int, bool], float] = {}
        self.ipcr: Dict[Tuple[int, bool], float] = {}
        self.comm: Dict[Tuple[int, bool], float] = {}

    def vp_gain_pct(self, n_clusters: int) -> float:
        return pct_change(self.ipc[(n_clusters, False)],
                          self.ipc[(n_clusters, True)])


def run_scaling(workloads: Sequence[str] = None,
                length: Optional[int] = None,
                counts: Sequence[int] = (1, 2, 4, 8),
                jobs: Optional[int] = None) -> ScalingResult:
    """Extension: extrapolate the paper's thesis to deeper clustering.

    §5 frames the contribution as a design "with an arbitrary number of
    homogeneous clusters"; Table 1's structure-scaling rule extends
    naturally (see ``derive_preset``).  The paper's thesis predicts the
    value-prediction benefit keeps growing with the degree of
    clustering, because the communication penalty it removes does.
    """
    names = list(workloads or selected_workloads())
    length = resolve_trace_length(length)
    specs = [(("ref", predict), 1,
              "stride" if predict else "none",
              "vpb" if predict else "baseline", {})
             for predict in (False, True)]
    specs += [((n_clusters, predict), n_clusters,
               "stride" if predict else "none",
               "vpb" if predict else "baseline", {})
              for n_clusters in counts for predict in (False, True)]
    sims = run_cells(_cells_for(names, specs, length), jobs=jobs,
                     label="scaling")
    result = ScalingResult(list(counts))
    for n_clusters in counts:
        for predict in (False, True):
            row = [sims[(name, (n_clusters, predict))] for name in names]
            key = (n_clusters, predict)
            result.ipc[key] = mean(sim.ipc for sim in row)
            result.ipcr[key] = mean(
                sims[(name, (n_clusters, predict))].ipc
                / sims[(name, ("ref", predict))].ipc for name in names)
            result.comm[key] = mean(sim.comm_per_inst for sim in row)
    return result


def run_robustness(workloads: Sequence[str] = None,
                   lengths: Sequence[int] = (6_000, 12_000),
                   jobs: Optional[int] = None
                   ) -> Dict[int, HeadlineResult]:
    """Run the headline metrics at several trace lengths.

    The reduced-trace methodology is only sound if the directional
    claims are stable against the window size; this driver (and its
    benchmark) checks exactly that.  One :class:`WorkerPool` is shared
    across the per-length sweeps, so worker startup is paid once.
    """
    from .parallel import WorkerPool
    with WorkerPool(jobs):
        return {length: run_headline(workloads, length, jobs=jobs)
                for length in lengths}

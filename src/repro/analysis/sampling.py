"""SimPoint/SMARTS-style interval sampling over the detailed model.

The detailed loop retires ~20k insts/s (PERFORMANCE.md); honest
million-instruction runs therefore cannot simulate every instruction
in detail.  This module stitches whole-run estimates out of short
detailed windows:

1. **Fast-forward** — the functional executor's compiled ``skip`` path
   advances architectural state (registers + memory) at several
   million insts/s, >100× detailed speed, without building
   :class:`DynInst` records.
2. **Functional warming** (``warm_predictors=True``, the default) —
   one set of value-predictor / branch-predictor / BTB / cache
   objects is shared by every sample window *and trained continuously
   during fast-forward* through the executor's compiled training
   hooks.  Each window therefore opens with the same predictor state
   an uninterrupted detailed run would have accumulated; slow-
   saturating structures (stride confidence counters need ~100k+
   instructions) are warm without paying detailed speed for the
   prefix.
3. **Warmup** — each window detail-simulates ``warmup`` instructions
   first and discards them, so cold rename/queue/in-flight state does
   not bias the measurement.
4. **Measurement** — ``interval`` further instructions run in detail;
   the per-window IPC is the cycle/instruction *delta* across that
   region only.

Windows are spread systematically, one per equal stratum of the run,
*centred* in each stratum: with ``samples=k`` over an
``n``-instruction run, window ``i`` starts at ``i * (n // k)`` plus
half the stratum's slack (or at explicit ``targets`` offsets).
Start-aligned placement would pin window 0 onto the program's
cold-start ramp and bias every estimate low.

The whole-run IPC estimate is the *harmonic* (cycle-weighted) mean of
the window IPCs — ``Σ measured_insts / Σ cycles`` — not the
arithmetic mean.  Full-run IPC is total instructions over total
cycles, and low-IPC program regions consume proportionally more
cycles; averaging window IPCs arithmetically over-weights fast
regions (a +9% bias on g721enc even with *every* disjoint window
measured), while the CPI-scale average recovers the exact full-run
figure when the windows tile the run.  The standard error is
therefore computed on the CPI scale and mapped back to IPC with the
delta method (``stderr_ipc ≈ ipc² · stderr_cpi``); the error
methodology is documented in docs/SAMPLING.md.

Fast-forward checkpoints (executor snapshots at canonical window
starts) can be shared through a
:class:`~repro.core.snapshot.CheckpointStore`: they are keyed by
workload identity × position — never by processor configuration — so
a sweep's many cells fast-forward each workload once.  Checkpoints
capture architectural state only; a ``warm_predictors`` run therefore
never *consumes* them (jumping over a region would skip its predictor
training), though it still publishes canonical positions for plain
consumers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import ProcessorConfig
from ..core.processor import Processor
from ..core.snapshot import CheckpointStore
from ..errors import ConfigError
from ..isa.executor import FunctionalExecutor
from ..isa.program import Program

__all__ = ["SamplingConfig", "SampleWindow", "SampledResult",
           "simulate_sampled"]


@dataclass(frozen=True)
class SamplingConfig:
    """How to sample a long run.

    Args:
        interval: detailed instructions *measured* per sample window.
        warmup: detailed instructions simulated and discarded before
            each measured region (must be < interval, ≥ 0).
        samples: number of windows, spread evenly over the run; or
        targets: explicit window start offsets (instruction indices),
            overriding the even spread.
        warm_predictors: train one shared set of predictor/BTB/cache
            objects continuously during fast-forward (and across
            windows), so every window opens with the state an
            uninterrupted run would have.  Costs ~4-6× plain
            fast-forward speed and forgoes checkpoint *reuse*; turning
            it off trades IPC accuracy for cross-configuration
            checkpoint sharing.
    """

    interval: int
    warmup: int = 0
    samples: Optional[int] = None
    targets: Optional[Tuple[int, ...]] = None
    warm_predictors: bool = True

    def validate(self) -> None:
        if self.interval < 1:
            raise ConfigError(f"sampling interval must be >= 1, got "
                              f"{self.interval}")
        if self.warmup < 0:
            raise ConfigError(f"sampling warmup must be >= 0, got "
                              f"{self.warmup}")
        if self.interval <= self.warmup:
            raise ConfigError(
                f"sampling interval ({self.interval}) must exceed the "
                f"warmup ({self.warmup}); the measured region would "
                f"otherwise be empty or biased")
        if (self.samples is None) == (self.targets is None):
            raise ConfigError("specify exactly one of samples= or "
                              "targets=")
        if self.samples is not None and self.samples < 1:
            raise ConfigError(f"samples must be >= 1, got {self.samples}")
        if self.targets is not None:
            if not self.targets:
                raise ConfigError("targets must not be empty")
            if list(self.targets) != sorted(set(self.targets)):
                raise ConfigError("targets must be strictly increasing")
            if self.targets[0] < 0:
                raise ConfigError("targets must be >= 0")

    def canonical_dict(self) -> Dict[str, Any]:
        """Stable identity for cache keys and receipts."""
        return {
            "interval": self.interval,
            "warmup": self.warmup,
            "samples": self.samples,
            "targets": list(self.targets) if self.targets else None,
            "warm_predictors": self.warm_predictors,
        }

    def window_starts(self, total_insts: int) -> List[int]:
        """Canonical window start offsets for a *total_insts*-long run.

        One window per equal stratum, centred: the slack a stratum has
        beyond ``warmup + interval`` is split evenly before and after
        the window.  Centring keeps window 0 off the program's
        cold-start ramp (start-aligned placement biases the estimate
        low) while staying deterministic — per-stratum random offsets
        alias with loop phases on periodic workloads.
        """
        self.validate()
        if self.targets is not None:
            return [t for t in self.targets if t < total_insts]
        stride = total_insts // self.samples
        window = self.warmup + self.interval
        if stride < window:
            raise ConfigError(
                f"{self.samples} windows of warmup+interval="
                f"{window} insts do not fit in a "
                f"{total_insts}-instruction run; reduce samples or the "
                f"window size")
        offset = (stride - window) // 2
        return [i * stride + offset for i in range(self.samples)]


@dataclass
class SampleWindow:
    """One measured interval's raw numbers."""

    index: int
    start: int            # instruction offset the window began at
    warmup_insts: int
    measured_insts: int
    cycles: int
    ipc: float
    from_checkpoint: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index, "start": self.start,
            "warmup_insts": self.warmup_insts,
            "measured_insts": self.measured_insts,
            "cycles": self.cycles, "ipc": round(self.ipc, 6),
            "from_checkpoint": self.from_checkpoint,
        }


@dataclass
class SampledResult:
    """Whole-run estimates stitched from sample windows.

    ``ipc`` is the harmonic (cycle-weighted) mean of per-window IPCs,
    ``Σ measured_insts / Σ cycles`` — full-run IPC is a ratio of
    totals, and the CPI-scale average is the estimator that recovers
    it exactly when the windows tile the run (the arithmetic mean
    over-weights fast regions).  ``ipc_stderr`` is the CPI-scale
    standard error mapped to IPC with the delta method
    (``ipc² · stderr_cpi``); ``estimated_cycles`` the implied
    full-run cycle count (``total_insts / ipc``).
    ``effective_insts_per_second`` divides the *represented*
    instruction count by the wall-clock the sampled run actually
    spent — the headline number the ≥20× bar is measured on.
    """

    workload: str
    config: ProcessorConfig
    sampling: SamplingConfig
    total_insts: int
    windows: List[SampleWindow] = field(default_factory=list)
    detailed_insts: int = 0
    ff_insts: int = 0
    wall_seconds: float = 0.0
    checkpoints: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------ estimates --

    @property
    def ipc(self) -> float:
        cycles = sum(w.cycles for w in self.windows)
        if cycles <= 0:
            return 0.0
        return sum(w.measured_insts for w in self.windows) / cycles

    @property
    def _cpi_std(self) -> float:
        """Sample standard deviation of the per-window CPIs."""
        n = len(self.windows)
        if n < 2:
            return 0.0
        cpis = [w.cycles / w.measured_insts for w in self.windows]
        mean = sum(cpis) / n
        var = sum((c - mean) ** 2 for c in cpis) / (n - 1)
        return math.sqrt(var)

    @property
    def ipc_std(self) -> float:
        """Window-to-window IPC spread (delta method from CPI scale)."""
        return self.ipc ** 2 * self._cpi_std

    @property
    def ipc_stderr(self) -> float:
        n = len(self.windows)
        if n < 2:
            return 0.0
        return self.ipc_std / math.sqrt(n)

    @property
    def ipc_ci95(self) -> float:
        """Half-width of the ~95% confidence interval on the mean IPC."""
        return 1.96 * self.ipc_stderr

    @property
    def estimated_cycles(self) -> int:
        ipc = self.ipc
        if ipc <= 0:
            return 0
        return round(self.total_insts / ipc)

    @property
    def effective_insts_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_insts / self.wall_seconds

    # ---------------------------------------------------------------- views --

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "sampled",
            "workload": self.workload,
            "config": self.config.canonical_dict(),
            "sampling": self.sampling.canonical_dict(),
            "total_insts": self.total_insts,
            "ipc": round(self.ipc, 6),
            "ipc_std": round(self.ipc_std, 6),
            "ipc_stderr": round(self.ipc_stderr, 6),
            "ipc_ci95": round(self.ipc_ci95, 6),
            "estimated_cycles": self.estimated_cycles,
            "detailed_insts": self.detailed_insts,
            "ff_insts": self.ff_insts,
            "wall_seconds": round(self.wall_seconds, 6),
            "effective_insts_per_second":
                round(self.effective_insts_per_second, 3),
            "windows": [w.to_dict() for w in self.windows],
            "checkpoints": self.checkpoints,
        }

    def summary(self) -> str:
        ci = self.ipc_ci95
        lines = [
            f"sampled run: {self.workload}, {self.total_insts} insts "
            f"represented by {len(self.windows)} windows",
            f"  IPC {self.ipc:.4f} ± {ci:.4f} (95% CI), "
            f"stderr {self.ipc_stderr:.4f}",
            f"  estimated cycles {self.estimated_cycles}",
            f"  detailed {self.detailed_insts} + fast-forward "
            f"{self.ff_insts} insts in {self.wall_seconds:.2f}s "
            f"({self.effective_insts_per_second:,.0f} effective insts/s)",
        ]
        if self.checkpoints:
            lines.append(f"  checkpoints: {self.checkpoints}")
        return "\n".join(lines)


# ------------------------------------------------------- functional warming --

class _WarmState:
    """Predictor/cache state shared by every window of one sampled run.

    One value predictor, direction predictor, BTB, and memory
    hierarchy are built from the processor configuration, trained
    continuously during fast-forward (through the executor's compiled
    hooks) and *adopted* by each window's processor in place of its
    own cold instances.  The stream these components observe —
    fast-forward training between windows, real front-end/decode
    traffic inside them — is the same committed instruction stream an
    uninterrupted detailed run would have shown them, so each window
    opens with faithfully warmed microarchitectural state.
    """

    def __init__(self, config: ProcessorConfig) -> None:
        from ..core.processor import _build_predictor
        from ..frontend import BranchTargetBuffer, CombinedPredictor
        from ..memory import MemoryHierarchy
        self.vp = _build_predictor(config)
        self.bpred = CombinedPredictor()
        self.btb = (BranchTargetBuffer(config.btb_entries)
                    if config.btb_entries else None)
        self.memory = MemoryHierarchy(dcache_ports=config.dcache_ports)

    def install_hooks(self, executor: FunctionalExecutor) -> None:
        """Train this state during the executor's fast-forward."""
        executor.set_train_hooks(
            value=self.vp.update, branch=self.bpred.update,
            target=self.btb.update if self.btb is not None else None,
            mem=self.memory.data_latency,
            code=self.memory.fetch_latency,
            value_factory=getattr(self.vp, "trainer", None),
            branch_factory=getattr(self.bpred, "trainer", None))

    def adopt(self, processor: Processor) -> None:
        """Swap this shared state into a freshly built *processor*."""
        processor.vp = self.vp
        processor.bpred = self.bpred
        processor.btb = self.btb
        processor.memory = self.memory
        fetch = processor.fetch
        fetch._bpred = self.bpred
        fetch._btb = self.btb
        fetch._icache_access = self.memory.fetch_latency


def _seeded_golden(executor: FunctionalExecutor, config: ProcessorConfig):
    """A golden co-simulator initialized to the window-start state.

    The functional executor's registers *are* the golden architectural
    state at its cursor, so a mid-stream detailed window can still be
    co-simulated exactly.
    """
    from ..validation.golden import GoldenModel
    golden = GoldenModel(interval=config.golden_interval)
    golden.int_regs = list(executor.int_regs)
    golden.fp_regs = list(executor.fp_regs)
    golden._expected_seq = executor.seq
    return golden


# ------------------------------------------------------------ the sampler --

def simulate_sampled(workload, config: ProcessorConfig,
                     sampling: SamplingConfig,
                     max_instructions: int = 1_000_000,
                     checkpoints=None,
                     check: bool = False,
                     workload_name: Optional[str] = None,
                     dataset: str = "test", seed: int = 0,
                     monitor=None) -> SampledResult:
    """Estimate a full run of *workload* from sampled detailed windows.

    *workload* must be a :class:`Program` (sampling rides the
    functional executor; a pre-materialized trace would defeat the
    point).  *checkpoints* is a
    :class:`~repro.core.snapshot.CheckpointStore` or a directory path;
    canonical window-start executor states are resolved from / added
    to it, keyed by workload identity and position so any processor
    configuration shares them.  With *check* each detailed window is
    co-simulated against a golden model seeded from the functional
    state at the window start.  *monitor* (a
    :class:`~repro.obs.telemetry.SweepMonitor`) receives one
    ``sample_window`` event per measured interval.
    """
    if not isinstance(workload, Program):
        raise ConfigError(
            "sampled simulation needs a Program workload (got "
            f"{type(workload).__name__}); build one with "
            "repro.workloads.build_workload")
    sampling.validate()
    config.validate()
    if isinstance(checkpoints, (str, bytes)) or hasattr(checkpoints,
                                                        "__fspath__"):
        checkpoints = CheckpointStore(checkpoints)
    name = workload_name or "program"
    started = time.perf_counter()

    executor = FunctionalExecutor(workload, max_instructions)
    warm = _WarmState(config) if sampling.warm_predictors else None
    if warm is not None:
        warm.install_hooks(executor)
    starts = sampling.window_starts(max_instructions)
    windows: List[SampleWindow] = []
    detailed = 0
    ff_total = 0

    for index, start in enumerate(starts):
        from_checkpoint = False
        if executor.seq > start:
            # The previous window's fetch overshoot ran past this
            # window's canonical start; begin where we are.  (The
            # window config validation makes this rare.)
            start = executor.seq
        else:
            ckpt_key = None
            if checkpoints is not None and start > executor.seq:
                ckpt_key = CheckpointStore.key_for(
                    name, start, dataset=dataset, seed=seed,
                    max_instructions=max_instructions)
                if warm is None:
                    # A checkpoint jump would skip the region's
                    # predictor training, so warmed runs only publish.
                    cached = checkpoints.load(ckpt_key)
                    if cached is not None:
                        executor = cached
                        from_checkpoint = True
            ff = executor.skip(start - executor.seq)
            ff_total += ff
            if ckpt_key is not None and not from_checkpoint \
                    and executor.seq == start:
                checkpoints.store(ckpt_key, executor,
                                  extra={"workload": name,
                                         "position": executor.seq})
        if executor.halted or executor.seq >= max_instructions:
            break

        golden = _seeded_golden(executor, config) if check else None
        processor = Processor(config, executor.run(), golden=golden)
        processor.trace_executor = executor
        if warm is not None:
            warm.adopt(processor)

        base_insts = processor.stats.committed_insts
        processor.run_until(max_insts=sampling.warmup)
        warm_done = processor.stats.committed_insts - base_insts
        cyc0 = processor.cycle
        ins0 = processor.stats.committed_insts
        processor.run_until(max_insts=sampling.warmup + sampling.interval)
        if golden is not None:
            golden.finish(processor.cycle)
        cycles = processor.cycle - cyc0
        measured = processor.stats.committed_insts - ins0
        detailed += processor.stats.committed_insts
        if measured == 0 or cycles == 0:
            break  # trace drained inside the warmup; nothing measured
        window = SampleWindow(index=index, start=start,
                              warmup_insts=warm_done,
                              measured_insts=measured, cycles=cycles,
                              ipc=measured / cycles,
                              from_checkpoint=from_checkpoint)
        windows.append(window)
        if monitor is not None:
            monitor.emit("sample_window", workload=name, index=index,
                         start=start, measured=measured, cycles=cycles,
                         ipc=round(window.ipc, 6))

    if not windows:
        raise ConfigError(
            f"sampling produced no measurable windows for {name!r}: the "
            f"trace drained before the first interval completed — "
            f"shorten warmup/interval or sample a longer run")

    # The run the estimate *represents* ends where execution ends: the
    # cap, or wherever the program halted.
    total = min(max_instructions,
                executor.seq if executor.halted else max_instructions)
    result = SampledResult(
        workload=name, config=config, sampling=sampling,
        total_insts=total, windows=windows, detailed_insts=detailed,
        ff_insts=ff_total,
        wall_seconds=time.perf_counter() - started,
        checkpoints=checkpoints.stats() if checkpoints is not None
        else None)
    return result

"""Main-memory latency model.

Table 1: "8 bytes bus bandwidth to main memory, 18 cycles first chunk,
2 cycles interchunk".  A line fill of ``line_bytes`` therefore costs
``first_chunk + (line_bytes / bus_bytes - 1) * interchunk`` cycles.
Bus occupancy/contention is not modelled (one outstanding fill at the
latency above), matching the level of detail the paper reports.
"""

from __future__ import annotations

__all__ = ["MainMemory"]


class MainMemory:
    """Computes line-fill latencies for the last cache level."""

    def __init__(self, first_chunk: int = 18, interchunk: int = 2,
                 bus_bytes: int = 8) -> None:
        if bus_bytes <= 0:
            raise ValueError("bus_bytes must be positive")
        self.first_chunk = first_chunk
        self.interchunk = interchunk
        self.bus_bytes = bus_bytes

    def fill_latency(self, line_bytes: int) -> int:
        """Cycles to fill one cache line of *line_bytes*."""
        chunks = max(1, (line_bytes + self.bus_bytes - 1) // self.bus_bytes)
        return self.first_chunk + (chunks - 1) * self.interchunk

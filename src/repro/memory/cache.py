"""Set-associative cache timing model.

Timing-only: the functional values live in the trace; the cache tracks
tags and replacement state to decide whether each access is a hit, and
reports the access latency.  Parameters follow Table 1 of the paper
(64KB 2-way L1s with 32-byte lines, 256KB 4-way L2 with 64-byte lines).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["Cache", "CacheStats"]


class CacheStats:
    """Hit/miss counters for one cache."""

    __slots__ = ("accesses", "misses")

    def __init__(self) -> None:
        self.accesses = 0
        self.misses = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"accesses": self.accesses, "misses": self.misses,
                "miss_rate": self.miss_rate}


class Cache:
    """One level of set-associative cache with LRU replacement.

    Args:
        name: label used in statistics.
        size_bytes: total capacity.
        assoc: number of ways.
        line_bytes: line size (power of two).
        hit_time: latency of a hit, in cycles.
        next_level: the cache backing this one, or ``None`` when misses
            go to main memory.
        miss_penalty: extra cycles a miss costs on top of this cache's
            hit time, when ``next_level`` is ``None`` is not used; when a
            fixed L1->L2 penalty is wanted (the paper quotes "6 cycle
            miss penalty" for the L1s) it can be given here and the next
            level is still consulted to model L2 hits vs misses.
        memory_latency: cycles charged when the *last* level misses.
    """

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int, hit_time: int,
                 next_level: Optional["Cache"] = None,
                 memory_latency: int = 32) -> None:
        if size_bytes % (assoc * line_bytes):
            raise ValueError(f"{name}: size must be a multiple of "
                             f"assoc * line_bytes")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_time = hit_time
        self.next_level = next_level
        self.memory_latency = memory_latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        self._line_shift = line_bytes.bit_length() - 1
        # sets[i] maps tag -> last-use stamp (LRU via min stamp eviction)
        self._sets = [dict() for _ in range(self.num_sets)]
        self._stamp = 0
        self.stats = CacheStats()

    def access(self, addr: int, is_write: bool = False) -> int:
        """Access *addr*; returns the total latency in cycles.

        Misses allocate (write-allocate) and recurse into the next
        level; the returned latency is this level's hit time plus the
        next level's latency on a miss.
        """
        self.stats.accesses += 1
        line = addr >> self._line_shift
        tag = line // self.num_sets
        index = line % self.num_sets
        cache_set = self._sets[index]
        self._stamp += 1
        if tag in cache_set:
            cache_set[tag] = self._stamp
            return self.hit_time
        self.stats.misses += 1
        if len(cache_set) >= self.assoc:
            victim = min(cache_set, key=cache_set.__getitem__)
            del cache_set[victim]
        cache_set[tag] = self._stamp
        if self.next_level is not None:
            return self.hit_time + self.next_level.access(addr, is_write)
        return self.hit_time + self.memory_latency

    def contains(self, addr: int) -> bool:
        """Non-destructive lookup (does not touch LRU or stats)."""
        line = addr >> self._line_shift
        return (line // self.num_sets) in self._sets[line % self.num_sets]

    def flush(self) -> None:
        """Drop all cached lines (stats are kept)."""
        for cache_set in self._sets:
            cache_set.clear()

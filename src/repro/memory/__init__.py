"""Memory hierarchy substrate: caches and main-memory latency model."""

from .cache import Cache, CacheStats
from .hierarchy import MemoryHierarchy
from .main_memory import MainMemory

__all__ = ["Cache", "CacheStats", "MemoryHierarchy", "MainMemory"]

"""The paper's memory hierarchy, assembled (Table 1).

* L1 I-cache: 64KB, 2-way, 32-byte lines, 1-cycle hit, 6-cycle miss
  penalty to L2.
* L1 D-cache: same geometry, 3 R/W ports (port arbitration lives in the
  core, which owns per-cycle resources).
* L2: unified, 256KB, 4-way, 64-byte lines, 6-cycle hit time.
* Main memory: 8-byte bus, 18-cycle first chunk, 2-cycle interchunk.

The hierarchy is shared by all clusters — the paper partitions the
processor core, not the memory system.
"""

from __future__ import annotations

from .cache import Cache
from .main_memory import MainMemory

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """L1I + L1D over a unified L2 over main memory.

    All methods return *latencies in cycles*; the core turns them into
    ready times and stalls.
    """

    def __init__(self,
                 l1_size: int = 64 * 1024, l1_assoc: int = 2,
                 l1_line: int = 32, l1_hit: int = 1,
                 l2_size: int = 256 * 1024, l2_assoc: int = 4,
                 l2_line: int = 64, l2_hit: int = 6,
                 dcache_ports: int = 3,
                 memory: MainMemory = None) -> None:
        self.memory = memory or MainMemory()
        self.l2 = Cache("L2", l2_size, l2_assoc, l2_line, l2_hit,
                        next_level=None,
                        memory_latency=self.memory.fill_latency(l2_line))
        self.l1i = Cache("L1I", l1_size, l1_assoc, l1_line, l1_hit,
                         next_level=self.l2)
        self.l1d = Cache("L1D", l1_size, l1_assoc, l1_line, l1_hit,
                         next_level=self.l2)
        self.dcache_ports = dcache_ports

    def fetch_latency(self, pc: int) -> int:
        """Latency of fetching the line containing *pc*."""
        return self.l1i.access(pc)

    def data_latency(self, addr: int, is_write: bool = False) -> int:
        """Latency of a data access at *addr* (port arbitration elsewhere)."""
        return self.l1d.access(addr, is_write)

    def line_of(self, pc: int) -> int:
        """I-cache line number of *pc* (used to batch fetch lookups)."""
        return pc >> (self.l1i.line_bytes.bit_length() - 1)

    def stats(self) -> dict:
        """Hit/miss statistics of every level."""
        return {"l1i": self.l1i.stats.as_dict(),
                "l1d": self.l1d.stats.as_dict(),
                "l2": self.l2.stats.as_dict()}

"""Per-cluster physical register file scoreboard.

Timing-only: each physical register tracks the cycle at which its value
becomes usable by instructions issuing in this cluster (local bypasses
are folded into the ready cycle: a producer issuing at cycle *c* with
latency *l* marks its destination ready at ``c + l``, which lets a local
dependent issue back-to-back).  ``producer`` links each pending register
to the uop that will write it, which steering (rule 2.1) and the
invalidation walk both need.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["RegisterFile", "NEVER"]

#: Sentinel ready-cycle for "no value scheduled yet".
NEVER = 1 << 60


class RegisterFile:
    """Ready-time scoreboard over ``n_pregs`` physical registers."""

    __slots__ = ("n_pregs", "ready", "producer", "waiters")

    def __init__(self, n_pregs: int) -> None:
        if n_pregs <= 0:
            raise ValueError("register file size must be positive")
        self.n_pregs = n_pregs
        self.ready: List[int] = [NEVER] * n_pregs
        self.producer: List[Optional[object]] = [None] * n_pregs
        #: Issue-stage wakeup: uops parked on a register's readiness.
        #: ``set_ready`` lowers each waiter's ``wake_cycle`` to the new
        #: ready cycle (and its issue queue's ``next_try`` bound through
        #: the ``Uop.iq`` back-reference) and drops the list; a stale
        #: entry (the waiter issued or was invalidated meanwhile) only
        #: triggers a harmless extra scan, never a wrong skip.
        self.waiters: Dict[int, List[object]] = {}

    def add_waiter(self, preg: int, uop) -> None:
        """Park *uop* until *preg*'s ready cycle is (re)scheduled."""
        waiters = self.waiters.setdefault(preg, [])
        if not waiters or waiters[-1] is not uop:
            waiters.append(uop)

    def set_ready(self, preg: int, cycle: int) -> None:
        """Value of *preg* becomes usable at *cycle*."""
        self.ready[preg] = cycle
        waiters = self.waiters.pop(preg, None)
        if waiters:
            for uop in waiters:
                if cycle < uop.wake_cycle:
                    uop.wake_cycle = cycle
                    iq = uop.iq
                    if iq is not None and cycle < iq.next_try:
                        iq.next_try = cycle

    def set_pending(self, preg: int, producer) -> None:
        """*preg* is allocated but its value is still being produced."""
        self.ready[preg] = NEVER
        self.producer[preg] = producer

    def is_ready(self, preg: int, cycle: int) -> bool:
        """True when *preg* can feed an instruction issuing at *cycle*."""
        return self.ready[preg] <= cycle

    def ready_cycle(self, preg: int) -> int:
        """Scheduled ready cycle (``NEVER`` when unscheduled)."""
        return self.ready[preg]

    def clear(self, preg: int) -> None:
        """Reset scoreboard state when the register is freed."""
        self.ready[preg] = NEVER
        self.producer[preg] = None
        # A reader older than the freeing writer cannot still be parked
        # here (it must commit first), but wake defensively: a spurious
        # rescan is harmless, a missed wake would hang the consumer.
        waiters = self.waiters.pop(preg, None)
        if waiters:
            for uop in waiters:
                uop.wake_cycle = 0
                iq = uop.iq
                if iq is not None:
                    iq.next_try = 0

"""Functional-unit pools and per-cycle issue resources of one cluster.

Table 1 describes each configuration's pools: e.g. the 4-cluster machine
has, per cluster, "2 int (1 include mul/div), 1 fp (includes fp mul/div)"
and an issue width of "2 int / 1 fp".  This module enforces, per cycle:

* the integer and fp **issue widths**,
* the number of **units** of each side,
* the subset of units capable of multiply/divide,
* non-pipelined divides, which occupy their unit for the full latency.

Copy and verification-copy instructions consume issue width (§2 Table 1:
"Communications consume issue width and instruction queue entries") but
no functional unit.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa.opcodes import OpClass

__all__ = ["FUPool", "DEFAULT_LATENCIES"]

#: Execution latencies per operation class (SimpleScalar-style defaults).
#: LOAD's entry is the address-generation cycle; cache latency is added
#: by the core.  STORE only generates its address in the back end.
DEFAULT_LATENCIES: Dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 20,
    OpClass.FALU: 2,
    OpClass.FMUL: 4,
    OpClass.FDIV: 12,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
}

_INT_SIDE = frozenset({OpClass.IALU, OpClass.IMUL, OpClass.IDIV,
                       OpClass.LOAD, OpClass.STORE})


class FUPool:
    """Issue-resource tracker for one cluster.

    Call :meth:`begin_cycle` once per cycle, then :meth:`try_issue` for
    each candidate; ``try_issue`` reserves the resources on success.
    """

    def __init__(self, int_units: int, int_muldiv: int,
                 fp_units: int, fp_muldiv: int,
                 int_width: int, fp_width: int,
                 latencies: Dict[OpClass, int] = None) -> None:
        if int_muldiv > int_units or fp_muldiv > fp_units:
            raise ValueError("mul/div-capable units cannot exceed the pool")
        self.int_units = int_units
        self.int_muldiv = int_muldiv
        self.fp_units = fp_units
        self.fp_muldiv = fp_muldiv
        self.int_width = int_width
        self.fp_width = fp_width
        self.latencies = dict(DEFAULT_LATENCIES)
        if latencies:
            self.latencies.update(latencies)
        # Non-pipelined divides occupy one mul/div-capable unit each.
        self._idiv_busy: List[int] = [0] * int_muldiv
        self._fdiv_busy: List[int] = [0] * fp_muldiv
        self._cycle = -1
        self._int_issued = 0
        self._fp_issued = 0
        self._int_units_used = 0
        self._fp_units_used = 0
        self._imuldiv_used = 0
        self._fmuldiv_used = 0

    # -- per-cycle bookkeeping ---------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Reset the per-cycle counters."""
        self._cycle = cycle
        self._int_issued = 0
        self._fp_issued = 0
        self._int_units_used = 0
        self._fp_units_used = 0
        self._imuldiv_used = 0
        self._fmuldiv_used = 0

    def _busy_divs(self, busy: List[int]) -> int:
        cycle = self._cycle
        return sum(1 for until in busy if until > cycle)

    # -- queries -----------------------------------------------------------------

    def latency(self, opclass: OpClass) -> int:
        """Execution latency of *opclass* (loads exclude cache time)."""
        return self.latencies[opclass]

    def int_width_left(self) -> int:
        """Unused integer issue slots this cycle."""
        return self.int_width - self._int_issued

    def fp_width_left(self) -> int:
        """Unused fp issue slots this cycle."""
        return self.fp_width - self._fp_issued

    def idle_capacity(self, int_side: bool) -> int:
        """Additional instructions of that side this cluster could issue.

        Used by the NREADY imbalance meter: idle capacity is bounded by
        both the remaining issue width and the remaining units.
        """
        if int_side:
            units_left = (self.int_units - self._busy_divs(self._idiv_busy)
                          - self._int_units_used)
            return max(0, min(self.int_width_left(), units_left))
        units_left = (self.fp_units - self._busy_divs(self._fdiv_busy)
                      - self._fp_units_used)
        return max(0, min(self.fp_width_left(), units_left))

    # -- issue -------------------------------------------------------------------

    def try_issue(self, opclass: OpClass) -> bool:
        """Reserve width + unit for one instruction; True on success."""
        if opclass in _INT_SIDE:
            if self._int_issued >= self.int_width:
                return False
            busy = self._busy_divs(self._idiv_busy)
            if self._int_units_used >= self.int_units - busy:
                return False
            if opclass in (OpClass.IMUL, OpClass.IDIV):
                if self._imuldiv_used >= self.int_muldiv - busy:
                    return False
                self._imuldiv_used += 1
                if opclass is OpClass.IDIV:
                    self._claim_div(self._idiv_busy,
                                    self.latencies[OpClass.IDIV])
            self._int_issued += 1
            self._int_units_used += 1
            return True
        # fp side
        if self._fp_issued >= self.fp_width:
            return False
        busy = self._busy_divs(self._fdiv_busy)
        if self._fp_units_used >= self.fp_units - busy:
            return False
        if opclass in (OpClass.FMUL, OpClass.FDIV):
            if self._fmuldiv_used >= self.fp_muldiv - busy:
                return False
            self._fmuldiv_used += 1
            if opclass is OpClass.FDIV:
                self._claim_div(self._fdiv_busy, self.latencies[OpClass.FDIV])
        self._fp_issued += 1
        self._fp_units_used += 1
        return True

    def try_issue_copy(self, fp_side: bool) -> bool:
        """Reserve issue width (only) for a copy/verification-copy."""
        if fp_side:
            if self._fp_issued >= self.fp_width:
                return False
            self._fp_issued += 1
            return True
        if self._int_issued >= self.int_width:
            return False
        self._int_issued += 1
        return True

    def _claim_div(self, busy: List[int], latency: int) -> None:
        cycle = self._cycle
        for i, until in enumerate(busy):
            if until <= cycle:
                busy[i] = cycle + latency
                return
        raise RuntimeError("divide issued with no free unit "
                           "(try_issue accounting bug)")

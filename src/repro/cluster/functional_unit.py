"""Functional-unit pools and per-cycle issue resources of one cluster.

Table 1 describes each configuration's pools: e.g. the 4-cluster machine
has, per cluster, "2 int (1 include mul/div), 1 fp (includes fp mul/div)"
and an issue width of "2 int / 1 fp".  This module enforces, per cycle:

* the integer and fp **issue widths**,
* the number of **units** of each side,
* the subset of units capable of multiply/divide,
* non-pipelined divides, which occupy their unit for the full latency.

Copy and verification-copy instructions consume issue width (§2 Table 1:
"Communications consume issue width and instruction queue entries") but
no functional unit.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa.opcodes import OpClass

__all__ = ["FUPool", "DEFAULT_LATENCIES"]

#: Execution latencies per operation class (SimpleScalar-style defaults).
#: LOAD's entry is the address-generation cycle; cache latency is added
#: by the core.  STORE only generates its address in the back end.
DEFAULT_LATENCIES: Dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 20,
    OpClass.FALU: 2,
    OpClass.FMUL: 4,
    OpClass.FDIV: 12,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
}

_INT_SIDE = frozenset({OpClass.IALU, OpClass.IMUL, OpClass.IDIV,
                       OpClass.LOAD, OpClass.STORE})


class FUPool:
    """Issue-resource tracker for one cluster.

    Call :meth:`begin_cycle` once per cycle, then :meth:`try_issue` for
    each candidate; ``try_issue`` reserves the resources on success.

    The opclass → (side, muldiv, div, latency) classification is folded
    into a per-instance descriptor table at construction, and the count
    of units occupied by in-flight non-pipelined divides is computed once
    per cycle (divides issue rarely; the busy count only changes at
    ``begin_cycle`` or when a divide claims a unit mid-cycle).
    """

    __slots__ = ("int_units", "int_muldiv", "fp_units", "fp_muldiv",
                 "int_width", "fp_width", "latencies", "_desc",
                 "_idiv_busy", "_fdiv_busy", "_cycle",
                 "_int_issued", "_fp_issued",
                 "_int_units_used", "_fp_units_used",
                 "_imuldiv_used", "_fmuldiv_used",
                 "_idiv_busy_now", "_fdiv_busy_now",
                 "_idiv_max_until", "_fdiv_max_until")

    def __init__(self, int_units: int, int_muldiv: int,
                 fp_units: int, fp_muldiv: int,
                 int_width: int, fp_width: int,
                 latencies: Dict[OpClass, int] = None) -> None:
        if int_muldiv > int_units or fp_muldiv > fp_units:
            raise ValueError("mul/div-capable units cannot exceed the pool")
        self.int_units = int_units
        self.int_muldiv = int_muldiv
        self.fp_units = fp_units
        self.fp_muldiv = fp_muldiv
        self.int_width = int_width
        self.fp_width = fp_width
        self.latencies = dict(DEFAULT_LATENCIES)
        if latencies:
            self.latencies.update(latencies)
        #: opclass -> (is_int_side, is_muldiv, is_div, latency)
        self._desc: Dict[OpClass, tuple] = {
            oc: (oc in _INT_SIDE,
                 oc in (OpClass.IMUL, OpClass.IDIV,
                        OpClass.FMUL, OpClass.FDIV),
                 oc in (OpClass.IDIV, OpClass.FDIV),
                 self.latencies[oc])
            for oc in self.latencies
        }
        # Non-pipelined divides occupy one mul/div-capable unit each.
        self._idiv_busy: List[int] = [0] * int_muldiv
        self._fdiv_busy: List[int] = [0] * fp_muldiv
        self._cycle = -1
        self._int_issued = 0
        self._fp_issued = 0
        self._int_units_used = 0
        self._fp_units_used = 0
        self._imuldiv_used = 0
        self._fmuldiv_used = 0
        self._idiv_busy_now = 0
        self._fdiv_busy_now = 0
        # Latest cycle through which any claimed divide unit stays busy;
        # while `cycle >= max_until` every unit is free and begin_cycle
        # skips the per-unit scan (divides are rare, so this is the
        # steady state).
        self._idiv_max_until = 0
        self._fdiv_max_until = 0

    # -- per-cycle bookkeeping ---------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Reset the per-cycle counters."""
        self._cycle = cycle
        self._int_issued = 0
        self._fp_issued = 0
        self._int_units_used = 0
        self._fp_units_used = 0
        self._imuldiv_used = 0
        self._fmuldiv_used = 0
        if cycle < self._idiv_max_until:
            self._idiv_busy_now = sum(
                1 for until in self._idiv_busy if until > cycle)
        else:
            self._idiv_busy_now = 0
        if cycle < self._fdiv_max_until:
            self._fdiv_busy_now = sum(
                1 for until in self._fdiv_busy if until > cycle)
        else:
            self._fdiv_busy_now = 0

    # -- queries -----------------------------------------------------------------

    def latency(self, opclass: OpClass) -> int:
        """Execution latency of *opclass* (loads exclude cache time)."""
        return self.latencies[opclass]

    def int_width_left(self) -> int:
        """Unused integer issue slots this cycle."""
        return self.int_width - self._int_issued

    def fp_width_left(self) -> int:
        """Unused fp issue slots this cycle."""
        return self.fp_width - self._fp_issued

    def idle_capacity(self, int_side: bool) -> int:
        """Additional instructions of that side this cluster could issue.

        Used by the NREADY imbalance meter: idle capacity is bounded by
        both the remaining issue width and the remaining units.
        """
        if int_side:
            units_left = (self.int_units - self._idiv_busy_now
                          - self._int_units_used)
            return max(0, min(self.int_width_left(), units_left))
        units_left = (self.fp_units - self._fdiv_busy_now
                      - self._fp_units_used)
        return max(0, min(self.fp_width_left(), units_left))

    # -- issue -------------------------------------------------------------------

    def try_issue(self, opclass: OpClass) -> bool:
        """Reserve width + unit for one instruction; True on success."""
        is_int, is_muldiv, is_div, latency = self._desc[opclass]
        if is_int:
            if self._int_issued >= self.int_width:
                return False
            busy = self._idiv_busy_now
            if self._int_units_used >= self.int_units - busy:
                return False
            if is_muldiv:
                if self._imuldiv_used >= self.int_muldiv - busy:
                    return False
                self._imuldiv_used += 1
                if is_div:
                    self._claim_div(self._idiv_busy, latency)
                    self._idiv_busy_now += 1
            self._int_issued += 1
            self._int_units_used += 1
            return True
        # fp side
        if self._fp_issued >= self.fp_width:
            return False
        busy = self._fdiv_busy_now
        if self._fp_units_used >= self.fp_units - busy:
            return False
        if is_muldiv:
            if self._fmuldiv_used >= self.fp_muldiv - busy:
                return False
            self._fmuldiv_used += 1
            if is_div:
                self._claim_div(self._fdiv_busy, latency)
                self._fdiv_busy_now += 1
        self._fp_issued += 1
        self._fp_units_used += 1
        return True

    def try_issue_copy(self, fp_side: bool) -> bool:
        """Reserve issue width (only) for a copy/verification-copy."""
        if fp_side:
            if self._fp_issued >= self.fp_width:
                return False
            self._fp_issued += 1
            return True
        if self._int_issued >= self.int_width:
            return False
        self._int_issued += 1
        return True

    def _claim_div(self, busy: List[int], latency: int) -> None:
        cycle = self._cycle
        for i, until in enumerate(busy):
            if until <= cycle:
                freed = cycle + latency
                busy[i] = freed
                if busy is self._idiv_busy:
                    if freed > self._idiv_max_until:
                        self._idiv_max_until = freed
                elif freed > self._fdiv_max_until:
                    self._fdiv_max_until = freed
                return
        raise RuntimeError("divide issued with no free unit "
                           "(try_issue accounting bug)")

"""Per-cluster instruction (issue) queues.

Each cluster has separate integer and floating-point queues ("instruction
queues (separate integer and FP)", §2.4).  Entries are allocated at
dispatch and released at issue.  A value-misspeculated instruction that
must reissue re-enters the queue *in age order*; re-entry is allowed to
exceed the capacity momentarily, modelling the paper's "the mechanism is
in fact the existing issue mechanism, and therefore we have assumed no
additional penalty for each instruction restart" (§2.2).
"""

from __future__ import annotations

from bisect import insort
from typing import Iterator, List

__all__ = ["IssueQueue"]


class IssueQueue:
    """An age-ordered queue of in-flight uops."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("issue queue capacity must be positive")
        self.capacity = capacity
        self._entries: List[object] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    @property
    def has_space(self) -> bool:
        """True when a freshly decoded uop may be dispatched here."""
        return len(self._entries) < self.capacity

    def space_left(self) -> int:
        """Free entries for new dispatches."""
        return max(0, self.capacity - len(self._entries))

    def dispatch(self, uop) -> None:
        """Insert a freshly decoded uop (dispatch order == age order)."""
        self._entries.append(uop)

    def reinsert(self, uop) -> None:
        """Re-enter an invalidated uop at its age position."""
        uop.wake_cycle = 0  # its operands changed; rescan immediately
        insort(self._entries, uop, key=lambda u: u.order)

    def remove(self, uop) -> None:
        """Release the entry of a uop that just issued."""
        self._entries.remove(uop)

    def remove_many(self, uops) -> None:
        """Release several issued uops at once (end of the issue scan)."""
        if not uops:
            return
        issued = set(id(u) for u in uops)
        self._entries = [u for u in self._entries if id(u) not in issued]

"""Per-cluster instruction (issue) queues.

Each cluster has separate integer and floating-point queues ("instruction
queues (separate integer and FP)", §2.4).  Entries are allocated at
dispatch and released at issue.  A value-misspeculated instruction that
must reissue re-enters the queue *in age order*; re-entry is allowed to
exceed the capacity momentarily, modelling the paper's "the mechanism is
in fact the existing issue mechanism, and therefore we have assumed no
additional penalty for each instruction restart" (§2.2).

Batched ready-list scanning: every queue maintains ``next_try`` — a
lower bound on the earliest cycle at which *any* of its entries could
issue.  The core's issue stage skips the whole queue while
``next_try > cycle`` (an idle or fully sleeping queue costs one integer
compare per cycle), and recomputes the bound from the entries it visits
whenever it does scan.  The bound is kept conservative-low through the
same event-driven machinery that wakes individual uops: ``dispatch`` /
``reinsert`` lower it to the entering uop's ``min_issue_cycle``, and
``RegisterFile.set_ready`` lowers it through the ``Uop.iq`` back-
reference whenever a wake lowers a parked uop's ``wake_cycle``.  Wakes
only ever *lower* the bound, so a queue can never sleep through a cycle
at which one of its uops could have issued — the scan order, and
therefore the committed stream, is identical to the per-cycle linear
rescan (property-tested in tests/core/test_wake_invariant.py).
"""

from __future__ import annotations

from bisect import insort
from typing import Iterator, List

__all__ = ["IssueQueue", "NEXT_TRY_IDLE"]

#: ``next_try`` value of a queue with no wakeable entries (an empty
#: queue, or one whose every entry sleeps with no scheduled wake yet).
#: Larger than any simulated cycle; dispatches and wakes lower it.
NEXT_TRY_IDLE = 1 << 62


class IssueQueue:
    """An age-ordered queue of in-flight uops."""

    __slots__ = ("capacity", "_entries", "next_try")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("issue queue capacity must be positive")
        self.capacity = capacity
        self._entries: List[object] = []
        #: Earliest cycle any entry could issue (lower bound); the
        #: issue stage skips the queue entirely until then.
        self.next_try = NEXT_TRY_IDLE

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    @property
    def has_space(self) -> bool:
        """True when a freshly decoded uop may be dispatched here."""
        return len(self._entries) < self.capacity

    def space_left(self) -> int:
        """Free entries for new dispatches."""
        return max(0, self.capacity - len(self._entries))

    def dispatch(self, uop) -> None:
        """Insert a freshly decoded uop (dispatch order == age order).

        The core's dispatch stage inlines this; the method remains the
        queue's public insertion API and accepts any duck-typed entry
        (a missing ``min_issue_cycle`` wakes the queue immediately).
        """
        uop.iq = self
        self._entries.append(uop)
        min_issue = getattr(uop, "min_issue_cycle", 0)
        if min_issue < self.next_try:
            self.next_try = min_issue

    def reinsert(self, uop) -> None:
        """Re-enter an invalidated uop at its age position."""
        uop.wake_cycle = 0  # its operands changed; rescan immediately
        uop.iq = self
        insort(self._entries, uop, key=lambda u: u.order)
        min_issue = getattr(uop, "min_issue_cycle", 0)
        if min_issue < self.next_try:
            self.next_try = min_issue

    def remove(self, uop) -> None:
        """Release the entry of a uop that just issued."""
        self._entries.remove(uop)

    def remove_many(self, uops) -> None:
        """Release several issued uops at once (end of the issue scan)."""
        if not uops:
            return
        issued = set(id(u) for u in uops)
        self._entries = [u for u in self._entries if id(u) not in issued]

"""One homogeneous cluster: issue queues, register file, functional units.

"Each cluster has its own instruction queue, a physical register file, a
set of functional units, and the corresponding data bypasses among these
functional units." (§2)
"""

from __future__ import annotations

from .functional_unit import FUPool
from .issue_queue import IssueQueue
from .register_file import RegisterFile

__all__ = ["Cluster"]


class Cluster:
    """Container tying together the per-cluster hardware structures."""

    def __init__(self, cluster_id: int, iq_size: int, n_pregs: int,
                 fupool: FUPool) -> None:
        self.cluster_id = cluster_id
        self.iq_int = IssueQueue(iq_size)
        self.iq_fp = IssueQueue(iq_size)
        self.regfile = RegisterFile(n_pregs)
        self.fupool = fupool

    def iq_for(self, int_side: bool) -> IssueQueue:
        """The integer or fp queue."""
        return self.iq_int if int_side else self.iq_fp

    @property
    def occupancy(self) -> int:
        """Total queued uops (both sides)."""
        return len(self.iq_int) + len(self.iq_fp)

    def queue_depths(self) -> tuple:
        """Instant (int, fp) queue occupancies — observability gauges
        and watchdog snapshots read this instead of poking the queues.
        """
        return (len(self.iq_int), len(self.iq_fp))

    def __repr__(self) -> str:
        return (f"<Cluster {self.cluster_id}: iq_int={len(self.iq_int)} "
                f"iq_fp={len(self.iq_fp)}>")

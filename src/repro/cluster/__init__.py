"""Cluster substrate: issue queues, register files, functional units."""

from .cluster import Cluster
from .functional_unit import DEFAULT_LATENCIES, FUPool
from .issue_queue import IssueQueue, NEXT_TRY_IDLE
from .register_file import NEVER, RegisterFile

__all__ = ["Cluster", "DEFAULT_LATENCIES", "FUPool", "IssueQueue",
           "NEVER", "NEXT_TRY_IDLE", "RegisterFile"]

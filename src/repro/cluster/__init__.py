"""Cluster substrate: issue queues, register files, functional units."""

from .cluster import Cluster
from .functional_unit import DEFAULT_LATENCIES, FUPool
from .issue_queue import IssueQueue
from .register_file import NEVER, RegisterFile

__all__ = ["Cluster", "DEFAULT_LATENCIES", "FUPool", "IssueQueue",
           "NEVER", "RegisterFile"]

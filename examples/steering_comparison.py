#!/usr/bin/env python3
"""Compare the paper's steering schemes on a 4-cluster machine (§3).

Runs Baseline (with and without the stride predictor), the ungated
Modified scheme (§3.2), VPB (§3.3) and VPB with the perfect predictor
over a few benchmarks, reporting the three Figure-3 metrics: workload
imbalance (NREADY), communications per instruction, and IPC.

Run:  python examples/steering_comparison.py [trace_length]
"""

import sys

from repro import make_config, simulate
from repro.analysis import mean, table
from repro.workloads import workload_trace

WORKLOADS = ["cjpeg", "gsmdec", "mpeg2enc", "rawcaudio"]

SCHEMES = [
    ("baseline, no VP", "none", "baseline"),
    ("baseline + VP", "stride", "baseline"),
    ("modified (ungated)", "stride", "modified"),
    ("VPB", "stride", "vpb"),
    ("VPB + perfect VP", "perfect", "vpb"),
]


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    rows = []
    for label, predictor, steering in SCHEMES:
        ipcs, comms, imbs = [], [], []
        for name in WORKLOADS:
            trace = workload_trace(name, length)
            config = make_config(4, predictor=predictor, steering=steering)
            result = simulate(list(trace), config)
            ipcs.append(result.ipc)
            comms.append(result.comm_per_inst)
            imbs.append(result.imbalance)
        rows.append([label, f"{mean(ipcs):.2f}", f"{mean(comms):.3f}",
                     f"{mean(imbs):.2f}"])
    print(table(["scheme", "IPC", "comm/inst", "imbalance"], rows,
                f"4-cluster steering comparison ({', '.join(WORKLOADS)})"))
    print("\nExpected shape (paper Figure 3): VPB communicates about half")
    print("as much as the baseline and wins IPC; the ungated Modified")
    print("scheme trades imbalance for communications and gains little;")
    print("perfect prediction shows the headroom (only fp values cross).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Bring your own program: write µRISC assembly, simulate it clustered.

Demonstrates the text assembler and the builder API on a dot-product
kernel, then shows where its cycles go on the paper's 4-cluster machine
with and without value prediction.

Run:  python examples/custom_workload.py
"""

from repro import make_config, simulate
from repro.isa import FunctionalExecutor, ProgramBuilder, assemble

DOT_PRODUCT = """
# dot product of two 64-element vectors, repeated forever
.data  a   1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
.data  b   2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2

        li   r10, 0          # outer repetition counter
        li   r11, 1000000
outer:  la   r1, a
        la   r2, b
        li   r3, 0           # acc
        li   r4, 0           # i
        li   r5, 16
inner:  lw   r6, r1, 0
        lw   r7, r2, 0
        mul  r8, r6, r7
        add  r3, r3, r8
        addi r1, r1, 4
        addi r2, r2, 4
        addi r4, r4, 1
        blt  r4, r5, inner
        addi r10, r10, 1
        blt  r10, r11, outer
        halt
"""


def builder_version():
    """The same kernel written with the ProgramBuilder API."""
    b = ProgramBuilder()
    vec_a = b.data("a", range(1, 17))
    vec_b = b.data("b", [2] * 16)
    b.emit("li", "r10", 0)
    b.emit("li", "r11", 1_000_000)
    b.label("outer")
    b.emit("la", "r1", vec_a)
    b.emit("la", "r2", vec_b)
    b.emit("li", "r3", 0)
    b.emit("li", "r4", 0)
    b.emit("li", "r5", 16)
    b.label("inner")
    b.emit("lw", "r6", "r1", 0)
    b.emit("lw", "r7", "r2", 0)
    b.emit("mul", "r8", "r6", "r7")
    b.emit("add", "r3", "r3", "r8")
    b.emit("addi", "r1", "r1", 4)
    b.emit("addi", "r2", "r2", 4)
    b.emit("addi", "r4", "r4", 1)
    b.emit("blt", "r4", "r5", "inner")
    b.emit("addi", "r10", "r10", 1)
    b.emit("blt", "r10", "r11", "outer")
    b.emit("halt")
    return b.build()


def main() -> None:
    program = assemble(DOT_PRODUCT)
    trace = list(FunctionalExecutor(program, 10_000).run())
    print(f"assembled {program.static_size} static instructions, "
          f"traced {len(trace)} dynamic\n")

    for label, config in (
            ("1 cluster            ", make_config(1)),
            ("4 clusters, no VP    ", make_config(4)),
            ("4 clusters, VP + VPB ", make_config(4, predictor="stride",
                                                  steering="vpb"))):
        result = simulate(list(trace), config)
        print(f"  {label}: IPC {result.ipc:5.2f}  "
              f"comm/inst {result.comm_per_inst:.3f}  "
              f"cycles {result.stats.cycles}")

    # The builder API produces the identical program.
    alt = builder_version()
    alt_trace = list(FunctionalExecutor(alt, 10_000).run())
    assert [d.op.name for d in alt_trace[:50]] == [
        d.op.name for d in trace[:50]]
    print("\nbuilder-API version generates the same instruction stream.")


if __name__ == "__main__":
    main()

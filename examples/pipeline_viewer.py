#!/usr/bin/env python3
"""Watch instructions flow through the clustered pipeline.

Renders the classic pipeline diagram (fetch / dispatch / issue /
writeback / retire) for a window of a workload, side by side on a
centralized and a 4-cluster machine. Copies ([copy]) and verification
copies ([vcopy]) appear as their own rows in the clustered run — the
extra hops of §2.1/§2.2 made visible. Reissued instructions show a
second, lower-case issue mark.

Run:  python examples/pipeline_viewer.py [workload] [first_seq] [count]
"""

import sys

from repro import make_config
from repro.analysis import pipeline_timeline
from repro.workloads import workload_names, workload_trace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "cjpeg"
    first = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    count = int(sys.argv[3]) if len(sys.argv) > 3 else 16
    if workload not in workload_names():
        raise SystemExit(f"unknown workload {workload!r}")
    trace = workload_trace(workload, first + count + 400)

    print(f"=== {workload}: 1 cluster ===")
    print(pipeline_timeline(trace, make_config(1), first, count))
    print()
    print(f"=== {workload}: 4 clusters, stride VP + VPB steering ===")
    print(pipeline_timeline(
        trace, make_config(4, predictor="stride", steering="vpb"),
        first, count))
    print()
    print("Note the [copy]/[vcopy] helper rows and the cluster column in")
    print("the 4-cluster run: every cross-cluster value either rides a")
    print("copy (a real wire transfer) or a verification-copy (a local")
    print("check that only uses the wire on a misprediction).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sensitivity to wire delay: the Figure 4 experiment, in miniature (§4).

Sweeps the inter-cluster communication latency (1/2/4 cycles) and the
interconnect bandwidth (1 path per cluster vs unbounded) on 2- and
4-cluster machines, with and without value prediction.

Run:  python examples/wire_delay_sweep.py [trace_length]
"""

import sys

from repro import make_config, simulate
from repro.analysis import mean, table
from repro.workloads import workload_trace

WORKLOADS = ["cjpeg", "gsmdec", "mesaosdemo"]


def average_ipc(n_clusters, predictor, steering, length, **overrides):
    ipcs = []
    for name in WORKLOADS:
        trace = workload_trace(name, length)
        config = make_config(n_clusters, predictor=predictor,
                             steering=steering, **overrides)
        ipcs.append(simulate(list(trace), config).ipc)
    return mean(ipcs)


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    rows = []
    for n_clusters in (2, 4):
        for predictor, steering in (("none", "baseline"), ("stride", "vpb")):
            label = (f"{n_clusters}c "
                     + ("no-predict" if predictor == "none" else "predict"))
            ipc_by_latency = [
                average_ipc(n_clusters, predictor, steering, length,
                            comm_latency=latency)
                for latency in (1, 2, 4)]
            degradation = (1 - ipc_by_latency[-1] / ipc_by_latency[0]) * 100
            rows.append([label] + [f"{v:.2f}" for v in ipc_by_latency]
                        + [f"{degradation:.0f}%"])
    print(table(["config", "L=1", "L=2", "L=4", "loss"],
                rows, "Figure 4(a) — IPC vs communication latency"))

    rows = []
    for n_clusters in (2, 4):
        for predictor, steering in (("none", "baseline"), ("stride", "vpb")):
            label = (f"{n_clusters}c "
                     + ("no-predict" if predictor == "none" else "predict"))
            limited = average_ipc(n_clusters, predictor, steering, length,
                                  comm_paths_per_cluster=1)
            unbounded = average_ipc(n_clusters, predictor, steering, length,
                                    comm_paths_per_cluster=None)
            rows.append([label, f"{limited:.2f}", f"{unbounded:.2f}",
                         f"{(1 - limited / unbounded) * 100:.1f}%"])
    print()
    print(table(["config", "1 path/cluster", "unbounded", "loss"],
                rows, "Figure 4(b) — IPC vs communication bandwidth"))
    print("\nPaper's findings: latency hurts (17-20% from 1 to 4 cycles,")
    print("less with prediction); a single path per cluster costs ~1%,")
    print("so one register-file write port for remote values suffices.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: simulate one Mediabench stand-in on the paper's machines.

Builds the cjpeg workload, replays the same dynamic trace through the
1-, 2- and 4-cluster configurations with and without the stride value
predictor, and prints the headline effect: clustering costs IPC, value
prediction buys much of it back — and buys more on the clustered
machines (the paper's core claim).

Run:  python examples/quickstart.py [workload] [trace_length]
"""

import sys

from repro import make_config, simulate
from repro.workloads import workload_names, workload_trace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "cjpeg"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    if workload not in workload_names():
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"choose from {workload_names()}")
    trace = workload_trace(workload, length)
    print(f"workload: {workload} ({length} dynamic instructions)\n")

    reference_ipc = None
    for n_clusters in (1, 2, 4):
        for predictor, steering in (("none", "baseline"), ("stride", "vpb")):
            config = make_config(n_clusters, predictor=predictor,
                                 steering=steering)
            result = simulate(list(trace), config)
            if n_clusters == 1 and predictor == "none":
                reference_ipc = result.ipc
            ipcr = result.ipc / reference_ipc
            label = f"{n_clusters} cluster(s), " + (
                "no prediction " if predictor == "none"
                else "stride VP+VPB")
            print(f"  {label}: IPC {result.ipc:5.2f}  "
                  f"(vs 1c baseline: {ipcr:4.2f})  "
                  f"comm/inst {result.comm_per_inst:.3f}")
        print()
    print("Value prediction hides inter-cluster wire delay: the 4-cluster")
    print("machine gains far more from it than the centralized one (§1).")


if __name__ == "__main__":
    main()

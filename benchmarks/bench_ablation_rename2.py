"""§3.3 ablation — a 2-cycle rename/steer stage (4 clusters, VPB).

Shape target: the extra decode stage costs less than ~2% IPC (paper:
"the IPC is degraded by less than 2%"), because the in-order front end
hides one extra stage except on branch mispredictions.
"""

from repro.analysis import format_ablation, run_ablation_rename2


def test_ablation_rename2(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_rename2, rounds=1,
                                iterations=1)
    save_report("ablation_rename2", format_ablation(
        result, "Section 3.3 — 2-cycle rename/steer (4 clusters, VPB)",
        "(paper: < 2% IPC degradation)"))
    one = result.rows["rename-1-cycle"]["ipc"]
    two = result.rows["rename-2-cycle"]["ipc"]
    assert two <= one
    assert (one - two) / one < 0.06, "extra rename stage should be cheap"

"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper and saves the
rendered report under ``results/`` (also echoed to stdout, visible with
``pytest -s``).  Environment knobs:

* ``REPRO_TRACE_LEN``  — dynamic instructions per benchmark (default 12000)
* ``REPRO_WORKLOADS``  — comma-separated suite subset
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered figure report and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save

"""Tier-1 gate for checkpointed, sampled simulation (``make
sample-check``).

Four guarantees, each fatal when violated:

1. **Throughput** — a million-instruction sampled run must deliver
   >= ``MIN_SPEEDUP``x the detailed model's effective
   instructions-per-second on the same workload/configuration/host.
2. **Accuracy** — its IPC estimate must land within ``MAX_IPC_ERROR``
   of the uninterrupted detailed run's IPC.
3. **Checkpoint identity** — ``save -> restore -> resume`` must be
   bit-identical to never having snapshotted, for both snapshot kinds
   (a mid-run machine snapshot and a fast-forward executor
   checkpoint).
4. **Receipt schema** — a sampled sweep cell's run receipt must carry
   the sampling block and validate against the receipt schema.

The detailed reference run doubles as the throughput baseline, so the
whole gate is one detailed run plus change (~1 minute); both sides are
measured in-process on the same host, which is what makes the speedup
ratio honest.  The multi-workload version of the same measurement
(with provenance, appended to ``BENCH_sweep.json``) lives in
``benchmarks/bench_wallclock.py --sampled``.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis.parallel import SweepCell, run_cells
from repro.analysis.provenance import RunReceipt
from repro.analysis.sampling import SamplingConfig
from repro.core import (make_config, restore_executor, restore_processor,
                        save_executor, save_processor, simulate)
from repro.isa.executor import FunctionalExecutor
from repro.obs import SweepMonitor, use_monitor
from repro.obs.schema import validate_receipt
from repro.workloads import build_workload

WORKLOAD = "mesatexgen"
LENGTH = 1_000_000
SAMPLING = SamplingConfig(interval=1200, warmup=200, samples=16)
CONFIG_KW = dict(predictor="stride", steering="vpb")
CLUSTERS = 2

MIN_SPEEDUP = 20.0
MAX_IPC_ERROR = 0.02


def check(label: str, ok: bool, detail: str) -> tuple:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}: {detail}")
    return (label, ok, detail)


def throughput_and_accuracy(length: int = LENGTH,
                            sampling: SamplingConfig = SAMPLING,
                            min_speedup: float = MIN_SPEEDUP,
                            max_error: float = MAX_IPC_ERROR,
                            repeats: int = 3) -> list:
    """Guarantees 1 + 2: the sampled run vs the detailed reference.

    The sampled side is min-of-*repeats*: its ~2 s wall is exposed to
    host-noise spikes a single shot can't average away, while the
    minute-long detailed reference self-averages.  The IPC estimate is
    deterministic — repetition only affects the timing.
    """
    config = make_config(CLUSTERS, **CONFIG_KW)
    program = build_workload(WORKLOAD)
    start = time.perf_counter()
    detailed = simulate(FunctionalExecutor(program, length).run(),
                        config, max_instructions=length)
    detailed_s = time.perf_counter() - start
    ref_ipc = detailed.stats.committed_insts / detailed.stats.cycles
    detailed_rate = detailed.stats.committed_insts / detailed_s

    sampled = min(
        (simulate(build_workload(WORKLOAD), config,
                  max_instructions=length, sampling=sampling,
                  workload_name=WORKLOAD) for _ in range(repeats)),
        key=lambda result: result.wall_seconds)
    speedup = sampled.effective_insts_per_second / detailed_rate
    error = abs(sampled.ipc - ref_ipc) / ref_ipc
    return [check(
        "throughput", speedup >= min_speedup,
        f"{sampled.effective_insts_per_second:,.0f} effective insts/s "
        f"vs {detailed_rate:,.0f} detailed = {speedup:.1f}x "
        f"(need >= {min_speedup:.0f}x)"), check(
        "accuracy", error <= max_error,
        f"sampled IPC {sampled.ipc:.4f} vs detailed {ref_ipc:.4f} = "
        f"{error:+.2%} (need <= {max_error:.0%})")]


def machine_roundtrip(tmp: str) -> tuple:
    """Guarantee 3a: mid-run machine snapshot resume == uninterrupted."""
    config = make_config(CLUSTERS, **CONFIG_KW)
    total, cut = 20_000, 8_000

    baseline = simulate(
        FunctionalExecutor(build_workload(WORKLOAD), total).run(),
        config, max_instructions=total)

    from repro.core.processor import Processor
    executor = FunctionalExecutor(build_workload(WORKLOAD), total)
    processor = Processor(config, executor.run())
    processor.trace_executor = executor
    processor.run_until(max_insts=cut)
    path = str(pathlib.Path(tmp) / "machine.snap")
    save_processor(path, processor)
    restored, _ = restore_processor(path)
    restored.run_until(max_insts=total)
    resumed = restored.finalize()

    same = (resumed.stats.cycles == baseline.stats.cycles
            and resumed.stats.committed_insts
            == baseline.stats.committed_insts
            and resumed.stats.ipc == baseline.stats.ipc)
    return check(
        "machine snapshot roundtrip", same,
        f"resume @{cut}: {resumed.stats.committed_insts} insts / "
        f"{resumed.stats.cycles} cycles vs uninterrupted "
        f"{baseline.stats.committed_insts} / {baseline.stats.cycles}")


def executor_roundtrip(tmp: str) -> tuple:
    """Guarantee 3b: executor checkpoint resume == uninterrupted."""
    total, cut = 120_000, 50_000
    straight = FunctionalExecutor(build_workload(WORKLOAD), total)
    straight.skip(total)

    executor = FunctionalExecutor(build_workload(WORKLOAD), total)
    executor.skip(cut)
    path = str(pathlib.Path(tmp) / "executor.ckpt")
    save_executor(path, executor)
    resumed = restore_executor(path)
    resumed.skip(total - cut)

    same = (resumed.seq == straight.seq
            and resumed.pc == straight.pc
            and resumed.int_regs == straight.int_regs
            and resumed.fp_regs == straight.fp_regs)
    return check(
        "executor checkpoint roundtrip", same,
        f"resume @{cut}: seq {resumed.seq}, architectural state "
        f"{'identical' if same else 'DIVERGED'}")


def receipt_schema(tmp: str) -> list:
    """Guarantee 4: a sampled cell's receipt validates."""
    cell = SweepCell(key=(WORKLOAD, "sampled"), workload=WORKLOAD,
                     n_clusters=CLUSTERS, length=60_000,
                     sampling=SamplingConfig(interval=1200, warmup=200,
                                             samples=4),
                     checkpoint_dir=str(pathlib.Path(tmp) / "ckpts"),
                     **CONFIG_KW)
    monitor = SweepMonitor()
    with use_monitor(monitor):
        results = run_cells([cell], jobs=1)
    monitor.close()
    receipt = RunReceipt.from_monitor(monitor, label="sample-check")
    cells = validate_receipt(receipt.to_dict())
    block = receipt.to_dict()["cells"][0]["sampling"]
    return [check(
        "receipt schema", cells == 1 and block is not None
        and block["interval"] == 1200,
        f"{cells} cell(s), sampling block {block}"), check(
        "sampled cell result", results[(WORKLOAD, "sampled")].ipc > 0,
        f"cell IPC {results[(WORKLOAD, 'sampled')].ipc:.4f}")]


def run_checks(length: int = LENGTH,
               sampling: SamplingConfig = SAMPLING,
               min_speedup: float = MIN_SPEEDUP,
               max_error: float = MAX_IPC_ERROR) -> list:
    """All four guarantees as ``(label, ok, detail)`` tuples.

    The tier-1 wrapper (``tests/analysis/test_sample_check.py``) runs
    this at reduced length with relaxed throughput/accuracy bars —
    the suite shares the host with other tests and a shorter run has
    fewer windows — while ``make sample-check`` enforces the
    full-strength 20x / 2% contract.
    """
    checks = []
    with tempfile.TemporaryDirectory() as tmp:
        checks.append(machine_roundtrip(tmp))
        checks.append(executor_roundtrip(tmp))
        checks.extend(receipt_schema(tmp))
        checks.extend(throughput_and_accuracy(
            length=length, sampling=sampling, min_speedup=min_speedup,
            max_error=max_error))
    return checks


def main() -> int:
    print(f"sample-check: {WORKLOAD} x {LENGTH} insts, "
          f"{SAMPLING.samples} windows of "
          f"{SAMPLING.warmup}+{SAMPLING.interval}")
    checks = run_checks()
    ok = all(passed for _, passed, _ in checks)
    print(f"sample-check: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

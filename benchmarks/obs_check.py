"""Observability health gate: ``make obs-check``.

Runs one short simulation four ways — untraced, ring-buffer traced,
JSONL traced, Chrome traced — and asserts the contract documented in
docs/OBSERVABILITY.md:

1. **Non-invasiveness** — every ``SimStats`` field of the traced runs
   is bit-identical to the untraced run.
2. **Completeness** — the tracer's commit-event count equals
   ``committed_insts + committed_copies + committed_vcopies``.
3. **Schema validity** — the JSONL file passes
   :func:`repro.obs.schema.validate_jsonl_trace` and the Chrome file
   passes :func:`repro.obs.schema.validate_chrome_trace`.
4. **Overhead** — ring-buffer tracing costs < 10% wall-clock over the
   untraced run (interleaved min-of-N timing to filter host noise).
5. **Zero-cost when off** — an untraced, unmetered run performs *no*
   allocation from any ``repro.obs`` module (tracemalloc audit): the
   disabled hooks must stay behind their ``is not None`` guards, so
   turning observability off really removes it from the hot loop.

Exit code 0 when every check passes, 1 otherwise.  The tier-1 test
suite runs :func:`run_checks` directly, so a regression in any of
these fails ``make test`` as well as ``make obs-check``.
"""

from __future__ import annotations

import dataclasses
import gc
import os
import pathlib
import sys
import tempfile
import time
import tracemalloc

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.core import make_config, simulate
from repro.obs import (ChromeTraceSink, EventTracer, JsonlSink,
                       RingBufferSink)
from repro.obs.events import EV_COMMIT
from repro.obs.schema import (TraceSchemaError, validate_chrome_trace,
                              validate_jsonl_trace)
from repro.workloads import workload_trace

#: Wall-clock overhead budget for ring-buffer tracing.
OVERHEAD_BUDGET = 0.10


def _measure_overhead(trace, config, repeats: int):
    """Min-of-N interleaved timing of untraced vs ring-traced runs.

    The variants are interleaved so host drift hits both equally, and
    the cyclic collector is paused inside each timed window:
    collection *frequency* depends on allocation counts, so with it
    enabled the traced run pays extra whole-heap scans whose cost is
    really a property of the host's heap, not of the tracer.  Timing
    noise is one-sided (preemption and cache pollution only ever
    *add* time), so min-of-N per variant is the estimator — the
    fastest run is the closest observation of each variant's true
    cost.
    """
    untraced_times, ring_times = [], []
    for _ in range(repeats):
        for times, kwargs in ((untraced_times, {}),
                              (ring_times,
                               {"tracer":
                                EventTracer(RingBufferSink())})):
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                simulate(list(trace), config, **kwargs)
                times.append(time.perf_counter() - start)
            finally:
                gc.enable()
    untraced_s = min(untraced_times)
    ring_s = min(ring_times)
    return untraced_s, ring_s, ring_s / untraced_s - 1.0


def _obs_off_allocations(trace, config):
    """Bytes allocated from ``repro.obs`` modules by an untraced run.

    With the tracer and interval metrics both disabled every obs hook
    sits behind an ``is not None`` guard, so a hot-loop simulation must
    not execute — let alone allocate in — any ``repro.obs`` code.  A
    non-zero figure means a hook escaped its guard (the regression this
    gate exists to catch: "disabled observability costs nothing").
    tracemalloc attributes every allocation to the source file that
    made it, which pins the offender directly.
    """
    obs_dir = os.path.join("repro", "obs") + os.sep
    gc.collect()
    tracemalloc.start()
    try:
        simulate(list(trace), config)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    offenders = {}
    for stat in snapshot.statistics("filename"):
        filename = stat.traceback[0].filename
        if obs_dir in filename:
            offenders[os.path.basename(filename)] = stat.size
    return offenders


def run_checks(length: int = 4000, repeats: int = 5,
               overhead_budget: float = OVERHEAD_BUDGET,
               check_overhead: bool = True) -> list:
    """Run every check; returns a list of (name, ok, detail) tuples."""
    trace = list(workload_trace("cjpeg", length))
    config = make_config(4, predictor="stride", steering="vpb")
    checks = []

    if check_overhead:
        # Timed first, on a clean heap: the schema/serialization
        # checks below churn enough garbage to visibly slow later
        # runs.  On a loaded (or single-core) host a sustained burst
        # of interference can still straddle every ring run of one
        # measurement, so a reading over budget is re-measured once
        # with doubled repeats and the better observation wins —
        # genuine regressions fail both readings.
        untraced_s, ring_s, overhead = _measure_overhead(
            trace, config, repeats)
        if overhead >= overhead_budget:
            retry = _measure_overhead(trace, config, repeats * 2)
            if retry[2] < overhead:
                untraced_s, ring_s, overhead = retry
        checks.append((f"ring overhead < {overhead_budget:.0%}",
                       overhead < overhead_budget,
                       f"{overhead:+.1%} ({untraced_s:.3f}s -> "
                       f"{ring_s:.3f}s)"))

    offenders = _obs_off_allocations(trace, config)
    checks.append(("obs-off allocates nothing in repro.obs",
                   not offenders,
                   "no obs-module allocations" if not offenders else
                   ", ".join(f"{name}: {size}B"
                             for name, size in sorted(offenders.items()))))

    base = simulate(list(trace), config)
    ring_tracer = EventTracer(RingBufferSink())
    ring = simulate(list(trace), config, tracer=ring_tracer)
    identical = (dataclasses.asdict(base.stats)
                 == dataclasses.asdict(ring.stats))
    checks.append(("non-invasive (stats bit-identical)", identical,
                   "" if identical else "traced stats diverge"))

    stats = ring.stats
    expected = (stats.committed_insts + stats.committed_copies
                + stats.committed_vcopies)
    commits = ring_tracer.counts[EV_COMMIT]
    checks.append(("commit events == committed uops",
                   commits == expected,
                   f"{commits} events vs {expected} committed"))

    with tempfile.TemporaryDirectory() as tmp:
        jsonl_path = os.path.join(tmp, "trace.jsonl")
        chrome_path = os.path.join(tmp, "trace.json")
        with JsonlSink(jsonl_path, config.describe()) as sink:
            simulate(list(trace), config, tracer=EventTracer(sink))
        with ChromeTraceSink(chrome_path, config.describe()) as sink:
            simulate(list(trace), config, tracer=EventTracer(sink))
        for label, validate, path in (
                ("jsonl schema", validate_jsonl_trace, jsonl_path),
                ("chrome schema", validate_chrome_trace, chrome_path)):
            try:
                count = validate(path)
                checks.append((label, True, f"{count} events"))
            except TraceSchemaError as error:
                checks.append((label, False, str(error)))

    return checks


def main() -> int:
    checks = run_checks()
    width = max(len(name) for name, _, _ in checks)
    failed = 0
    for name, ok, detail in checks:
        mark = "ok " if ok else "FAIL"
        line = f"{mark} {name:<{width}}"
        if detail:
            line += f"  {detail}"
        print(line)
        if not ok:
            failed += 1
    if failed:
        print(f"\n{failed} observability check(s) failed")
        return 1
    print("\nall observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 4 — sensitivity to communication latency (a) and bandwidth (b).

Shape targets: IPC falls monotonically as latency grows 1->4 (paper:
-17% at 4c with prediction, -20% without — prediction softens the
blow); a single path per cluster costs very little vs unbounded
(paper: ~1%).
"""

from repro.analysis import (format_figure4, run_figure4_bandwidth,
                            run_figure4_latency)


def test_figure4a_latency(benchmark, save_report):
    result = benchmark.pedantic(run_figure4_latency, rounds=1, iterations=1)
    save_report("figure4a_latency", format_figure4(result, "a"))
    for key, series in result.ipc.items():
        values = [series[x] for x in result.xvalues]
        assert values == sorted(values, reverse=True), (
            f"IPC should fall with latency for {key}: {values}")
    # Prediction reduces the latency penalty at 4 clusters.
    assert (result.degradation_pct((4, True))
            < result.degradation_pct((4, False)) + 1.0)


def test_figure4b_bandwidth(benchmark, save_report):
    result = benchmark.pedantic(run_figure4_bandwidth, rounds=1,
                                iterations=1)
    save_report("figure4b_bandwidth", format_figure4(result, "b"))
    for key in result.ipc:
        # One path per cluster loses little vs unbounded (paper: ~1%).
        assert result.degradation_pct(key) > -6.0
        one = result.ipc[key][1]
        unbounded = result.ipc[key]["unbounded"]
        assert one >= 0.93 * unbounded

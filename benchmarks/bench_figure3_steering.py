"""Figure 3 — Baseline/VPB x {no,stride,perfect} prediction at 2/4 clusters.

Shape targets (4 clusters): IPCR ordering baseline-nopredict <
baseline-predict < vpb-predict < vpb-perfect (paper: 0.65 / 0.74 /
0.77 / 0.90); VPB cuts communications roughly in half; perfect
prediction leaves only fp communications.
"""

import pathlib

from repro.analysis import format_figure3, run_figure3, to_csv


def test_figure3_steering(benchmark, save_report):
    result = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    save_report("figure3_steering", format_figure3(result))
    # Per-benchmark detail as CSV for external plotting.
    rows = [{"clusters": n, "scheme": scheme, "benchmark": name, **metrics}
            for (n, scheme, name), metrics in result.per_benchmark.items()]
    csv_path = (pathlib.Path(__file__).resolve().parent.parent
                / "results" / "figure3_per_benchmark.csv")
    to_csv(rows, str(csv_path))
    for n in (2, 4):
        ipcr = result.ipcr[n]
        comm = result.comm[n]
        assert ipcr["baseline-nopredict"] <= ipcr["vpb-predict"]
        assert ipcr["vpb-predict"] < ipcr["vpb-perfect"]
        # VPB communications well below the no-prediction baseline.
        assert comm["vpb-predict"] < 0.75 * comm["baseline-nopredict"]
        # Perfect prediction: only fp values cross clusters.
        assert comm["vpb-perfect"] < 0.25 * comm["baseline-nopredict"]

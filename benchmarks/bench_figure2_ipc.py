"""Figure 2 — IPC of 1/2/4-cluster configurations, +/- value prediction.

Shape targets: IPC decreases with clustering; value prediction helps,
and helps the clustered machines more than the centralized one
(paper: +2% / +5% / +16% with baseline steering).
"""

from repro.analysis import format_figure2, run_figure2


def test_figure2_ipc(benchmark, save_report):
    result = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    save_report("figure2_ipc", format_figure2(result))
    avg = {key: result.average(key) for key in result.CONFIGS}
    # Clustering degrades IPC (with and without prediction).
    assert avg[(1, False)] > avg[(2, False)] > avg[(4, False)]
    assert avg[(1, True)] > avg[(2, True)] > avg[(4, True)]
    # Prediction helps the 4-cluster machine more than the centralized.
    assert (result.prediction_gain_pct(4) > result.prediction_gain_pct(1))

"""Table 2 — the workload suite inventory.

Prints each stand-in's category, the paper's dynamic instruction count,
and the stand-in's own static/dynamic sizes; benchmarks the functional
executor (trace generation throughput).
"""

from repro.analysis import table, trace_length
from repro.isa.executor import FunctionalExecutor
from repro.workloads import (SUITE, build_workload, trace_statistics,
                             workload_trace)


def test_table2_suite(benchmark, save_report):
    length = trace_length()
    rows = []
    for name, spec in SUITE.items():
        program = build_workload(name)
        stats = trace_statistics(workload_trace(name, length))
        rows.append([name, spec.category, f"{spec.paper_minsts:.1f}",
                     program.static_size, stats["instructions"],
                     f"{100 * stats['load_fraction']:.0f}%",
                     f"{100 * stats['branch_fraction']:.0f}%",
                     f"{100 * stats['fp_fraction']:.0f}%"])
    report = table(
        ["benchmark", "category", "paper Minst", "static", "dynamic",
         "loads", "branches", "fp"],
        rows, "Table 2 — Mediabench stand-in suite")
    save_report("table2_suite", report)

    program = build_workload("cjpeg")
    benchmark.pedantic(
        lambda: list(FunctionalExecutor(program, length).run()),
        rounds=3, iterations=1)

"""Methodology check — headline claims are stable across trace lengths.

The reproduction uses reduced steady-state windows instead of the
paper's run-to-completion methodology; this benchmark verifies the
directional claims do not depend on the window size.
"""

from repro.analysis import format_headline, run_robustness


def test_headline_stability(benchmark, save_report):
    results = benchmark.pedantic(run_robustness, rounds=1, iterations=1)
    report = []
    for length, result in results.items():
        report.append(f"--- trace length {length} ---")
        report.append(format_headline(result))
    save_report("robustness", "\n".join(report))
    for length, result in results.items():
        m = result.measured
        assert m["ipcr4_vpb"] > m["ipcr4_baseline_nopredict"], length
        assert m["comm4_vpb"] < m["comm4_nopredict"], length
        assert m["ipc_gain_pct_4c"] > m["ipc_gain_pct_1c"], length
    # The headline IPCR improvement is stable within a few points.
    gains = [r.measured["ipcr4_gain_pct"] for r in results.values()]
    assert max(gains) - min(gains) < 12.0

"""Robustness benchmarks — methodology stability and fault campaign.

Two halves:

* the headline claims must be stable across trace-window sizes (the
  reduced-trace methodology check), and
* the fault-injection campaign (docs/ROBUSTNESS.md) must show 100%
  detection of injected value corruptions and full recovery across
  N seeds x fault kinds, with its report saved to
  ``results/robustness_campaign.txt``.
"""

from repro.analysis import format_headline, run_robustness
from repro.validation import format_campaign, run_fault_campaign


def test_fault_campaign(benchmark, save_report):
    result = benchmark.pedantic(
        run_fault_campaign,
        kwargs={"seeds": (0, 1, 2), "length": 4_000},
        rounds=1, iterations=1)
    save_report("robustness_campaign", format_campaign(result))
    # The paper's safety property, demonstrated at campaign scale.
    assert result.detection_rate == 1.0
    assert result.all_recovered
    assert not result.failures
    assert all(cell.injected > 0 for cell in result.value_cells())


def test_headline_stability(benchmark, save_report):
    results = benchmark.pedantic(run_robustness, rounds=1, iterations=1)
    report = []
    for length, result in results.items():
        report.append(f"--- trace length {length} ---")
        report.append(format_headline(result))
    save_report("robustness", "\n".join(report))
    for length, result in results.items():
        m = result.measured
        assert m["ipcr4_vpb"] > m["ipcr4_baseline_nopredict"], length
        assert m["comm4_vpb"] < m["comm4_nopredict"], length
        assert m["ipc_gain_pct_4c"] > m["ipc_gain_pct_1c"], length
    # The headline IPCR improvement is stable within a few points.
    gains = [r.measured["ipcr4_gain_pct"] for r in results.values()]
    assert max(gains) - min(gains) < 12.0

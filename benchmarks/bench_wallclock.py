"""Wall-clock benchmark of the parallel sweep runner.

Runs one fixed suite sweep several ways — serially (``jobs=1``), fanned
out across a fresh worker pool, again on the same (warm) pool, and
through a cold-then-warm result cache — verifies every variant is
metric-identical to serial, and records wall-clock times plus
simulated-instructions-per-second into ``BENCH_sweep.json`` at the repo
root (the perf trajectory file; each entry is appended, so the history
survives re-runs).

Entries are written through
:func:`repro.analysis.perf_report.append_entry` — schema-tagged,
stably key-ordered, deduplicated — so ``repro report`` can always
render the trajectory.  Each entry also carries provenance (git
commit via :func:`repro.analysis.provenance.git_commit`, UTC
timestamp, python version — see :func:`provenance`), the dispatch chunk size
(``repro.analysis.parallel.resolve_chunksize``), the pool-reuse and
cache sections, the serial run's per-cell wall-clock costs (the slowest
cells, from ``run_cells(timings=...)``) and a tracer overhead section
comparing an untraced run against ring-buffer and JSONL tracing
(min-of-N, docs/OBSERVABILITY.md).

Run directly (``python benchmarks/bench_wallclock.py``) or via
``make bench-wallclock``.  Knobs: ``REPRO_JOBS`` sets the parallel
worker count (default: all cores), ``REPRO_TRACE_LEN`` the per-cell
trace length, ``REPRO_CHUNKSIZE`` the cells per worker dispatch.

``--sampled`` runs the checkpointed-sampling benchmark instead
(docs/SAMPLING.md): each workload gets one full detailed
million-instruction reference run and one sampled run at the
validated plan (16 windows of 200+1200), and the entry records
per-workload IPC error, effective insts/s and speedup with
``"shape": "sampled"`` so the detailed-throughput regression guard
never mixes the two populations.

The recorded ``cpu_count`` is what makes the speedup interpretable:
on a single-core host the parallel path degenerates to process overhead
and the honest speedup is ~1x or below; the >= 1.5x criterion applies
to hosts with >= 2 cores.  A degenerate run whose parallel time rounds
to zero records no ``speedup`` at all (``None`` would read as
"infinitely slower"; see :func:`speedup_of`).
"""

from __future__ import annotations

import datetime
import os
import pathlib
import platform
import sys
import tempfile
import time
from typing import Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis.cache import ResultCache, use_cache
from repro.analysis.perf_report import append_entry
from repro.analysis.provenance import git_commit
from repro.analysis.parallel import (SweepCell, WorkerPool,
                                     resolve_chunksize, resolve_jobs,
                                     resolve_trace_length, run_cells)
from repro.core import make_config, simulate
from repro.obs import EventTracer, JsonlSink, RingBufferSink
from repro.workloads import clear_trace_cache, workload_names, \
    workload_trace

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_sweep.json"

#: The benchmark sweep: every suite workload at 2 and 4 clusters.
CONFIGS = ((2, "stride", "vpb"), (4, "stride", "vpb"))


def build_cells(length: int):
    return [SweepCell(key=(name, n), workload=name, n_clusters=n,
                      predictor=predictor, steering=steering, length=length)
            for name in workload_names()
            for n, predictor, steering in CONFIGS]


def speedup_of(serial_s: float, parallel_s: float) -> Optional[float]:
    """Serial/parallel ratio, or ``None`` when it cannot be computed.

    A zero (or negative, after clock weirdness) parallel time means the
    run was too fast to measure; the old ``0.0`` sentinel read as
    "infinitely slower" in the trajectory, so the field is omitted
    instead (the BENCH schema treats a missing/``null`` speedup as
    "not measurable", see docs/PERFORMANCE.md).
    """
    if parallel_s <= 0.0 or serial_s < 0.0:
        return None
    return round(serial_s / parallel_s, 3)


def rate_of(insts: int, seconds: float) -> Optional[float]:
    """Instructions per second, or ``None`` for unmeasurable runs."""
    if seconds <= 0.0:
        return None
    return round(insts / seconds, 1)


def provenance() -> dict:
    """Where and when this entry was measured.

    The git commit (plus a ``-dirty`` suffix for uncommitted changes),
    a UTC timestamp and the interpreter version make every trajectory
    entry attributable after the fact; without them a regression in the
    history cannot be tied to the change that caused it.  Entries
    recorded outside a git checkout carry ``"commit": null``.
    """
    timestamp = datetime.datetime.now(datetime.timezone.utc)
    return {
        "commit": git_commit(),
        "timestamp_utc": timestamp.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
    }


def timed_run(cells, jobs: int, timings=None, cache=None):
    # Drop the in-process trace cache so the serial and parallel paths
    # both pay (or amortize) trace generation the same way a fresh
    # campaign would.
    clear_trace_cache()
    start = time.perf_counter()
    results = run_cells(cells, jobs=jobs, timings=timings, cache=cache)
    elapsed = time.perf_counter() - start
    return results, elapsed


def pool_reuse_timings(cells, jobs: int) -> dict:
    """Cold (worker startup included) vs warm (reused pool) sweep times.

    The pre-fix drivers each constructed a fresh executor, so every
    figure paid the cold cost; the warm number is what a batch of
    drivers inside one ``with WorkerPool(...)`` block pays per sweep.
    """
    with WorkerPool(jobs) as pool:
        _, cold_s = timed_run(cells, jobs=jobs)
        results, warm_s = timed_run(cells, jobs=jobs)
        assert pool.started or jobs <= 1
    return results, {
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
    }


def cache_timings(cells, serial) -> dict:
    """Cold-populate vs warm-hit sweep times through a fresh cache."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        _, cold_s = timed_run(cells, jobs=1, cache=cache)
        cold_stats = (cache.stats.hits, cache.stats.misses)
        warm, warm_s = timed_run(cells, jobs=1, cache=cache)
        warm_hits = cache.stats.hits - cold_stats[0]
        identical = warm.keys() == serial.keys() and all(
            warm[key].to_dict() == serial[key].to_dict() for key in serial)
    return {
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "cold_misses": cold_stats[1],
        "warm_hits": warm_hits,
        "warm_speedup": speedup_of(cold_s, warm_s),
        "metric_identical": identical,
    }


#: The sampled benchmark's plan and population (docs/SAMPLING.md).
#: The workloads are the suite members the k16/200+1200 plan was
#: validated on; the acceptance bar is >= 6 of them inside both the
#: accuracy and throughput envelopes on an idle host.
SAMPLED_WORKLOADS = ("mesatexgen", "cjpeg", "rawcaudio", "mpeg2enc",
                     "mesaosdemo", "rasta", "gsmdec", "pgpdec")
SAMPLED_LENGTH = 1_000_000
SAMPLED_MAX_ERROR = 0.02
SAMPLED_MIN_SPEEDUP = 20.0


def sampled_benchmark() -> int:
    """Detailed-vs-sampled benchmark; appends a ``shape: sampled`` entry."""
    from repro.analysis.sampling import SamplingConfig
    from repro.isa.executor import FunctionalExecutor
    from repro.workloads import build_workload

    sampling = SamplingConfig(interval=1200, warmup=200, samples=16)
    config = make_config(2, predictor="stride", steering="vpb")
    print(f"sampled sweep: {len(SAMPLED_WORKLOADS)} workloads x "
          f"{SAMPLED_LENGTH} insts, {sampling.samples} windows of "
          f"{sampling.warmup}+{sampling.interval} (2 clusters, "
          f"stride/vpb)")

    rows = []
    for name in SAMPLED_WORKLOADS:
        start = time.perf_counter()
        detailed = simulate(
            FunctionalExecutor(build_workload(name), SAMPLED_LENGTH).run(),
            config, max_instructions=SAMPLED_LENGTH)
        detailed_s = time.perf_counter() - start
        ref_ipc = detailed.stats.committed_insts / detailed.stats.cycles

        sampled = simulate(build_workload(name), config,
                           max_instructions=SAMPLED_LENGTH,
                           sampling=sampling, workload_name=name)
        error = (sampled.ipc - ref_ipc) / ref_ipc
        detailed_rate = detailed.stats.committed_insts / detailed_s
        speedup = sampled.effective_insts_per_second / detailed_rate
        passed = (abs(error) <= SAMPLED_MAX_ERROR
                  and speedup >= SAMPLED_MIN_SPEEDUP)
        rows.append({
            "workload": name,
            "detailed_ipc": round(ref_ipc, 4),
            "sampled_ipc": round(sampled.ipc, 4),
            "ipc_error": round(error, 4),
            "ipc_ci95": round(sampled.ipc_ci95, 4),
            "detailed_seconds": round(detailed_s, 3),
            "sampled_seconds": round(sampled.wall_seconds, 3),
            "detailed_insts_per_second": rate_of(
                detailed.stats.committed_insts, detailed_s),
            "effective_insts_per_second": round(
                sampled.effective_insts_per_second, 1),
            "speedup": round(speedup, 2),
            "within_bars": passed,
        })
        print(f"  {name:12s}: sampled {sampled.ipc:.4f} vs detailed "
              f"{ref_ipc:.4f} ({error:+.2%}), {speedup:.1f}x "
              f"[{'ok' if passed else 'MISS'}]")

    passing = sum(row["within_bars"] for row in rows)
    errors = [abs(row["ipc_error"]) for row in rows]
    entry = {
        "benchmark": "sampled_sweep",
        "shape": "sampled",
        **provenance(),
        "cpu_count": os.cpu_count(),
        "trace_length": SAMPLED_LENGTH,
        "sampling": sampling.canonical_dict(),
        "config": {"clusters": 2, "predictor": "stride",
                   "steering": "vpb"},
        "workloads": rows,
        "max_ipc_error": round(max(errors), 4),
        "mean_ipc_error": round(sum(errors) / len(errors), 4),
        "min_speedup": min(row["speedup"] for row in rows),
        "median_speedup": sorted(row["speedup"] for row in rows)[
            len(rows) // 2],
        "workloads_within_bars": passing,
        "bars": {"max_ipc_error": SAMPLED_MAX_ERROR,
                 "min_speedup": SAMPLED_MIN_SPEEDUP,
                 "min_workloads": 6},
    }
    append_entry(RESULT_PATH, entry)
    print(f"{passing}/{len(rows)} workloads within both bars "
          f"(need >= 6); max |error| {entry['max_ipc_error']:.2%}, "
          f"median speedup {entry['median_speedup']:.1f}x")
    print(f"recorded in {RESULT_PATH}")
    return 0 if passing >= 6 else 1


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sampled", action="store_true",
                        help="run the checkpointed-sampling benchmark "
                             "instead of the sweep-parallelism one")
    args = parser.parse_args(argv)
    # Shadow any ambient REPRO_CACHE: the serial/parallel timings must
    # measure simulation, and the cache section brings its own cache.
    with use_cache(None):
        if args.sampled:
            return sampled_benchmark()
        return _main()


def _main() -> int:
    length = resolve_trace_length(None, default=4_000)
    jobs = resolve_jobs(int(os.environ["REPRO_JOBS"])
                        if "REPRO_JOBS" in os.environ else 0)
    cells = build_cells(length)
    chunksize = resolve_chunksize(None, len(cells), jobs)
    print(f"sweep: {len(cells)} cells x {length} instructions; "
          f"parallel jobs={jobs}, chunksize={chunksize} "
          f"(cpu_count={os.cpu_count()})")

    cell_timings: dict = {}
    serial, serial_s = timed_run(cells, jobs=1, timings=cell_timings)
    print(f"serial  : {serial_s:.2f}s")
    parallel, pool_reuse = pool_reuse_timings(cells, jobs)
    parallel_s = pool_reuse["warm_seconds"]
    print(f"parallel: {pool_reuse['cold_seconds']:.2f}s cold pool, "
          f"{parallel_s:.2f}s warm pool")
    cache = cache_timings(cells, serial)
    print(f"cache   : {cache['cold_seconds']:.2f}s cold, "
          f"{cache['warm_seconds']:.2f}s warm "
          f"({cache['warm_hits']} hit(s))")
    slowest = sorted(cell_timings.items(), key=lambda kv: -kv[1])[:5]
    for key, seconds in slowest:
        print(f"  slow cell {key}: {seconds:.2f}s")
    overhead = tracer_overhead(length)
    print(f"tracer overhead: ring {overhead['ring_overhead']:+.1%}, "
          f"jsonl {overhead['jsonl_overhead']:+.1%}")

    identical = serial.keys() == parallel.keys() and all(
        serial[key].to_dict() == parallel[key].to_dict() for key in serial)
    identical = identical and cache["metric_identical"]
    insts = sum(result.stats.committed_insts for result in serial.values())
    speedup = speedup_of(serial_s, parallel_s)
    entry = {
        "benchmark": "sweep_wallclock",
        **provenance(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "chunksize": chunksize,
        "cells": len(cells),
        "trace_length": length,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "pool_reuse": pool_reuse,
        "cache": cache,
        "simulated_insts": insts,
        "serial_insts_per_second": rate_of(insts, serial_s),
        "parallel_insts_per_second": rate_of(insts, parallel_s),
        "metric_identical": identical,
        "slowest_cells": [{"workload": key[0], "clusters": key[1],
                           "seconds": round(seconds, 3)}
                          for key, seconds in slowest],
        "tracer_overhead": overhead,
    }
    if speedup is not None:
        entry["speedup"] = speedup
    append_entry(RESULT_PATH, entry)
    shown = f"{speedup:.2f}x" if speedup is not None else "n/a"
    print(f"speedup : {shown} on {jobs} job(s) (warm pool); "
          f"cache warm rerun "
          f"{cache['warm_speedup'] or 'n/a'}x vs cold")
    print(f"metric-identical: {identical}")
    print(f"recorded in {RESULT_PATH}")
    return 0 if identical else 1


def tracer_overhead(length: int, repeats: int = 3) -> dict:
    """Min-of-N wall-clock of one run untraced vs ring vs JSONL.

    The three variants are interleaved within each repeat so host
    drift hits them equally; min over repeats filters the noise.
    Ratios > 1 are tracing cost.
    """
    trace = list(workload_trace("cjpeg", length))
    config = make_config(4, predictor="stride", steering="vpb")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.jsonl")

        def jsonl_run():
            sink = JsonlSink(path, config.describe())
            try:
                simulate(list(trace), config, tracer=EventTracer(sink))
            finally:
                sink.close()

        variants = (
            ("baseline", lambda: simulate(list(trace), config)),
            ("ring", lambda: simulate(
                list(trace), config,
                tracer=EventTracer(RingBufferSink()))),
            ("jsonl", jsonl_run),
        )
        times = {name: [] for name, _ in variants}
        for _ in range(repeats):
            for name, run in variants:
                start = time.perf_counter()
                run()
                times[name].append(time.perf_counter() - start)
    baseline = min(times["baseline"])
    ring = min(times["ring"])
    jsonl = min(times["jsonl"])
    return {
        "baseline_seconds": round(baseline, 4),
        "ring_seconds": round(ring, 4),
        "jsonl_seconds": round(jsonl, 4),
        "ring_overhead": round(ring / baseline - 1.0, 4),
        "jsonl_overhead": round(jsonl / baseline - 1.0, 4),
    }


if __name__ == "__main__":
    sys.exit(main())

"""Wall-clock benchmark of the parallel sweep runner.

Runs one fixed suite sweep twice — serially (``jobs=1``) and fanned out
across worker processes — verifies the two are metric-identical, and
records wall-clock times plus simulated-instructions-per-second into
``BENCH_sweep.json`` at the repo root (the perf trajectory file; each
entry is appended, so the history survives re-runs).

Each entry also carries the serial run's per-cell wall-clock costs
(the slowest cells, from ``run_cells(timings=...)``) and a tracer
overhead section comparing an untraced run against ring-buffer and
JSONL tracing (min-of-N, docs/OBSERVABILITY.md).

Run directly (``python benchmarks/bench_wallclock.py``) or via
``make bench-wallclock``.  Knobs: ``REPRO_JOBS`` sets the parallel
worker count (default: all cores), ``REPRO_TRACE_LEN`` the per-cell
trace length.

The recorded ``cpu_count`` is what makes the speedup interpretable:
on a single-core host the parallel path degenerates to process overhead
and the honest speedup is ~1x or below; the >= 2x criterion applies to
hosts with >= 4 cores.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis.parallel import (SweepCell, resolve_jobs,
                                     resolve_trace_length, run_cells)
from repro.core import make_config, simulate
from repro.obs import EventTracer, JsonlSink, RingBufferSink
from repro.workloads import clear_trace_cache, workload_names, \
    workload_trace

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_sweep.json"

#: The benchmark sweep: every suite workload at 2 and 4 clusters.
CONFIGS = ((2, "stride", "vpb"), (4, "stride", "vpb"))


def build_cells(length: int):
    return [SweepCell(key=(name, n), workload=name, n_clusters=n,
                      predictor=predictor, steering=steering, length=length)
            for name in workload_names()
            for n, predictor, steering in CONFIGS]


def timed_run(cells, jobs: int, timings=None):
    # Drop the in-process trace cache so the serial and parallel paths
    # both pay (or amortize) trace generation the same way a fresh
    # campaign would.
    clear_trace_cache()
    start = time.perf_counter()
    results = run_cells(cells, jobs=jobs, timings=timings)
    elapsed = time.perf_counter() - start
    return results, elapsed


def tracer_overhead(length: int, repeats: int = 3) -> dict:
    """Min-of-N wall-clock of one run untraced vs ring vs JSONL.

    The three variants are interleaved within each repeat so host
    drift hits them equally; min over repeats filters the noise.
    Ratios > 1 are tracing cost.
    """
    import tempfile
    trace = list(workload_trace("cjpeg", length))
    config = make_config(4, predictor="stride", steering="vpb")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.jsonl")

        def jsonl_run():
            sink = JsonlSink(path, config.describe())
            simulate(list(trace), config, tracer=EventTracer(sink))
            sink.close()

        variants = (
            ("baseline", lambda: simulate(list(trace), config)),
            ("ring", lambda: simulate(
                list(trace), config,
                tracer=EventTracer(RingBufferSink()))),
            ("jsonl", jsonl_run),
        )
        times = {name: [] for name, _ in variants}
        for _ in range(repeats):
            for name, run in variants:
                start = time.perf_counter()
                run()
                times[name].append(time.perf_counter() - start)
    baseline = min(times["baseline"])
    ring = min(times["ring"])
    jsonl = min(times["jsonl"])
    return {
        "baseline_seconds": round(baseline, 4),
        "ring_seconds": round(ring, 4),
        "jsonl_seconds": round(jsonl, 4),
        "ring_overhead": round(ring / baseline - 1.0, 4),
        "jsonl_overhead": round(jsonl / baseline - 1.0, 4),
    }


def main() -> int:
    length = resolve_trace_length(None, default=4_000)
    jobs = resolve_jobs(int(os.environ["REPRO_JOBS"])
                        if "REPRO_JOBS" in os.environ else 0)
    cells = build_cells(length)
    print(f"sweep: {len(cells)} cells x {length} instructions; "
          f"parallel jobs={jobs} (cpu_count={os.cpu_count()})")

    cell_timings: dict = {}
    serial, serial_s = timed_run(cells, jobs=1, timings=cell_timings)
    print(f"serial  : {serial_s:.2f}s")
    parallel, parallel_s = timed_run(cells, jobs=jobs)
    print(f"parallel: {parallel_s:.2f}s")
    slowest = sorted(cell_timings.items(), key=lambda kv: -kv[1])[:5]
    for key, seconds in slowest:
        print(f"  slow cell {key}: {seconds:.2f}s")
    overhead = tracer_overhead(length)
    print(f"tracer overhead: ring {overhead['ring_overhead']:+.1%}, "
          f"jsonl {overhead['jsonl_overhead']:+.1%}")

    identical = serial.keys() == parallel.keys() and all(
        serial[key].to_dict() == parallel[key].to_dict() for key in serial)
    insts = sum(result.stats.committed_insts for result in serial.values())
    speedup = serial_s / parallel_s if parallel_s else 0.0
    entry = {
        "benchmark": "sweep_wallclock",
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "cells": len(cells),
        "trace_length": length,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "simulated_insts": insts,
        "serial_insts_per_second": round(insts / serial_s, 1),
        "parallel_insts_per_second": round(insts / parallel_s, 1),
        "metric_identical": identical,
        "slowest_cells": [{"workload": key[0], "clusters": key[1],
                           "seconds": round(seconds, 3)}
                          for key, seconds in slowest],
        "tracer_overhead": overhead,
    }
    history = []
    if RESULT_PATH.exists():
        try:
            history = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(entry)
    RESULT_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"speedup : {speedup:.2f}x on {jobs} job(s); "
          f"{entry['parallel_insts_per_second']:.0f} sim insts/s parallel")
    print(f"metric-identical: {identical}")
    print(f"recorded in {RESULT_PATH}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())

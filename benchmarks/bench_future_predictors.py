"""§6 future-work experiment — "more complex and effective predictors".

The paper's closing claim is that its deliberately simple stride
predictor leaves performance on the table.  This benchmark tests that
claim with the context (FCM) and hybrid tournament predictors from the
Sazeides-Smith family the paper itself cites ([19]): both should sit
between the stride predictor and the perfect upper bound.
"""

from repro.analysis import format_ablation, run_predictor_comparison


def test_future_predictors(benchmark, save_report):
    result = benchmark.pedantic(run_predictor_comparison, rounds=1,
                                iterations=1)
    save_report("future_predictors", format_ablation(
        result, "Value predictor families (4 clusters, VPB)",
        "(paper 6: better predictors should improve VPB further; "
        "perfect is the ceiling)"))
    rows = result.rows
    assert rows["stride"]["ipc"] > rows["none"]["ipc"]
    # The hybrid should beat (or at worst match) the simple stride
    # predictor, validating the paper's closing conjecture.
    assert rows["hybrid"]["ipc"] >= rows["stride"]["ipc"] * 0.995
    assert rows["perfect"]["ipc"] >= rows["hybrid"]["ipc"]
    assert rows["hybrid"]["comm"] <= rows["stride"]["comm"] * 1.05

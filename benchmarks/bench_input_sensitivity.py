"""Methodology check — headline shapes hold on a second input dataset.

Mediabench ships one input file per benchmark (Table 2); a reproduction
on synthetic inputs must show its conclusions don't hinge on the
specific input data. This benchmark reruns the core comparison on the
"train" dataset (different seeds, same programs).
"""

from repro.analysis import mean, selected_workloads, table, trace_length
from repro.core import make_config, simulate
from repro.workloads import workload_trace


def run_dataset(dataset, length):
    cells = {}
    for key, (n, pred, steer) in {
            "1c": (1, "none", "baseline"),
            "4c": (4, "none", "baseline"),
            "4c-vpb": (4, "stride", "vpb")}.items():
        ipcs, comms = [], []
        for name in selected_workloads():
            trace = workload_trace(name, length, dataset=dataset)
            result = simulate(list(trace),
                              make_config(n, predictor=pred,
                                          steering=steer))
            ipcs.append(result.ipc)
            comms.append(result.comm_per_inst)
        cells[key] = (mean(ipcs), mean(comms))
    return cells


def test_input_sensitivity(benchmark, save_report):
    length = trace_length()

    def run_both():
        return {dataset: run_dataset(dataset, length)
                for dataset in ("test", "train")}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for dataset, cells in results.items():
        ipcr = cells["4c"][0] / cells["1c"][0]
        ipcr_vpb = cells["4c-vpb"][0] / cells["1c"][0]
        rows.append([dataset, f"{cells['1c'][0]:.2f}",
                     f"{ipcr:.3f}", f"{ipcr_vpb:.3f}",
                     f"{cells['4c'][1]:.3f}", f"{cells['4c-vpb'][1]:.3f}"])
    save_report("input_sensitivity", table(
        ["dataset", "IPC 1c", "IPCR4", "IPCR4+vpb", "comm 4c",
         "comm 4c+vpb"], rows,
        "Input sensitivity — test vs train datasets"))
    for dataset, cells in results.items():
        ipc_1c, _ = cells["1c"]
        ipc_4c, comm_4c = cells["4c"]
        ipc_vpb, comm_vpb = cells["4c-vpb"]
        assert ipc_4c < ipc_1c, dataset          # clustering costs IPC
        assert ipc_vpb > ipc_4c, dataset         # VPB recovers some
        assert comm_vpb < 0.75 * comm_4c, dataset  # by cutting comms

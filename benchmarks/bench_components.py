"""Component micro-benchmarks: raw speed of the simulator substrates.

Not a paper figure — these keep the Python model's performance honest
(regressions here make the figure benchmarks unusable) and provide
pytest-benchmark with hot loops worth timing statistically.
"""

import random

from repro.core import make_config, simulate
from repro.frontend import CombinedPredictor
from repro.memory import Cache
from repro.predictor import StridePredictor
from repro.workloads import workload_trace


def test_bench_cache_access(benchmark):
    cache = Cache("L1", 64 * 1024, 2, 32, 1, memory_latency=32)
    rng = random.Random(7)
    addrs = [rng.randrange(0, 1 << 20) & ~3 for _ in range(4096)]

    def run():
        total = 0
        for addr in addrs:
            total += cache.access(addr)
        return total

    benchmark(run)


def test_bench_stride_predictor(benchmark):
    predictor = StridePredictor(16 * 1024)
    pcs = [(0x1000 + 4 * i, i & 1) for i in range(512)]

    def run():
        for step in range(8):
            for pc, slot in pcs:
                predictor.predict(pc, slot, step * 4)
                predictor.update(pc, slot, step * 4)

    benchmark(run)


def test_bench_branch_predictor(benchmark):
    predictor = CombinedPredictor()
    rng = random.Random(3)
    branches = [(0x2000 + 4 * (i % 64), rng.random() < 0.7)
                for i in range(4096)]

    def run():
        for pc, taken in branches:
            predictor.predict(pc)
            predictor.update(pc, taken)

    benchmark(run)


def test_bench_simulator_throughput(benchmark):
    trace = workload_trace("cjpeg", 4000)
    config = make_config(4, predictor="stride", steering="vpb")

    def run():
        return simulate(list(trace), config).stats.cycles

    benchmark.pedantic(run, rounds=3, iterations=1)

"""Extension — cluster-count scaling of the paper's thesis.

The paper generalizes clustered designs "to an arbitrary number of
homogeneous clusters" (§5) but evaluates 1/2/4. Extending Table 1's
structure-scaling rule to 8 clusters tests the thesis's extrapolation:
the deeper the clustering, the larger the share of the IPC loss that is
communication — and hence the more value prediction recovers.
"""

from repro.analysis import run_scaling
from repro.analysis.report import format_scaling


def test_cluster_scaling(benchmark, save_report):
    result = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    save_report("scaling", format_scaling(result))
    # IPC monotonically decreases with clustering, both ways.
    for predict in (False, True):
        series = [result.ipc[(n, predict)] for n in result.counts]
        assert series == sorted(series, reverse=True)
    # Communications grow with clustering (no-VP side).
    comms = [result.comm[(n, False)] for n in result.counts]
    assert comms == sorted(comms)
    # The paper's thesis, extrapolated: VP's gain grows with clustering.
    gains = [result.vp_gain_pct(n) for n in result.counts]
    assert gains[-1] > gains[0]
    assert gains[-1] > gains[1]

"""§3.2 ablation — the ungated Modified scheme vs Baseline vs VPB.

Shape targets: Modified lowers workload imbalance vs Baseline (paper:
-31%) but does not lower communications (the optimistic assumptions
backfire), so its IPCR is about the Baseline's; VPB beats both.
"""

from repro.analysis import format_ablation, run_ablation_modified


def test_ablation_modified(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_modified, rounds=1,
                                iterations=1)
    save_report("ablation_modified", format_ablation(
        result, "Section 3.2 — ungated Modified scheme (4 clusters)",
        "(paper: Modified ~ Baseline IPCR; imbalance -31%; comm flat; "
        "VPB wins)"))
    rows = result.rows
    assert rows["modified"]["imbalance"] < rows["baseline"]["imbalance"]
    assert rows["vpb"]["ipcr"] >= rows["modified"]["ipcr"] - 0.01
    assert rows["vpb"]["comm"] <= rows["baseline"]["comm"]

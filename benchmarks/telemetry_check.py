"""Sweep-telemetry health gate: ``make telemetry-check``.

Runs a 30-cell sweep (every suite workload x two configurations) under
a :class:`~repro.obs.telemetry.SweepMonitor` and asserts the contract
documented in docs/OBSERVABILITY.md:

1. **Overhead** — monitoring a sweep costs < 2% wall-clock over the
   unmonitored run (interleaved min-of-N timing to filter host noise).
2. **Non-invasiveness** — every ``SimStats`` field of the monitored
   sweep is bit-identical to the unmonitored run's.
3. **Schema validity** — the telemetry JSONL event log passes
   :func:`repro.obs.schema.validate_telemetry_jsonl` and the run
   receipt passes :func:`repro.obs.schema.validate_receipt`.
4. **Honest accounting** — the receipt's cache counters match the
   simulate calls that actually happened: a cold cached sweep reports
   ``simulated == stores == cells`` with zero hits, and the warm rerun
   reports ``hits == cells`` with zero simulations.

Exit code 0 when every check passes, 1 otherwise.  The tier-1 test
suite runs :func:`run_checks` directly, so a regression in any of
these fails ``make test`` as well as ``make telemetry-check``.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis import ResultCache, SweepCell, run_cells, use_cache
from repro.obs.schema import (TraceSchemaError, validate_receipt,
                              validate_telemetry_jsonl)
from repro.obs.telemetry import SweepMonitor, use_monitor
from repro.workloads import workload_names

#: Wall-clock overhead budget for sweep monitoring.
OVERHEAD_BUDGET = 0.02

#: Two machine configurations; crossed with the 15-workload suite they
#: give the acceptance sweep's 30 cells.
CONFIGS = ((4, "stride", "vpb"), (4, "none", "baseline"))


def build_cells(length: int):
    """The gate's sweep: every suite workload under each configuration."""
    cells = []
    for name in workload_names():
        for n_clusters, predictor, steering in CONFIGS:
            cells.append(SweepCell((name, predictor, steering), name,
                                   n_clusters, predictor=predictor,
                                   steering=steering, length=length))
    return cells


def _measure_overhead(cells, repeats: int):
    """Min-of-N interleaved timing of unmonitored vs monitored sweeps.

    The variants are interleaved so host drift hits both equally, and
    the cyclic collector is paused inside each timed window (collection
    frequency tracks allocation counts, which the monitor's event dicts
    inflate).  Timing noise is one-sided — preemption only ever *adds*
    time — so min-of-N per variant is the estimator.
    """
    plain_times, monitored_times = [], []
    for _ in range(repeats):
        for times, monitored in ((plain_times, False),
                                 (monitored_times, True)):
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                if monitored:
                    with use_monitor(SweepMonitor()):
                        run_cells(cells, jobs=1)
                else:
                    run_cells(cells, jobs=1)
                times.append(time.perf_counter() - start)
            finally:
                gc.enable()
    plain_s = min(plain_times)
    monitored_s = min(monitored_times)
    return plain_s, monitored_s, monitored_s / plain_s - 1.0


def _stats_of(results) -> dict:
    """``{cell key: SimStats-as-dict}`` for bit-identity comparison."""
    return {key: dataclasses.asdict(result.stats)
            for key, result in results.items()}


def run_checks(length: int = 800, repeats: int = 3,
               overhead_budget: float = OVERHEAD_BUDGET,
               check_overhead: bool = True) -> list:
    """Run every check; returns a list of (name, ok, detail) tuples."""
    cells = build_cells(length)
    checks = []
    # use_cache(None) shadows any ambient REPRO_CACHE: the gate must
    # time and count real simulations, not a developer's warm cache.
    with use_cache(None):
        if check_overhead:
            # Timed first, on a clean heap.  On a loaded host a burst
            # of interference can still straddle every monitored run of
            # one measurement, so a reading over budget is re-measured
            # once with doubled repeats and the better observation wins
            # — genuine regressions fail both readings.
            plain_s, monitored_s, overhead = _measure_overhead(
                cells, repeats)
            if overhead >= overhead_budget:
                retry = _measure_overhead(cells, repeats * 2)
                if retry[2] < overhead:
                    plain_s, monitored_s, overhead = retry
            checks.append((f"monitor overhead < {overhead_budget:.0%}",
                           overhead < overhead_budget,
                           f"{overhead:+.2%} ({plain_s:.3f}s -> "
                           f"{monitored_s:.3f}s, {len(cells)} cells)"))

        plain = _stats_of(run_cells(cells, jobs=1))
        with use_monitor(SweepMonitor()):
            monitored = _stats_of(run_cells(cells, jobs=1))
        checks.append(("non-invasive (stats bit-identical)",
                       plain == monitored,
                       "" if plain == monitored
                       else "monitored stats diverge"))

        with tempfile.TemporaryDirectory() as tmp:
            jsonl_path = os.path.join(tmp, "telemetry.jsonl")
            cold_receipt = os.path.join(tmp, "receipt_cold.json")
            warm_receipt = os.path.join(tmp, "receipt_warm.json")
            cache = ResultCache(os.path.join(tmp, "cache"))
            with use_monitor(SweepMonitor(jsonl_path=jsonl_path)) \
                    as monitor:
                run_cells(cells, jobs=1, cache=cache,
                          receipt_path=cold_receipt)
                monitor.close()
            run_cells(cells, jobs=1, cache=cache,
                      receipt_path=warm_receipt)

            for label, validate, path in (
                    ("telemetry jsonl schema", validate_telemetry_jsonl,
                     jsonl_path),
                    ("cold receipt schema", validate_receipt,
                     cold_receipt),
                    ("warm receipt schema", validate_receipt,
                     warm_receipt)):
                try:
                    count = validate(path)
                    checks.append((label, True,
                                   f"{count} event(s)"
                                   if "jsonl" in label
                                   else f"{count} cell(s)"))
                except TraceSchemaError as error:
                    checks.append((label, False, str(error)))

            with open(cold_receipt, encoding="utf-8") as handle:
                cold = json.load(handle)
            with open(warm_receipt, encoding="utf-8") as handle:
                warm = json.load(handle)
            n = len(cells)
            cold_ok = (cold["cache"]["misses"] == n
                       and cold["cache"]["stores"] == n
                       and cold["cache"]["hits"] == 0
                       and cold["counts"]["simulated"] == n)
            checks.append(("cold receipt counts every simulate call",
                           cold_ok,
                           f"{cold['counts']['simulated']} simulated, "
                           f"{cold['cache']['stores']} stored "
                           f"(expected {n} each)"))
            warm_ok = (warm["cache"]["hits"] == n
                       and warm["cache"]["misses"] == 0
                       and warm["counts"]["simulated"] == 0)
            checks.append(("warm receipt reports zero simulations",
                           warm_ok,
                           f"{warm['cache']['hits']} hit(s), "
                           f"{warm['counts']['simulated']} simulated "
                           f"(expected {n} / 0)"))

    return checks


def main() -> int:
    checks = run_checks()
    width = max(len(name) for name, _, _ in checks)
    failed = 0
    for name, ok, detail in checks:
        mark = "ok " if ok else "FAIL"
        line = f"{mark} {name:<{width}}"
        if detail:
            line += f"  {detail}"
        print(line)
        if not ok:
            failed += 1
    if failed:
        print(f"\n{failed} telemetry check(s) failed")
        return 1
    print("\nall telemetry checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 5 — value-predictor table size sweep (4 clusters, VPB).

Shape targets: shrinking the table costs only a few percent IPC (paper:
<4.5% from 128K to 1K) and the hit ratio degrades mildly (paper: 93.4%
-> 90.9%) because the untagged table aliases entries.  The stand-ins'
static footprint is ~50x smaller than Mediabench's, so the paper's
1K-entry aliasing regime appears at the added 64/256-entry points.
"""

from repro.analysis import format_figure5, run_figure5


def test_figure5_vptable(benchmark, save_report):
    result = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    save_report("figure5_vptable", format_figure5(result))
    sizes = result.sizes
    # Shrinking the table costs little IPC even at the smallest point.
    assert result.ipc[sizes[0]] <= result.ipc[sizes[-1]] * 1.02
    assert result.ipc_degradation_pct() < 10.0
    # The hit ratio degrades mildly and monotonically-ish with aliasing.
    assert result.hit_ratio[sizes[0]] > 0.75
    assert (result.hit_ratio[sizes[-1]]
            >= result.hit_ratio[sizes[0]] - 0.005)
    # The paper-range points (1K+) are all but indistinguishable here
    # (footprint-scaled workloads), matching its <4.5% claim a fortiori.
    large = [result.ipc[s] for s in sizes if s >= 1024]
    assert max(large) - min(large) < 0.15

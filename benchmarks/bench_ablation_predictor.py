"""Predictor-design ablation — 2-delta vs naive stride update.

Not a paper figure: this quantifies the reproduction's one deliberate
predictor refinement (DESIGN.md §6.1). The naive replace-on-mismatch
update mispredicts twice per loop restart while its 2-bit counter is
still confident; the 2-delta update (the paper's own reference [19])
waits for a new stride to repeat before adopting it.
"""

from repro.analysis import format_ablation, run_ablation_predictor


def test_ablation_predictor(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_predictor, rounds=1,
                                iterations=1)
    save_report("ablation_predictor", format_ablation(
        result, "Stride update discipline (4 clusters, VPB)",
        "(expected: 2-delta predicts more operands at similar accuracy "
        "and wins IPC)"))
    rows = result.rows
    # 2-delta offers predictions more often (higher coverage)...
    assert rows["two-delta"]["confident"] >= rows["naive"]["confident"]
    # ...without giving up performance.
    assert rows["two-delta"]["ipc"] >= rows["naive"]["ipc"] * 0.99

"""§1/§6 headline numbers — paper vs measured, in one table.

The central claim: value prediction reduces the IPC degradation caused
by inter-cluster communication by ~18% on a 4-cluster machine (IPCR4
0.65 -> 0.77), halves the communication rate, and benefits the
clustered machine far more than the centralized one (+21% vs +2% IPC).
"""

from repro.analysis import format_headline, run_headline


def test_headline(benchmark, save_report):
    result = benchmark.pedantic(run_headline, rounds=1, iterations=1)
    save_report("headline", format_headline(result))
    m = result.measured
    # Direction and rough magnitude of every headline claim.
    assert m["ipcr4_vpb"] > m["ipcr4_baseline_nopredict"]
    assert m["ipcr4_gain_pct"] > 6.0
    assert m["ipcr2_vpb"] > m["ipcr2_baseline_nopredict"]
    assert m["comm4_vpb"] < 0.75 * m["comm4_nopredict"]
    # Clustered machines gain more from prediction than the centralized.
    assert m["ipc_gain_pct_4c"] > m["ipc_gain_pct_1c"]
    assert m["ipc_gain_pct_2c"] > m["ipc_gain_pct_1c"] - 1.0

"""Sub-minute smoke gate for the sweep fast paths (``make bench-smoke``).

Three properties, asserted (exit 1 on violation), all on a small sweep
so the gate stays well under a minute:

1. **Parallel wins** — on a multi-core host, a warm-pool chunked
   parallel sweep must not be slower than serial (the PR 2 regression:
   per-cell dispatch + per-driver executor startup made ``jobs=2``
   *slower*).  Single-core hosts skip this assertion (the honest
   expectation there is ~1x or below) but still exercise the path.
2. **Cache works** — a cold-then-warm cache cycle: the warm rerun must
   be all hits (zero simulations dispatched) and faster than cold.
3. **Nothing drifts** — every variant (parallel, cold cache, warm
   cache) is metric-identical to the serial, uncached sweep.

Run directly or via ``make bench-smoke``; honours ``REPRO_JOBS`` /
``REPRO_CHUNKSIZE``.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis.cache import ResultCache, use_cache
from repro.analysis.parallel import (SweepCell, WorkerPool,
                                     resolve_chunksize, resolve_jobs,
                                     run_cells)
from repro.workloads import clear_trace_cache, workload_names

#: Small but not trivial: enough cells that chunked dispatch matters,
#: short enough traces that the whole gate runs in seconds.
LENGTH = 1_500
N_WORKLOADS = 8
CONFIGS = ((2, "stride", "vpb"), (4, "stride", "vpb"))


def build_cells():
    names = workload_names()[:N_WORKLOADS]
    return [SweepCell(key=(name, n), workload=name, n_clusters=n,
                      predictor=predictor, steering=steering,
                      length=LENGTH)
            for name in names
            for n, predictor, steering in CONFIGS]


def timed(cells, **kwargs):
    clear_trace_cache()
    start = time.perf_counter()
    results = run_cells(cells, **kwargs)
    return results, time.perf_counter() - start


def identical(a, b) -> bool:
    return a.keys() == b.keys() and all(
        a[key].to_dict() == b[key].to_dict() for key in a)


def main() -> int:
    failures = []
    cells = build_cells()
    jobs = resolve_jobs(int(os.environ["REPRO_JOBS"])
                        if "REPRO_JOBS" in os.environ else 0)
    cores = os.cpu_count() or 1
    chunksize = resolve_chunksize(None, len(cells), jobs)
    print(f"smoke sweep: {len(cells)} cells x {LENGTH} instructions; "
          f"jobs={jobs}, chunksize={chunksize}, cpu_count={cores}")

    with use_cache(None):
        serial, serial_s = timed(cells, jobs=1)
        print(f"serial        : {serial_s:.2f}s")

        with WorkerPool(jobs):
            timed(cells, jobs=jobs)  # cold: pays worker startup
            parallel, parallel_s = timed(cells, jobs=jobs)  # warm pool
        print(f"parallel warm : {parallel_s:.2f}s "
              f"(x{serial_s / parallel_s:.2f})" if parallel_s
              else "parallel warm : <1ms")
        if not identical(serial, parallel):
            failures.append("parallel sweep drifted from serial")
        if cores >= 2 and jobs >= 2:
            if parallel_s > serial_s:
                failures.append(
                    f"parallel ({parallel_s:.2f}s) slower than serial "
                    f"({serial_s:.2f}s) on a {cores}-core host")
        else:
            print("single-core host (or jobs=1): speedup assertion "
                  "skipped")

        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp)
            cold, cold_s = timed(cells, jobs=1, cache=cache)
            cold_hits = cache.stats.hits
            warm, warm_s = timed(cells, jobs=1, cache=cache)
            warm_hits = cache.stats.hits - cold_hits
            warm_misses = cache.stats.misses - len(cells)
            print(f"cache         : {cold_s:.2f}s cold -> {warm_s:.2f}s "
                  f"warm ({warm_hits} hits)")
            if warm_hits != len(cells) or warm_misses != 0:
                failures.append(
                    f"warm cache rerun simulated: {warm_hits} hits / "
                    f"{warm_misses} misses over {len(cells)} cells")
            if warm_s >= cold_s:
                failures.append(
                    f"warm cache rerun ({warm_s:.2f}s) not faster than "
                    f"cold ({cold_s:.2f}s)")
            if not identical(serial, cold) or not identical(serial, warm):
                failures.append("cached sweep drifted from serial")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("bench-smoke: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

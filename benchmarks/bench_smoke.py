"""Sub-minute smoke gate for the sweep fast paths (``make bench-smoke``).

Three properties, asserted (exit 1 on violation), all on a small sweep
so the gate stays well under a minute:

1. **Parallel wins** — on a multi-core host, a warm-pool chunked
   parallel sweep must not be slower than serial (the PR 2 regression:
   per-cell dispatch + per-driver executor startup made ``jobs=2``
   *slower*).  Single-core hosts skip this assertion (the honest
   expectation there is ~1x or below) but still exercise the path.
2. **Cache works** — a cold-then-warm cache cycle: the warm rerun must
   be all hits (zero simulations dispatched) and faster than cold.
3. **Nothing drifts** — every variant (parallel, cold cache, warm
   cache) is metric-identical to the serial, uncached sweep.
4. **Single-core throughput holds** — the serial sweep's simulated
   instructions per second must stay within 20% of the best
   same-shape ``smoke_guard`` entry in ``BENCH_sweep.json``; every
   run appends its own entry (with provenance), so the guard tracks
   the best rate this host has ever demonstrated.  Entries from a
   different trace length, cell count or core count are not
   comparable (shorter traces amortize less trace generation) and are
   ignored.

Run directly or via ``make bench-smoke``; honours ``REPRO_JOBS`` /
``REPRO_CHUNKSIZE``.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_wallclock import provenance, rate_of
from repro.analysis.cache import ResultCache, use_cache
from repro.analysis.perf_report import (append_entry, infer_shape,
                                        load_history)
from repro.analysis.parallel import (SweepCell, WorkerPool,
                                     resolve_chunksize, resolve_jobs,
                                     run_cells)
from repro.workloads import clear_trace_cache, workload_names

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_sweep.json"

#: Small but not trivial: enough cells that chunked dispatch matters,
#: short enough traces that the whole gate runs in seconds.
LENGTH = 1_500
N_WORKLOADS = 8
CONFIGS = ((2, "stride", "vpb"), (4, "stride", "vpb"))

#: Fractional throughput loss vs the best recorded same-shape run that
#: fails the gate.
REGRESSION_BUDGET = 0.20


def build_cells():
    names = workload_names()[:N_WORKLOADS]
    return [SweepCell(key=(name, n), workload=name, n_clusters=n,
                      predictor=predictor, steering=steering,
                      length=LENGTH)
            for name in names
            for n, predictor, steering in CONFIGS]


def timed(cells, **kwargs):
    clear_trace_cache()
    start = time.perf_counter()
    results = run_cells(cells, **kwargs)
    return results, time.perf_counter() - start


def identical(a, b) -> bool:
    return a.keys() == b.keys() and all(
        a[key].to_dict() == b[key].to_dict() for key in a)


def best_comparable_rate(history, n_cells: int, cores: int):
    """Best serial insts/s among same-shape smoke_guard entries.

    Only entries measured with this gate's own sweep shape on a host
    with the same core count are rate-comparable; ``None`` when no
    prior entry qualifies (first run on a host).
    """
    rates = [entry.get("serial_insts_per_second") for entry in history
             if entry.get("benchmark") == "smoke_guard"
             and infer_shape(entry) == "serial"
             and entry.get("trace_length") == LENGTH
             and entry.get("cells") == n_cells
             and entry.get("cpu_count") == cores
             and entry.get("serial_insts_per_second")]
    return max(rates) if rates else None


def check_throughput(cells, serial, serial_s: float, cores: int,
                     failures) -> None:
    """Gate 4: guard single-core throughput, then record this run.

    Timing noise on a shared (or single-core) host is one-sided — a
    preempted run only ever reads *slower* — so a reading below the
    floor is re-measured up to twice and the best observation wins,
    the same policy the obs-check overhead gate uses.  A genuine
    regression fails every reading.
    """
    insts = sum(result.stats.committed_insts for result in serial.values())
    rate = rate_of(insts, serial_s)
    history = load_history(RESULT_PATH)
    best = best_comparable_rate(history, len(serial), cores)
    if rate is None:
        print("throughput    : unmeasurable (zero-duration serial run); "
              "guard skipped")
        return
    if best is None:
        print(f"throughput    : {rate:,.0f} insts/s serial "
              "(no comparable history; guard passes vacuously)")
    else:
        floor = best * (1.0 - REGRESSION_BUDGET)
        for _ in range(2):
            if rate >= floor:
                break
            retry, retry_s = timed(cells, jobs=1)
            retry_rate = rate_of(
                sum(r.stats.committed_insts for r in retry.values()),
                retry_s)
            if retry_rate is not None and retry_rate > rate:
                rate, serial_s = retry_rate, retry_s
        print(f"throughput    : {rate:,.0f} insts/s serial "
              f"(best recorded {best:,.0f}, floor {floor:,.0f})")
        if rate < floor:
            failures.append(
                f"serial throughput {rate:,.0f} insts/s is more than "
                f"{REGRESSION_BUDGET:.0%} below the best recorded "
                f"{best:,.0f} insts/s")
            return  # a failed run must not enter the history
    append_entry(RESULT_PATH, {
        "benchmark": "smoke_guard",
        "shape": "serial",
        **provenance(),
        "cpu_count": cores,
        "cells": len(serial),
        "trace_length": LENGTH,
        "serial_seconds": round(serial_s, 3),
        "simulated_insts": insts,
        "serial_insts_per_second": rate,
    })


def main() -> int:
    failures = []
    cells = build_cells()
    jobs = resolve_jobs(int(os.environ["REPRO_JOBS"])
                        if "REPRO_JOBS" in os.environ else 0)
    cores = os.cpu_count() or 1
    chunksize = resolve_chunksize(None, len(cells), jobs)
    print(f"smoke sweep: {len(cells)} cells x {LENGTH} instructions; "
          f"jobs={jobs}, chunksize={chunksize}, cpu_count={cores}")

    with use_cache(None):
        serial, serial_s = timed(cells, jobs=1)
        print(f"serial        : {serial_s:.2f}s")
        check_throughput(cells, serial, serial_s, cores, failures)

        with WorkerPool(jobs):
            timed(cells, jobs=jobs)  # cold: pays worker startup
            parallel, parallel_s = timed(cells, jobs=jobs)  # warm pool
        print(f"parallel warm : {parallel_s:.2f}s "
              f"(x{serial_s / parallel_s:.2f})" if parallel_s
              else "parallel warm : <1ms")
        if not identical(serial, parallel):
            failures.append("parallel sweep drifted from serial")
        if cores >= 2 and jobs >= 2:
            if parallel_s > serial_s:
                failures.append(
                    f"parallel ({parallel_s:.2f}s) slower than serial "
                    f"({serial_s:.2f}s) on a {cores}-core host")
        else:
            print("single-core host (or jobs=1): speedup assertion "
                  "skipped")

        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp)
            cold, cold_s = timed(cells, jobs=1, cache=cache)
            cold_hits = cache.stats.hits
            warm, warm_s = timed(cells, jobs=1, cache=cache)
            warm_hits = cache.stats.hits - cold_hits
            warm_misses = cache.stats.misses - len(cells)
            print(f"cache         : {cold_s:.2f}s cold -> {warm_s:.2f}s "
                  f"warm ({warm_hits} hits)")
            if warm_hits != len(cells) or warm_misses != 0:
                failures.append(
                    f"warm cache rerun simulated: {warm_hits} hits / "
                    f"{warm_misses} misses over {len(cells)} cells")
            if warm_s >= cold_s:
                failures.append(
                    f"warm cache rerun ({warm_s:.2f}s) not faster than "
                    f"cold ({cold_s:.2f}s)")
            if not identical(serial, cold) or not identical(serial, warm):
                failures.append("cached sweep drifted from serial")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("bench-smoke: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""§2.1 extension ablation — dedicated copy-out hardware.

The paper charges every copy and verification-copy to the producer
cluster's issue width and notes that real hardware could avoid this.
This benchmark quantifies that headroom: how much of the clustering
penalty is copy *bandwidth* (recoverable with more hardware) vs copy
*latency* (recoverable only by prediction).
"""

from repro.analysis import format_ablation, run_ablation_free_copies


def test_ablation_free_copies(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_free_copies, rounds=1,
                                iterations=1)
    save_report("ablation_free_copies", format_ablation(
        result, "Section 2.1 extension — free copy issue (4 clusters)",
        "(free copies remove the width cost but not the wire latency; "
        "value prediction removes both)"))
    rows = result.rows
    assert rows["free copies, no VP"]["ipc"] >= rows["paper, no VP"]["ipc"]
    assert rows["free copies, VPB"]["ipc"] >= rows["paper, VPB"]["ipc"] * 0.99
    # Prediction still helps even with free copies (latency remains).
    assert (rows["free copies, VPB"]["ipc"]
            > rows["free copies, no VP"]["ipc"])

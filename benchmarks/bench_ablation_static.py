"""§5 related-work ablation — dynamic vs static code partitioning.

The paper dismisses static partitioning (Sastry et al.) as "less
flexible and less effective than a dynamic approach".  We give the
static scheme a perfect profile (trained on the very trace it runs) and
it still loses: it minimizes communication but cannot react to run-time
imbalance, which is the trade-off §2.3 frames the whole steering problem
around.
"""

from repro.analysis import format_ablation, run_ablation_static


def test_ablation_static(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_static, rounds=1, iterations=1)
    save_report("ablation_static", format_ablation(
        result, "Static vs dynamic partitioning (4 clusters)",
        "(paper 5: dynamic steering beats static even with perfect "
        "profiles)"))
    rows = result.rows
    assert (rows["baseline (dynamic)"]["ipc"]
            > rows["static (perfect profile)"]["ipc"])
    assert (rows["vpb (dynamic + VP)"]["ipc"]
            > rows["static (perfect profile)"]["ipc"])
    # The static scheme's one advantage: fewer communications.
    assert (rows["static (perfect profile)"]["comm"]
            < rows["baseline (dynamic)"]["comm"])

"""Million-instruction-scale traces must stream, not materialize.

``workload_trace`` memoizes only up to ``TRACE_CACHE_MAX``;
``workload_trace_iter`` generates instructions on demand so memory is
bounded by architectural state, never by trace length."""

import itertools
import tracemalloc

from repro.workloads import (TRACE_CACHE_MAX, clear_trace_cache,
                             workload_trace, workload_trace_iter)
from repro.workloads.suite import _trace_cache

WORKLOAD = "rawcaudio"


class TestCachePolicy:
    def setup_method(self):
        clear_trace_cache()

    def teardown_method(self):
        clear_trace_cache()

    def test_short_traces_are_memoized(self):
        first = workload_trace(WORKLOAD, 5_000)
        assert workload_trace(WORKLOAD, 5_000) is first

    def test_long_traces_are_not_retained(self):
        length = TRACE_CACHE_MAX + 1
        trace = workload_trace(WORKLOAD, length)
        assert len(trace) == length
        assert not any(key[1] == length for key in _trace_cache)
        # A second call regenerates rather than returning the same list.
        assert workload_trace(WORKLOAD, length) is not trace

    def test_boundary_length_is_still_cached(self):
        trace = workload_trace(WORKLOAD, TRACE_CACHE_MAX)
        assert workload_trace(WORKLOAD, TRACE_CACHE_MAX) is trace


class TestStreaming:
    def test_iter_is_bit_identical_to_list(self):
        cached = workload_trace(WORKLOAD, 8_000)
        streamed = list(workload_trace_iter(WORKLOAD, 8_000))
        assert len(streamed) == len(cached)
        for a, b in zip(streamed, cached):
            assert a.seq == b.seq
            assert a.op is b.op
            assert a.pc == b.pc
            assert a.src_values == b.src_values
            assert a.result == b.result

    def test_iter_respects_dataset_and_seed(self):
        a = [d.result for d in
             itertools.islice(workload_trace_iter(WORKLOAD, seed=1), 2_000)]
        b = [d.result for d in
             itertools.islice(workload_trace_iter(WORKLOAD, seed=2), 2_000)]
        assert a != b

    def test_streaming_memory_is_bounded(self):
        """Consuming 120k streamed instructions must cost a small
        fraction of what materializing the same list costs."""
        length = 120_000

        tracemalloc.start()
        for _ in workload_trace_iter(WORKLOAD, length):
            pass
        _, streamed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        trace = list(workload_trace_iter(WORKLOAD, length))
        _, list_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(trace) == length

        # The streamed pass holds one DynInst at a time; the
        # materialized list holds 120k.  A 10x margin
        # keeps the assertion robust to allocator noise while still
        # catching any accidental buffering of the stream.
        assert streamed_peak * 10 < list_peak

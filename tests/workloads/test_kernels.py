"""Functional correctness of the kernel library.

Each kernel is run through the functional executor and its memory
effects checked against a Python reference implementation.
"""

import pytest

from repro.isa import ProgramBuilder, execute
from repro.workloads import kernels
from repro.workloads.datagen import noise_words


def run_kernel(setup):
    """Build a program around one kernel; returns (program, memory)."""
    b = ProgramBuilder()
    finish = setup(b)
    b.emit("halt")
    program = b.build()
    execute(program, 500_000)
    return program.memory, finish


class TestFirFilter:
    def test_matches_reference(self):
        src = list(range(1, 25))
        taps = [2, -1, 3, 1]
        def setup(b):
            a_src = b.data("src", src)
            a_coef = b.data("coef", taps)
            a_dst = b.zeros("dst", 16)
            kernels.fir_filter(b, "t", a_src, a_coef, a_dst, 16, 4)
            return a_dst
        memory, dst = run_kernel(setup)
        for i in range(16):
            expected = sum(src[i + j] * taps[j] for j in range(4)) >> 6
            assert memory.load(dst + 4 * i) == expected

    def test_tap_budget_enforced(self):
        b = ProgramBuilder()
        with pytest.raises(ValueError, match="1..8"):
            kernels.fir_filter(b, "t", 0, 0, 0, 4, 9)


class TestIirBiquad:
    def test_recurrence_matches_reference(self):
        src = [100, -50, 75, 30, -10, 5, 60, -20]
        b0, b1, a1 = 25, -11, 9
        def setup(b):
            a_src = b.data("src", src)
            a_dst = b.zeros("dst", len(src))
            kernels.iir_biquad(b, "t", a_src, a_dst, len(src), b0, b1, a1)
            return a_dst
        memory, dst = run_kernel(setup)
        x1 = y1 = 0
        for i, x in enumerate(src):
            y = (b0 * x + b1 * x1 - a1 * y1) >> 8
            assert memory.load(dst + 4 * i) == y
            x1, y1 = x, y


class TestDct8:
    def test_dc_term_is_block_sum(self):
        block = [1, 2, 3, 4, 5, 6, 7, 8]
        def setup(b):
            a_src = b.data("src", block)
            a_dst = b.zeros("dst", 8)
            kernels.dct8_blocks(b, "t", a_src, a_dst, 1)
            return a_dst
        memory, dst = run_kernel(setup)
        assert memory.load(dst) == sum(block)

    def test_energy_preserved_roughly(self):
        block = [10, 0, 0, 0, 0, 0, 0, 0]
        def setup(b):
            a_src = b.data("src", block)
            a_dst = b.zeros("dst", 8)
            kernels.dct8_blocks(b, "t", a_src, a_dst, 1)
            return a_dst
        memory, dst = run_kernel(setup)
        out = [memory.load(dst + 4 * i) for i in range(8)]
        assert any(out)


class TestQuantizers:
    def test_reciprocal_quantize(self):
        src = [1000, 2000, 4000, 8000]
        rtable = [16384 // 4] * 4
        def setup(b):
            a_src = b.data("src", src)
            a_rt = b.data("rt", rtable)
            a_dst = b.zeros("dst", 4)
            kernels.quantize(b, "t", a_src, a_rt, a_dst, 4, 4)
            return a_dst
        memory, dst = run_kernel(setup)
        for i, value in enumerate(src):
            assert memory.load(dst + 4 * i) == (value * rtable[0]) >> 14

    def test_divide_quantize(self):
        src = [100, 101, 99, 7]
        qtable = [7, 7, 7, 7]
        def setup(b):
            a_src = b.data("src", src)
            a_qt = b.data("qt", qtable)
            a_dst = b.zeros("dst", 4)
            kernels.quantize_div(b, "t", a_src, a_qt, a_dst, 4, 4)
            return a_dst
        memory, dst = run_kernel(setup)
        assert [memory.load(dst + 4 * i) for i in range(4)] == [14, 14, 14, 1]

    def test_dequantize_multiplies(self):
        src = [3, -4]
        qtable = [5, 6]
        def setup(b):
            a_src = b.data("src", src)
            a_qt = b.data("qt", qtable)
            a_dst = b.zeros("dst", 2)
            kernels.dequantize(b, "t", a_src, a_qt, a_dst, 2, 2)
            return a_dst
        memory, dst = run_kernel(setup)
        assert memory.load(dst) == 15
        assert memory.load(dst + 4) == -24


class TestHuffmanScan:
    def test_histogram_counts_magnitude_classes(self):
        # classes: <16 -> 0, <64 -> 1, <128 -> 2, else 3 (on |v| clamped)
        src = [3, -3, 20, 100, 900, 15, 64, 128]
        # |64| -> class 2 (not < 64), |128| -> class 3 (not < 128)
        def setup(b):
            a_src = b.data("src", src)
            a_hist = b.zeros("hist", 8)
            kernels.huffman_scan(b, "t", a_src, a_hist, len(src))
            return a_hist
        memory, hist = run_kernel(setup)
        counts = [memory.load(hist + 4 * i) for i in range(4)]
        assert counts == [3, 1, 2, 2]


class TestColorConvert:
    def test_luma_formula(self):
        src = [10, 20, 30]
        def setup(b):
            a_src = b.data("src", src)
            a_dst = b.zeros("dst", 1)
            kernels.color_convert(b, "t", a_src, a_dst, 1)
            return a_dst
        memory, dst = run_kernel(setup)
        expected = (66 * 10 + 129 * 20 + 25 * 30 + 4096) >> 8
        assert memory.load(dst) == expected


class TestMemcpyAndBitunpack:
    def test_memcpy_words(self):
        src = list(range(40, 56))
        def setup(b):
            a_src = b.data("src", src)
            a_dst = b.zeros("dst", 16)
            kernels.memcpy_words(b, "t", a_src, a_dst, 16)
            return a_dst
        memory, dst = run_kernel(setup)
        assert [memory.load(dst + 4 * i) for i in range(16)] == src

    def test_bitunpack_fields(self):
        word = 0x04030201
        def setup(b):
            a_src = b.data("src", [word])
            a_dst = b.zeros("dst", 4)
            kernels.bitunpack(b, "t", a_src, a_dst, 1)
            return a_dst
        memory, dst = run_kernel(setup)
        assert [memory.load(dst + 4 * i) for i in range(4)] == [1, 2, 3, 4]


class TestHistogram:
    def test_bucket_counting(self):
        src = [0, 1, 1, 65, 63, 63, 63]
        def setup(b):
            a_src = b.data("src", src)
            a_hist = b.zeros("hist", 64)
            kernels.histogram(b, "t", a_src, a_hist, len(src))
            return a_hist
        memory, hist = run_kernel(setup)
        assert memory.load(hist + 0) == 1
        assert memory.load(hist + 4) == 3        # 1, 1, and 65 & 63
        assert memory.load(hist + 4 * 63) == 3


class TestAdpcm:
    def test_output_clamped_to_16_bits(self):
        codes = noise_words(5, 64, bits=4)
        def setup(b):
            from repro.workloads.media_audio import _STEP_TABLE
            a_codes = b.data("codes", codes)
            a_steps = b.data("steps", _STEP_TABLE)
            a_dst = b.zeros("dst", 64)
            kernels.adpcm_decode(b, "t", a_codes, a_steps, a_dst, 64)
            return a_dst
        memory, dst = run_kernel(setup)
        for i in range(64):
            assert -32768 <= memory.load(dst + 4 * i) <= 32767


class TestFpKernels:
    def test_texture_lerp_interpolates_within_bounds(self):
        texels = [float(v) for v in range(1, 17)]
        def setup(b):
            a_tex = b.data("tex", texels, elem_size=8)
            a_dst = b.zeros("dst", 4, elem_size=8)
            kernels.texture_lerp(b, "t", a_tex, a_dst, 4)
            return a_dst
        memory, dst = run_kernel(setup)
        for i in range(4):
            quad = texels[4 * i: 4 * i + 4]
            value = memory.load(dst + 8 * i)
            assert min(quad) * 0.9 <= value <= max(quad) * 2.1

    def test_vertex_transform_identity(self):
        identity = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]
        verts = [1.0, 2.0, 3.0, -4.0, 5.0, -6.0]
        def setup(b):
            a_v = b.data("v", verts, elem_size=8)
            a_m = b.data("m", identity, elem_size=8)
            a_dst = b.zeros("dst", 6, elem_size=8)
            kernels.vertex_transform(b, "t", a_v, a_m, a_dst, 2)
            return a_dst
        memory, dst = run_kernel(setup)
        assert [memory.load(dst + 8 * i) for i in range(6)] == verts

    def test_fp_poly_horner(self):
        def setup(b):
            a_src = b.data("src", [2.0], elem_size=8)
            a_dst = b.zeros("dst", 1, elem_size=8)
            kernels.fp_poly_eval(b, "t", a_src, a_dst, 1)
            return a_dst
        memory, dst = run_kernel(setup)
        x = 2.0
        expected = ((7 * x - 5) * x + 3) * x + 1
        assert memory.load(dst) == pytest.approx(expected)


class TestKernelConventions:
    def test_kernels_do_not_touch_outer_registers(self):
        """Kernels must leave r1..r7 alone (the documented contract)."""
        def setup(b):
            for i in range(1, 8):
                b.emit("li", f"r{i}", 1000 + i)
            a_src = b.data("src", list(range(32)))
            a_hist = b.zeros("h", 64)
            kernels.histogram(b, "t", a_src, a_hist, 32)
            a_probe = b.zeros("probe", 8)
            for i in range(1, 8):
                b.emit("li", "r31", a_probe + 4 * i)
                b.emit("sw", f"r{i}", "r31", 0)
            return a_probe
        memory, probe = run_kernel(setup)
        for i in range(1, 8):
            assert memory.load(probe + 4 * i) == 1000 + i

    def test_kernel_tags_allow_multiple_instantiation(self):
        b = ProgramBuilder()
        a_src = b.data("src", list(range(16)))
        a_dst = b.zeros("dst", 16)
        kernels.memcpy_words(b, "one", a_src, a_dst, 8)
        kernels.memcpy_words(b, "two", a_src, a_dst, 8)
        b.emit("halt")
        execute(b.build())   # must build and run without label clashes

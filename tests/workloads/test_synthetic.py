"""Tests of the parametric microbenchmarks' intended shapes."""

import pytest

from repro.isa import execute
from repro.workloads import synthetic


class TestBuildAndRun:
    @pytest.mark.parametrize("factory", [
        synthetic.serial_chain, synthetic.parallel_chains,
        synthetic.counted_loop, synthetic.strided_stream,
        synthetic.random_branches, synthetic.store_load_pairs,
        synthetic.fp_chain])
    def test_builds_and_traces(self, factory):
        trace = execute(factory(), 2000)
        assert len(trace) == 2000


class TestShapes:
    def test_serial_chain_is_one_dependence_chain(self):
        trace = execute(synthetic.serial_chain(16), 500)
        adds = [d for d in trace if d.op.name == "add"]
        # every add reads what the previous add wrote
        assert all(d.dest == d.srcs[0] == d.srcs[1] for d in adds)

    def test_parallel_chains_register_budget(self):
        with pytest.raises(ValueError):
            synthetic.parallel_chains(chains=21)

    def test_parallel_chains_are_independent(self):
        trace = execute(synthetic.parallel_chains(4, 4), 400)
        adds = {d.dest for d in trace if d.op.name == "add"}
        assert len(adds) == 4

    def test_strided_stream_addresses_are_sequential(self):
        trace = execute(synthetic.strided_stream(64), 1500)
        addrs = [d.mem_addr for d in trace if d.is_load]
        diffs = {b - a for a, b in zip(addrs, addrs[1:])}
        assert 4 in diffs                    # the stride
        assert all(d in (4, -63 * 4) for d in diffs)   # plus the wrap

    def test_random_branches_mix_taken_and_not(self):
        trace = execute(synthetic.random_branches(256), 4000)
        inner = [d for d in trace if d.op.name == "beq"]
        taken_fraction = sum(d.taken for d in inner) / len(inner)
        assert 0.3 < taken_fraction < 0.7

    def test_store_load_pairs_alternate(self):
        trace = execute(synthetic.store_load_pairs(32), 1000)
        stores = [d for d in trace if d.is_store]
        loads = [d for d in trace if d.is_load]
        assert stores and loads
        store_addrs = {d.mem_addr for d in stores}
        load_addrs = {d.mem_addr for d in loads}
        assert store_addrs & load_addrs      # real overlap

    def test_fp_chain_is_serial_fp(self):
        trace = execute(synthetic.fp_chain(8), 500)
        fadds = [d for d in trace if d.op.name == "fadd"]
        assert fadds
        assert all(d.dest == d.srcs[0] for d in fadds)

"""Tests for the trace-statistics helper."""

import pytest

from repro.isa import execute
from repro.workloads import synthetic, trace_statistics, workload_trace


def test_counts_and_fractions_consistent():
    trace = workload_trace("cjpeg", 4000)
    stats = trace_statistics(trace)
    assert stats["instructions"] == 4000
    assert stats["loads"] + stats["stores"] <= 4000
    assert stats["load_fraction"] == pytest.approx(
        stats["loads"] / 4000)
    assert 0 <= stats["branch_taken_rate"] <= 1
    assert stats["static_pcs"] > 50
    assert sum(stats["top_opcodes"].values()) <= 4000


def test_fp_fraction_zero_for_integer_code():
    trace = execute(synthetic.counted_loop(4), 2000)
    stats = trace_statistics(trace)
    assert stats["fp_fraction"] == 0.0
    assert stats["int_divs"] == 0


def test_fp_fraction_positive_for_fp_code():
    trace = execute(synthetic.fp_chain(8), 2000)
    stats = trace_statistics(trace)
    assert stats["fp_fraction"] > 0.5


def test_empty_trace_safe():
    stats = trace_statistics([])
    assert stats["instructions"] == 0
    assert stats["load_fraction"] == 0.0
    assert stats["branch_taken_rate"] == 0.0


def test_taken_rate_matches_loop_shape():
    # A counted loop's back-edge is taken every iteration but the last.
    trace = execute(synthetic.counted_loop(2), 3000)
    stats = trace_statistics(trace)
    assert stats["branch_taken_rate"] > 0.9

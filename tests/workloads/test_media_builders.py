"""Structural checks of the Mediabench stand-in builders."""

import pytest

from repro.isa import execute
from repro.workloads import build_workload, workload_names
from repro.workloads.media_audio import _STEP_TABLE
from repro.workloads import media_3d, media_audio, media_crypto, media_image


class TestStaticFootprint:
    @pytest.mark.parametrize("name", workload_names())
    def test_table2_like_static_size(self, name):
        """Replicated pipelines give realistic static footprints."""
        program = build_workload(name)
        assert 300 <= program.static_size <= 1500, name

    def test_replica_constants_sane(self):
        for module in (media_image, media_audio, media_3d, media_crypto):
            assert module.REPLICAS >= 4


class TestProgramShape:
    @pytest.mark.parametrize("name", workload_names())
    def test_outer_loop_repeats_forever(self, name):
        """Every stand-in is an unbounded frame loop ended by the cap."""
        program = build_workload(name)
        trace = execute(program, 500)
        assert len(trace) == 500   # cap, not halt, ended the run

    @pytest.mark.parametrize("name", workload_names())
    def test_fresh_builds_are_identical(self, name):
        a = [i.op.name for i in build_workload(name).instructions]
        b = [i.op.name for i in build_workload(name).instructions]
        assert a == b

    def test_replicas_share_data_but_not_code(self):
        """Pipeline replicas are distinct code over the same arrays."""
        program = build_workload("cjpeg")
        trace = execute(program, 25_000)
        load_addrs = {d.mem_addr for d in trace if d.is_load}
        pcs = {d.pc for d in trace}
        # more code than one replica's worth...
        assert len(pcs) > 2 * (program.static_size // media_image.REPLICAS)
        # ...but the data working set stays bounded (shared arrays).
        assert len(load_addrs) < 1500


class TestAdpcmTable:
    def test_real_ima_step_table(self):
        assert _STEP_TABLE[0] == 7
        assert _STEP_TABLE[-1] == 32767
        assert len(_STEP_TABLE) == 89
        assert all(a < b for a, b in zip(_STEP_TABLE, _STEP_TABLE[1:]))

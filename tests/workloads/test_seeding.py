"""Deterministic workload generation across processes and seeds.

Parallel sweep workers each rebuild their cell's trace from scratch;
the sweep is only sound if trace generation is a pure function of
(name, length, dataset, seed) — no global RNG state, no inherited
environment.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.workloads import build_workload, workload_trace

LEN = 600


def _trace_digest(name, length, dataset="test", seed=0):
    """A structural digest of every field of every trace record."""
    trace = workload_trace(name, length, dataset=dataset, seed=seed)
    return hash(tuple(
        (d.seq, d.pc, d.op.name, d.dest, tuple(d.srcs),
         tuple(d.src_values), d.result, d.mem_addr, d.taken, d.target)
        for d in trace))


class TestCrossProcessDeterminism:
    def test_same_workload_identical_in_two_processes(self):
        # Two *separate worker processes* generate the trace
        # independently; their digests must match each other and the
        # in-process generation.
        with ProcessPoolExecutor(max_workers=2) as pool:
            digests = list(pool.map(
                _trace_digest,
                ["gsmdec", "gsmdec"], [LEN, LEN]))
        assert digests[0] == digests[1]
        assert digests[0] == _trace_digest("gsmdec", LEN)

    def test_seeded_workload_identical_in_two_processes(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            digests = list(pool.map(
                _trace_digest,
                ["cjpeg", "cjpeg"], [LEN, LEN], ["test", "test"], [5, 5]))
        assert digests[0] == digests[1]
        assert digests[0] == _trace_digest("cjpeg", LEN, seed=5)


class TestSeedPlumbing:
    def test_seed_zero_is_the_canonical_input(self):
        assert (_trace_digest("rawcaudio", LEN)
                == _trace_digest("rawcaudio", LEN, seed=0))

    def test_distinct_seeds_give_distinct_data(self):
        assert (_trace_digest("rawcaudio", LEN, seed=0)
                != _trace_digest("rawcaudio", LEN, seed=1))

    def test_seed_and_dataset_do_not_collide(self):
        # The train dataset and any small seed must never alias to the
        # same generator inputs.
        assert (_trace_digest("rawcaudio", LEN, dataset="train", seed=0)
                != _trace_digest("rawcaudio", LEN, dataset="test", seed=1))

    def test_every_builder_accepts_a_seed(self):
        from repro.workloads import workload_names
        for name in workload_names():
            program = build_workload(name, seed=3)
            assert program is not None

    def test_trace_cache_distinguishes_seeds(self):
        first = workload_trace("rawcaudio", LEN, seed=0)
        second = workload_trace("rawcaudio", LEN, seed=9)
        assert first is not second
        assert first is workload_trace("rawcaudio", LEN, seed=0)

"""Tests for the deterministic data generators."""

from repro.workloads.datagen import (audio_words, float_noise, float_ramp,
                                     image_words, lcg_stream, noise_words,
                                     ramp_words)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert lcg_stream(7, 50) == lcg_stream(7, 50)

    def test_different_seeds_differ(self):
        assert lcg_stream(7, 50) != lcg_stream(8, 50)


class TestShapes:
    def test_noise_respects_bit_width(self):
        values = noise_words(3, 500, bits=8)
        assert all(0 <= v < 256 for v in values)
        assert max(values) > 200   # actually spreads over the range

    def test_image_values_are_bytes_and_correlated(self):
        values = image_words(5, 400)
        assert all(0 <= v < 256 for v in values)
        small_diffs = sum(1 for a, b in zip(values, values[1:])
                          if abs(a - b) <= 16)
        assert small_diffs / len(values) > 0.6

    def test_audio_values_in_16bit_range(self):
        values = audio_words(9, 500)
        assert all(-32768 <= v <= 32767 for v in values)
        assert min(values) < 0 < max(values)

    def test_ramp(self):
        assert ramp_words(5, 4, 3) == [5, 8, 11, 14]

    def test_float_noise_in_scale(self):
        values = float_noise(2, 300, scale=4.0)
        assert all(0.0 <= v < 4.0 for v in values)

    def test_float_ramp(self):
        assert float_ramp(1.0, 3, 0.5) == [1.0, 1.5, 2.0]

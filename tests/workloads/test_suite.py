"""Tests of the workload suite registry and trace caching."""

import pytest

from repro.isa.opcodes import OpClass
from repro.workloads import (SUITE, build_workload, clear_trace_cache,
                             workload_names, workload_trace)


class TestRegistry:
    def test_fifteen_benchmarks_in_paper_order(self):
        names = workload_names()
        assert len(names) == 15
        assert names[0] == "cjpeg"
        assert names[-1] == "rawcaudio"
        assert "mpeg2enc" in names and "pgpenc" in names

    def test_categories_match_table2(self):
        categories = {spec.category for spec in SUITE.values()}
        assert categories == {"image", "audio", "video", "3D graphics",
                              "encryption"}
        assert SUITE["mesaosdemo"].category == "3D graphics"
        assert SUITE["pgpdec"].category == "encryption"

    def test_paper_instruction_counts_recorded(self):
        assert SUITE["g721enc"].paper_minsts == pytest.approx(440.6)
        assert SUITE["djpeg"].paper_minsts == pytest.approx(6.0)

    def test_unknown_workload_raises_with_choices(self):
        with pytest.raises(KeyError, match="cjpeg"):
            build_workload("nonesuch")


@pytest.mark.parametrize("name", workload_names())
class TestEveryBenchmark:
    def test_builds_and_produces_requested_trace(self, name):
        trace = workload_trace(name, 3000)
        assert len(trace) == 3000
        assert trace[0].seq == 0
        assert trace[-1].seq == 2999

    def test_trace_has_memory_and_branch_activity(self, name):
        trace = workload_trace(name, 3000)
        loads = sum(1 for d in trace if d.is_load)
        branches = sum(1 for d in trace if d.is_cond_branch)
        assert loads / len(trace) > 0.03
        assert branches / len(trace) > 0.03


class TestCategoryCharacter:
    def test_3d_benchmarks_have_fp_work(self):
        for name in ("mesamipmap", "mesaosdemo", "mesatexgen"):
            trace = workload_trace(name, 6000)
            fp = sum(1 for d in trace if not d.op.is_int)
            assert fp / len(trace) > 0.10, name

    def test_integer_benchmarks_have_no_fp(self):
        for name in ("cjpeg", "pgpenc", "rawcaudio"):
            trace = workload_trace(name, 6000)
            assert all(d.op.is_int for d in trace), name

    def test_crypto_uses_multiplies_heavily(self):
        trace = workload_trace("pgpenc", 6000)
        muls = sum(1 for d in trace if d.opclass is OpClass.IMUL)
        assert muls / len(trace) > 0.10

    def test_g721_uses_real_divides(self):
        trace = workload_trace("g721enc", 8000)
        divs = sum(1 for d in trace if d.opclass is OpClass.IDIV)
        assert divs > 0


class TestTraceCache:
    def test_cache_returns_same_object(self):
        clear_trace_cache()
        a = workload_trace("cjpeg", 1000)
        b = workload_trace("cjpeg", 1000)
        assert a is b

    def test_different_lengths_are_distinct_entries(self):
        a = workload_trace("cjpeg", 1000)
        b = workload_trace("cjpeg", 1500)
        assert a is not b
        assert len(b) == 1500

    def test_clear_cache(self):
        a = workload_trace("cjpeg", 1000)
        clear_trace_cache()
        b = workload_trace("cjpeg", 1000)
        assert a is not b

    def test_traces_are_deterministic(self):
        clear_trace_cache()
        a = [(d.pc, d.result) for d in workload_trace("gsmdec", 2000)]
        clear_trace_cache()
        b = [(d.pc, d.result) for d in workload_trace("gsmdec", 2000)]
        assert a == b


class TestDatasets:
    def test_datasets_share_code_differ_in_data(self):
        from repro.isa import execute
        test_prog = build_workload("cjpeg", dataset="test")
        train_prog = build_workload("cjpeg", dataset="train")
        assert ([i.op.name for i in test_prog.instructions]
                == [i.op.name for i in train_prog.instructions])
        a = execute(test_prog, 1000)
        b = execute(train_prog, 1000)
        assert any(x.result != y.result for x, y in zip(a, b)
                   if x.result is not None)

    def test_trace_cache_keyed_by_dataset(self):
        a = workload_trace("rawcaudio", 800, dataset="test")
        b = workload_trace("rawcaudio", 800, dataset="train")
        assert a is not b
        assert a is workload_trace("rawcaudio", 800, dataset="test")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="train"):
            build_workload("cjpeg", dataset="huge")

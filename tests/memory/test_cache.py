"""Unit tests for the set-associative cache timing model."""

import pytest

from repro.memory import Cache


def make_l1(**kw):
    defaults = dict(name="L1", size_bytes=1024, assoc=2, line_bytes=32,
                    hit_time=1, memory_latency=10)
    defaults.update(kw)
    return Cache(**defaults)


def test_geometry():
    cache = make_l1()
    assert cache.num_sets == 1024 // (2 * 32)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        Cache("bad", 1000, 3, 32, 1)


def test_cold_miss_then_hit():
    cache = make_l1()
    assert cache.access(0x100) == 1 + 10
    assert cache.access(0x100) == 1
    assert cache.access(0x11C) == 1       # same 32-byte line
    assert cache.access(0x120) == 11      # next line


def test_stats_track_hits_and_misses():
    cache = make_l1()
    cache.access(0)
    cache.access(0)
    cache.access(64)
    assert cache.stats.accesses == 3
    assert cache.stats.misses == 2
    assert cache.stats.hits == 1
    assert cache.stats.miss_rate == pytest.approx(2 / 3)


def test_lru_eviction_within_set():
    cache = make_l1()   # 2-way, 16 sets, set stride = 16*32 = 512
    a, b, c = 0x0, 0x200, 0x400   # all map to set 0
    cache.access(a)
    cache.access(b)
    cache.access(a)     # a is now MRU
    cache.access(c)     # evicts b (LRU)
    assert cache.contains(a)
    assert cache.contains(c)
    assert not cache.contains(b)


def test_contains_is_non_destructive():
    cache = make_l1()
    cache.access(0)
    before = cache.stats.accesses
    assert cache.contains(0)
    assert not cache.contains(0x200)
    assert cache.stats.accesses == before


def test_two_level_miss_latency_composes():
    l2 = Cache("L2", 4096, 4, 64, 6, memory_latency=32)
    l1 = Cache("L1", 1024, 2, 32, 1, next_level=l2)
    assert l1.access(0) == 1 + 6 + 32   # cold: L1 miss + L2 miss + memory
    assert l1.access(0) == 1            # L1 hit
    assert l1.access(32) == 1 + 6       # L1 miss, L2 hit (same 64B line)


def test_flush_empties_but_keeps_stats():
    cache = make_l1()
    cache.access(0)
    cache.flush()
    assert not cache.contains(0)
    assert cache.stats.accesses == 1


def test_capacity_sweep_evicts_everything():
    cache = make_l1()
    lines = cache.num_sets * cache.assoc
    for i in range(2 * lines):
        cache.access(i * 32)
    for i in range(lines):   # first half fully evicted
        assert not cache.contains(i * 32)

"""Unit tests for the assembled memory hierarchy and main memory."""

import pytest

from repro.memory import MainMemory, MemoryHierarchy


class TestMainMemory:
    def test_fill_latency_formula(self):
        memory = MainMemory(first_chunk=18, interchunk=2, bus_bytes=8)
        assert memory.fill_latency(64) == 18 + 7 * 2
        assert memory.fill_latency(32) == 18 + 3 * 2
        assert memory.fill_latency(8) == 18
        assert memory.fill_latency(1) == 18

    def test_bad_bus_rejected(self):
        with pytest.raises(ValueError):
            MainMemory(bus_bytes=0)


class TestHierarchy:
    def test_paper_defaults(self):
        h = MemoryHierarchy()
        assert h.l1i.size_bytes == 64 * 1024 and h.l1i.assoc == 2
        assert h.l1d.line_bytes == 32 and h.l1d.hit_time == 1
        assert h.l2.size_bytes == 256 * 1024 and h.l2.assoc == 4
        assert h.l2.hit_time == 6
        assert h.dcache_ports == 3

    def test_fetch_and_data_paths_are_separate_l1s(self):
        h = MemoryHierarchy()
        h.fetch_latency(0x1000)
        assert h.l1i.stats.accesses == 1
        assert h.l1d.stats.accesses == 0
        h.data_latency(0x1000)
        assert h.l1d.stats.accesses == 1

    def test_l1_miss_penalty_is_six_on_l2_hit(self):
        h = MemoryHierarchy()
        h.data_latency(0x4000)            # cold: misses to memory
        h.l1d.flush()
        assert h.data_latency(0x4000) == 1 + 6   # L2 hit now

    def test_l2_shared_between_instruction_and_data(self):
        h = MemoryHierarchy()
        h.fetch_latency(0x8000)           # fills L2 via the I side
        h.l1d.flush()
        assert h.data_latency(0x8000) == 7   # L2 hit from the D side

    def test_line_of_matches_l1_line_size(self):
        h = MemoryHierarchy()
        assert h.line_of(0) == h.line_of(31)
        assert h.line_of(31) != h.line_of(32)

    def test_stats_bundle(self):
        h = MemoryHierarchy()
        h.fetch_latency(0)
        h.data_latency(0x100, is_write=True)
        stats = h.stats()
        assert set(stats) == {"l1i", "l1d", "l2"}
        assert stats["l1i"]["accesses"] == 1
        assert stats["l1d"]["misses"] == 1

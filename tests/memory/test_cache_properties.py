"""Property-based tests of the cache model's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Cache


@st.composite
def cache_geometries(draw):
    line = draw(st.sampled_from([16, 32, 64]))
    assoc = draw(st.sampled_from([1, 2, 4]))
    sets = draw(st.sampled_from([4, 16, 64]))
    return dict(name="C", size_bytes=sets * assoc * line, assoc=assoc,
                line_bytes=line, hit_time=1, memory_latency=10)


@settings(max_examples=60)
@given(geometry=cache_geometries(),
       addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=120))
def test_latency_is_hit_or_miss_exactly(geometry, addrs):
    cache = Cache(**geometry)
    for addr in addrs:
        latency = cache.access(addr)
        assert latency in (1, 11)
        # Immediately re-accessing the same line must hit.
        assert cache.access(addr) == 1
    assert cache.stats.accesses == 2 * len(addrs)
    assert cache.stats.misses <= len(addrs)


@settings(max_examples=40)
@given(geometry=cache_geometries(),
       addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=80))
def test_occupancy_never_exceeds_capacity(geometry, addrs):
    cache = Cache(**geometry)
    for addr in addrs:
        cache.access(addr)
    total_lines = sum(len(s) for s in cache._sets)
    assert total_lines <= cache.num_sets * cache.assoc
    for cache_set in cache._sets:
        assert len(cache_set) <= cache.assoc


@settings(max_examples=40)
@given(geometry=cache_geometries(),
       addrs=st.lists(st.integers(0, 1 << 14), min_size=2, max_size=60))
def test_contains_agrees_with_access_latency(geometry, addrs):
    cache = Cache(**geometry)
    for addr in addrs:
        expected_hit = cache.contains(addr)
        latency = cache.access(addr)
        assert (latency == 1) == expected_hit


@settings(max_examples=30)
@given(geometry=cache_geometries())
def test_working_set_within_capacity_always_hits_after_warmup(geometry):
    cache = Cache(**geometry)
    lines = cache.num_sets * cache.assoc
    working_set = [i * geometry["line_bytes"] for i in range(lines)]
    for addr in working_set:      # warm
        cache.access(addr)
    for addr in working_set:      # steady state: zero misses
        assert cache.access(addr) == 1

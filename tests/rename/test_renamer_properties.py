"""Property-based tests: rename/commit traffic never leaks registers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.registers import NUM_LOGICAL_REGS
from repro.rename import RenameUnit
from repro.rename.renamer import FP_BANK, INT_BANK


@settings(max_examples=40)
@given(writes=st.lists(
    st.tuples(st.integers(min_value=0, max_value=NUM_LOGICAL_REGS - 1),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=120))
def test_write_commit_cycle_preserves_register_count(writes):
    """Renaming a write then committing it keeps exactly one mapping per
    logical register and returns every previous register to the pools."""
    unit = RenameUnit(NUM_LOGICAL_REGS, 4, 56)
    for logical, cluster in writes:
        if unit.free_count(cluster, unit.bank_of(logical)) == 0:
            continue
        _, previous = unit.define_dest(logical, cluster)
        unit.release(previous)   # commit immediately
    counts = unit.allocated_counts()
    assert sum(v for (c, bank), v in counts.items()
               if bank == INT_BANK) == NUM_LOGICAL_REGS // 2
    assert sum(v for (c, bank), v in counts.items()
               if bank == FP_BANK) == NUM_LOGICAL_REGS // 2
    for logical in range(NUM_LOGICAL_REGS):
        assert len(unit.mapped_clusters(logical)) == 1


@settings(max_examples=40)
@given(ops=st.lists(st.tuples(
    st.sampled_from(["write", "replica"]),
    st.integers(min_value=0, max_value=NUM_LOGICAL_REGS - 1),
    st.integers(min_value=0, max_value=1)),
    min_size=1, max_size=80))
def test_mixed_traffic_invariants(ops):
    """Replicas and writes interleaved: mappings and pools stay coherent."""
    unit = RenameUnit(NUM_LOGICAL_REGS, 2, 64)
    live_previous = []
    for kind, logical, cluster in ops:
        bank = unit.bank_of(logical)
        if unit.free_count(cluster, bank) == 0:
            continue
        if kind == "write":
            _, previous = unit.define_dest(logical, cluster)
            live_previous.append(previous)
        else:
            if unit.mapping(logical, cluster) is None:
                unit.alloc_replica(logical, cluster)
        # Invariant: every logical register keeps >= 1 valid mapping.
        assert unit.mapped_clusters(logical)
    # Commit everything outstanding; pool accounting must balance.
    for previous in live_previous:
        unit.release(previous)
    counts = unit.allocated_counts()
    total_alloc = sum(counts.values())
    total_mapped = sum(len(unit.mapped_clusters(lr))
                       for lr in range(NUM_LOGICAL_REGS))
    assert total_alloc == total_mapped

"""Unit tests for the rename unit (banked free pools + Figure 1 flow)."""

import pytest

from repro.isa.registers import FP_BASE, NUM_LOGICAL_REGS
from repro.rename import RenameUnit
from repro.rename.renamer import FP_BANK, INT_BANK


def test_initial_mapping_covers_every_logical_register():
    unit = RenameUnit(NUM_LOGICAL_REGS, 4, 56)
    mapped = {logical for logical, _, _ in unit.initial_mappings()}
    assert mapped == set(range(NUM_LOGICAL_REGS))
    for logical in range(NUM_LOGICAL_REGS):
        assert unit.mapped_clusters(logical) == [logical % 4]


def test_banks_split_int_and_fp():
    unit = RenameUnit(NUM_LOGICAL_REGS, 2, 40)
    counts = unit.allocated_counts()
    # 32 int and 32 fp logical registers spread over 2 clusters.
    assert counts[(0, INT_BANK)] == 16
    assert counts[(1, INT_BANK)] == 16
    assert counts[(0, FP_BANK)] == 16
    assert counts[(1, FP_BANK)] == 16


def test_bank_of():
    assert RenameUnit.bank_of(0) == INT_BANK
    assert RenameUnit.bank_of(31) == INT_BANK
    assert RenameUnit.bank_of(FP_BASE) == FP_BANK


def test_fp_pregs_are_offset():
    unit = RenameUnit(NUM_LOGICAL_REGS, 1, 64)
    preg, _ = unit.define_dest(FP_BASE + 1, 0)
    assert preg >= 64          # fp bank ids live above the int bank
    ipreg, _ = unit.define_dest(1, 0)
    assert ipreg < 64


def test_define_dest_returns_previous_for_commit_free():
    unit = RenameUnit(NUM_LOGICAL_REGS, 2, 40)
    original = unit.mapping(3, 1)
    preg, previous = unit.define_dest(3, 0)
    assert previous == [(1, original)]
    assert unit.mapping(3, 0) == preg
    assert unit.mapping(3, 1) is None


def test_replica_then_redefine_then_release_roundtrip():
    unit = RenameUnit(NUM_LOGICAL_REGS, 2, 40)
    before = unit.free_count(0, INT_BANK) + unit.free_count(1, INT_BANK)
    replica = unit.alloc_replica(2, 1)
    assert unit.mapping(2, 1) == replica
    _, previous = unit.define_dest(2, 0)
    assert len(previous) == 2
    unit.release(previous)
    after = unit.free_count(0, INT_BANK) + unit.free_count(1, INT_BANK)
    # The replica and the original were freed, the new dest was
    # allocated: one mapping before, one mapping after.
    assert after == before


def test_free_count_decrements_per_bank():
    unit = RenameUnit(NUM_LOGICAL_REGS, 2, 40)
    before = unit.free_count(0, FP_BANK)
    unit.define_dest(FP_BASE + 4, 0)
    assert unit.free_count(0, FP_BANK) == before - 1
    assert unit.free_count(0, INT_BANK) == 40 - 16


def test_exhausted_pool_raises_runtime_error():
    unit = RenameUnit(NUM_LOGICAL_REGS, 1, 33)   # 32 int mappings + 1 free
    unit.define_dest(1, 0)
    with pytest.raises(RuntimeError, match="pre-check"):
        unit.define_dest(2, 0)


def test_too_small_register_file_rejected_at_reset():
    with pytest.raises(ValueError):
        RenameUnit(NUM_LOGICAL_REGS, 1, 16)   # cannot hold 32 per bank

"""Unit tests for the physical-register free list."""

import pytest

from repro.rename import FreeList


def test_alloc_until_empty_then_none():
    fl = FreeList(3)
    got = [fl.alloc() for _ in range(3)]
    assert sorted(got) == [0, 1, 2]
    assert fl.alloc() is None
    assert fl.available == 0


def test_free_returns_to_pool():
    fl = FreeList(2)
    a = fl.alloc()
    fl.alloc()
    fl.free(a)
    assert fl.available == 1
    assert fl.alloc() == a


def test_double_free_raises():
    fl = FreeList(2)
    a = fl.alloc()
    fl.free(a)
    with pytest.raises(ValueError, match="double free"):
        fl.free(a)


def test_free_of_never_allocated_raises():
    fl = FreeList(2)
    with pytest.raises(ValueError):
        fl.free(0)


def test_is_allocated_tracking():
    fl = FreeList(2)
    a = fl.alloc()
    assert fl.is_allocated(a)
    fl.free(a)
    assert not fl.is_allocated(a)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        FreeList(0)


def test_fifo_recycling_order():
    fl = FreeList(4)
    regs = [fl.alloc() for _ in range(4)]
    fl.free(regs[2])
    fl.free(regs[0])
    assert fl.alloc() == regs[2]
    assert fl.alloc() == regs[0]

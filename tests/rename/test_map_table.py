"""Unit tests for the N-field map table (Figure 1 semantics)."""

import pytest

from repro.rename import MapTable


def test_initially_unmapped():
    table = MapTable(4, 2)
    assert not table.is_mapped(0, 0)
    assert table.mapped_clusters(0) == []
    assert table.get(0, 1) is None


def test_define_validates_one_field():
    table = MapTable(4, 4)
    previous = table.define(1, 2, 17)
    assert previous == []
    assert table.mapped_clusters(1) == [2]
    assert table.get(1, 2) == 17


def test_replica_adds_field():
    table = MapTable(4, 4)
    table.define(1, 0, 5)
    table.add_replica(1, 3, 9)
    assert sorted(table.mapped_clusters(1)) == [0, 3]
    assert table.mappings(1) == [(0, 5), (3, 9)]


def test_replica_conflict_raises():
    table = MapTable(4, 2)
    table.define(0, 1, 3)
    with pytest.raises(ValueError, match="already mapped"):
        table.add_replica(0, 1, 7)


def test_redefine_returns_full_previous_set_figure1c():
    """Figure 1(c): a new writer frees the original and every replica."""
    table = MapTable(4, 4)
    table.define(2, 0, 10)
    table.add_replica(2, 1, 11)
    table.add_replica(2, 3, 12)
    previous = table.define(2, 2, 20)
    assert sorted(previous) == [(0, 10), (1, 11), (3, 12)]
    assert table.mapped_clusters(2) == [2]


def test_logical_registers_independent():
    table = MapTable(3, 2)
    table.define(0, 0, 1)
    table.define(1, 1, 2)
    assert table.mapped_clusters(0) == [0]
    assert table.mapped_clusters(1) == [1]


def test_live_pregs_per_cluster():
    table = MapTable(4, 2)
    table.define(0, 0, 1)
    table.define(1, 0, 2)
    table.define(2, 1, 3)
    assert sorted(table.live_pregs(0)) == [1, 2]
    assert table.live_pregs(1) == [3]


def test_dimensions_validated():
    with pytest.raises(ValueError):
        MapTable(0, 2)
    with pytest.raises(ValueError):
        MapTable(4, 0)

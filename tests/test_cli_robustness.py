"""CLI hardening tests: flag bounds, exit codes, --check/--inject."""

import pytest

from repro.cli import (EXIT_OK, EXIT_SIMULATION_ERROR, EXIT_USAGE_ERROR,
                       main)


class TestExitCodes:
    def test_ok_run_returns_zero(self):
        assert main(["simulate", "rawcaudio", "--length", "1000"]) == EXIT_OK

    @pytest.mark.parametrize("flags", [
        ["--length", "0"],
        ["--length", "-5"],
        ["--comm-latency", "0"],
        ["--paths", "0"],
        ["--inject", "bogus:0.1"],
        ["--inject", "value:2.0"],
        ["--inject", "value@seed=xyz"],
    ])
    def test_bad_flag_values_return_usage_error(self, flags, capsys):
        code = main(["simulate", "rawcaudio"] + flags)
        assert code == EXIT_USAGE_ERROR
        assert "error:" in capsys.readouterr().err

    def test_usage_error_message_is_friendly(self, capsys):
        main(["simulate", "rawcaudio", "--comm-latency", "-1"])
        err = capsys.readouterr().err
        assert "--comm-latency" in err and ">= 1" in err
        assert "Traceback" not in err

    def test_divergence_returns_simulation_error(self, capsys,
                                                 monkeypatch):
        from repro.errors import DivergenceError

        def explode(*args, **kwargs):
            raise DivergenceError("synthetic divergence", cycle=10)

        monkeypatch.setattr("repro.cli.simulate", explode)
        code = main(["simulate", "rawcaudio", "--length", "500",
                     "--check"])
        assert code == EXIT_SIMULATION_ERROR
        assert "synthetic divergence" in capsys.readouterr().err

    def test_exit_code_constants_are_distinct(self):
        assert len({EXIT_OK, EXIT_SIMULATION_ERROR, EXIT_USAGE_ERROR}) == 3


class TestCheckAndInject:
    def test_check_reports_golden_summary(self, capsys):
        code = main(["simulate", "rawcaudio", "--length", "1200",
                     "--predictor", "stride", "--steering", "vpb",
                     "--check"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "golden check" in out and "OK" in out

    def test_inject_reports_full_detection(self, capsys):
        code = main(["simulate", "rawcaudio", "--length", "1200",
                     "--predictor", "stride", "--steering", "vpb",
                     "--check", "--inject", "value:0.05@seed=2"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "(100%)" in out

    def test_inject_with_perfect_predictor_is_usage_error(self, capsys):
        code = main(["simulate", "rawcaudio", "--length", "500",
                     "--predictor", "perfect", "--steering", "vpb",
                     "--inject", "value:0.05"])
        assert code == EXIT_USAGE_ERROR
        assert "perfect" in capsys.readouterr().err


class TestCampaignCommand:
    def test_campaign_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "campaign.txt"
        code = main(["campaign", "--workloads", "rawcaudio",
                     "--length", "600", "--seeds", "1",
                     "--output", str(out_path)])
        assert code == EXIT_OK
        text = out_path.read_text()
        assert "detection rate" in text and "100.0%" in text
        assert "rawcaudio" in capsys.readouterr().out

    def test_campaign_bad_flags_are_usage_errors(self):
        assert main(["campaign", "--seeds", "0"]) == EXIT_USAGE_ERROR
        assert main(["campaign", "--rate", "0.0"]) == EXIT_USAGE_ERROR
        assert main(["campaign", "--rate", "1.5"]) == EXIT_USAGE_ERROR

    def test_campaign_listed_in_help(self):
        from repro.cli import build_parser
        assert "campaign" in build_parser().format_help()

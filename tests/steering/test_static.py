"""Tests for profile-driven static partitioning."""

import pytest

from repro.core import make_config, simulate
from repro.steering import (DCountTracker, StaticSteerer,
                            profile_static_assignment)
from repro.workloads import workload_trace

from ..conftest import make_dyn


class TestProfile:
    def test_assigns_every_profiled_pc(self):
        trace = workload_trace("rawcaudio", 3000)
        assignment = profile_static_assignment(trace, 4)
        pcs = {d.pc for d in trace}
        assert set(assignment) == pcs
        assert all(0 <= c < 4 for c in assignment.values())

    def test_dependent_instructions_colocate(self):
        # A producer/consumer pair repeated many times must share a home.
        trace = []
        for i in range(50):
            trace.append(make_dyn(2 * i, 0x1000, op="li", dest=1,
                                  result=i))
            trace.append(make_dyn(2 * i + 1, 0x1004, op="add", dest=2,
                                  srcs=(1, 1), src_values=(i, i)))
        assignment = profile_static_assignment(trace, 4)
        assert assignment[0x1000] == assignment[0x1004]

    def test_independent_work_spreads(self):
        trace = []
        seq = 0
        for i in range(40):
            for k in range(4):
                trace.append(make_dyn(seq, 0x2000 + 4 * k, op="li",
                                      dest=1 + k, result=i))
                seq += 1
        assignment = profile_static_assignment(trace, 4)
        assert len(set(assignment.values())) == 4

    def test_cluster_count_validated(self):
        with pytest.raises(ValueError):
            profile_static_assignment([], 0)


class TestStaticSteerer:
    def test_follows_assignment(self):
        steerer = StaticSteerer(4, {0x1000: 2})
        dcount = DCountTracker(4)
        assert steerer.choose([], dcount, pc=0x1000) == 2

    def test_unprofiled_pc_falls_back_to_least_loaded(self):
        steerer = StaticSteerer(4, {})
        dcount = DCountTracker(4)
        dcount.dispatch(0)
        assert steerer.choose([], dcount, pc=0x9999) == dcount.least_loaded()

    def test_out_of_range_assignment_wrapped(self):
        steerer = StaticSteerer(2, {0x1000: 7})
        assert steerer.choose([], DCountTracker(2), pc=0x1000) == 1


class TestEndToEnd:
    def test_static_runs_and_loses_to_dynamic(self):
        trace = workload_trace("cjpeg", 6000)
        assignment = profile_static_assignment(trace, 4)
        static = simulate(list(trace),
                          make_config(4, steering="static",
                                      static_assignment=assignment))
        dynamic = simulate(list(trace), make_config(4))
        assert static.stats.committed_insts == len(trace)
        assert dynamic.ipc > static.ipc
        assert static.comm_per_inst < dynamic.comm_per_inst

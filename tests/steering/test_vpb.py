"""Unit tests for the Modified (§3.2) and VPB (§3.3) steering schemes."""

from repro.steering import (DCountTracker, ModifiedSteerer, SourceView,
                            VPBSteerer, default_vpb_threshold)

from .test_baseline import src


class TestMod1AvailableIfPredicted:
    def test_predicted_pending_operand_does_not_anchor(self):
        """Mod 1: predicted operands count as available, so rule 2.1 is
        not applied for them (§3.2 first modification)."""
        steerer = VPBSteerer(4)
        dcount = DCountTracker(4)
        views = [src(available=False, mapped=(2,), soonest=2,
                     predicted=True),
                 src(available=True, mapped=(1,))]
        # Without mod 1 this would go to 2 (pending); with it, rule 2.2
        # sees two available operands mapped in 2 and 1 -> tie by load.
        chosen = steerer.choose(views, dcount)
        assert chosen in (1, 2)
        dcount2 = DCountTracker(4)
        dcount2.dispatch(2)
        assert steerer.choose(views, dcount2) == 1

    def test_unpredicted_pending_still_anchors(self):
        steerer = VPBSteerer(4)
        dcount = DCountTracker(4)
        views = [src(available=False, mapped=(2,), soonest=2,
                     predicted=False)]
        assert steerer.choose(views, dcount) == 2


class TestMod2Gate:
    def _views(self):
        return [src(available=True, mapped=(3,), predicted=True)]

    def test_gate_closed_when_balanced(self):
        """Below the VPB threshold, predicted operands still constrain
        steering (avoid gratuitous communication risk, §3.3)."""
        steerer = VPBSteerer(4, vpb_threshold=8)
        dcount = DCountTracker(4)
        dcount.dispatch(0)   # imbalance 3 < 8
        assert steerer.choose(self._views(), dcount) == 3

    def test_gate_open_when_imbalanced(self):
        steerer = VPBSteerer(4, vpb_threshold=8)
        dcount = DCountTracker(4)
        for _ in range(3):
            dcount.dispatch(3)   # imbalance 9 > 8; cluster 3 loaded
        chosen = steerer.choose(self._views(), dcount)
        assert chosen != 3       # operand released; balance decides

    def test_gate_never_applies_to_unpredicted(self):
        steerer = VPBSteerer(4, vpb_threshold=8)
        dcount = DCountTracker(4)
        for _ in range(3):
            dcount.dispatch(3)
        views = [src(available=True, mapped=(3,), predicted=False)]
        assert steerer.choose(views, dcount) == 3

    def test_rule1_still_dominates(self):
        steerer = VPBSteerer(4, balance_threshold=4, vpb_threshold=2)
        dcount = DCountTracker(4)
        for _ in range(3):
            dcount.dispatch(0)   # imbalance 9 > 4
        assert steerer.choose(self._views(), dcount) == dcount.least_loaded()

    def test_paper_default_thresholds(self):
        assert default_vpb_threshold(4) == 16
        assert default_vpb_threshold(2) == 8
        assert VPBSteerer(4).mod2_threshold == 16
        assert VPBSteerer(2).mod2_threshold == 8


class TestModifiedScheme:
    def test_mod2_unconditional(self):
        """§3.2: the Modified scheme applies mod 2 with no gate."""
        steerer = ModifiedSteerer(4)
        dcount = DCountTracker(4)   # perfectly balanced
        views = [src(available=True, mapped=(3,), predicted=True)]
        # The operand is released even at imbalance 0: choice is purely
        # least-loaded (cluster 0 by tie-break).
        assert steerer.choose(views, dcount) == 0

    def test_fp_operands_never_predicted_still_constrain(self):
        steerer = ModifiedSteerer(4)
        dcount = DCountTracker(4)
        views = [src(available=True, mapped=(2,), predicted=False,
                     is_fp=True)]
        assert steerer.choose(views, dcount) == 2


class TestMixedOperands:
    def test_predicted_and_unpredicted_mix(self):
        """Only the unpredicted operand constrains when the gate is open."""
        steerer = VPBSteerer(4, vpb_threshold=2)
        dcount = DCountTracker(4)
        dcount.dispatch(1)   # imbalance 3 > 2, cluster 1 most loaded
        views = [src(available=True, mapped=(1,), predicted=True),
                 src(available=True, mapped=(2,), predicted=False)]
        assert steerer.choose(views, dcount) == 2

"""Unit and property tests for DCOUNT and NREADY (§2.3.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.steering import DCountTracker, NReadyMeter


class TestDCount:
    def test_single_dispatch_updates_as_paper_describes(self):
        tracker = DCountTracker(4)
        tracker.dispatch(1)
        assert tracker.counters == [-1, 3, -1, -1]

    def test_sum_always_zero(self):
        tracker = DCountTracker(4)
        for cluster in (0, 1, 1, 3, 2, 1):
            tracker.dispatch(cluster)
            assert sum(tracker.counters) == 0

    def test_counter_is_n_times_excess(self):
        """Counter == N * (dispatched_here - average) (§2.3.2)."""
        tracker = DCountTracker(4)
        dispatches = [0, 0, 0, 1, 2, 3, 0, 0]
        for cluster in dispatches:
            tracker.dispatch(cluster)
        per = [dispatches.count(c) for c in range(4)]
        avg = len(dispatches) / 4
        assert tracker.counters == [round(4 * (p - avg)) for p in per]

    def test_imbalance_and_least_loaded(self):
        tracker = DCountTracker(2)
        for _ in range(3):
            tracker.dispatch(0)
        assert tracker.imbalance() == 3   # single counter pair, |±3|
        assert tracker.least_loaded() == 1

    def test_least_loaded_among_restricts(self):
        tracker = DCountTracker(4)
        tracker.dispatch(2)
        tracker.dispatch(2)
        # cluster 3 is globally least-loaded-tied, but restrict to {1, 2}
        assert tracker.least_loaded_among([1, 2]) == 1
        assert tracker.least_loaded_among([2]) == 2

    def test_two_cluster_single_counter_property(self):
        """§2.3.2: 'in the case of two clusters a single counter will
        suffice' — the two counters are always negatives of each other."""
        tracker = DCountTracker(2)
        for cluster in (0, 1, 1, 1, 0):
            tracker.dispatch(cluster)
            assert tracker.counters[0] == -tracker.counters[1]

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=200))
    def test_invariants_hold_for_any_sequence(self, dispatches):
        tracker = DCountTracker(4)
        for cluster in dispatches:
            tracker.dispatch(cluster)
        assert sum(tracker.counters) == 0
        assert tracker.imbalance() >= 0
        assert tracker.counters[tracker.least_loaded()] == min(
            tracker.counters)


class TestNReady:
    def test_no_leftover_means_zero(self):
        meter = NReadyMeter(4)
        meter.record([0, 0, 0, 0], [2, 2, 2, 2], [0, 0, 0, 0], [1, 1, 1, 1])
        assert meter.average == 0.0

    def test_stuck_work_matched_to_other_clusters_idle(self):
        meter = NReadyMeter(2)
        # 2 stuck int instructions in cluster 0; cluster 1 has 1 idle slot.
        meter.record([2, 0], [0, 1], [0, 0], [0, 0])
        assert meter.total == 1

    def test_own_cluster_idle_does_not_count(self):
        meter = NReadyMeter(2)
        # Cluster 0 somehow reports stuck + idle (mul/div corner): its own
        # idle capacity must not absorb its own leftover.
        meter.record([1, 0], [1, 0], [0, 0], [0, 0])
        assert meter.total == 0

    def test_sides_accumulate_independently(self):
        meter = NReadyMeter(2)
        meter.record([1, 0], [0, 1], [2, 0], [0, 2])
        assert meter.total == 3

    def test_average_over_cycles(self):
        meter = NReadyMeter(2)
        meter.record([1, 0], [0, 1], [0, 0], [0, 0])
        meter.record([0, 0], [1, 1], [0, 0], [1, 1])
        assert meter.average == 0.5

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=4,
                    max_size=4),
           st.lists(st.integers(min_value=0, max_value=4), min_size=4,
                    max_size=4))
    def test_bounded_by_both_sides(self, leftover, idle):
        meter = NReadyMeter(4)
        meter.record(leftover, idle, [0] * 4, [0] * 4)
        assert meter.total <= sum(leftover)
        assert meter.total <= sum(idle)

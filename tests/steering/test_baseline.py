"""Rule-by-rule unit tests for the Baseline steering heuristic (§3.1)."""

from repro.steering import BaselineSteerer, DCountTracker, SourceView


def src(logical=1, available=True, mapped=(0,), soonest=None,
        predicted=False, is_fp=False):
    mapped = frozenset(mapped)
    if soonest is None and mapped:
        soonest = min(mapped)
    return SourceView(logical, is_fp, available, mapped, soonest, predicted)


def fresh(n=4, threshold=None):
    return BaselineSteerer(n, threshold), DCountTracker(n)


class TestRule1Balance:
    def test_imbalance_above_threshold_overrides_everything(self):
        steerer, dcount = fresh(4, threshold=4)
        for _ in range(3):
            dcount.dispatch(0)    # counter0 = 9 > 4
        # Operand strongly prefers cluster 0, but balance wins.
        chosen = steerer.choose([src(mapped=(0,))], dcount)
        assert chosen != 0
        assert chosen == dcount.least_loaded()

    def test_below_threshold_follows_operands(self):
        steerer, dcount = fresh(4, threshold=100)
        for _ in range(3):
            dcount.dispatch(0)
        assert steerer.choose([src(mapped=(0,))], dcount) == 0

    def test_paper_default_thresholds(self):
        assert BaselineSteerer(4).balance_threshold == 32
        assert BaselineSteerer(2).balance_threshold == 16


class TestRule21Pending:
    def test_pending_operand_steers_to_producer_cluster(self):
        steerer, dcount = fresh()
        views = [src(available=False, mapped=(2,), soonest=2)]
        assert steerer.choose(views, dcount) == 2

    def test_pending_beats_available_mappings(self):
        steerer, dcount = fresh()
        views = [src(available=True, mapped=(0, 1, 3)),
                 src(available=False, mapped=(2,), soonest=2)]
        assert steerer.choose(views, dcount) == 2

    def test_two_pending_in_different_clusters_tie_broken_by_load(self):
        steerer, dcount = fresh()
        dcount.dispatch(1)   # make cluster 1 more loaded
        views = [src(available=False, mapped=(1,), soonest=1),
                 src(available=False, mapped=(3,), soonest=3)]
        assert steerer.choose(views, dcount) == 3

    def test_majority_of_pending_operands_wins(self):
        steerer, dcount = fresh()
        views = [src(available=False, mapped=(1,), soonest=1),
                 src(available=False, mapped=(1,), soonest=1)]
        assert steerer.choose(views, dcount) == 1

    def test_soonest_cluster_narrows_replicated_pending(self):
        # Pending in clusters 0 and 2 (replica in flight), value lands
        # sooner in 2: rule 2.1 votes for 2 only.
        steerer, dcount = fresh()
        views = [src(available=False, mapped=(0, 2), soonest=2)]
        assert steerer.choose(views, dcount) == 2


class TestRule22Mapped:
    def test_most_mapped_cluster_wins(self):
        steerer, dcount = fresh()
        views = [src(mapped=(1,)), src(mapped=(1, 2))]
        assert steerer.choose(views, dcount) == 1

    def test_tie_between_mapped_clusters_broken_by_load(self):
        steerer, dcount = fresh()
        dcount.dispatch(1)
        views = [src(mapped=(1,)), src(mapped=(2,))]
        assert steerer.choose(views, dcount) == 2


class TestRule23NoSources:
    def test_no_sources_goes_least_loaded(self):
        steerer, dcount = fresh()
        dcount.dispatch(0)
        dcount.dispatch(1)
        chosen = steerer.choose([], dcount)
        assert chosen in (2, 3)
        assert chosen == dcount.least_loaded()

    def test_zero_register_only_counts_as_unconstrained(self):
        steerer, dcount = fresh()
        dcount.dispatch(0)
        views = [SourceView(0, False, True, frozenset(), None, False)]
        assert steerer.choose(views, dcount) == dcount.least_loaded()


class TestSingleCluster:
    def test_one_cluster_always_zero(self):
        steerer = BaselineSteerer(1)
        dcount = DCountTracker(1)
        assert steerer.choose([src(mapped=(0,))], dcount) == 0
        assert steerer.choose([], dcount) == 0


class TestPredictionIgnored:
    def test_baseline_ignores_predicted_flag(self):
        steerer, dcount = fresh()
        views_pred = [src(available=False, mapped=(2,), soonest=2,
                          predicted=True)]
        views_nopred = [src(available=False, mapped=(2,), soonest=2,
                            predicted=False)]
        assert (steerer.choose(views_pred, dcount)
                == steerer.choose(views_nopred, dcount) == 2)

"""Unit tests for the reference steerers (round-robin, balance, depend)."""

from repro.steering import (BalanceOnlySteerer, DCountTracker,
                            DependenceOnlySteerer, RoundRobinSteerer)

from .test_baseline import src


def test_round_robin_cycles():
    steerer = RoundRobinSteerer(3)
    dcount = DCountTracker(3)
    picks = []
    for _ in range(7):
        cluster = steerer.choose([], dcount)
        picks.append(cluster)
        steerer.notify_dispatch(cluster)
    assert picks == [0, 1, 2, 0, 1, 2, 0]


def test_round_robin_retries_do_not_advance():
    steerer = RoundRobinSteerer(3)
    dcount = DCountTracker(3)
    # choose() called repeatedly (decode retries) stays put...
    assert [steerer.choose([], dcount) for _ in range(3)] == [0, 0, 0]
    steerer.notify_dispatch(0)
    # ...and only the dispatch advances the cursor.
    assert steerer.choose([], dcount) == 1


def test_balance_only_tracks_least_loaded():
    steerer = BalanceOnlySteerer(4)
    dcount = DCountTracker(4)
    views = [src(mapped=(0,))]
    assert steerer.choose(views, dcount) == 0   # tie -> lowest id
    dcount.dispatch(0)
    assert steerer.choose(views, dcount) != 0


class TestDependenceOnly:
    def test_follows_pending_producer(self):
        steerer = DependenceOnlySteerer(4)
        dcount = DCountTracker(4)
        views = [src(available=False, mapped=(2,), soonest=2)]
        assert steerer.choose(views, dcount) == 2

    def test_follows_mapped_majority(self):
        steerer = DependenceOnlySteerer(4)
        dcount = DCountTracker(4)
        views = [src(mapped=(1, 3)), src(mapped=(3,))]
        assert steerer.choose(views, dcount) == 3

    def test_ignores_load_defaults_to_zero(self):
        steerer = DependenceOnlySteerer(4)
        dcount = DCountTracker(4)
        for _ in range(100):
            dcount.dispatch(0)   # massively imbalanced toward 0
        assert steerer.choose([], dcount) == 0   # still concentrates

"""Cross-module integration tests: the paper's claims in miniature.

These run the real suite (short traces) through the real configurations
and assert the *directions* the paper reports.  The full-scale versions
live in benchmarks/.
"""

import pytest

from repro import make_config, simulate
from repro.analysis import mean
from repro.workloads import workload_trace

WORKLOADS = ["cjpeg", "gsmdec", "mpeg2enc", "pgpenc", "mesaosdemo"]
LENGTH = 6000


@pytest.fixture(scope="module")
def results():
    """Simulate a representative subset over the key configurations."""
    out = {}
    for name in WORKLOADS:
        trace = workload_trace(name, LENGTH)
        for key, config in {
            "1c": make_config(1),
            "1c+vp": make_config(1, predictor="stride"),
            "2c": make_config(2),
            "4c": make_config(4),
            "4c+vp": make_config(4, predictor="stride"),
            "4c+vpb": make_config(4, predictor="stride", steering="vpb"),
            "4c+perfect": make_config(4, predictor="perfect",
                                      steering="vpb"),
        }.items():
            out[(name, key)] = simulate(list(trace), config)
    return out


def avg(results, key, metric="ipc"):
    return mean(getattr(results[(name, key)], metric)
                for name in WORKLOADS)


class TestClusteringDegradation:
    def test_ipc_monotone_in_cluster_count(self, results):
        assert avg(results, "1c") > avg(results, "2c") > avg(results, "4c")

    def test_every_benchmark_degrades_at_4c(self, results):
        for name in WORKLOADS:
            assert (results[(name, "4c")].ipc
                    < results[(name, "1c")].ipc), name

    def test_communications_grow_with_clusters(self, results):
        assert (avg(results, "4c", "comm_per_inst")
                > avg(results, "2c", "comm_per_inst") > 0)


class TestValuePredictionBenefit:
    def test_vp_helps_clustered_more_than_centralized(self, results):
        gain_1c = avg(results, "1c+vp") / avg(results, "1c")
        gain_4c = avg(results, "4c+vp") / avg(results, "4c")
        assert gain_4c > gain_1c - 0.01

    def test_vpb_beats_plain_baseline(self, results):
        assert avg(results, "4c+vpb") > avg(results, "4c")

    def test_vpb_cuts_communications(self, results):
        assert (avg(results, "4c+vpb", "comm_per_inst")
                < 0.75 * avg(results, "4c", "comm_per_inst"))

    def test_perfect_prediction_is_the_upper_bound(self, results):
        assert avg(results, "4c+perfect") >= avg(results, "4c+vpb")

    def test_perfect_prediction_leaves_fp_comms_only(self, results):
        for name in WORKLOADS:
            result = results[(name, "4c+perfect")]
            if name == "mesaosdemo":   # fp-heavy: some comms remain
                assert result.comm_per_inst >= 0.0
            else:                      # integer-only: none remain
                assert result.comm_per_inst < 0.02, name


class TestStatisticalPlumbing:
    def test_all_traces_fully_committed(self, results):
        for (name, key), result in results.items():
            assert result.stats.committed_insts == LENGTH, (name, key)

    def test_branch_prediction_quality_reasonable(self, results):
        for name in WORKLOADS:
            accuracy = results[(name, "1c")].bp_stats["accuracy"]
            assert accuracy > 0.80, name

    def test_vp_stats_in_paper_ballpark(self, results):
        """Figure 5(b): hit ratio ~90%+, sizeable non-confident share."""
        hits = [results[(name, "4c+vp")].vp_stats["hit_ratio"]
                for name in WORKLOADS]
        confs = [results[(name, "4c+vp")].vp_stats["confident_fraction"]
                 for name in WORKLOADS]
        assert mean(hits) > 0.85
        assert 0.25 < mean(confs) < 0.95

"""Shared fixtures and factories for the test suite."""

from __future__ import annotations

import pytest

from repro.isa.instruction import DynInst
from repro.isa.opcodes import opinfo


def make_dyn(seq: int, pc: int, op: str = "add", dest=None, srcs=(),
             src_values=None, result=None, mem_addr=None, taken=None,
             target=None) -> DynInst:
    """Fabricate a DynInst for front-end / core unit tests."""
    info = opinfo(op)
    if src_values is None:
        src_values = tuple(0 for _ in srcs)
    return DynInst(seq, pc, info, dest, tuple(srcs), tuple(src_values),
                   result, mem_addr, taken, target)


@pytest.fixture
def dyn_factory():
    """The :func:`make_dyn` factory as a fixture."""
    return make_dyn


def linear_trace(count: int, base_pc: int = 0x1000):
    """A straight-line trace of independent `li`-style adds."""
    return [make_dyn(i, base_pc + 4 * i, op="li", dest=1 + (i % 8),
                     result=i) for i in range(count)]


@pytest.fixture
def linear_trace_factory():
    return linear_trace

"""Property-based tests of the stride predictor's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictor import StridePredictor

int64 = st.integers(min_value=-(1 << 62), max_value=(1 << 62) - 1)


@settings(max_examples=50, deadline=None)
@given(start=int64, stride=st.integers(min_value=-(1 << 30),
                                       max_value=1 << 30),
       warmup=st.integers(min_value=5, max_value=12))
def test_constant_stride_always_learned(start, stride, warmup):
    """After >=3 constant-stride observations the prediction is exact."""
    predictor = StridePredictor(256)
    value = start
    for _ in range(warmup):
        predictor.predict(0x40, 0, value)
        predictor.update(0x40, 0, value)
        value += stride
    prediction = predictor.predict(0x40, 0, value)
    assert prediction.confident
    assert prediction.value == value


@settings(max_examples=50)
@given(values=st.lists(int64, min_size=1, max_size=60))
def test_counter_stays_in_2bit_range(values):
    predictor = StridePredictor(64)
    for value in values:
        predictor.predict(0x40, 1, value)
        predictor.update(0x40, 1, value)
        _, _, counter = predictor.entry(0x40, 1)
        assert 0 <= counter <= 3


@settings(max_examples=50)
@given(values=st.lists(int64, min_size=1, max_size=40))
def test_stats_consistency(values):
    predictor = StridePredictor(64)
    for value in values:
        predictor.predict(0x80, 0, value)
        predictor.update(0x80, 0, value)
    stats = predictor.stats
    assert stats.confident <= stats.lookups == len(values)
    assert stats.confident_correct <= stats.confident
    assert 0.0 <= stats.confident_fraction <= 1.0
    assert 0.0 <= stats.hit_ratio <= 1.0


@settings(max_examples=30)
@given(values=st.lists(int64, min_size=1, max_size=30),
       entries=st.sampled_from([2, 16, 256, 4096]))
def test_last_value_always_tracked(values, entries):
    """Whatever happens, the entry's last value is the latest actual."""
    predictor = StridePredictor(entries)
    for value in values:
        predictor.update(0x100, 0, value)
    last, _, _ = predictor.entry(0x100, 0)
    assert last == values[-1]


@settings(max_examples=30, deadline=None)
@given(pcs=st.lists(st.integers(min_value=0, max_value=1 << 16).map(
    lambda x: x << 2), min_size=2, max_size=8, unique=True))
def test_large_table_no_interference(pcs):
    """Distinct PCs in a big table never share an entry."""
    predictor = StridePredictor(1 << 18)
    for i, pc in enumerate(pcs):
        for k in range(4):
            predictor.update(pc, 0, i * 1000 + k)
    for i, pc in enumerate(pcs):
        last, stride, _ = predictor.entry(pc, 0)
        assert last == i * 1000 + 3
        assert stride == 1

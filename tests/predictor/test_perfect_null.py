"""Unit tests for the oracle and null predictors."""

from repro.predictor import NullPredictor, PerfectPredictor


def test_perfect_always_right_and_confident():
    predictor = PerfectPredictor()
    for value in (0, -5, 1 << 40):
        prediction = predictor.predict(0x1000, 0, value)
        assert prediction.confident and prediction.value == value
        predictor.update(0x1000, 0, value)
    assert predictor.stats.hit_ratio == 1.0
    assert predictor.stats.confident_fraction == 1.0


def test_null_never_confident():
    predictor = NullPredictor()
    for value in (1, 2, 3):
        assert not predictor.predict(0x1000, 0, value).confident
        predictor.update(0x1000, 0, value)
    assert predictor.stats.confident == 0
    assert predictor.stats.lookups == 3
    assert predictor.stats.hit_ratio == 0.0

"""Unit tests for the context (FCM) and hybrid value predictors."""

import pytest

from repro.predictor import ContextPredictor, HybridPredictor, StridePredictor


def feed(predictor, pc, slot, values):
    out = []
    for value in values:
        out.append(predictor.predict(pc, slot, value))
        predictor.update(pc, slot, value)
    return out


class TestContextPredictor:
    def test_learns_repeating_cycle_stride_cannot(self):
        """A period-3 non-arithmetic cycle: stride fails, context locks."""
        cycle = [7, 100, 42] * 12
        context = ContextPredictor(1024, 4096, order=2)
        stride = StridePredictor(1024)
        context_preds = feed(context, 0x100, 0, list(cycle))
        stride_preds = feed(stride, 0x100, 0, list(cycle))
        def correct_confident(preds, values):
            return sum(1 for p, v in zip(preds, values)
                       if p.confident and p.value == v)
        assert (correct_confident(context_preds, cycle)
                > correct_confident(stride_preds, cycle) + 5)

    def test_constant_value_learned(self):
        predictor = ContextPredictor(256, 1024)
        preds = feed(predictor, 0x40, 0, [9] * 10)
        assert preds[-1].confident and preds[-1].value == 9

    def test_random_values_not_confident(self):
        predictor = ContextPredictor(256, 1024)
        preds = feed(predictor, 0x40, 0, [3, 1, 4, 159, 26, 535, 8, 97])
        assert not any(p.confident and p.value == v
                       for p, v in zip(preds[2:], [4, 159, 26, 535, 8, 97]))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ContextPredictor(l1_entries=100)
        with pytest.raises(ValueError):
            ContextPredictor(l2_entries=100)
        with pytest.raises(ValueError):
            ContextPredictor(order=0)

    def test_slots_independent(self):
        predictor = ContextPredictor(1024, 4096)
        feed(predictor, 0x80, 0, [1, 2, 3] * 6)
        preds = feed(predictor, 0x80, 1, [9] * 6)
        assert preds[-1].value == 9


class TestHybridPredictor:
    def test_covers_both_stride_and_cycle_patterns(self):
        hybrid = HybridPredictor(1024, 1024, 4096, 1024)
        # operand 0 at pc A: arithmetic stride; operand 0 at pc B: cycle.
        stride_values = list(range(0, 120, 4))
        cycle_values = [5, 77, 13] * 10
        s_preds = feed(hybrid, 0x100, 0, stride_values)
        c_preds = feed(hybrid, 0x200, 0, cycle_values)
        s_hits = sum(1 for p, v in zip(s_preds, stride_values)
                     if p.confident and p.value == v)
        c_hits = sum(1 for p, v in zip(c_preds, cycle_values)
                     if p.confident and p.value == v)
        assert s_hits > len(stride_values) // 2
        assert c_hits > len(cycle_values) // 3

    def test_chooser_migrates_to_better_component(self):
        hybrid = HybridPredictor(1024, 1024, 4096, 1024)
        index = hybrid._chooser_index(0x300, 0)
        start = hybrid._chooser[index]
        feed(hybrid, 0x300, 0, [11, 95, 3] * 15)   # context-friendly
        assert hybrid._chooser[index] >= start

    def test_stats_recorded_once_per_lookup(self):
        hybrid = HybridPredictor(1024, 1024, 4096, 1024)
        feed(hybrid, 0x40, 0, list(range(10)))
        assert hybrid.stats.lookups == 10

    def test_chooser_validation(self):
        with pytest.raises(ValueError):
            HybridPredictor(chooser_entries=100)

"""Unit tests for the stride value predictor."""

import pytest

from repro.predictor import Prediction, StridePredictor


def feed(predictor, pc, slot, values):
    """Stream values through predict+update; returns the predictions."""
    out = []
    for value in values:
        out.append(predictor.predict(pc, slot, value))
        predictor.update(pc, slot, value)
    return out


class TestBasicStride:
    def test_constant_stride_becomes_confident_and_correct(self):
        predictor = StridePredictor(1024)
        preds = feed(predictor, 0x1000, 0, [10, 14, 18, 22, 26, 30])
        assert not preds[0].confident
        late = preds[4:]
        assert all(p.confident for p in late)
        assert all(p.value == v for p, v in zip(late, [26, 30]))

    def test_constant_value_is_stride_zero(self):
        predictor = StridePredictor(1024)
        preds = feed(predictor, 0x1000, 0, [7] * 6)
        assert preds[-1].confident and preds[-1].value == 7

    def test_random_values_never_confident(self):
        predictor = StridePredictor(1024)
        values = [311, 17, 9024, 3, 555, 218, 42, 1009]
        preds = feed(predictor, 0x1000, 0, values)
        assert not any(p.confident for p in preds)

    def test_slots_are_independent(self):
        predictor = StridePredictor(1024)
        feed(predictor, 0x1000, 0, [1, 2, 3, 4, 5])
        preds = feed(predictor, 0x1000, 1, [100, 100, 100, 100])
        assert preds[-1].value == 100

    def test_counter_threshold_gates_confidence(self):
        strict = StridePredictor(1024, confidence_threshold=2)
        preds = feed(strict, 0x1000, 0, [0, 4, 8, 12, 16, 20])
        # threshold 2 needs counter==3, i.e. one more correct stride
        first_confident = next(i for i, p in enumerate(preds) if p.confident)
        loose = StridePredictor(1024, confidence_threshold=1)
        preds2 = feed(loose, 0x1000, 0, [0, 4, 8, 12, 16, 20])
        first_confident2 = next(i for i, p in enumerate(preds2)
                                if p.confident)
        assert first_confident > first_confident2


class TestTwoDelta:
    def test_single_break_does_not_replace_stride(self):
        predictor = StridePredictor(1024, two_delta=True)
        # stride 4 with one reset, then stride 4 continues
        feed(predictor, 0x1000, 0, [0, 4, 8, 12, 16])
        _, stride, _ = predictor.entry(0x1000, 0)
        assert stride == 4
        predictor.predict(0x1000, 0, 0)
        predictor.update(0x1000, 0, 0)      # break (delta -16)
        _, stride, _ = predictor.entry(0x1000, 0)
        assert stride == 4                   # kept
        preds = feed(predictor, 0x1000, 0, [4, 8, 12])
        assert all(p.value == v for p, v in zip(preds, [4, 8, 12]))

    def test_repeated_new_stride_is_adopted(self):
        predictor = StridePredictor(1024, two_delta=True)
        feed(predictor, 0x1000, 0, [0, 4, 8, 12])     # stride 4
        feed(predictor, 0x1000, 0, [20, 28, 36, 44])  # stride 8 twice+
        _, stride, _ = predictor.entry(0x1000, 0)
        assert stride == 8

    def test_naive_mode_replaces_immediately(self):
        predictor = StridePredictor(1024, two_delta=False)
        feed(predictor, 0x1000, 0, [0, 4, 8, 12])
        predictor.update(0x1000, 0, 100)     # delta 88
        _, stride, _ = predictor.entry(0x1000, 0)
        assert stride == 88

    def test_periodic_loop_restart_hit_rates(self):
        """Two-delta mispredicts once per period; naive twice."""
        def run(two_delta):
            predictor = StridePredictor(1024, two_delta=two_delta)
            wrong = 0
            for _ in range(20):              # 20 periods of an 8-iter loop
                for value in range(0, 32, 4):
                    p = predictor.predict(0x1000, 0, value)
                    if p.confident and p.value != value:
                        wrong += 1
                    predictor.update(0x1000, 0, value)
            return wrong
        assert run(True) < run(False)


class TestTableMechanics:
    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            StridePredictor(1000)

    def test_aliasing_in_tiny_table(self):
        predictor = StridePredictor(2)
        feed(predictor, 0x1000, 0, [0, 4, 8, 12, 16])
        # A different PC with the same index trains over the same entry.
        feed(predictor, 0x2000, 0, [100, 100, 100])
        prediction = predictor.predict(0x1000, 0, 20)
        assert prediction.value != 20

    def test_large_table_isolates_pcs(self):
        predictor = StridePredictor(1 << 16)
        feed(predictor, 0x1000, 0, [0, 4, 8, 12, 16])
        feed(predictor, 0x2000, 0, [9, 9, 9])
        prediction = predictor.predict(0x1000, 0, 20)
        assert prediction.value == 20

    def test_wrap64_values(self):
        predictor = StridePredictor(64)
        big = (1 << 63) - 2
        feed(predictor, 0x1000, 0, [big - 8, big - 4, big])
        prediction = predictor.predict(0x1000, 0, 0)
        assert prediction.value == -(1 << 63) + 2   # wrapped


class TestStats:
    def test_stats_accumulate(self):
        predictor = StridePredictor(1024)
        feed(predictor, 0x1000, 0, [0, 4, 8, 12, 16, 20])
        stats = predictor.stats
        assert stats.lookups == 6
        assert 0 < stats.confident < 6
        assert stats.hit_ratio == 1.0
        assert 0 < stats.confident_fraction < 1

"""Tests for the branch target buffer and its fetch integration."""

import pytest

from repro.core import make_config, simulate
from repro.frontend import BranchTargetBuffer, FetchEngine, TakenPredictor
from repro.workloads import workload_trace

from ..conftest import make_dyn


class TestBTBTable:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000
        assert btb.misses == 1 and btb.lookups == 2

    def test_tag_check_rejects_aliases(self):
        btb = BranchTargetBuffer(16)
        btb.update(0x1000, 0x2000)
        aliased = 0x1000 + 16 * 4   # same index, different tag
        assert btb.lookup(aliased) is None

    def test_stale_target_replaced(self):
        btb = BranchTargetBuffer(16)
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(100)

    def test_miss_rate(self):
        btb = BranchTargetBuffer(16)
        btb.lookup(0x1000)
        btb.update(0x1000, 4)
        btb.lookup(0x1000)
        assert btb.miss_rate == 0.5


class TestFetchWithBTB:
    @staticmethod
    def loop_trace(iters=6):
        trace = []
        seq = 0
        for _ in range(iters):
            trace.append(make_dyn(seq, 0x1000, op="li", dest=1,
                                  result=0))
            seq += 1
            trace.append(make_dyn(seq, 0x1004, op="bne", srcs=(1, 2),
                                  taken=True, target=0x1000))
            seq += 1
        return trace

    @staticmethod
    def drain(engine, max_cycles=300):
        delivered = []
        for cycle in range(max_cycles):
            for fetched in engine.take_decodable(cycle, 100):
                delivered.append(fetched)
                engine.branch_resolved(fetched.dyn.seq, cycle)
            engine.tick(cycle)
            if engine.done:
                delivered.extend(engine.take_decodable(cycle + 1, 100))
                break
        return delivered

    def test_first_taken_branch_stalls_then_trains(self):
        btb = BranchTargetBuffer(64)
        engine = FetchEngine(iter(self.loop_trace()), lambda pc: 1,
                             TakenPredictor(), width=8, btb=btb)
        delivered = self.drain(engine)
        flagged = [f for f in delivered if f.mispredicted]
        # Only the first encounter misses the BTB; later ones hit.
        assert len(flagged) == 1
        assert flagged[0].dyn.seq == 1

    def test_no_btb_means_perfect_targets(self):
        engine = FetchEngine(iter(self.loop_trace()), lambda pc: 1,
                             TakenPredictor(), width=8, btb=None)
        delivered = self.drain(engine)
        assert not any(f.mispredicted for f in delivered)


class TestEndToEnd:
    def test_btb_costs_ipc_vs_perfect_targets(self):
        trace = workload_trace("cjpeg", 5000)
        perfect = simulate(list(trace), make_config(4))
        realistic = simulate(list(trace), make_config(4, btb_entries=2048))
        assert realistic.stats.committed_insts == len(trace)
        assert realistic.ipc <= perfect.ipc
        assert 0 < realistic.bp_stats["btb_miss_rate"] < 0.5

    def test_btb_entries_validated_via_config(self):
        with pytest.raises(ValueError):
            simulate(workload_trace("rawcaudio", 200),
                     make_config(2, btb_entries=100))

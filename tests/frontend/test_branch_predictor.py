"""Unit tests for the direction predictors (bimodal, gshare, combined)."""

import random

from repro.frontend import (BimodalPredictor, CombinedPredictor,
                            GsharePredictor, TakenPredictor)


def train(predictor, pc, outcomes):
    hits = 0
    for taken in outcomes:
        if predictor.predict(pc) == taken:
            hits += 1
        predictor.update(pc, taken)
    return hits / len(outcomes)


class TestBimodal:
    def test_learns_constant_bias(self):
        predictor = BimodalPredictor(64)
        accuracy = train(predictor, 0x1000, [True] * 50)
        assert accuracy > 0.9

    def test_hysteresis_survives_single_flip(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x1000, True)
        predictor.update(0x1000, False)   # one not-taken
        assert predictor.predict(0x1000) is True

    def test_counter_saturates_both_ends(self):
        predictor = BimodalPredictor(64)
        for _ in range(10):
            predictor.update(0x1000, False)
        assert predictor.predict(0x1000) is False
        for _ in range(2):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000) is True

    def test_distinct_pcs_use_distinct_counters(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x1000, True)
            predictor.update(0x1004, False)
        assert predictor.predict(0x1000) is True
        assert predictor.predict(0x1004) is False

    def test_stats_count_mispredictions(self):
        predictor = BimodalPredictor(64)
        train(predictor, 0x1000, [True, True, False, True])
        assert predictor.stats.lookups == 4
        assert 0 < predictor.stats.accuracy <= 1


class TestGshare:
    def test_learns_alternating_pattern(self):
        # T,N,T,N... correlates perfectly with 1 bit of history.
        predictor = GsharePredictor(1024, history_bits=8)
        pattern = [bool(i % 2) for i in range(200)]
        accuracy = train(predictor, 0x2000, pattern)
        assert accuracy > 0.8

    def test_history_updates(self):
        predictor = GsharePredictor(1024, history_bits=4)
        for taken in (True, False, True, True):
            predictor.update(0x2000, taken)
        assert predictor.history == 0b1011


class TestCombined:
    def test_beats_bimodal_on_patterned_branch(self):
        combined = CombinedPredictor(64, 1024, 8, 64)
        bimodal = BimodalPredictor(64)
        pattern = [bool(i % 2) for i in range(300)]
        assert train(combined, 0x3000, pattern) > train(
            bimodal, 0x3000, list(pattern))

    def test_matches_bimodal_on_biased_branch(self):
        combined = CombinedPredictor(64, 1024, 8, 64)
        assert train(combined, 0x3000, [True] * 100) > 0.9

    def test_paper_configuration_sizes(self):
        predictor = CombinedPredictor()
        assert predictor.gshare._table.mask == 64 * 1024 - 1
        assert predictor.bimodal._table.mask == 2048 - 1
        assert predictor._chooser.mask == 1024 - 1

    def test_accuracy_on_mixed_random_biased(self):
        rng = random.Random(42)
        predictor = CombinedPredictor(64, 4096, 8, 256)
        correct = total = 0
        for i in range(2000):
            pc = 0x4000 + 4 * (i % 16)
            bias = (pc >> 2) % 4 != 0      # 12 biased, 4 random branches
            taken = bias if (pc >> 2) % 4 else rng.random() < 0.5
            if predictor.predict(pc) == taken:
                correct += 1
            predictor.update(pc, taken)
            total += 1
        assert correct / total > 0.7


class TestTaken:
    def test_always_taken(self):
        predictor = TakenPredictor()
        assert predictor.predict(0x100) is True
        predictor.update(0x100, False)
        assert predictor.stats.mispredictions == 1

"""Property-based tests: the fetch engine never drops or reorders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import FetchEngine, TakenPredictor

from ..conftest import make_dyn


def build_trace(shape):
    """shape: list of (is_branch, taken) tuples -> DynInst list."""
    trace = []
    pc = 0x1000
    for seq, (is_branch, taken) in enumerate(shape):
        if is_branch:
            trace.append(make_dyn(seq, pc, op="beq", srcs=(1, 2),
                                  taken=taken, target=0x1000))
        else:
            trace.append(make_dyn(seq, pc, op="li", dest=1, result=seq))
        pc += 4
    return trace


@st.composite
def front_end_scenarios(draw):
    shape = draw(st.lists(
        st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60))
    width = draw(st.integers(1, 8))
    buffer_capacity = draw(st.integers(1, 16))
    miss_lines = draw(st.sets(st.integers(0, 10), max_size=3))
    return shape, width, buffer_capacity, miss_lines


@settings(max_examples=60, deadline=None)
@given(scenario=front_end_scenarios())
def test_every_instruction_delivered_in_order(scenario):
    shape, width, buffer_capacity, miss_lines = scenario
    trace = build_trace(shape)

    def icache(pc):
        return 5 if (pc >> 5) - (0x1000 >> 5) in miss_lines else 1

    engine = FetchEngine(iter(trace), icache, TakenPredictor(),
                         width=width, buffer_capacity=buffer_capacity)
    delivered = []
    for cycle in range(20 * len(trace) + 50):
        for fetched in engine.take_decodable(cycle, 100):
            delivered.append(fetched.dyn.seq)
            # resolve any branch immediately so fetch can resume
            engine.branch_resolved(fetched.dyn.seq, cycle)
        engine.tick(cycle)
        if engine.done:
            delivered.extend(f.dyn.seq for f
                             in engine.take_decodable(cycle + 1, 100))
            break
    assert delivered == list(range(len(trace)))


@settings(max_examples=40, deadline=None)
@given(scenario=front_end_scenarios())
def test_buffer_never_overflows(scenario):
    shape, width, buffer_capacity, miss_lines = scenario
    trace = build_trace(shape)
    engine = FetchEngine(iter(trace), lambda pc: 1, TakenPredictor(),
                         width=width, buffer_capacity=buffer_capacity)
    for cycle in range(3 * len(trace) + 20):
        engine.tick(cycle)
        assert len(engine._buffer) <= buffer_capacity
        # drain slowly (1/cycle) to maximize pressure
        taken = engine.take_decodable(cycle, 1)
        for fetched in taken:
            engine.branch_resolved(fetched.dyn.seq, cycle)
        if engine.done:
            break

"""Unit tests for the fetch engine (width, stalls, branch handling)."""

from repro.frontend import FetchEngine, TakenPredictor
from repro.frontend.branch_predictor import BimodalPredictor

from ..conftest import linear_trace, make_dyn


def always_hit(pc):
    return 1


class RecordingICache:
    """I-cache stub with scripted per-line latencies."""

    def __init__(self, latencies=None):
        self.latencies = latencies or {}
        self.accesses = []

    def __call__(self, pc):
        self.accesses.append(pc)
        return self.latencies.get(pc >> 5, 1)


def drain(engine, max_cycles=200):
    """Run fetch/decode cycles; returns list of decoded DynInsts."""
    decoded = []
    for cycle in range(max_cycles):
        decoded.extend(f.dyn for f in engine.take_decodable(cycle, 100))
        engine.tick(cycle)
        if engine.done:
            break
    # final drain
    decoded.extend(f.dyn for f in engine.take_decodable(max_cycles + 1, 100))
    return decoded


class TestWidthAndBuffering:
    def test_fetches_at_most_width_per_cycle(self):
        engine = FetchEngine(iter(linear_trace(20)), always_hit,
                             TakenPredictor(), width=8, buffer_capacity=64)
        assert engine.tick(0) == 8
        assert engine.tick(1) == 8
        assert engine.tick(2) == 4

    def test_buffer_capacity_backpressures(self):
        engine = FetchEngine(iter(linear_trace(32)), always_hit,
                             TakenPredictor(), width=8, buffer_capacity=8)
        assert engine.tick(0) == 8
        assert engine.tick(1) == 0         # buffer full, nothing drained
        engine.take_decodable(2, 4)
        assert engine.tick(2) == 4

    def test_one_cycle_fetch_to_decode_gap(self):
        engine = FetchEngine(iter(linear_trace(8)), always_hit,
                             TakenPredictor(), width=8)
        engine.tick(0)
        assert engine.take_decodable(0, 8) == []     # not visible yet
        assert len(engine.take_decodable(1, 8)) == 8

    def test_all_instructions_eventually_decoded_in_order(self):
        trace = linear_trace(50)
        engine = FetchEngine(iter(trace), always_hit, TakenPredictor(),
                             width=4, buffer_capacity=6)
        decoded = drain(engine)
        assert [d.seq for d in decoded] == list(range(50))

    def test_done_semantics(self):
        engine = FetchEngine(iter(linear_trace(2)), always_hit,
                             TakenPredictor(), width=8)
        assert not engine.done
        engine.tick(0)
        assert engine.trace_exhausted and not engine.done
        engine.take_decodable(1, 8)
        assert engine.done


class TestICacheStalls:
    def test_miss_stalls_until_fill(self):
        icache = RecordingICache({(0x1000 >> 5): 7})
        engine = FetchEngine(iter(linear_trace(4)), icache,
                             TakenPredictor(), width=8)
        assert engine.tick(0) == 0          # miss detected, stall
        assert engine.tick(3) == 0          # still stalled
        assert engine.tick(7) == 4          # line arrived
        assert engine.icache_stall_cycles == 1

    def test_new_line_triggers_new_lookup(self):
        icache = RecordingICache()
        # 16 instructions cross a 32-byte line boundary once.
        engine = FetchEngine(iter(linear_trace(16)), icache,
                             TakenPredictor(), width=8)
        engine.tick(0)
        engine.tick(1)
        assert len(icache.accesses) == 2


class TestBranchHandling:
    @staticmethod
    def trace_with_branch(taken=True, mispredict_predictor=None):
        return [
            make_dyn(0, 0x1000, op="li", dest=1, result=0),
            make_dyn(1, 0x1004, op="beq", srcs=(1, 2), taken=taken,
                     target=0x1000),
            make_dyn(2, 0x1008 if not taken else 0x1000, op="li", dest=2,
                     result=0),
        ]

    def test_correct_prediction_does_not_stall(self):
        engine = FetchEngine(iter(self.trace_with_branch(taken=True)),
                             always_hit, TakenPredictor(), width=8)
        assert engine.tick(0) == 3

    def test_misprediction_stops_fetch_until_resolved(self):
        engine = FetchEngine(iter(self.trace_with_branch(taken=False)),
                             always_hit, TakenPredictor(), width=8)
        assert engine.tick(0) == 2          # stops after the branch
        fetched = engine.take_decodable(1, 8)
        assert fetched[-1].mispredicted
        assert engine.tick(1) == 0          # waiting on resolution
        engine.branch_resolved(seq=1, cycle=5)
        assert engine.tick(5) == 0          # +1 redirect cycle
        assert engine.tick(6) == 1
        assert engine.branch_stall_cycles >= 1

    def test_resolution_of_other_branch_ignored(self):
        engine = FetchEngine(iter(self.trace_with_branch(taken=False)),
                             always_hit, TakenPredictor(), width=8)
        engine.tick(0)
        engine.branch_resolved(seq=99, cycle=3)
        assert engine.tick(4) == 0

    def test_predictor_trained_at_fetch(self):
        predictor = BimodalPredictor(64)
        trace = [make_dyn(i, 0x1000, op="bne", srcs=(1, 2), taken=True,
                          target=0x1000) for i in range(6)]
        engine = FetchEngine(iter(trace), always_hit, predictor, width=1,
                             buffer_capacity=64)
        for cycle in range(20):
            engine.take_decodable(cycle, 8)
            engine.tick(cycle)
            engine.branch_resolved(cycle, cycle)  # resolve eagerly
            if engine.trace_exhausted:
                break
        assert predictor.stats.lookups > 0

    def test_unconditional_jump_never_stalls(self):
        trace = [make_dyn(0, 0x1000, op="j", taken=True, target=0x2000),
                 make_dyn(1, 0x2000, op="li", dest=1, result=0)]
        engine = FetchEngine(iter(trace), always_hit, TakenPredictor(),
                             width=8)
        assert engine.tick(0) == 2

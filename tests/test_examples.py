"""Smoke tests: every example script runs and prints sane output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=True)


def test_quickstart_runs_and_reports_ipcr():
    proc = run_example("quickstart.py", "rawcaudio", "3000")
    assert "IPC" in proc.stdout
    assert "4 cluster" in proc.stdout
    assert "Value prediction" in proc.stdout


def test_steering_comparison_lists_all_schemes():
    proc = run_example("steering_comparison.py", "3000")
    for scheme in ("baseline, no VP", "modified", "VPB", "perfect"):
        assert scheme in proc.stdout


def test_wire_delay_sweep_prints_both_figures():
    proc = run_example("wire_delay_sweep.py", "2500")
    assert "Figure 4(a)" in proc.stdout
    assert "Figure 4(b)" in proc.stdout
    assert "unbounded" in proc.stdout


def test_custom_workload_assembles_and_matches_builder():
    proc = run_example("custom_workload.py")
    assert "same instruction stream" in proc.stdout
    assert "IPC" in proc.stdout


def test_quickstart_rejects_unknown_workload():
    with pytest.raises(subprocess.CalledProcessError):
        run_example("quickstart.py", "not-a-benchmark", "1000")


def test_pipeline_viewer_shows_helper_rows():
    proc = run_example("pipeline_viewer.py", "cjpeg", "100", "10")
    assert "[copy]" in proc.stdout or "[vcopy]" in proc.stdout
    assert "4 clusters" in proc.stdout

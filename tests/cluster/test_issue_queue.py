"""Unit tests for the age-ordered issue queue."""

import pytest

from repro.cluster import IssueQueue


class FakeUop:
    def __init__(self, order):
        self.order = order

    def __repr__(self):
        return f"U{self.order}"


def orders(queue):
    return [u.order for u in queue]


def test_dispatch_preserves_arrival_order():
    queue = IssueQueue(4)
    for i in (1, 2, 5):
        queue.dispatch(FakeUop(i))
    assert orders(queue) == [1, 2, 5]


def test_capacity_gates_new_dispatches():
    queue = IssueQueue(2)
    queue.dispatch(FakeUop(1))
    assert queue.has_space and queue.space_left() == 1
    queue.dispatch(FakeUop(2))
    assert not queue.has_space and queue.space_left() == 0


def test_reinsert_restores_age_position():
    queue = IssueQueue(8)
    uops = [FakeUop(i) for i in range(5)]
    for uop in uops:
        queue.dispatch(uop)
    queue.remove(uops[2])
    queue.dispatch(FakeUop(10))
    queue.reinsert(uops[2])
    assert orders(queue) == [0, 1, 2, 3, 4, 10]


def test_reinsert_may_exceed_capacity():
    """Reissue re-entry bypasses the capacity check (§2.2: no extra
    restart penalty — the paper's selective reissue reuses the normal
    issue mechanism)."""
    queue = IssueQueue(2)
    a, b = FakeUop(0), FakeUop(1)
    queue.dispatch(a)
    queue.dispatch(b)
    queue.remove(a)
    queue.dispatch(FakeUop(2))
    queue.reinsert(a)
    assert len(queue) == 3
    assert not queue.has_space
    assert orders(queue) == [0, 1, 2]


def test_remove_many():
    queue = IssueQueue(8)
    uops = [FakeUop(i) for i in range(6)]
    for uop in uops:
        queue.dispatch(uop)
    queue.remove_many([uops[0], uops[3], uops[5]])
    assert orders(queue) == [1, 2, 4]


def test_remove_many_empty_noop():
    queue = IssueQueue(2)
    queue.dispatch(FakeUop(1))
    queue.remove_many([])
    assert len(queue) == 1


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        IssueQueue(0)

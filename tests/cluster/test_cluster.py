"""Unit tests for the Cluster container."""

from repro.cluster import Cluster, FUPool


def make_cluster(cid=0):
    pool = FUPool(2, 1, 1, 1, 2, 1)
    return Cluster(cid, iq_size=16, n_pregs=112, fupool=pool)


def test_iq_for_selects_side():
    cluster = make_cluster()
    assert cluster.iq_for(True) is cluster.iq_int
    assert cluster.iq_for(False) is cluster.iq_fp


def test_occupancy_sums_both_queues():
    cluster = make_cluster()

    class U:
        order = 0

    cluster.iq_int.dispatch(U())
    cluster.iq_fp.dispatch(U())
    cluster.iq_fp.dispatch(U())
    assert cluster.occupancy == 3


def test_register_file_sized_as_requested():
    cluster = make_cluster()
    assert cluster.regfile.n_pregs == 112


def test_repr_mentions_id_and_queues():
    text = repr(make_cluster(3))
    assert "Cluster 3" in text and "iq_int" in text

"""Unit tests for the register-file ready-time scoreboard."""

import pytest

from repro.cluster import NEVER, RegisterFile


def test_initially_never_ready():
    rf = RegisterFile(4)
    assert not rf.is_ready(0, 10**9)
    assert rf.ready_cycle(0) == NEVER


def test_set_ready_semantics():
    rf = RegisterFile(4)
    rf.set_ready(1, 5)
    assert not rf.is_ready(1, 4)
    assert rf.is_ready(1, 5)
    assert rf.is_ready(1, 6)


def test_set_pending_records_producer():
    rf = RegisterFile(4)
    producer = object()
    rf.set_pending(2, producer)
    assert rf.producer[2] is producer
    assert not rf.is_ready(2, 100)
    rf.set_ready(2, 7)
    assert rf.is_ready(2, 7)
    assert rf.producer[2] is producer   # producer survives until commit


def test_clear_resets_both_fields():
    rf = RegisterFile(4)
    rf.set_pending(3, object())
    rf.set_ready(3, 1)
    rf.clear(3)
    assert rf.producer[3] is None
    assert rf.ready_cycle(3) == NEVER


def test_size_validated():
    with pytest.raises(ValueError):
        RegisterFile(0)

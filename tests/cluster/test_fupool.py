"""Unit tests for the functional-unit pool and issue-width accounting."""

import pytest

from repro.cluster import FUPool
from repro.isa.opcodes import OpClass


def make_pool(**kw):
    """The paper's 4-cluster pool: 2 int (1 muldiv), 1 fp, widths 2/1."""
    defaults = dict(int_units=2, int_muldiv=1, fp_units=1, fp_muldiv=1,
                    int_width=2, fp_width=1)
    defaults.update(kw)
    return FUPool(**defaults)


class TestWidths:
    def test_int_width_limits_issues(self):
        pool = make_pool()
        pool.begin_cycle(0)
        assert pool.try_issue(OpClass.IALU)
        assert pool.try_issue(OpClass.IALU)
        assert not pool.try_issue(OpClass.IALU)

    def test_fp_width_independent_of_int(self):
        pool = make_pool()
        pool.begin_cycle(0)
        pool.try_issue(OpClass.IALU)
        pool.try_issue(OpClass.IALU)
        assert pool.try_issue(OpClass.FALU)   # fp slot still free

    def test_begin_cycle_resets(self):
        pool = make_pool()
        pool.begin_cycle(0)
        pool.try_issue(OpClass.IALU)
        pool.try_issue(OpClass.IALU)
        pool.begin_cycle(1)
        assert pool.try_issue(OpClass.IALU)

    def test_loads_and_stores_are_int_side(self):
        pool = make_pool()
        pool.begin_cycle(0)
        assert pool.try_issue(OpClass.LOAD)
        assert pool.try_issue(OpClass.STORE)
        assert not pool.try_issue(OpClass.IALU)


class TestMulDiv:
    def test_only_muldiv_capable_units_multiply(self):
        pool = make_pool()   # 1 of 2 int units is mul/div capable
        pool.begin_cycle(0)
        assert pool.try_issue(OpClass.IMUL)
        assert not pool.try_issue(OpClass.IMUL)
        assert pool.try_issue(OpClass.IALU)   # plain unit still free

    def test_divide_blocks_its_unit_non_pipelined(self):
        pool = make_pool(latencies={OpClass.IDIV: 10})
        pool.begin_cycle(0)
        assert pool.try_issue(OpClass.IDIV)
        pool.begin_cycle(5)
        assert not pool.try_issue(OpClass.IMUL)   # unit busy until 10
        assert pool.try_issue(OpClass.IALU)       # other unit free
        pool.begin_cycle(10)
        assert pool.try_issue(OpClass.IMUL)

    def test_busy_divider_reduces_int_unit_pool(self):
        pool = make_pool(latencies={OpClass.IDIV: 10})
        pool.begin_cycle(0)
        pool.try_issue(OpClass.IDIV)
        pool.begin_cycle(1)
        assert pool.try_issue(OpClass.IALU)
        assert not pool.try_issue(OpClass.IALU)   # only 1 non-busy unit

    def test_fp_divide_non_pipelined(self):
        pool = make_pool(latencies={OpClass.FDIV: 12})
        pool.begin_cycle(0)
        assert pool.try_issue(OpClass.FDIV)
        pool.begin_cycle(3)
        assert not pool.try_issue(OpClass.FALU)   # single fp unit busy
        pool.begin_cycle(12)
        assert pool.try_issue(OpClass.FALU)

    def test_muldiv_exceeding_pool_rejected(self):
        with pytest.raises(ValueError):
            make_pool(int_muldiv=3)


class TestCopies:
    def test_copy_consumes_width_only(self):
        pool = make_pool()
        pool.begin_cycle(0)
        assert pool.try_issue_copy(False)
        assert pool.try_issue_copy(False)
        assert not pool.try_issue_copy(False)     # int width gone
        assert pool.try_issue_copy(True)          # fp width separate

    def test_copy_does_not_block_units(self):
        pool = make_pool(int_width=3)
        pool.begin_cycle(0)
        pool.try_issue_copy(False)
        assert pool.try_issue(OpClass.IALU)
        assert pool.try_issue(OpClass.IALU)       # both units usable


class TestIdleCapacity:
    def test_idle_capacity_tracks_width_and_units(self):
        pool = make_pool()
        pool.begin_cycle(0)
        assert pool.idle_capacity(True) == 2
        pool.try_issue(OpClass.IALU)
        assert pool.idle_capacity(True) == 1
        pool.try_issue(OpClass.IALU)
        assert pool.idle_capacity(True) == 0
        assert pool.idle_capacity(False) == 1

    def test_idle_capacity_bounded_by_busy_divider(self):
        pool = make_pool(latencies={OpClass.IDIV: 10})
        pool.begin_cycle(0)
        pool.try_issue(OpClass.IDIV)
        pool.begin_cycle(1)
        assert pool.idle_capacity(True) == 1   # one unit parked on the div

    def test_latency_lookup(self):
        pool = make_pool()
        assert pool.latency(OpClass.IALU) == 1
        assert pool.latency(OpClass.IMUL) == 3
        assert pool.latency(OpClass.FALU) == 2

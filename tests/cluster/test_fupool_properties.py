"""Property-based tests of the FU pool's per-cycle accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FUPool
from repro.isa.opcodes import OpClass

INT_OPS = [OpClass.IALU, OpClass.IMUL, OpClass.IDIV, OpClass.LOAD,
           OpClass.STORE]
FP_OPS = [OpClass.FALU, OpClass.FMUL, OpClass.FDIV]


@st.composite
def pool_configs(draw):
    int_units = draw(st.integers(1, 8))
    fp_units = draw(st.integers(1, 4))
    return dict(
        int_units=int_units,
        int_muldiv=draw(st.integers(1, int_units)),
        fp_units=fp_units,
        fp_muldiv=draw(st.integers(1, fp_units)),
        int_width=draw(st.integers(1, 8)),
        fp_width=draw(st.integers(1, 4)))


@settings(max_examples=60)
@given(config=pool_configs(),
       requests=st.lists(st.sampled_from(INT_OPS + FP_OPS), max_size=40))
def test_single_cycle_never_exceeds_any_limit(config, requests):
    pool = FUPool(**config)
    pool.begin_cycle(0)
    granted = [op for op in requests if pool.try_issue(op)]
    int_granted = [op for op in granted if op in INT_OPS]
    fp_granted = [op for op in granted if op in FP_OPS]
    assert len(int_granted) <= min(config["int_width"],
                                   config["int_units"])
    assert len(fp_granted) <= min(config["fp_width"], config["fp_units"])
    muldiv = [op for op in int_granted
              if op in (OpClass.IMUL, OpClass.IDIV)]
    assert len(muldiv) <= config["int_muldiv"]
    fpmuldiv = [op for op in fp_granted
                if op in (OpClass.FMUL, OpClass.FDIV)]
    assert len(fpmuldiv) <= config["fp_muldiv"]


@settings(max_examples=40)
@given(config=pool_configs(),
       cycles=st.lists(st.lists(st.sampled_from(INT_OPS + FP_OPS),
                                max_size=12), min_size=2, max_size=10))
def test_idle_capacity_consistent_across_cycles(config, cycles):
    pool = FUPool(**config)
    for cycle, requests in enumerate(cycles):
        pool.begin_cycle(cycle)
        assert pool.idle_capacity(True) <= min(config["int_width"],
                                               config["int_units"])
        assert pool.idle_capacity(False) <= min(config["fp_width"],
                                                config["fp_units"])
        for op in requests:
            pool.try_issue(op)
        assert pool.idle_capacity(True) >= 0
        assert pool.idle_capacity(False) >= 0


@settings(max_examples=30)
@given(config=pool_configs(), divs=st.integers(1, 6))
def test_divides_eventually_all_issue(config, divs):
    """Non-pipelined divides serialize but never wedge the pool."""
    pool = FUPool(**config, latencies={OpClass.IDIV: 5})
    remaining = divs
    for cycle in range(divs * 6 + 10):
        pool.begin_cycle(cycle)
        while remaining and pool.try_issue(OpClass.IDIV):
            remaining -= 1
        if not remaining:
            break
    assert remaining == 0

"""Smoke tests of the experiment drivers on a tiny workload subset.

These verify the drivers' plumbing (shapes, keys, env overrides) —
the figure-level shape assertions live in benchmarks/.
"""

import pytest

from repro.analysis import (Figure2Result, run_ablation_rename2,
                            run_figure2, run_figure4_bandwidth,
                            run_figure4_latency, run_figure5, run_headline,
                            run_one, selected_workloads, trace_length)

TINY = ["rawcaudio"]
LEN = 2500


class TestEnvKnobs:
    def test_trace_length_default_and_override(self, monkeypatch):
        assert trace_length() == 12_000
        monkeypatch.setenv("REPRO_TRACE_LEN", "777")
        assert trace_length() == 777

    def test_selected_workloads_default_is_suite(self):
        assert len(selected_workloads()) == 15

    def test_selected_workloads_subset(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "cjpeg, pgpenc")
        assert selected_workloads() == ["cjpeg", "pgpenc"]

    def test_selected_workloads_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "nope")
        with pytest.raises(ValueError, match="nope"):
            selected_workloads()


class TestRunOne:
    def test_returns_simresult(self):
        result = run_one("rawcaudio", 1, length=LEN)
        assert result.stats.committed_insts == LEN

    def test_overrides_reach_config(self):
        result = run_one("rawcaudio", 4, predictor="stride",
                         steering="vpb", length=LEN, comm_latency=2)
        assert result.config.comm_latency == 2


class TestDrivers:
    def test_figure2_shape(self):
        result = run_figure2(workloads=TINY, length=LEN)
        assert set(result.ipc) == set(TINY)
        assert set(result.ipc[TINY[0]]) == set(Figure2Result.CONFIGS)
        assert result.average((1, False)) > 0
        assert isinstance(result.prediction_gain_pct(4), float)

    def test_figure4_latency_monotone_keys(self):
        result = run_figure4_latency(workloads=TINY, length=LEN,
                                     latencies=(1, 4))
        assert set(result.ipc) == {(2, False), (2, True), (4, False),
                                   (4, True)}
        series = result.ipc[(4, False)]
        assert series[1] >= series[4]

    def test_figure4_bandwidth_unbounded_key(self):
        result = run_figure4_bandwidth(workloads=TINY, length=LEN,
                                       bandwidths=(1, None))
        assert "unbounded" in result.ipc[(2, True)]

    def test_figure5_accuracy_fields(self):
        result = run_figure5(workloads=TINY, length=LEN,
                             sizes=(1024, 4096))
        assert set(result.ipc) == {1024, 4096}
        for size in (1024, 4096):
            assert 0 <= result.confident_fraction[size] <= 1
            assert 0 <= result.hit_ratio[size] <= 1

    def test_ablation_rename2_rows(self):
        result = run_ablation_rename2(workloads=TINY, length=LEN)
        assert set(result.rows) == {"rename-1-cycle", "rename-2-cycle"}

    def test_headline_metrics_complete(self):
        result = run_headline(workloads=TINY, length=LEN)
        assert set(result.measured) == set(result.paper)

"""Run receipts: schema validity, honest cache accounting, and
byte-identity of the deterministic view between serial and parallel
executions of the same sweep.
"""

import json
import os
import re

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.parallel import SweepCell, run_cells
from repro.analysis.provenance import (RunReceipt, config_sha256,
                                       git_commit, host_info)
from repro.obs.schema import (RECEIPT_SCHEMA, TraceSchemaError,
                              validate_receipt)
from repro.obs.telemetry import SweepMonitor, use_monitor

LEN = 300


@pytest.fixture(autouse=True)
def _pretend_two_cores(monkeypatch):
    """Keep jobs=2 paths genuinely parallel on single-core CI hosts."""
    real = os.cpu_count()
    monkeypatch.setattr(os, "cpu_count", lambda: max(2, real or 1))


def _cells():
    return [SweepCell(key=(name, n), workload=name, n_clusters=n,
                      predictor="stride", steering="vpb", length=LEN)
            for name in ("rawcaudio", "gsmdec") for n in (1, 2)]


def _receipt_for(jobs: int) -> RunReceipt:
    with use_monitor(SweepMonitor()) as monitor:
        run_cells(_cells(), jobs=jobs)
        return RunReceipt.from_monitor(monitor)


class TestProvenanceHelpers:
    def test_config_sha256_ignores_override_spelling(self):
        a = config_sha256(4, "stride", "vpb", ())
        b = config_sha256(4, "stride", "vpb")
        assert a == b and re.fullmatch(r"[0-9a-f]{64}", a)

    def test_config_sha256_distinguishes_machines(self):
        assert (config_sha256(2, "stride", "vpb")
                != config_sha256(4, "stride", "vpb"))

    def test_invalid_config_hashes_to_none(self):
        assert config_sha256(-3, "stride", "vpb") is None

    def test_git_commit_shape(self):
        commit = git_commit()
        if commit is not None:
            assert re.fullmatch(r"[0-9a-f]{7,40}(-dirty)?", commit)

    def test_git_commit_outside_checkout_is_none(self, tmp_path):
        assert git_commit(tmp_path) is None

    def test_host_info_fields(self):
        info = host_info()
        assert set(info) == {"platform", "python", "cpu_count"}


class TestRunReceipt:
    def test_receipt_validates_and_counts(self):
        receipt = _receipt_for(jobs=1)
        data = receipt.to_dict()
        assert validate_receipt(data) == 4
        assert data["schema"] == RECEIPT_SCHEMA
        assert data["counts"] == {"cells": 4, "completed": 4,
                                  "failed": 0, "simulated": 4}
        assert data["cache"]["enabled"] is False
        for cell in data["cells"]:
            assert re.fullmatch(r"[0-9a-f]{64}", cell["config_sha256"])

    def test_deterministic_view_byte_identical_serial_vs_parallel(self):
        serial = _receipt_for(jobs=1).deterministic_dict()
        parallel = _receipt_for(jobs=2).deterministic_dict()
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(parallel, sort_keys=True))

    def test_deterministic_view_strips_volatile_fields(self):
        receipt = _receipt_for(jobs=1)
        data = receipt.deterministic_dict()
        assert "host" not in data and "created_utc" not in data
        assert "run" not in data and "commit" not in data
        for cell in data["cells"]:
            assert "seconds" not in cell and "stored" not in cell

    def test_write_and_read_roundtrip(self, tmp_path):
        receipt = _receipt_for(jobs=1)
        path = tmp_path / "nested" / "run_receipt.json"
        receipt.write(path)
        loaded = RunReceipt.read(path)
        assert loaded == receipt.to_dict()
        assert validate_receipt(str(path)) == 4
        # No temp-file debris from the atomic write.
        assert [p.name for p in path.parent.iterdir()] \
            == ["run_receipt.json"]

    def test_sweeps_argument_scopes_the_receipt(self):
        with use_monitor(SweepMonitor()) as monitor:
            run_cells(_cells()[:2], jobs=1, label="first")
            run_cells(_cells()[2:], jobs=1, label="second")
            scoped = RunReceipt.from_monitor(
                monitor, sweeps=[monitor.sweeps[1]])
            aggregate = RunReceipt.from_monitor(monitor)
        assert scoped.label == "second"
        assert scoped.counts["cells"] == 2
        assert aggregate.counts["cells"] == 4
        assert aggregate.run["sweeps"] == 2

    def test_cache_counters_match_simulate_calls(self, tmp_path):
        cells = _cells()
        cache = ResultCache(tmp_path / "cache")
        with use_monitor(SweepMonitor()) as monitor:
            run_cells(cells, jobs=1, cache=cache)
            cold = RunReceipt.from_monitor(
                monitor, cache_enabled=True,
                sweeps=[monitor.sweeps[-1]])
        assert cold.cache == {"enabled": True, "hits": 0,
                              "misses": 4, "stores": 4}
        assert cold.counts["simulated"] == 4
        with use_monitor(SweepMonitor()) as monitor:
            run_cells(cells, jobs=1, cache=cache)
            warm = RunReceipt.from_monitor(
                monitor, cache_enabled=True,
                sweeps=[monitor.sweeps[-1]])
        assert warm.cache == {"enabled": True, "hits": 4,
                              "misses": 0, "stores": 0}
        assert warm.counts["simulated"] == 0
        validate_receipt(cold.to_dict())
        validate_receipt(warm.to_dict())

    def test_validator_rejects_dishonest_counters(self):
        data = _receipt_for(jobs=1).to_dict()
        data["cache"]["enabled"] = True
        data["cache"]["hits"] = 3  # claims hits that never happened
        with pytest.raises(TraceSchemaError, match="hits"):
            validate_receipt(data)

    def test_validator_rejects_missing_section(self):
        data = _receipt_for(jobs=1).to_dict()
        del data["counts"]
        with pytest.raises(TraceSchemaError, match="counts"):
            validate_receipt(data)

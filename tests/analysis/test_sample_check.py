"""Run the ``make sample-check`` gate from the tier-1 suite.

A regression in checkpoint round-trip identity, the sampled receipt
schema, or the sampling estimator fails this test as well as the
standalone target.
"""

import pathlib
import sys

BENCH = pathlib.Path(__file__).resolve().parent.parent.parent \
    / "benchmarks"
sys.path.insert(0, str(BENCH))

from sample_check import run_checks  # noqa: E402

from repro.analysis.sampling import SamplingConfig


def test_sampling_gate_passes():
    # The identity and schema checks run at full strength; the
    # throughput/accuracy bars are relaxed because the suite shares
    # the host with other tests and this runs a tenth of the gate's
    # instruction count (fewer, noisier windows) — `make sample-check`
    # enforces the strict 20x / 2% contract at a million instructions.
    checks = run_checks(
        length=100_000,
        sampling=SamplingConfig(interval=1200, warmup=200, samples=16),
        min_speedup=3.0, max_error=0.10)
    failures = [(name, detail) for name, ok, detail in checks if not ok]
    assert not failures, failures
    assert len(checks) == 6

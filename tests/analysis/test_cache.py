"""Content-addressed result cache: keying, round-trip fidelity,
zero-simulation warm sweeps, and opt-in resolution."""

import os
import pickle

import pytest

from repro.analysis import cache as cache_mod
from repro.analysis.cache import (DEFAULT_CACHE_DIR, ResultCache,
                                  code_version, resolve_cache, use_cache)
from repro.analysis.parallel import SweepCell, run_cells
from repro.errors import ConfigError

LEN = 400


def _cells():
    return [SweepCell(key=(name, n), workload=name, n_clusters=n,
                      length=LEN)
            for name in ("rawcaudio", "gsmdec") for n in (1, 2)]


class TestKeying:
    def test_key_is_deterministic(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = _cells()[0]
        assert cache.key_for(cell) == cache.key_for(cell)

    def test_key_covers_every_cell_input(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = SweepCell(key="k", workload="rawcaudio", n_clusters=2,
                         length=LEN)
        variants = [
            SweepCell(key="k", workload="gsmdec", n_clusters=2, length=LEN),
            SweepCell(key="k", workload="rawcaudio", n_clusters=4,
                      length=LEN),
            SweepCell(key="k", workload="rawcaudio", n_clusters=2,
                      length=LEN + 1),
            SweepCell(key="k", workload="rawcaudio", n_clusters=2,
                      length=LEN, seed=7),
            SweepCell(key="k", workload="rawcaudio", n_clusters=2,
                      length=LEN, dataset="train"),
            SweepCell(key="k", workload="rawcaudio", n_clusters=2,
                      length=LEN, predictor="stride", steering="vpb"),
            SweepCell(key="k", workload="rawcaudio", n_clusters=2,
                      length=LEN,
                      overrides=SweepCell.pack_overrides(
                          {"comm_latency": 4})),
        ]
        keys = {cache.key_for(cell) for cell in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_key_ignores_result_dict_key(self, tmp_path):
        # The cell's `key` indexes the caller's result dict; it is not
        # part of the simulation's identity.
        cache = ResultCache(tmp_path)
        a = SweepCell(key="a", workload="rawcaudio", n_clusters=2,
                      length=LEN)
        b = SweepCell(key=("something", "else"), workload="rawcaudio",
                      n_clusters=2, length=LEN)
        assert cache.key_for(a) == cache.key_for(b)

    def test_key_includes_code_version(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cell = _cells()[0]
        before = cache.key_for(cell)
        monkeypatch.setattr(cache_mod, "_code_version", "deadbeef")
        assert cache.key_for(cell) != before

    def test_code_version_is_stable_hex(self):
        assert code_version() == code_version()
        int(code_version(), 16)  # hex digest prefix


class TestWarmSweep:
    def test_warm_rerun_is_identical_and_simulates_nothing(
            self, tmp_path, monkeypatch):
        cells = _cells()
        cache = ResultCache(tmp_path)
        uncached = run_cells(cells, jobs=1)
        cold = run_cells(cells, jobs=1, cache=cache)
        assert cache.stats.misses == len(cells)
        assert cache.stats.stores == len(cells)

        # Poison the simulation path: a warm sweep must never reach it.
        def boom(*args, **kwargs):
            raise AssertionError("simulate called on a warm cache")

        monkeypatch.setattr("repro.analysis.parallel.simulate", boom)
        warm = run_cells(cells, jobs=1, cache=cache)
        assert cache.stats.hits == len(cells)
        for key in uncached:
            assert warm[key].to_dict() == uncached[key].to_dict()
            assert warm[key].to_dict() == cold[key].to_dict()
            # Byte-identical through the pickle round-trip.
            assert (pickle.dumps(warm[key].to_dict())
                    == pickle.dumps(uncached[key].to_dict()))

    def test_cache_hits_report_zero_timings(self, tmp_path):
        cells = _cells()
        cache = ResultCache(tmp_path)
        run_cells(cells, jobs=1, cache=cache)
        timings = {}
        run_cells(cells, jobs=1, cache=cache, timings=timings)
        assert all(seconds == 0.0 for seconds in timings.values())

    def test_invalid_cell_is_uncacheable_but_still_ledgered(
            self, tmp_path):
        from repro.analysis.experiments import ErrorLedger
        cells = _cells()
        cells.insert(1, SweepCell(key="bad", workload="nope",
                                  n_clusters=2, length=LEN))
        cache = ResultCache(tmp_path)
        ledger_a, ledger_b = ErrorLedger(), ErrorLedger()
        cold = run_cells(cells, jobs=1, cache=cache, ledger=ledger_a)
        warm = run_cells(cells, jobs=1, cache=cache, ledger=ledger_b)
        assert "bad" not in cold and "bad" not in warm
        assert ledger_a.entries == ledger_b.entries
        assert list(cold.keys()) == list(warm.keys())

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cells = _cells()[:1]
        cache = ResultCache(tmp_path)
        run_cells(cells, jobs=1, cache=cache)
        (entry,) = cache.entries()
        entry.write_bytes(b"not a pickle")
        fresh = ResultCache(tmp_path)
        results = run_cells(cells, jobs=1, cache=fresh)
        assert fresh.stats.misses == 1
        assert results  # re-simulated and re-stored
        assert len(fresh.entries()) == 1

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells(_cells(), jobs=1, cache=cache)
        assert len(cache.entries()) == 4
        assert cache.clear() == 4
        assert cache.entries() == []
        assert cache.size_bytes() == 0


class TestResolution:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_cache() is None

    def test_env_falsy_disables(self, monkeypatch):
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv("REPRO_CACHE", value)
            assert resolve_cache() is None

    def test_env_truthy_uses_default_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        cache = resolve_cache()
        assert str(cache.root) == DEFAULT_CACHE_DIR

    def test_env_path_is_the_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "sweepcache"))
        cache = resolve_cache()
        assert cache.root == tmp_path / "sweepcache"

    def test_explicit_dir_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert resolve_cache(str(tmp_path)).root == tmp_path
        with pytest.raises(ConfigError):
            resolve_cache("   ")

    def test_use_cache_context_wins_over_env(self, monkeypatch, tmp_path,
                                             ):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "env"))
        pinned = ResultCache(tmp_path / "pinned")
        with use_cache(pinned):
            run_cells(_cells()[:1], jobs=1)
        assert pinned.stats.misses == 1
        assert not (tmp_path / "env").exists()

    def test_use_cache_none_disables_env_opt_in(self, monkeypatch,
                                                tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "env"))
        with use_cache(None):
            run_cells(_cells()[:1], jobs=1)
        assert not (tmp_path / "env").exists()

    def test_env_opt_in_reaches_run_cells(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "env"))
        run_cells(_cells()[:1], jobs=1)
        assert (tmp_path / "env").is_dir()

"""Unit tests for interval sampling: window placement, the harmonic
IPC estimator, validation, and the sampled simulation loop."""

import math

import pytest

from repro.analysis.sampling import (SampledResult, SampleWindow,
                                     SamplingConfig, simulate_sampled)
from repro.core import make_config, simulate
from repro.core.snapshot import CheckpointStore
from repro.errors import ConfigError
from repro.isa.executor import FunctionalExecutor
from repro.workloads import build_workload

CONFIG = make_config(2, predictor="stride", steering="vpb")


# ------------------------------------------------------- window placement --

class TestWindowStarts:
    def test_mid_stratum_centring(self):
        sc = SamplingConfig(interval=1200, warmup=200, samples=4)
        starts = sc.window_starts(100_000)
        # stride 25_000, window 1_400, slack split evenly: offset 11_800.
        assert starts == [11_800, 36_800, 61_800, 86_800]

    def test_windows_never_overlap_strata(self):
        sc = SamplingConfig(interval=1000, warmup=500, samples=16)
        starts = sc.window_starts(1_000_000)
        stride = 1_000_000 // 16
        for i, start in enumerate(starts):
            assert i * stride <= start
            assert start + 1_500 <= (i + 1) * stride

    def test_explicit_targets_override_spread(self):
        sc = SamplingConfig(interval=100, targets=(10, 5_000, 90_000))
        assert sc.window_starts(100_000) == [10, 5_000, 90_000]

    def test_targets_beyond_the_run_are_dropped(self):
        sc = SamplingConfig(interval=100, targets=(10, 99_999, 200_000))
        assert sc.window_starts(100_000) == [10, 99_999]

    def test_window_must_fit_in_stratum(self):
        sc = SamplingConfig(interval=900, warmup=150, samples=16)
        with pytest.raises(ConfigError):
            sc.window_starts(10_000)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(interval=0, samples=4),
        dict(interval=100, warmup=-1, samples=4),
        dict(interval=100, warmup=100, samples=4),   # warmup >= interval
        dict(interval=100, warmup=200, samples=4),
        dict(interval=100, samples=0),
        dict(interval=100),                           # neither
        dict(interval=100, samples=4, targets=(0,)),  # both
        dict(interval=100, targets=()),
        dict(interval=100, targets=(5, 5)),           # not increasing
        dict(interval=100, targets=(9, 3)),
        dict(interval=100, targets=(-1, 3)),
    ])
    def test_bad_configs_raise(self, kwargs):
        with pytest.raises(ConfigError):
            SamplingConfig(**kwargs).validate()

    def test_canonical_dict_is_stable_identity(self):
        a = SamplingConfig(interval=1200, warmup=200, samples=16)
        b = SamplingConfig(interval=1200, warmup=200, samples=16)
        assert a.canonical_dict() == b.canonical_dict()
        assert a.canonical_dict()["interval"] == 1200


# ------------------------------------------------------------- estimators --

def _result(windows):
    return SampledResult(workload="w", config=CONFIG,
                         sampling=SamplingConfig(interval=100, samples=4),
                         total_insts=1_000_000, windows=windows)


def _window(i, insts, cycles):
    return SampleWindow(index=i, start=i * 1000, warmup_insts=0,
                        measured_insts=insts, cycles=cycles,
                        ipc=insts / cycles)


class TestEstimators:
    def test_ipc_is_the_ratio_of_totals(self):
        r = _result([_window(0, 1000, 250), _window(1, 1000, 1000)])
        # Harmonic: 2000 insts / 1250 cycles.  The arithmetic mean of
        # window IPCs (4.0 and 1.0 -> 2.5) over-weights the fast
        # window; full-run IPC is a ratio of totals.
        assert r.ipc == pytest.approx(2000 / 1250)
        assert r.ipc != pytest.approx(2.5)

    def test_equal_windows_match_plain_mean(self):
        r = _result([_window(i, 500, 250) for i in range(8)])
        assert r.ipc == pytest.approx(2.0)
        assert r.ipc_std == pytest.approx(0.0)
        assert r.ipc_stderr == pytest.approx(0.0)

    def test_stderr_is_delta_method_from_cpi_scale(self):
        r = _result([_window(0, 1000, 400), _window(1, 1000, 500),
                     _window(2, 1000, 600)])
        cpis = [0.4, 0.5, 0.6]
        mean = sum(cpis) / 3
        cpi_std = math.sqrt(sum((c - mean) ** 2 for c in cpis) / 2)
        ipc = 3000 / 1500
        assert r.ipc == pytest.approx(ipc)
        assert r.ipc_std == pytest.approx(ipc ** 2 * cpi_std)
        assert r.ipc_stderr == pytest.approx(ipc ** 2 * cpi_std
                                             / math.sqrt(3))
        assert r.ipc_ci95 == pytest.approx(1.96 * r.ipc_stderr)

    def test_single_window_has_no_spread(self):
        r = _result([_window(0, 1000, 500)])
        assert r.ipc == pytest.approx(2.0)
        assert r.ipc_stderr == 0.0

    def test_degenerate_results_do_not_divide_by_zero(self):
        r = _result([])
        assert r.ipc == 0.0
        assert r.estimated_cycles == 0
        assert r.effective_insts_per_second == 0.0

    def test_estimated_cycles_inverts_ipc(self):
        r = _result([_window(0, 1000, 500)])
        assert r.estimated_cycles == round(1_000_000 / 2.0)

    def test_to_dict_round_trips_the_essentials(self):
        r = _result([_window(0, 1000, 500)])
        d = r.to_dict()
        assert d["kind"] == "sampled"
        assert d["ipc"] == pytest.approx(2.0)
        assert d["sampling"]["samples"] == 4
        assert len(d["windows"]) == 1
        assert "effective_insts_per_second" in d


# ------------------------------------------------------- sampled simulation --

class TestSimulateSampled:
    def test_matches_detailed_reference(self):
        length = 60_000
        ref = simulate(
            FunctionalExecutor(build_workload("cjpeg"), length).run(),
            CONFIG, max_instructions=length)
        ref_ipc = ref.stats.committed_insts / ref.stats.cycles

        sc = SamplingConfig(interval=1200, warmup=200, samples=8)
        result = simulate_sampled(build_workload("cjpeg"), CONFIG, sc,
                                  max_instructions=length,
                                  workload_name="cjpeg")
        assert len(result.windows) == 8
        assert result.workload == "cjpeg"
        assert result.detailed_insts < length // 4
        assert result.ff_insts + result.detailed_insts >= length // 2
        assert abs(result.ipc - ref_ipc) / ref_ipc < 0.10

    def test_simulate_routes_sampling(self):
        sc = SamplingConfig(interval=500, warmup=100, samples=4)
        result = simulate(build_workload("cjpeg"), CONFIG,
                          max_instructions=20_000, sampling=sc,
                          workload_name="cjpeg")
        assert isinstance(result, SampledResult)
        assert result.total_insts == 20_000

    def test_trace_input_is_rejected(self):
        sc = SamplingConfig(interval=500, warmup=100, samples=4)
        with pytest.raises(ConfigError):
            simulate_sampled([], CONFIG, sc)

    def test_no_measurable_window_raises(self):
        # Window starts beyond where the trace can reach.
        sc = SamplingConfig(interval=500, targets=(10_000_000,))
        with pytest.raises(ConfigError):
            simulate_sampled(build_workload("cjpeg"), CONFIG, sc,
                             max_instructions=20_000)

    def test_checkpoints_publish_and_reuse(self, tmp_path):
        sc = SamplingConfig(interval=500, warmup=100, samples=4,
                            warm_predictors=False)
        first = simulate_sampled(build_workload("cjpeg"), CONFIG, sc,
                                 max_instructions=40_000,
                                 checkpoints=str(tmp_path),
                                 workload_name="cjpeg")
        assert first.checkpoints["misses"] > 0
        assert first.checkpoints["stores"] > 0
        assert not any(w.from_checkpoint for w in first.windows)

        second = simulate_sampled(build_workload("cjpeg"), CONFIG, sc,
                                  max_instructions=40_000,
                                  checkpoints=str(tmp_path),
                                  workload_name="cjpeg")
        assert second.checkpoints["hits"] > 0
        assert any(w.from_checkpoint for w in second.windows)
        # Reuse must not change the estimate: same windows, same IPC.
        assert [w.to_dict() | {"from_checkpoint": False}
                for w in second.windows] == \
            [w.to_dict() | {"from_checkpoint": False}
             for w in first.windows]

    def test_warmed_runs_only_publish_checkpoints(self, tmp_path):
        sc = SamplingConfig(interval=500, warmup=100, samples=4)
        simulate_sampled(build_workload("cjpeg"), CONFIG, sc,
                         max_instructions=40_000,
                         checkpoints=str(tmp_path),
                         workload_name="cjpeg")
        warm_again = simulate_sampled(build_workload("cjpeg"), CONFIG, sc,
                                      max_instructions=40_000,
                                      checkpoints=str(tmp_path),
                                      workload_name="cjpeg")
        # Warm fast-forward cannot jump: a checkpoint would skip the
        # region's predictor training.
        assert not any(w.from_checkpoint for w in warm_again.windows)

    def test_checkpoints_shared_across_configurations(self, tmp_path):
        sc = SamplingConfig(interval=500, warmup=100, samples=4,
                            warm_predictors=False)
        simulate_sampled(build_workload("cjpeg"), CONFIG, sc,
                         max_instructions=40_000,
                         checkpoints=str(tmp_path),
                         workload_name="cjpeg")
        other = make_config(4, predictor="context", steering="baseline")
        reused = simulate_sampled(build_workload("cjpeg"), other, sc,
                                  max_instructions=40_000,
                                  checkpoints=str(tmp_path),
                                  workload_name="cjpeg")
        # Keys are architectural (workload identity + position), so a
        # different processor configuration reuses the same states.
        assert reused.checkpoints["hits"] > 0

    def test_monitor_receives_window_events(self):
        events = []

        class Monitor:
            def emit(self, event, **fields):
                events.append((event, fields))

        sc = SamplingConfig(interval=500, warmup=100, samples=4)
        simulate_sampled(build_workload("cjpeg"), CONFIG, sc,
                         max_instructions=20_000, workload_name="cjpeg",
                         monitor=Monitor())
        names = [e for e, _ in events]
        assert names.count("sample_window") == 4
        assert all(f["workload"] == "cjpeg" for _, f in events)

"""Perf-regression dashboard: normalized history writes, duplicate
healing, same-shape regression detection, markdown rendering.
"""

import json

from repro.analysis.perf_report import (BENCH_SCHEMA, append_entry,
                                        dedup_history, entry_identity,
                                        find_regressions, load_history,
                                        normalize_entry, render_dashboard,
                                        shape_key)


def _entry(rate, benchmark="smoke_guard", commit="abc1234",
           timestamp="2026-08-08T00:00:00Z", **extra):
    entry = {"benchmark": benchmark, "commit": commit,
             "timestamp_utc": timestamp, "cpu_count": 2, "cells": 16,
             "trace_length": 1_500, "serial_insts_per_second": rate}
    entry.update(extra)
    return entry


class TestHistoryIO:
    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.json") == []

    def test_load_tolerates_garbage_and_object_form(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        assert load_history(path) == []
        path.write_text(json.dumps({"benchmark": "solo"}))
        assert load_history(path) == [{"benchmark": "solo"}]
        path.write_text(json.dumps([{"a": 1}, "stray-string", {"b": 2}]))
        assert load_history(path) == [{"a": 1}, {"b": 2}]

    def test_normalize_tags_schema_and_sorts_keys(self):
        normalized = normalize_entry({"z": 1, "a": 2})
        # Normalization tags the schema, heals a measurement shape onto
        # legacy entries, and emits keys in stable sorted order.
        assert list(normalized) == ["a", "schema", "shape", "z"]
        assert normalized["schema"] == BENCH_SCHEMA
        assert normalized["shape"] == "serial"
        # An already-tagged (or pre-schema v1) entry keeps its tag, and
        # an explicit shape is never overwritten.
        assert normalize_entry({"schema": "v1"})["schema"] == "v1"
        assert normalize_entry({"shape": "sampled"})["shape"] == "sampled"

    def test_dedup_ignores_timestamp_and_schema_only(self):
        first = _entry(100_000.0)
        rerun = _entry(100_000.0, timestamp="2026-08-08T01:00:00Z")
        changed = _entry(90_000.0, timestamp="2026-08-08T02:00:00Z")
        assert entry_identity(first) == entry_identity(rerun)
        assert dedup_history([first, rerun, changed]) == [first, changed]

    def test_append_entry_heals_the_file(self, tmp_path):
        path = tmp_path / "bench.json"
        # A legacy file with a duplicate pair and unsorted keys.
        path.write_text(json.dumps([_entry(100_000.0),
                                    _entry(100_000.0,
                                           timestamp="later")]))
        history = append_entry(path, _entry(110_000.0, commit="def5678"))
        assert len(history) == 2  # duplicate dropped, new entry kept
        on_disk = json.loads(path.read_text())
        assert on_disk == history
        for entry in on_disk:
            assert entry["schema"] == BENCH_SCHEMA
            assert list(entry) == sorted(entry)


class TestRegressions:
    def test_25pct_drop_is_flagged(self):
        history = [_entry(100_000.0, commit="good000"),
                   _entry(75_000.0, commit="bad0000")]
        flags = find_regressions(history, threshold=0.20)
        assert len(flags) == 1
        flag = flags[0]
        assert flag["commit"] == "bad0000"
        assert flag["best_commit"] == "good000"
        assert flag["drop"] == 0.25
        assert flag["index"] == 1

    def test_within_threshold_not_flagged(self):
        history = [_entry(100_000.0), _entry(85_000.0, commit="meh")]
        assert find_regressions(history, threshold=0.20) == []

    def test_shapes_are_not_cross_compared(self):
        history = [_entry(100_000.0),
                   _entry(50_000.0, commit="other-shape", cells=30)]
        assert find_regressions(history, threshold=0.20) == []
        assert shape_key(history[0]) != shape_key(history[1])

    def test_only_earlier_entries_form_the_baseline(self):
        # A slow entry *before* the fast one is history, not a
        # regression; flagging it would punish every improvement.
        history = [_entry(75_000.0, commit="old"),
                   _entry(100_000.0, commit="new")]
        assert find_regressions(history, threshold=0.20) == []

    def test_unmeasurable_rates_are_skipped(self):
        history = [_entry(100_000.0), _entry(None), _entry(0.0),
                   _entry(75_000.0, commit="bad0000")]
        flags = find_regressions(history, threshold=0.20)
        assert [flag["commit"] for flag in flags] == ["bad0000"]


class TestDashboard:
    def test_sections_render(self):
        history = [_entry(100_000.0,
                          parallel_insts_per_second=180_000.0,
                          speedup=1.8,
                          slowest_cells=[{"workload": "cjpeg",
                                          "clusters": 4,
                                          "seconds": 1.25}],
                          cache={"cold_seconds": 8.0,
                                 "warm_seconds": 0.5,
                                 "warm_speedup": 16.0,
                                 "warm_hits": 16},
                          tracer_overhead={"ring_overhead": 0.05,
                                           "jsonl_overhead": 0.4})]
        receipt = {"label": "figure2", "commit": "abc1234",
                   "counts": {"cells": 6, "completed": 6, "failed": 0},
                   "cache": {"hits": 0, "misses": 6, "stores": 6},
                   "run": {"total_seconds": 2.5}}
        text = render_dashboard(history, receipts=[receipt])
        assert "# Sweep performance dashboard" in text
        assert "None detected." in text
        assert "## Throughput trajectory" in text
        assert "100,000" in text
        assert "## Slowest cells" in text and "cjpeg" in text
        assert "## Result-cache cold → warm" in text
        assert "## Tracer overhead" in text
        assert "## Run receipts" in text and "figure2" in text

    def test_regression_row_rendered(self):
        history = [_entry(100_000.0, commit="good000"),
                   _entry(75_000.0, commit="bad0000")]
        text = render_dashboard(history)
        assert "bad0000" in text
        assert "25.0%" in text

    def test_empty_history_renders(self):
        text = render_dashboard([])
        assert "No benchmark history" in text

"""Tests for the JSON/CSV exporters."""

import csv
import io
import json

from repro.analysis import (ablation_rows, figure2_rows, figure5_rows,
                            headline_rows, run_figure2, run_figure5,
                            scaling_rows, to_csv, to_json)
from repro.analysis.experiments import (AblationResult, HeadlineResult,
                                        ScalingResult)

TINY = ["rawcaudio"]
LEN = 1500


def test_figure2_long_format():
    rows = figure2_rows(run_figure2(TINY, LEN))
    assert len(rows) == 6    # one benchmark x six configs
    assert {row["clusters"] for row in rows} == {1, 2, 4}
    assert all(row["ipc"] > 0 for row in rows)


def test_figure5_rows_ordered():
    rows = figure5_rows(run_figure5(TINY, LEN, sizes=(256, 1024)))
    assert [row["entries"] for row in rows] == [256, 1024]


def test_ablation_and_headline_and_scaling_rows():
    ablation = AblationResult()
    ablation.rows["a"] = {"ipc": 1.0}
    assert ablation_rows(ablation) == [{"scheme": "a", "ipc": 1.0}]
    headline = HeadlineResult()
    headline.measured = {key: 0.0 for key in headline.paper}
    assert len(headline_rows(headline)) == len(headline.paper)
    scaling = ScalingResult([1])
    scaling.ipc = {(1, False): 3.0, (1, True): 3.1}
    scaling.ipcr = {(1, False): 1.0, (1, True): 1.0}
    scaling.comm = {(1, False): 0.0, (1, True): 0.0}
    assert len(scaling_rows(scaling)) == 2


def test_json_roundtrip(tmp_path):
    rows = [{"a": 1, "b": "x"}]
    path = tmp_path / "out.json"
    text = to_json(rows, str(path))
    assert json.loads(text) == rows
    assert json.loads(path.read_text()) == rows


def test_csv_union_of_keys(tmp_path):
    rows = [{"a": 1}, {"a": 2, "b": 3}]
    path = tmp_path / "out.csv"
    text = to_csv(rows, str(path))
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert parsed[0]["a"] == "1"
    assert parsed[1]["b"] == "3"
    assert path.read_text() == text


def test_csv_empty_safe():
    assert to_csv([]) == ""

"""Tests for the aggregate-metric helpers."""

import pytest

from repro.analysis import ipcr, mean, pct_change, suite_mean


def test_mean():
    assert mean([1, 2, 3]) == 2
    assert mean([]) == 0.0


def test_ipcr():
    assert ipcr(3.0, 4.0) == pytest.approx(0.75)
    assert ipcr(3.0, 0.0) == 0.0


def test_pct_change():
    assert pct_change(0.65, 0.77) == pytest.approx(18.46, abs=0.01)
    assert pct_change(4.0, 2.0) == -50.0
    assert pct_change(0.0, 5.0) == 0.0


def test_suite_mean_with_subset():
    data = {"a": 1.0, "b": 3.0, "c": 5.0}
    assert suite_mean(data) == 3.0
    assert suite_mean(data, subset=["a", "c"]) == 3.0
    assert suite_mean(data, subset=["b"]) == 3.0


def test_suite_mean_unknown_subset_raises_workload_error():
    from repro.errors import WorkloadError
    data = {"a": 1.0, "b": 3.0}
    with pytest.raises(WorkloadError) as excinfo:
        suite_mean(data, subset=["a", "nope", "zap"])
    # The message names the offenders and lists what exists.
    message = str(excinfo.value)
    assert "nope" in message and "zap" in message
    assert "'a'" in message and "'b'" in message


def test_suite_mean_empty_subset_is_empty_mean():
    assert suite_mean({"a": 1.0}, subset=[]) == 0.0

"""Tests for the pipeline timeline capture and rendering."""

from repro.analysis import capture_timeline, pipeline_timeline, render_timeline
from repro.core import make_config
from repro.isa import execute
from repro.workloads import synthetic, workload_trace


def test_stage_order_invariant():
    """fetch <= dispatch < first issue < complete < commit, per uop."""
    trace = workload_trace("rawcaudio", 400)
    timeline = capture_timeline(trace, make_config(2))
    assert timeline
    for entry in timeline.values():
        assert entry["fetch"] <= entry["dispatch"]
        assert entry["issues"], f"never issued: {entry}"
        assert entry["dispatch"] < entry["issues"][0]
        assert entry["issues"][-1] < entry["complete"]
        assert entry["complete"] < entry["commit"]


def test_every_trace_instruction_appears_once():
    trace = workload_trace("rawcaudio", 300)
    timeline = capture_timeline(trace, make_config(4))
    seqs = [e["seq"] for e in timeline.values() if e["kind"] == "inst"]
    assert sorted(seqs) == list(range(300))


def test_copies_appear_as_helper_rows():
    trace = workload_trace("cjpeg", 800)
    timeline = capture_timeline(trace, make_config(4))
    kinds = {e["kind"] for e in timeline.values()}
    assert "copy" in kinds


def test_reissues_recorded_as_extra_issue_marks():
    trace = execute(synthetic.random_branches(256), 2000)
    config = make_config(1, predictor="stride")
    timeline = capture_timeline(trace, config)
    reissued = [e for e in timeline.values() if len(e["issues"]) > 1]
    # The noisy workload mispredicts values somewhere.
    total_extra = sum(len(e["issues"]) - 1 for e in timeline.values())
    assert total_extra >= 0   # structurally valid either way
    for entry in reissued:
        assert entry["issues"] == sorted(entry["issues"])


def test_render_contains_stage_letters():
    trace = workload_trace("rawcaudio", 200)
    text = pipeline_timeline(trace, make_config(2), first_seq=10, count=8)
    assert "F" in text and "D" in text and "W" in text and "R" in text
    assert "seq" in text.splitlines()[0]


def test_render_empty_window():
    assert "empty" in render_timeline({}, 0, 5)


def test_render_respects_window():
    trace = workload_trace("rawcaudio", 200)
    timeline = capture_timeline(trace, make_config(1))
    text = render_timeline(timeline, first_seq=0, count=4)
    data_lines = [l for l in text.splitlines()[1:] if l.strip()]
    seqs = [int(l.split()[0]) for l in data_lines]
    assert all(0 <= s < 4 for s in seqs)

"""Graceful-degradation runner tests: poisoned cells never kill a sweep."""

import pytest

from repro.analysis import experiments
from repro.analysis.experiments import (ErrorLedger, run_graceful_sweep,
                                        run_one_safe)
from repro.errors import SimulationError, WorkloadError


def _poisoned_run_one(poisoned, real=experiments.run_one):
    """A run_one stand-in that explodes for one workload."""
    def fake(workload, n_clusters, **kwargs):
        if workload == poisoned:
            raise SimulationError("poisoned workload", cycle=123)
        return real(workload, n_clusters, length=300, **{
            k: v for k, v in kwargs.items() if k != "length"})
    return fake


class TestRunOneSafe:
    def test_failure_lands_in_ledger_not_raised(self, monkeypatch):
        monkeypatch.setattr(experiments, "run_one",
                            _poisoned_run_one("rawcaudio"))
        ledger = ErrorLedger()
        result = run_one_safe("rawcaudio", 4, ledger=ledger, retries=1)
        assert result is None
        assert len(ledger) == 2  # first attempt + one retry
        entry = ledger.entries[0]
        assert entry.workload == "rawcaudio"
        assert entry.error_type == "SimulationError"
        assert "poisoned" in entry.message

    def test_retry_once_recovers_transient_failures(self, monkeypatch):
        calls = {"n": 0}
        real = experiments.run_one

        def flaky(workload, n_clusters, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SimulationError("transient hiccup")
            return real(workload, n_clusters, length=300)

        monkeypatch.setattr(experiments, "run_one", flaky)
        ledger = ErrorLedger()
        result = run_one_safe("rawcaudio", 2, ledger=ledger, retries=1)
        assert result is not None
        assert calls["n"] == 2
        assert len(ledger) == 1  # the transient failure is still recorded

    def test_success_leaves_ledger_clean(self):
        ledger = ErrorLedger()
        result = run_one_safe("rawcaudio", 1, length=300, ledger=ledger)
        assert result is not None
        assert not ledger


class TestGracefulSweep:
    def test_poisoned_workload_does_not_abort_sweep(self, monkeypatch):
        monkeypatch.setattr(experiments, "run_one",
                            _poisoned_run_one("gsmdec"))
        result = run_graceful_sweep(workloads=["rawcaudio", "gsmdec"],
                                    configs=[(2, "stride", "vpb")],
                                    length=300)
        # The healthy cell completed; the poisoned one is ledgered.
        assert result.completed == 1
        assert ("rawcaudio", "2cl/stride/vpb") in result.ipc
        assert result.ledger.failed_cells == [("gsmdec", "2cl/stride/vpb")]
        assert len(result.ledger) == 2  # attempt + retry

    def test_clean_sweep_has_empty_ledger(self):
        result = run_graceful_sweep(workloads=["rawcaudio"],
                                    configs=[(1, "none", "baseline")],
                                    length=300)
        assert result.completed == 1
        assert not result.ledger
        assert "clean" in result.ledger.render()

    def test_ledger_render_names_every_failure(self, monkeypatch):
        monkeypatch.setattr(experiments, "run_one",
                            _poisoned_run_one("rawcaudio"))
        result = run_graceful_sweep(workloads=["rawcaudio"],
                                    configs=[(4, "none", "baseline"),
                                             (4, "stride", "vpb")],
                                    length=300)
        text = result.ledger.render()
        assert "4cl/none/baseline" in text and "4cl/stride/vpb" in text
        assert "SimulationError" in text


class TestSelectedWorkloads:
    def test_unknown_env_subset_raises_workload_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "rawcaudio,nope")
        with pytest.raises(WorkloadError, match="nope"):
            experiments.selected_workloads()

    def test_workload_error_still_satisfies_value_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "nope")
        with pytest.raises(ValueError, match="nope"):
            experiments.selected_workloads()

"""Parallel sweep runner: serial/parallel equivalence, env validation,
classified retries, deterministic seeding.
"""

import os

import pytest

from repro.analysis.experiments import (ErrorLedger, run_graceful_sweep,
                                        run_one_safe)
from repro.analysis.parallel import (SweepCell, WorkerPool, active_pool,
                                     cell_seed, is_transient_error,
                                     resolve_chunksize, resolve_jobs,
                                     resolve_trace_length, run_cells)
from repro.errors import (ConfigError, DeadlockError, DivergenceError,
                          SimulationError, WorkloadError)

LEN = 400


@pytest.fixture(autouse=True)
def _pretend_two_cores(monkeypatch):
    """Keep jobs=2 paths genuinely parallel on single-core CI hosts.

    resolve_jobs clamps to the real core count; without this the
    multi-worker tests would silently degrade to serial runs.  Tests
    of the clamp itself monkeypatch os.cpu_count again on top.
    """
    real = os.cpu_count()
    monkeypatch.setattr(os, "cpu_count", lambda: max(2, real or 1))


def _cells(include_failure=False):
    cells = [SweepCell(key=(name, n), workload=name, n_clusters=n,
                       length=LEN)
             for name in ("rawcaudio", "gsmdec") for n in (1, 2)]
    if include_failure:
        # An unknown workload fails deterministically (WorkloadError)
        # in whichever process executes it.
        cells.insert(1, SweepCell(key=("nope", 4), workload="nope",
                                  n_clusters=4, length=LEN))
    return cells


class TestSerialParallelEquivalence:
    def test_metrics_identical(self):
        cells = _cells()
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert list(serial.keys()) == list(parallel.keys())
        for key in serial:
            assert serial[key].to_dict() == parallel[key].to_dict()

    def test_ledgers_identical_with_forced_failure(self):
        cells = _cells(include_failure=True)
        serial_ledger, parallel_ledger = ErrorLedger(), ErrorLedger()
        serial = run_cells(cells, jobs=1, ledger=serial_ledger)
        parallel = run_cells(cells, jobs=2, ledger=parallel_ledger)
        # The failed cell is omitted from results, present in the ledger.
        assert ("nope", 4) not in serial
        assert list(serial.keys()) == list(parallel.keys())
        assert len(serial) == 4
        assert serial_ledger.entries == parallel_ledger.entries
        assert serial_ledger.failed_cells == [("nope", "4cl/none/baseline")]
        entry = serial_ledger.entries[0]
        assert entry.error_type == "WorkloadError"
        # Deterministic failure: exactly one attempt, despite retries=1.
        assert len(serial_ledger) == 1

    def test_failure_without_ledger_raises_typed_error(self):
        cells = [SweepCell(key="bad", workload="nope", n_clusters=2,
                           length=LEN)]
        with pytest.raises(WorkloadError, match="nope"):
            run_cells(cells, jobs=1)
        with pytest.raises(WorkloadError, match="nope"):
            run_cells([cells[0], cells[0]], jobs=2)

    def test_graceful_sweep_parallel_matches_serial(self):
        kwargs = dict(workloads=["rawcaudio"], length=300,
                      configs=[(1, "none", "baseline"),
                               (2, "stride", "vpb")])
        serial = run_graceful_sweep(jobs=1, **kwargs)
        parallel = run_graceful_sweep(jobs=2, **kwargs)
        assert serial.ipc == parallel.ipc
        assert serial.ledger.entries == parallel.ledger.entries


class TestChunkedDispatch:
    """The PR 2 regression: per-cell dispatch made jobs=2 slower than
    serial.  Chunking must not change any observable output."""

    def _wide_cells(self, n=36, include_failures=True):
        # >= 32 cells across several workloads/configs, with a couple of
        # deterministic failures sprinkled in so the ledger is exercised.
        names = ("rawcaudio", "gsmdec", "rawdaudio", "gsmenc")
        cells = [SweepCell(key=(name, n_clusters, repeat), workload=name,
                           n_clusters=n_clusters, length=LEN,
                           seed=repeat)
                 for name in names
                 for n_clusters in (1, 2, 4)
                 for repeat in range(3)][:n]
        if include_failures:
            cells.insert(5, SweepCell(key="bad-1", workload="nope",
                                      n_clusters=2, length=LEN))
            cells.insert(20, SweepCell(key="bad-2", workload="nope",
                                       n_clusters=4, length=LEN))
        return cells

    def test_chunked_parallel_bit_identical_to_serial(self):
        cells = self._wide_cells()
        assert len(cells) >= 32
        serial_ledger, parallel_ledger = ErrorLedger(), ErrorLedger()
        serial = run_cells(cells, jobs=1, ledger=serial_ledger)
        parallel = run_cells(cells, jobs=2, ledger=parallel_ledger)
        assert list(serial.keys()) == list(parallel.keys())
        for key in serial:
            assert serial[key].to_dict() == parallel[key].to_dict()
        assert serial_ledger.entries == parallel_ledger.entries

    def test_explicit_chunksize_changes_nothing(self):
        cells = self._wide_cells(12, include_failures=False)
        serial = run_cells(cells, jobs=1)
        for chunksize in (1, 3, 64):
            chunked = run_cells(cells, jobs=2, chunksize=chunksize)
            assert list(serial.keys()) == list(chunked.keys())
            for key in serial:
                assert serial[key].to_dict() == chunked[key].to_dict()

    def test_heuristic_four_chunks_per_worker(self):
        assert resolve_chunksize(None, 48, 2) == 6
        assert resolve_chunksize(None, 48, 6) == 2
        assert resolve_chunksize(None, 3, 8) == 1
        assert resolve_chunksize(None, 0, 0) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "17")
        assert resolve_chunksize(None, 48, 2) == 17
        assert resolve_chunksize(5, 48, 2) == 5

    def test_malformed_env_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "lots")
        with pytest.raises(ConfigError, match="REPRO_CHUNKSIZE"):
            resolve_chunksize(None, 10, 2)
        monkeypatch.setenv("REPRO_CHUNKSIZE", "0")
        with pytest.raises(ConfigError, match=">= 1"):
            resolve_chunksize(None, 10, 2)
        with pytest.raises(ConfigError, match=">= 1"):
            resolve_chunksize(-3, 10, 2)


class TestWorkerPool:
    def test_reused_pool_matches_serial_across_calls(self):
        cells = _cells()
        serial = run_cells(cells, jobs=1)
        with WorkerPool(jobs=2) as pool:
            first = run_cells(cells, pool=pool)
            second = run_cells(cells, pool=pool)
            assert pool.started  # one executor served both sweeps
        for key in serial:
            assert serial[key].to_dict() == first[key].to_dict()
            assert serial[key].to_dict() == second[key].to_dict()

    def test_context_registers_default_pool(self):
        assert active_pool() is None
        with WorkerPool(jobs=2) as pool:
            assert active_pool() is pool
            # Drivers pick the pool up without parameter threading.
            results = run_cells(_cells())
            assert pool.started
        assert active_pool() is None
        serial = run_cells(_cells(), jobs=1)
        for key in serial:
            assert serial[key].to_dict() == results[key].to_dict()

    def test_serial_pool_never_spawns_processes(self):
        with WorkerPool(jobs=1) as pool:
            run_cells(_cells())
            assert not pool.started

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(jobs=2)
        pool.close()
        with pytest.raises(ConfigError, match="closed"):
            pool.map(len, [(1,), (2,)])

    def test_graceful_sweep_uses_active_pool(self):
        kwargs = dict(workloads=["rawcaudio"], length=300,
                      configs=[(1, "none", "baseline"),
                               (2, "stride", "vpb")])
        serial = run_graceful_sweep(jobs=1, **kwargs)
        with WorkerPool(jobs=2) as pool:
            pooled = run_graceful_sweep(**kwargs)
            assert pool.started
        assert serial.ipc == pooled.ipc
        assert serial.ledger.entries == pooled.ledger.entries


class TestEnvValidation:
    def test_malformed_trace_len_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "banana")
        with pytest.raises(ConfigError, match="REPRO_TRACE_LEN"):
            resolve_trace_length()

    def test_nonpositive_trace_len_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "0")
        with pytest.raises(ConfigError, match="positive"):
            resolve_trace_length()

    def test_explicit_length_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "banana")
        assert resolve_trace_length(500) == 500

    def test_config_error_still_satisfies_value_error(self, monkeypatch):
        # Callers catching the historical bare ValueError keep working.
        monkeypatch.setenv("REPRO_TRACE_LEN", "banana")
        with pytest.raises(ValueError):
            resolve_trace_length()

    def test_jobs_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_jobs_env_and_explicit(self, monkeypatch):
        import os
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(2) == 2  # explicit wins

    def test_jobs_zero_means_all_cores(self):
        import os
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_jobs_clamped_to_cpu_count(self, monkeypatch, caplog):
        import os
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with caplog.at_level("WARNING", logger="repro.analysis.parallel"):
            assert resolve_jobs(16) == 2
        assert "clamping to 2" in caplog.text
        # A request within the machine stays untouched (and quiet).
        caplog.clear()
        with caplog.at_level("WARNING", logger="repro.analysis.parallel"):
            assert resolve_jobs(2) == 2
        assert not caplog.records

    def test_jobs_clamp_handles_unknown_cpu_count(self, monkeypatch):
        import os
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_jobs(4) == 1

    def test_malformed_jobs_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError, match="REPRO_JOBS"):
            resolve_jobs()
        with pytest.raises(ConfigError, match=">= 0"):
            resolve_jobs(-1)


class TestErrorClassification:
    def test_deterministic_errors_not_transient(self):
        for error in (ConfigError("x"), WorkloadError("x"),
                      DivergenceError("x"), DeadlockError("x")):
            assert not is_transient_error(error)

    def test_base_simulation_error_is_transient(self):
        assert is_transient_error(SimulationError("hiccup"))
        assert is_transient_error(RuntimeError("foreign"))

    def test_run_one_safe_does_not_retry_deterministic(self, monkeypatch):
        from repro.analysis import experiments

        calls = {"n": 0}

        def poisoned(workload, n_clusters, **kwargs):
            calls["n"] += 1
            raise WorkloadError("deterministically broken")

        monkeypatch.setattr(experiments, "run_one", poisoned)
        ledger = ErrorLedger()
        result = run_one_safe("rawcaudio", 2, ledger=ledger, retries=3)
        assert result is None
        assert calls["n"] == 1  # no retries: the replay would fail alike
        assert len(ledger) == 1
        assert ledger.entries[0].error_type == "WorkloadError"


class TestCellSeed:
    def test_deterministic_and_decorrelated(self):
        args = ("cjpeg", 4, "stride", "vpb", 4000)
        assert cell_seed(*args) == cell_seed(*args)
        assert cell_seed(*args) != cell_seed("djpeg", 4, "stride", "vpb",
                                             4000)
        assert cell_seed(*args) != cell_seed(*args, salt=1)

    def test_seeded_cells_simulate_on_distinct_data(self):
        base = SweepCell(key="a", workload="rawcaudio", n_clusters=1,
                         length=LEN, seed=0)
        other = SweepCell(key="b", workload="rawcaudio", n_clusters=1,
                          length=LEN, seed=7)
        results = run_cells([base, other], jobs=1)
        # Same program structure, different input data: both complete.
        assert results["a"].stats.committed_insts > 0
        assert results["b"].stats.committed_insts > 0


class TestSweepTelemetry:
    """run_cells under an ambient SweepMonitor: identical event *sets*
    serial vs parallel, worker-side cache stores folded into the
    parent's counters, receipts written without an ambient monitor."""

    def _monitored_run(self, cells, jobs, cache=None):
        from repro.obs.telemetry import SweepMonitor, use_monitor
        with use_monitor(SweepMonitor()) as monitor:
            results = run_cells(cells, jobs=jobs, cache=cache)
        return results, monitor.events

    def test_event_sets_identical_serial_vs_parallel(self):
        from repro.obs.telemetry import normalize_events
        cells = _cells()
        serial_results, serial_events = self._monitored_run(cells, jobs=1)
        par_results, par_events = self._monitored_run(cells, jobs=2)
        assert normalize_events(serial_events) \
            == normalize_events(par_events)
        for key in serial_results:
            assert (serial_results[key].to_dict()
                    == par_results[key].to_dict())

    def test_retry_events_survive_the_parallel_fold(self):
        from repro.obs.telemetry import normalize_events
        cells = _cells(include_failure=True)
        ledgers = (ErrorLedger(), ErrorLedger())
        _, serial_events = self._monitored_run_with_ledger(
            cells, jobs=1, ledger=ledgers[0])
        _, par_events = self._monitored_run_with_ledger(
            cells, jobs=2, ledger=ledgers[1])
        assert normalize_events(serial_events) \
            == normalize_events(par_events)
        retries = [event for event in serial_events
                   if event["event"] == "cell_retry"]
        assert retries and retries[0]["error"] == "WorkloadError"

    def _monitored_run_with_ledger(self, cells, jobs, ledger):
        from repro.obs.telemetry import SweepMonitor, use_monitor
        with use_monitor(SweepMonitor()) as monitor:
            results = run_cells(cells, jobs=jobs, ledger=ledger)
        return results, monitor.events

    def test_worker_cache_stores_fold_into_parent_stats(self, tmp_path):
        from repro.analysis.cache import ResultCache
        cells = _cells()
        cache = ResultCache(tmp_path / "cache")
        run_cells(cells, jobs=2, cache=cache)
        # Workers stored each fresh result; the parent's process-local
        # counters must reflect every one of them (the satellite-1 bug:
        # stores happened in workers and were never folded back).
        assert cache.stats.stores == len(cells)
        assert cache.stats.misses == len(cells)
        assert cache.stats.hits == 0
        warm = run_cells(cells, jobs=2, cache=cache)
        assert cache.stats.hits == len(cells)
        assert cache.stats.stores == len(cells)  # nothing re-stored
        assert len(warm) == len(cells)

    def test_cached_parallel_event_set_matches_serial(self, tmp_path):
        from repro.analysis.cache import ResultCache
        from repro.obs.telemetry import normalize_events
        cells = _cells()
        serial_cache = ResultCache(tmp_path / "serial")
        par_cache = ResultCache(tmp_path / "parallel")
        _, serial_events = self._monitored_run(cells, jobs=1,
                                               cache=serial_cache)
        _, par_events = self._monitored_run(cells, jobs=2,
                                            cache=par_cache)
        assert normalize_events(serial_events) \
            == normalize_events(par_events)
        stores = [event for event in par_events
                  if event["event"] == "cache_store"]
        assert len(stores) == len(cells)

    def test_receipt_path_without_ambient_monitor(self, tmp_path):
        from repro.obs.schema import validate_receipt
        path = tmp_path / "run_receipt.json"
        run_cells(_cells(), jobs=1, label="standalone",
                  receipt_path=path)
        assert validate_receipt(str(path)) == 4
        import json
        receipt = json.loads(path.read_text())
        assert receipt["label"] == "standalone"
        assert receipt["counts"]["simulated"] == 4

    def test_sweep_done_emitted_even_when_a_cell_raises(self):
        from repro.obs.telemetry import SweepMonitor, use_monitor
        cells = [SweepCell(key="bad", workload="nope", n_clusters=2,
                           length=LEN)]
        with use_monitor(SweepMonitor()) as monitor:
            with pytest.raises(WorkloadError):
                run_cells(cells, jobs=1)
        names = [event["event"] for event in monitor.events]
        assert names[-1] == "sweep_done"

"""Tests of the ASCII report rendering."""

from repro.analysis import (Figure2Result, bar, format_figure2,
                            format_figure5, format_headline, table)
from repro.analysis.experiments import Figure5Result, HeadlineResult


def test_table_alignment_and_rule():
    text = table(["name", "value"], [["a", 1], ["long-name", 22]],
                 title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1   # every row padded to the same width


def test_bar_scaling():
    assert bar(5, 10, width=10) == "#####"
    assert bar(10, 10, width=10) == "#" * 10
    assert bar(0, 10, width=10) == ""
    assert bar(20, 10, width=10) == "#" * 10   # clamped
    assert bar(1, 0) == ""


def test_format_figure2_includes_average_row():
    result = Figure2Result()
    result.ipc["bench"] = {key: 1.0 for key in Figure2Result.CONFIGS}
    text = format_figure2(result)
    assert "AVERAGE" in text
    assert "bench" in text
    assert "paper" in text


def test_format_figure5_reports_degradation():
    result = Figure5Result([1024, 131072])
    result.ipc = {1024: 2.8, 131072: 2.9}
    result.confident_fraction = {1024: 0.55, 131072: 0.6}
    result.hit_ratio = {1024: 0.9, 131072: 0.93}
    text = format_figure5(result)
    assert "1K" in text and "128K" in text
    assert "degradation" in text


def test_format_headline_pairs_paper_and_measured():
    result = HeadlineResult()
    result.measured = {key: 0.5 for key in result.paper}
    text = format_headline(result)
    assert "ipcr4_vpb" in text
    assert "paper" in text and "measured" in text

"""Unit tests for the inter-cluster path model (§4.2)."""

import pytest

from repro.interconnect import Interconnect


class TestBandwidth:
    def test_unbounded_never_rejects(self):
        net = Interconnect(4, latency=1, paths_per_cluster=None)
        for _ in range(100):
            assert net.try_reserve(0, 5)
        assert net.transfers == 100
        assert net.rejected == 0

    def test_per_cluster_per_cycle_limit(self):
        net = Interconnect(4, latency=1, paths_per_cluster=1)
        assert net.try_reserve(2, 10)
        assert not net.try_reserve(2, 10)    # same cluster, same cycle
        assert net.try_reserve(2, 11)        # pipelined: next cycle ok
        assert net.try_reserve(3, 10)        # other cluster independent
        assert net.rejected == 1

    def test_b_paths_allow_b_transfers(self):
        net = Interconnect(2, latency=1, paths_per_cluster=2)
        assert net.try_reserve(1, 4)
        assert net.try_reserve(1, 4)
        assert not net.try_reserve(1, 4)


class TestLatency:
    def test_arrival_cycle(self):
        assert Interconnect(2, latency=1).arrival_cycle(10) == 11
        assert Interconnect(2, latency=4).arrival_cycle(10) == 14

    def test_latency_validated(self):
        with pytest.raises(ValueError):
            Interconnect(2, latency=0)
        with pytest.raises(ValueError):
            Interconnect(2, latency=1, paths_per_cluster=0)


class TestPrune:
    def test_prune_drops_old_reservations_only(self):
        net = Interconnect(2, latency=1, paths_per_cluster=1)
        net.try_reserve(0, 5)
        net.try_reserve(0, 50)
        net.prune(before_cycle=10)
        assert net.try_reserve(0, 5)          # old record dropped
        assert not net.try_reserve(0, 50)     # future record kept

    def test_prune_noop_when_unbounded(self):
        net = Interconnect(2, latency=1)
        net.try_reserve(0, 1)
        net.prune(100)   # must not raise

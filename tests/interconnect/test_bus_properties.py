"""Property-based tests for the interconnect's reservation accounting."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import Interconnect


@settings(max_examples=60)
@given(paths=st.integers(1, 4),
       requests=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 20)),
                         max_size=80))
def test_per_slot_limit_never_exceeded(paths, requests):
    net = Interconnect(4, latency=1, paths_per_cluster=paths)
    granted: Counter = Counter()
    for cluster, cycle in requests:
        if net.try_reserve(cluster, cycle):
            granted[(cluster, cycle)] += 1
    assert all(count <= paths for count in granted.values())
    assert net.transfers == sum(granted.values())
    assert net.rejected == len(requests) - sum(granted.values())


@settings(max_examples=40)
@given(requests=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 20)),
                         max_size=60))
def test_unbounded_mode_grants_everything(requests):
    net = Interconnect(4, latency=2, paths_per_cluster=None)
    for cluster, cycle in requests:
        assert net.try_reserve(cluster, cycle)
    assert net.rejected == 0


@settings(max_examples=40)
@given(latency=st.integers(1, 16), depart=st.integers(0, 1000))
def test_arrival_always_after_departure(latency, depart):
    net = Interconnect(2, latency=latency)
    assert net.arrival_cycle(depart) == depart + latency


@settings(max_examples=30)
@given(paths=st.integers(1, 2),
       horizon=st.integers(5, 30))
def test_prune_preserves_future_reservations(paths, horizon):
    net = Interconnect(2, latency=1, paths_per_cluster=paths)
    for cycle in range(horizon):
        for _ in range(paths):
            assert net.try_reserve(0, cycle)
    cut = horizon // 2
    net.prune(before_cycle=cut)
    # Past slots are reusable again; future slots remain booked.
    assert net.try_reserve(0, 0)
    assert not net.try_reserve(0, horizon - 1)
